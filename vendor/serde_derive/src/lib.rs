//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! compile-compatible stub of the serde API surface it uses. The companion
//! `serde` stub provides *blanket* `Serialize`/`Deserialize` impls for every
//! type, so these derive macros only need to (a) exist under the expected
//! names and (b) accept `#[serde(...)]` helper attributes — they expand to
//! nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` field/container
/// attributes) and expands to nothing; the blanket impl in the `serde` stub
/// already covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing, mirroring
/// [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
