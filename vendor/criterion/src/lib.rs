//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop: per sample the closure runs enough
//! iterations to cover a minimum window, and the per-iteration mean/min/max
//! over all samples is printed. No statistics beyond that, no HTML reports.

use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Minimum wall-clock time one sample should cover, in nanoseconds.
const MIN_SAMPLE_NS: u128 = 2_000_000;

/// Benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Measurement context handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, collecting `sample_size` samples of batched calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: time one call to size the per-sample batch.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1);
        let batch = (MIN_SAMPLE_NS / once_ns).clamp(1, 1_000_000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no measurement)");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

/// Formats nanoseconds with an adaptive unit, criterion-style.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn units_format() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
