//! Offline compile-only stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides exactly the trait surface the workspace compiles against:
//! `Serialize`, `Deserialize`, `Serializer`, `Deserializer` and the
//! `ser::Error`/`de::Error` traits. Blanket impls make **every** type
//! serializable at the type level; actually invoking serialization returns
//! an error because no concrete (de)serializer format exists here. The
//! workspace only uses serde for derive annotations (wire formats are
//! hand-rolled, e.g. the JSON emitted by `gs-bench`), so nothing observes
//! the runtime behaviour.

pub mod ser {
    use core::fmt::Display;

    /// Error type contract for serializers.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Minimal serializer contract: an output type and an error type.
    pub trait Serializer: Sized {
        /// Value produced on success.
        type Ok;
        /// Error produced on failure.
        type Error: Error;
    }

    /// Types that can be serialized. The blanket impl below covers every
    /// type; the default method fails at runtime (no format backend exists
    /// in this offline stub).
    pub trait Serialize {
        /// Serializes `self` (always fails in the stub).
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let _ = serializer;
            Err(S::Error::custom(
                "serde stub: no serialization backend in this offline build",
            ))
        }
    }

    impl<T: ?Sized> Serialize for T {}
}

pub mod de {
    use core::fmt::Display;

    /// Error type contract for deserializers.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;

        /// Reports a length mismatch (used by fixed-size array adapters).
        fn invalid_length<E: Display + ?Sized>(len: usize, expected: &E) -> Self {
            Self::custom(format!("invalid length {len}, expected {expected}"))
        }
    }

    /// Minimal deserializer contract: an error type.
    pub trait Deserializer<'de>: Sized {
        /// Error produced on failure.
        type Error: Error;
    }

    /// Types that can be deserialized. The blanket impl below covers every
    /// sized type; the default method fails at runtime.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes a value (always fails in the stub).
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let _ = deserializer;
            Err(D::Error::custom(
                "serde stub: no deserialization backend in this offline build",
            ))
        }
    }

    impl<'de, T> Deserialize<'de> for T {}
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Like real serde's `derive` feature: the derive macros live in a proc-macro
// crate and are re-exported here under the same names as the traits (macros
// and traits occupy different namespaces).
pub use serde_derive::{Deserialize, Serialize};
