//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], `prop_assert!`/`prop_assert_eq!`/`prop_assume!` and
//! `ProptestConfig::with_cases`. Cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name), so failures
//! reproduce exactly across runs. Unlike upstream proptest there is **no
//! shrinking** — a failure reports the case index and panics.

pub mod test_runner {
    /// Number of cases to run per property (upstream default is 256; the
    /// stub defaults lower because these tests run under `cargo test -q` in
    /// CI). Override with the `PROPTEST_CASES` environment variable.
    pub const DEFAULT_CASES: u32 = 64;

    /// Subset of upstream's config: just the case count.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_CASES);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-case RNG (SplitMix64 seeded from test name + case).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `name`.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `[0, 1)` double.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            let v = self.start + rng.unit_f64() as f32 * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = rng.below(u64::MAX) as u128 % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

    /// Constant strategy (upstream `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-strategy size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running the body over deterministically seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config expression arrives at
/// repetition depth 0 so it can expand inside the per-test repetition.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = ($cfg).cases;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__test_name, __case);
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+
                    );
                    let __result: ::core::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__msg) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            __test_name, __case, __cases, __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                format!("prop_assert failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                format!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(format!(
                        "prop_assert_eq failed: {} == {} ({:?} vs {:?})",
                        stringify!($a), stringify!($b), __l, __r,
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(format!(
                        "prop_assert_eq failed: {} == {} ({:?} vs {:?}): {}",
                        stringify!($a), stringify!($b), __l, __r, format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Fails the current case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err(format!(
                        "prop_assert_ne failed: {} != {} (both {:?})",
                        stringify!($a),
                        stringify!($b),
                        __l,
                    ));
                }
            }
        }
    };
}

/// Skips the current case (counts as a pass) unless `cond` holds. The stub
/// has no global rejection budget; heavily-rejecting strategies just run
/// fewer effective cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0.0f32..1.0, t in (0u32..10, -5i32..5)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(t.0 < 10);
            prop_assert!((-5..5).contains(&t.1));
        }

        #[test]
        fn map_and_vec(v in crate::collection::vec((0u32..100).prop_map(|x| x * 2), 1..20) ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
        }

        #[test]
        fn assume_skips(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0.0f64..1.0;
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
