//! Offline stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! Provides a deterministic, seedable [`rngs::StdRng`] (SplitMix64) plus the
//! [`Rng`]/[`SeedableRng`] traits with `gen` and `gen_range` for the float
//! and integer types the workspace samples. All call sites seed explicitly
//! (`StdRng::seed_from_u64`), so reproducibility only requires that *this*
//! implementation is deterministic — it does not match upstream rand's
//! stream bit-for-bit.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a "standard" value (uniform over the type's natural unit
/// domain: `[0, 1)` for floats, full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling from a half-open `lo..hi` range.
pub trait SampleUniform: Sized {
    /// Draws one value from `[lo, hi)`; panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let u: $t = StandardSample::sample(rng);
                let v = lo + u * (hi - lo);
                // Guard against `lo + u*(hi-lo)` rounding up to `hi`.
                if v < hi {
                    v
                } else {
                    lo
                }
            }
        }
    };
}
impl_uniform_float!(f32);
impl_uniform_float!(f64);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling trait (blanket-implemented for every core RNG).
pub trait Rng: RngCore {
    /// Draws a standard value (uniform `[0, 1)` float, any-bits integer).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from the half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0005_DEEC_E66D,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = r.gen_range(5usize..9);
            assert!((5..9).contains(&i));
            let n = r.gen_range(-4i32..-1);
            assert!((-4..-1).contains(&n));
            let u: f64 = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen::<u32>()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen::<u32>()).collect();
        assert_ne!(va, vb);
    }
}
