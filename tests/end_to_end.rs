//! Cross-crate integration tests: the full StreamingGS flow on stand-in
//! scenes, exercising every workspace crate through the facade.

// Tests may unwrap: a panic is exactly the right failure mode here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use streaminggs::accel::area::area_table;
use streaminggs::accel::config::AccelConfig;
use streaminggs::accel::{GpuModel, GscoreModel, StreamingGsModel};
use streaminggs::baselines::{
    light_gaussian, mini_splatting, LightGaussianConfig, MiniSplattingConfig,
};
use streaminggs::render::{RenderConfig, TileRenderer};
use streaminggs::scene::{SceneConfig, SceneKind};
use streaminggs::tune::{boundary_aware_finetune, TuneConfig};
use streaminggs::voxel::{StreamingConfig, StreamingScene};
use streaminggs::vq::VqConfig;

#[test]
fn full_pipeline_keeps_quality_on_every_scene() {
    // Streaming render of the trained cloud must stay within a few dB of
    // the tile-centric render of the same cloud on all six scenes.
    let renderer = TileRenderer::new(RenderConfig::default());
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let reference = renderer.render(&scene.trained, cam);
        let streaming = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                ..Default::default()
            },
        )
        .render(cam);
        let psnr = streaming.image.psnr(&reference.image);
        assert!(
            psnr > 20.0,
            "{kind}: streaming broke the image ({psnr:.1} dB)"
        );
    }
}

#[test]
fn hardware_model_ordering_is_stable() {
    // GPU < GSCore < full StreamingGS in performance, on a real-world and a
    // synthetic scene.
    for kind in [SceneKind::Truck, SceneKind::Lego] {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let ref_out = TileRenderer::new(RenderConfig::default()).render(&scene.trained, cam);
        let gpu = GpuModel::default().evaluate(&ref_out.stats);
        let gscore = GscoreModel::default().evaluate(&ref_out.stats);

        let stream_out = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig::full(scene.voxel_size, VqConfig::tiny()),
        )
        .render(cam);
        let sgs =
            StreamingGsModel::default().evaluate_measured(&stream_out.workload, &stream_out.ledger);

        assert!(
            gscore.seconds < gpu.seconds,
            "{kind}: GSCore not faster than GPU"
        );
        assert!(
            sgs.seconds < gscore.seconds,
            "{kind}: StreamingGS not faster than GSCore"
        );
        assert!(
            sgs.energy.total_pj() < gpu.energy.total_pj(),
            "{kind}: StreamingGS should save energy vs the GPU"
        );
    }
}

#[test]
fn boundary_finetune_then_stream_improves_against_ground_truth() {
    let scene = SceneKind::Train.build(&SceneConfig {
        gaussians: 1_200,
        width: 96,
        height: 72,
        train_views: 2,
        eval_views: 1,
        ..SceneConfig::tiny()
    });
    let renderer = TileRenderer::new(RenderConfig::default());
    let targets: Vec<_> = scene
        .train_cameras
        .iter()
        .map(|c| (*c, renderer.render(&scene.ground_truth, c).image))
        .collect();

    let result = boundary_aware_finetune(
        &scene.trained,
        &targets,
        &TuneConfig {
            iters: 40,
            voxel_size: scene.voxel_size,
            refresh_every: 10,
            record_every: 10,
            ..Default::default()
        },
    );

    // Streaming PSNR against ground truth improves (or at worst holds).
    let first = result.history.first().unwrap();
    let last = result.history.last().unwrap();
    assert!(
        last.psnr_db > first.psnr_db,
        "fine-tuning did not improve streaming quality: {} -> {}",
        first.psnr_db,
        last.psnr_db
    );
}

#[test]
fn baseline_algorithms_shrink_clouds_and_speed_up_streaming() {
    let scene = SceneKind::Drjohnson.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let mini = mini_splatting(
        &scene.trained,
        &scene.train_cameras,
        &MiniSplattingConfig::default(),
    );
    let light = light_gaussian(
        &scene.trained,
        &scene.train_cameras,
        &LightGaussianConfig::default(),
    );
    assert!(mini.len() < scene.trained.len());
    assert!(light.len() < mini.len());

    let run = |cloud: &streaminggs::scene::GaussianCloud| -> u64 {
        StreamingScene::new(
            cloud.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                ..Default::default()
            },
        )
        .render(cam)
        .workload
        .totals()
        .gaussians_streamed
    };
    let full_streamed = run(&scene.trained);
    let light_streamed = run(&light);
    assert!(
        light_streamed < full_streamed,
        "compacted cloud should stream fewer Gaussians"
    );
}

#[test]
fn area_table_matches_paper_and_scales() {
    let t = area_table(&AccelConfig::paper());
    assert!((t.total_mm2() - 5.37).abs() < 0.1);
    let mut big = AccelConfig::paper();
    big.render_units = 128;
    assert!(area_table(&big).total_mm2() > t.total_mm2());
}

#[test]
fn vq_pipeline_bytes_add_up() {
    // The streamed fine bytes must equal survivors × record size exactly.
    let scene = SceneKind::Palace.build(&SceneConfig::tiny());
    let streaming = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig::full(scene.voxel_size, VqConfig::tiny()),
    );
    let record = streaming
        .quantized()
        .expect("vq on")
        .fine_bytes_per_gaussian();
    let out = streaming.render(&scene.eval_cameras[0]);
    let t = out.workload.totals();
    assert_eq!(t.fine_bytes, t.coarse_survivors * record);
    assert_eq!(t.coarse_bytes, t.gaussians_streamed * 16);
    // And the measured ledger is the same truth, stage by stage.
    assert_eq!(out.ledger, out.workload.to_ledger());
    assert_eq!(out.ledger.total(), out.workload.dram_bytes());
}
