//! Quickstart: build a scene, render it with both pipelines, compare.
//!
//! Walks the paper's Fig. 5 flow end to end on a small stand-in scene and
//! writes both renders as PPM images next to the binary:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::error::Error;
use streaminggs::render::{RenderConfig, TileRenderer};
use streaminggs::scene::{SceneConfig, SceneKind};
use streaminggs::voxel::{StreamingConfig, StreamingScene};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A stand-in for the paper's "train" scene (see DESIGN.md §2).
    let scene = SceneKind::Train.build(&SceneConfig::small());
    let cam = &scene.eval_cameras[0];
    println!(
        "scene: {} ({} Gaussians, voxel size {})",
        scene.kind,
        scene.trained.len(),
        scene.voxel_size
    );

    // 2. The conventional tile-centric pipeline (projection → sort → blend).
    let reference = TileRenderer::new(RenderConfig::default()).render(&scene.trained, cam);
    println!(
        "tile-centric: {} visible Gaussians, {} (Gaussian,tile) pairs, {} blends",
        reference.stats.visible_gaussians,
        reference.stats.tile_pairs,
        reference.stats.blended_fragments
    );

    // 3. The paper's fully-streaming pipeline: voxelize, order, filter,
    //    blend on-chip partials.
    let streaming = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            voxel_size: scene.voxel_size,
            ..Default::default()
        },
    );
    let out = streaming.render(cam);
    let totals = out.workload.totals();
    println!(
        "streaming: {} voxels in grid, {} Gaussians streamed, filter kill rate {:.1}%",
        out.workload.scene_voxels,
        totals.gaussians_streamed,
        100.0 * totals.filter_kill_rate()
    );
    println!(
        "streaming DRAM traffic (measured ledger): {:.2} MB vs tile-centric \
         intermediate-heavy pipeline",
        out.ledger.total() as f64 / 1e6
    );

    // 4. The two pipelines agree up to voxel-ordering artifacts.
    let psnr = out.image.psnr(&reference.image);
    println!("streaming vs tile-centric PSNR: {psnr:.2} dB");
    println!(
        "depth-order violations: {:.2}% of Gaussians (the boundary-aware fine-tuning target)",
        100.0 * out.violations.gaussian_ratio()
    );

    reference.image.write_ppm("quickstart_tile_centric.ppm")?;
    out.image.write_ppm("quickstart_streaming.ppm")?;
    println!("wrote quickstart_tile_centric.ppm and quickstart_streaming.ppm");
    Ok(())
}
