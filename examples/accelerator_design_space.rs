//! Accelerator design-space exploration: CFU/FFU/buffer trade-offs.
//!
//! Sweeps the HFU configuration (the paper's Fig. 13 axis), sorter and
//! render-array sizes, and prints a latency/area Pareto table — the study an
//! architect would run before committing to the paper's 4-CFU/1-FFU choice.
//!
//! ```text
//! cargo run --release --example accelerator_design_space
//! ```

use std::error::Error;
use streaminggs::accel::area::area_table;
use streaminggs::accel::config::AccelConfig;
use streaminggs::accel::StreamingGsModel;
use streaminggs::scene::{SceneConfig, SceneKind};
use streaminggs::voxel::{StreamingConfig, StreamingScene};

fn main() -> Result<(), Box<dyn Error>> {
    let scene = SceneKind::Train.build(&SceneConfig::small());
    let streaming = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            voxel_size: scene.voxel_size,
            ..Default::default()
        },
    );
    let workload = streaming.render(&scene.eval_cameras[0]).workload;

    println!("config                          latency_us  area_mm2  perf/area");
    println!("----------------------------------------------------------------");
    let mut best: Option<(f64, String)> = None;
    for cfus in [1u32, 2, 4, 8] {
        for ffus in [1u32, 2] {
            for render_units in [32u32, 64, 128] {
                let mut cfg = AccelConfig::paper();
                cfg.cfus_per_hfu = cfus;
                cfg.ffus_per_hfu = ffus;
                cfg.render_units = render_units;
                let report = StreamingGsModel::new(cfg).evaluate(&workload);
                let area = area_table(&cfg).total_mm2();
                let label = format!(
                    "{} CFU x {} FFU x {} RU{}",
                    cfus,
                    ffus,
                    render_units,
                    if cfus == 4 && ffus == 1 && render_units == 64 {
                        "  <- paper"
                    } else {
                        ""
                    }
                );
                let perf_per_area = 1.0 / (report.seconds * 1e6 * area);
                println!(
                    "{:<30}  {:>10.1}  {:>8.2}  {:>9.5}",
                    label,
                    report.seconds * 1e6,
                    area,
                    perf_per_area
                );
                if best
                    .as_ref()
                    .map(|(b, _)| perf_per_area > *b)
                    .unwrap_or(true)
                {
                    best = Some((perf_per_area, label));
                }
            }
        }
    }
    if let Some((_, label)) = best {
        println!("\nbest perf/area: {label}");
    }
    println!(
        "\npaper's choice: 4 CFUs + 1 FFU per HFU, 64 render units, 5.37 mm^2 — \
         CFUs scale speedup until DRAM binds (Fig. 13), FFUs beyond one are idle."
    );
    Ok(())
}
