//! VR walkthrough: per-frame latency, FPS and DRAM traffic on a camera path.
//!
//! The paper's motivation is the 90 FPS VR budget (Sec. I). This example
//! flies a camera through the playroom stand-in and reports, per frame, what
//! the Orin NX GPU model and the StreamingGS accelerator model would spend —
//! the Fig. 1 story as a timeline.
//!
//! ```text
//! cargo run --release --example vr_walkthrough
//! ```

use std::error::Error;
use streaminggs::accel::{GpuModel, StreamingGsModel};
use streaminggs::core::vec::Vec3;
use streaminggs::mem::CacheConfig;
use streaminggs::render::{RenderConfig, TileRenderer};
use streaminggs::scene::trajectory::{walkthrough, RigSpec};
use streaminggs::scene::{SceneConfig, SceneKind};
use streaminggs::serve::{FrameScheduler, SceneShard};
use streaminggs::voxel::{FaultPolicy, PageConfig, StreamingConfig, StreamingScene};

const VR_TARGET_FPS: f64 = 90.0;

fn main() -> Result<(), Box<dyn Error>> {
    let scene = SceneKind::Playroom.build(&SceneConfig::small());
    let path = walkthrough(
        Vec3::new(-2.5, 1.4, -1.5),
        Vec3::new(2.5, 1.5, 1.5),
        Vec3::new(0.0, 1.2, 0.0),
        8,
        &RigSpec {
            width: 320,
            height: 208,
            fov_x: 1.1,
        },
    );

    let renderer = TileRenderer::new(RenderConfig::default());
    let gpu = GpuModel::default();
    let accel = StreamingGsModel::default();
    // Demand-page the voxel store from its serialized scene image (how a
    // larger-than-memory scene would stream) and front the coarse/fine
    // fetches with the working-set cache: consecutive frames revisit most
    // of the previous frame's voxels, so DRAM sees only miss fills.
    let mut streaming = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            voxel_size: scene.voxel_size,
            cache: Some(CacheConfig::default()),
            ..Default::default()
        },
    );
    streaming.page_out(PageConfig::default());

    println!("frame  gpu_ms  gpu_fps  sgs_us  sgs_fps  sgs_MB  coarse_hit  meets_90fps");
    let mut gpu_total = 0.0;
    let mut sgs_total = 0.0;
    for (i, cam) in path.iter().enumerate() {
        let ref_out = renderer.render(&scene.trained, cam);
        let gpu_report = gpu.evaluate(&ref_out.stats);
        let stream_out = streaming.render(cam);
        // DRAM time/energy priced from the frame's measured traffic ledger
        // (burst-rounded cache-miss transactions only).
        let sgs_report = accel.evaluate_measured(&stream_out.workload, &stream_out.ledger);
        gpu_total += gpu_report.seconds;
        sgs_total += sgs_report.seconds;
        let hit = stream_out
            .cache
            .map(|c| c.coarse.hit_rate())
            .unwrap_or_default();
        println!(
            "{:>5}  {:>6.2}  {:>7.1}  {:>6.1}  {:>7.0}  {:>6.2}  {:>9.1}%  {}",
            i,
            gpu_report.seconds * 1e3,
            gpu_report.fps(),
            sgs_report.seconds * 1e6,
            sgs_report.fps(),
            sgs_report.dram_bytes as f64 / 1e6,
            hit * 100.0,
            if sgs_report.fps() >= VR_TARGET_FPS {
                "yes"
            } else {
                "NO"
            }
        );
    }
    let n = path.len() as f64;
    println!(
        "\naverage: GPU {:.1} FPS | StreamingGS {:.0} FPS | speedup {:.1}x",
        n / gpu_total,
        n / sgs_total,
        gpu_total / sgs_total
    );
    println!(
        "(stand-in scene at 1/300th of the native workload — both models scale together; \
         the paper's dataset-average speedup is 45.7x)"
    );

    // Same walkthrough, hostile storage: reopen the paged store with a
    // seeded fault injector (2 % transient read faults plus occasional
    // permanent page losses) and let the renderer absorb them — transient
    // faults retry invisibly, dead pages degrade to coarse stand-ins, and
    // every event lands in the frame's DegradationReport.
    println!("\n--- fault injection: 2% transient + 0.8% permanent page faults ---");
    let mut hostile = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            voxel_size: scene.voxel_size,
            ..Default::default()
        },
    );
    hostile.page_out_with_faults(
        PageConfig {
            slots_per_page: 32,
            ..PageConfig::default()
        },
        FaultPolicy {
            permanent_per_mille: 8,
            ..FaultPolicy::transient(0x57AB1E, 20)
        },
    )?;
    println!("frame  retries  pages_lost  vox_skip  fine_degraded  fine_skip");
    for (i, cam) in path.iter().enumerate() {
        let out = hostile.try_render(cam)?;
        let d = out.degradation;
        println!(
            "{:>5}  {:>7}  {:>10}  {:>8}  {:>13}  {:>9}",
            i, d.page_retries, d.pages_lost, d.voxels_skipped, d.fine_degraded, d.fine_skipped
        );
    }

    // Two clients, one shard: both sessions walk the same path (the
    // second a few frames behind) against a single paged store. Pages the
    // leader faults in are already warm for the follower — that is the
    // shared-page amortization the gs-serve scheduler exists for — while
    // each session keeps its *own* working-set cache and frame state, so
    // every frame stays bit-identical to rendering solo.
    println!("\n--- multi-client: 2 sessions sharing one paged shard (gs-serve) ---");
    let mut prepared = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            voxel_size: scene.voxel_size,
            cache: Some(CacheConfig::default()),
            ..Default::default()
        },
    );
    prepared.page_out(PageConfig::default());
    // What one client alone would fault in over the whole path — the
    // yardstick for amortization below.
    let solo = prepared.clone();
    for cam in &path {
        solo.render(cam);
    }
    let solo_faults = solo.store().page_faults();

    let mut shard = SceneShard::new("playroom", prepared);
    let mut sessions = vec![shard.open_session(), shard.open_session()];
    let mut scheduler = FrameScheduler::new(0);
    let lag = 2usize;
    let mut hits = [(0.0f64, 0usize); 2];
    println!("round  s0_frame  s1_frame  s0_hit  s1_hit  shard_faults");
    for round in 0..path.len() + lag {
        if round < path.len() {
            scheduler.submit(0, &path[round]);
        }
        if round >= lag {
            scheduler.submit(1, &path[round - lag]);
        }
        scheduler.drain(&mut sessions)?;
        let mut frame_hit = [None, None];
        for (s, session) in sessions.iter().enumerate() {
            for out in session.frames() {
                let hit = out.cache.map(|c| c.coarse.hit_rate()).unwrap_or_default();
                hits[s].0 += hit;
                hits[s].1 += 1;
                frame_hit[s] = Some(hit);
            }
        }
        let fmt = |h: Option<f64>| match h {
            Some(h) => format!("{:>5.1}%", h * 100.0),
            None => "     -".into(),
        };
        println!(
            "{:>5}  {:>8}  {:>8}  {}  {}  {:>12}",
            round,
            if round < path.len() {
                round.to_string()
            } else {
                "-".into()
            },
            if round >= lag {
                (round - lag).to_string()
            } else {
                "-".into()
            },
            fmt(frame_hit[0]),
            fmt(frame_hit[1]),
            shard.page_faults()
        );
    }
    let shard_faults = shard.page_faults();
    for (s, (sum, n)) in hits.iter().enumerate() {
        println!(
            "session {s}: {} frames, avg coarse cache hit {:.1}%",
            n,
            100.0 * sum / (*n).max(1) as f64
        );
    }
    println!(
        "shared-page amortization: 2 clients faulted {shard_faults} pages on one shard \
         vs {} if each paged privately ({:.1}x saved)",
        2 * solo_faults,
        2.0 * solo_faults as f64 / shard_faults.max(1) as f64
    );
    Ok(())
}
