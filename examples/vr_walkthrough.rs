//! VR walkthrough: per-frame latency, FPS and DRAM traffic on a camera path.
//!
//! The paper's motivation is the 90 FPS VR budget (Sec. I). This example
//! flies a camera through the playroom stand-in and reports, per frame, what
//! the Orin NX GPU model and the StreamingGS accelerator model would spend —
//! the Fig. 1 story as a timeline.
//!
//! ```text
//! cargo run --release --example vr_walkthrough
//! ```

use std::error::Error;
use streaminggs::accel::{GpuModel, StreamingGsModel};
use streaminggs::core::vec::Vec3;
use streaminggs::mem::CacheConfig;
use streaminggs::render::{RenderConfig, TileRenderer};
use streaminggs::scene::trajectory::{walkthrough, RigSpec};
use streaminggs::scene::{SceneConfig, SceneKind};
use streaminggs::voxel::{FaultPolicy, PageConfig, StreamingConfig, StreamingScene};

const VR_TARGET_FPS: f64 = 90.0;

fn main() -> Result<(), Box<dyn Error>> {
    let scene = SceneKind::Playroom.build(&SceneConfig::small());
    let path = walkthrough(
        Vec3::new(-2.5, 1.4, -1.5),
        Vec3::new(2.5, 1.5, 1.5),
        Vec3::new(0.0, 1.2, 0.0),
        8,
        &RigSpec {
            width: 320,
            height: 208,
            fov_x: 1.1,
        },
    );

    let renderer = TileRenderer::new(RenderConfig::default());
    let gpu = GpuModel::default();
    let accel = StreamingGsModel::default();
    // Demand-page the voxel store from its serialized scene image (how a
    // larger-than-memory scene would stream) and front the coarse/fine
    // fetches with the working-set cache: consecutive frames revisit most
    // of the previous frame's voxels, so DRAM sees only miss fills.
    let mut streaming = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            voxel_size: scene.voxel_size,
            cache: Some(CacheConfig::default()),
            ..Default::default()
        },
    );
    streaming.page_out(PageConfig::default());

    println!("frame  gpu_ms  gpu_fps  sgs_us  sgs_fps  sgs_MB  coarse_hit  meets_90fps");
    let mut gpu_total = 0.0;
    let mut sgs_total = 0.0;
    for (i, cam) in path.iter().enumerate() {
        let ref_out = renderer.render(&scene.trained, cam);
        let gpu_report = gpu.evaluate(&ref_out.stats);
        let stream_out = streaming.render(cam);
        // DRAM time/energy priced from the frame's measured traffic ledger
        // (burst-rounded cache-miss transactions only).
        let sgs_report = accel.evaluate_measured(&stream_out.workload, &stream_out.ledger);
        gpu_total += gpu_report.seconds;
        sgs_total += sgs_report.seconds;
        let hit = stream_out
            .cache
            .map(|c| c.coarse.hit_rate())
            .unwrap_or_default();
        println!(
            "{:>5}  {:>6.2}  {:>7.1}  {:>6.1}  {:>7.0}  {:>6.2}  {:>9.1}%  {}",
            i,
            gpu_report.seconds * 1e3,
            gpu_report.fps(),
            sgs_report.seconds * 1e6,
            sgs_report.fps(),
            sgs_report.dram_bytes as f64 / 1e6,
            hit * 100.0,
            if sgs_report.fps() >= VR_TARGET_FPS {
                "yes"
            } else {
                "NO"
            }
        );
    }
    let n = path.len() as f64;
    println!(
        "\naverage: GPU {:.1} FPS | StreamingGS {:.0} FPS | speedup {:.1}x",
        n / gpu_total,
        n / sgs_total,
        gpu_total / sgs_total
    );
    println!(
        "(stand-in scene at 1/300th of the native workload — both models scale together; \
         the paper's dataset-average speedup is 45.7x)"
    );

    // Same walkthrough, hostile storage: reopen the paged store with a
    // seeded fault injector (2 % transient read faults plus occasional
    // permanent page losses) and let the renderer absorb them — transient
    // faults retry invisibly, dead pages degrade to coarse stand-ins, and
    // every event lands in the frame's DegradationReport.
    println!("\n--- fault injection: 2% transient + 0.8% permanent page faults ---");
    let mut hostile = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            voxel_size: scene.voxel_size,
            ..Default::default()
        },
    );
    hostile.page_out_with_faults(
        PageConfig {
            slots_per_page: 32,
            ..PageConfig::default()
        },
        FaultPolicy {
            permanent_per_mille: 8,
            ..FaultPolicy::transient(0x57AB1E, 20)
        },
    )?;
    println!("frame  retries  pages_lost  vox_skip  fine_degraded  fine_skip");
    for (i, cam) in path.iter().enumerate() {
        let out = hostile.try_render(cam)?;
        let d = out.degradation;
        println!(
            "{:>5}  {:>7}  {:>10}  {:>8}  {:>13}  {:>9}",
            i, d.page_retries, d.pages_lost, d.voxels_skipped, d.fine_degraded, d.fine_skipped
        );
    }
    Ok(())
}
