//! Compression pipeline: codebooks, QAT, layout sizes, quality.
//!
//! Reproduces the paper's Sec. III-C data path on one scene: train the
//! per-feature codebooks, run quantization-aware fine-tuning, and report the
//! DRAM layout the accelerator would stream (coarse half raw, fine half as
//! indices) together with the quality cost.
//!
//! ```text
//! cargo run --release --example compress_and_stream
//! ```

use std::error::Error;
use streaminggs::render::{RenderConfig, TileRenderer};
use streaminggs::scene::{SceneConfig, SceneKind};
use streaminggs::tune::qat::decoded_psnr;
use streaminggs::tune::{quantization_aware_finetune, QatConfig};
use streaminggs::voxel::{StreamingConfig, StreamingScene};
use streaminggs::vq::{GaussianQuantizer, VqConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let scene = SceneKind::Truck.build(&SceneConfig::small());
    let n = scene.trained.len();
    let renderer = TileRenderer::new(RenderConfig::default());
    let targets: Vec<_> = scene
        .train_cameras
        .iter()
        .map(|c| (*c, renderer.render(&scene.ground_truth, c).image))
        .collect();

    // Plain quantization.
    let vq = VqConfig::small();
    let plain = GaussianQuantizer::train(&scene.trained, &vq);
    println!("scene: {} ({n} Gaussians)", scene.kind);
    println!(
        "codebooks: {:.1} KB on-chip (paper budget: 250 KB at 4096/512 entries)",
        plain.codebook_bytes() as f64 / 1024.0
    );
    println!(
        "DRAM layout per Gaussian: coarse {} B raw + fine {} B indices (raw fine half: {} B)",
        streaminggs::scene::gaussian::COARSE_BYTES,
        plain.fine_bytes_per_gaussian(),
        streaminggs::scene::gaussian::FINE_BYTES_RAW,
    );
    println!(
        "fine-half traffic reduction: {:.1}% (paper: 92.3%)",
        100.0 * plain.fine_traffic_reduction()
    );
    println!(
        "decoded PSNR (plain VQ):  {:.2} dB",
        decoded_psnr(&plain, &targets)
    );

    // Quantization-aware fine-tuning.
    let (tuned_cloud, tuned_quant) = quantization_aware_finetune(
        &scene.trained,
        &targets,
        &QatConfig {
            iters: 60,
            vq,
            refresh_every: 20,
            ..Default::default()
        },
    );
    println!(
        "decoded PSNR (after QAT): {:.2} dB",
        decoded_psnr(&tuned_quant, &targets)
    );

    // Stream the compressed scene.
    let streaming = StreamingScene::with_quantization(
        tuned_cloud,
        tuned_quant,
        StreamingConfig::full(scene.voxel_size, vq),
    );
    let out = streaming.render(&scene.eval_cameras[0]);
    let totals = out.workload.totals();
    println!(
        "streamed frame: {:.2} MB coarse + {:.2} MB fine indices + {:.2} MB pixels",
        totals.coarse_bytes as f64 / 1e6,
        totals.fine_bytes as f64 / 1e6,
        totals.pixel_bytes as f64 / 1e6
    );
    out.image.write_ppm("compress_and_stream.ppm")?;
    println!("wrote compress_and_stream.ppm");
    Ok(())
}
