//! Compression pipeline: codebooks, QAT, layout sizes, quality.
//!
//! Reproduces the paper's Sec. III-C data path on one scene: train the
//! per-feature codebooks, run quantization-aware fine-tuning, and report the
//! DRAM layout the accelerator would stream (coarse half raw, fine half as
//! indices) together with the quality cost.
//!
//! ```text
//! cargo run --release --example compress_and_stream
//! ```

use std::error::Error;
use streaminggs::render::{RenderConfig, TileRenderer};
use streaminggs::scene::{SceneConfig, SceneKind};
use streaminggs::tune::qat::decoded_psnr;
use streaminggs::tune::{quantization_aware_finetune, QatConfig};
use streaminggs::voxel::{StreamingConfig, StreamingScene};
use streaminggs::vq::{GaussianQuantizer, VqConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let scene = SceneKind::Truck.build(&SceneConfig::small());
    let n = scene.trained.len();
    let renderer = TileRenderer::new(RenderConfig::default());
    let targets: Vec<_> = scene
        .train_cameras
        .iter()
        .map(|c| (*c, renderer.render(&scene.ground_truth, c).image))
        .collect();

    // Plain quantization.
    let vq = VqConfig::small();
    let plain = GaussianQuantizer::train(&scene.trained, &vq);
    println!("scene: {} ({n} Gaussians)", scene.kind);
    println!(
        "codebooks: {:.1} KB on-chip (paper budget: 250 KB at 4096/512 entries)",
        plain.codebook_bytes() as f64 / 1024.0
    );
    println!(
        "DRAM layout per Gaussian: coarse {} B raw + fine {} B indices (raw fine half: {} B)",
        streaminggs::scene::gaussian::COARSE_BYTES,
        plain.fine_bytes_per_gaussian(),
        streaminggs::scene::gaussian::FINE_BYTES_RAW,
    );
    println!(
        "fine-half traffic reduction: {:.1}% (paper: 92.3%)",
        100.0 * plain.fine_traffic_reduction()
    );
    println!(
        "decoded PSNR (plain VQ):  {:.2} dB",
        decoded_psnr(&plain, &targets)
    );

    // Quantization-aware fine-tuning.
    let (tuned_cloud, tuned_quant) = quantization_aware_finetune(
        &scene.trained,
        &targets,
        &QatConfig {
            iters: 60,
            vq,
            refresh_every: 20,
            ..Default::default()
        },
    );
    println!(
        "decoded PSNR (after QAT): {:.2} dB",
        decoded_psnr(&tuned_quant, &targets)
    );

    // Stream the compressed scene out of its voxel-resident columnar
    // store; every fetch is metered through the frame's traffic ledger.
    let streaming = StreamingScene::with_quantization(
        tuned_cloud,
        tuned_quant,
        StreamingConfig::full(scene.voxel_size, vq),
    );
    let store = streaming.store();
    println!(
        "voxel store: {} voxels, {:.2} MB coarse column + {:.2} MB index column",
        store.voxel_count(),
        store.coarse_column_bytes() as f64 / 1e6,
        store.fine_column_bytes() as f64 / 1e6
    );
    let out = streaming.render(&scene.eval_cameras[0]);
    println!("measured DRAM ledger for one streamed frame:");
    for (stage, dir, bytes) in out.ledger.iter() {
        println!(
            "  {:>12} {dir:?}: {:.3} MB",
            stage.to_string(),
            bytes as f64 / 1e6
        );
    }
    assert_eq!(out.ledger.total(), out.workload.dram_bytes());
    out.image.write_ppm("compress_and_stream.ppm")?;
    println!("wrote compress_and_stream.ppm");
    Ok(())
}
