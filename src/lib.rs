//! # StreamingGS — voxel-based streaming 3D Gaussian splatting
//!
//! A full reproduction of *"StreamingGS: Voxel-Based Streaming 3D Gaussian
//! Splatting with Memory Optimization and Architectural Support"*
//! (DAC 2025) as a Rust workspace: the memory-centric rendering algorithm,
//! its training-side components (boundary-aware and quantization-aware
//! fine-tuning), the compared baselines (tile-centric 3DGS, Mini-Splatting,
//! LightGaussian, GSCore) and workload-driven performance/energy models of
//! the co-designed accelerator.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `gs-core` | math substrate (vectors, cameras, SH, EWA) |
//! | [`scene`] | `gs-scene` | Gaussian model + procedural stand-in scenes |
//! | [`render`] | `gs-render` | tile-centric reference renderer |
//! | [`voxel`] | `gs-voxel` | **the paper's streaming pipeline** |
//! | [`vq`] | `gs-vq` | vector quantization / codebooks |
//! | [`tune`] | `gs-tune` | boundary-aware + quantization-aware fine-tuning |
//! | [`baselines`] | `gs-baselines` | Mini-Splatting, LightGaussian |
//! | [`mem`] | `gs-mem` | DRAM/SRAM/energy models |
//! | [`accel`] | `gs-accel` | StreamingGS / GSCore / Orin NX models |
//! | [`serve`] | `gs-serve` | multi-client frame scheduler over shared shards |
//!
//! ## Quickstart
//!
//! ```
//! use streaminggs::scene::{SceneConfig, SceneKind};
//! use streaminggs::voxel::{StreamingConfig, StreamingScene};
//!
//! let scene = SceneKind::Lego.build(&SceneConfig::tiny());
//! let cfg = StreamingConfig { voxel_size: scene.voxel_size, ..Default::default() };
//! let streaming = StreamingScene::new(scene.trained.clone(), cfg);
//! let frame = streaming.render(&scene.eval_cameras[0]);
//! assert!(frame.workload.totals().gaussians_streamed > 0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/gs-bench`
//! for the harness that regenerates every table and figure of the paper.

pub use gs_accel as accel;
pub use gs_baselines as baselines;
pub use gs_core as core;
pub use gs_mem as mem;
pub use gs_render as render;
pub use gs_scene as scene;
pub use gs_serve as serve;
pub use gs_tune as tune;
pub use gs_voxel as voxel;
pub use gs_vq as vq;
