//! Tier-aware record codecs for LOD scene images.
//!
//! A tiered scene image carries the full-quality second half (tier 0 —
//! today's raw 220 B or VQ index records, bit-exact) plus up to
//! [`gs_mem`-sized] extra tiers, each cheaper along two axes:
//!
//! * **SH-degree truncation** (MEGS²-style): a tier keeps spherical
//!   harmonics only up to `sh_degree`; the truncated tail decodes as
//!   zero. A raw tier record is a byte *prefix* of the full fine record
//!   (the SH bands are its tail), so tier 0 (`sh_degree = 3`) is the
//!   identity codec.
//! * **Codebook shrinking** (VQ tiers): each per-feature codebook keeps
//!   `entries >> codebook_shift` centroids, which can also narrow the
//!   serialized index width (≤ 256 entries → 1 B).
//!
//! The third axis — importance pruning, which Gaussians a tier keeps at
//! all — lives in the store's tier directory, not in the record codec;
//! [`TierSpec::keep_permille`] only *describes* it.
//!
//! Everything here is a pure function of its inputs: encode → decode
//! round-trips bit-exactly to the truncated source for every tier, and
//! tier 0 round-trips losslessly (`tests` + `tests/tier_roundtrip.rs`).

use crate::codebook::Codebook;
use crate::quantizer::{scale_from_feature, FeatureCodebooks, QuantRecord, SH_BAND_RANGES};
use gs_core::sh::SH_COEFFS;
use gs_core::vec::Vec3;
use gs_core::Quat;
use gs_scene::gaussian::FINE_BYTES_RAW;
use gs_scene::Gaussian;
use serde::{Deserialize, Serialize};

/// Highest SH degree a record can carry (degree 3 = all 48 coefficients).
pub const MAX_SH_DEGREE: u8 = 3;

/// Leading non-SH floats of a raw fine record: two non-max scale axes,
/// four rotation components, and opacity (`gs_scene::Gaussian::fine_record`
/// layout) — everything before the SH tail that tiers truncate.
pub const RAW_HEAD_FLOATS: usize = 7;

/// One quality tier's layout: how much of the second half it keeps.
///
/// Tier 0 is always `TierSpec::tier0()` (full quality); extra tiers
/// coarsen monotonically in the ladders the benches sweep, though the
/// codec itself accepts any combination.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierSpec {
    /// SH degree kept by this tier (0–3; bands above it decode as zero).
    pub sh_degree: u8,
    /// Per-mille of Gaussians the tier keeps, by importance rank
    /// (1000 = no pruning). Applied by the store's tier builder.
    pub keep_permille: u16,
    /// VQ tiers: every codebook keeps `entries >> codebook_shift`
    /// centroids (ignored for raw tiers).
    pub codebook_shift: u8,
}

impl TierSpec {
    /// The full-quality tier: today's records, bit-exact.
    pub fn tier0() -> TierSpec {
        TierSpec {
            sh_degree: MAX_SH_DEGREE,
            keep_permille: 1000,
            codebook_shift: 0,
        }
    }

    /// Clamps the spec into its valid domain (degree ≤ 3, keep ≥ 1 ‰).
    pub fn validated(self) -> TierSpec {
        TierSpec {
            sh_degree: self.sh_degree.min(MAX_SH_DEGREE),
            keep_permille: self.keep_permille.clamp(1, 1000),
            codebook_shift: self.codebook_shift,
        }
    }

    /// `true` when this spec describes the lossless full-quality layout.
    pub fn is_tier0(&self) -> bool {
        self.validated() == TierSpec::tier0()
    }
}

impl Default for TierSpec {
    fn default() -> TierSpec {
        TierSpec::tier0()
    }
}

/// SH coefficients kept at `sh_degree` (3 colour channels × (d+1)²
/// basis functions).
pub fn sh_floats(sh_degree: u8) -> usize {
    let d = sh_degree.min(MAX_SH_DEGREE) as usize;
    3 * (d + 1) * (d + 1)
}

/// Serialized bytes of one **raw** tier record at `sh_degree`: the seven
/// head floats plus the kept SH prefix, 4 B each (220 B at degree 3 —
/// exactly the full fine record).
pub fn raw_tier_bytes(sh_degree: u8) -> u64 {
    (4 * (RAW_HEAD_FLOATS + sh_floats(sh_degree))) as u64
}

/// Encodes one raw tier record: the byte prefix of the full fine record
/// that survives SH truncation (the identity at degree 3). Appends
/// exactly [`raw_tier_bytes`] bytes to `out`.
///
/// # Panics
///
/// Panics when `full` is not a whole fine record — truncating a partial
/// record would silently corrupt the column.
pub fn truncate_raw_record(full: &[u8], sh_degree: u8, out: &mut Vec<u8>) {
    assert_eq!(
        full.len(),
        FINE_BYTES_RAW,
        "raw tier source must be a whole fine record"
    );
    out.extend_from_slice(&full[..raw_tier_bytes(sh_degree) as usize]);
}

/// Decodes a raw tier record back to full fine-record shape: the kept
/// prefix verbatim, the truncated SH tail as zero bytes (0.0f32 exactly,
/// so degree-3 expansion is the identity and every tier's decode equals
/// the SH-truncated source bit-for-bit).
pub fn expand_raw_record(tier: &[u8], out: &mut [u8; FINE_BYTES_RAW]) {
    out.fill(0);
    out[..tier.len()].copy_from_slice(tier);
}

/// Zeroes `g`'s SH coefficients above `sh_degree` — the exact Gaussian a
/// raw tier record decodes to (the round-trip reference the proptests
/// compare against).
pub fn truncate_sh(mut g: Gaussian, sh_degree: u8) -> Gaussian {
    for c in g.sh[sh_floats(sh_degree)..].iter_mut() {
        *c = 0.0;
    }
    g
}

/// Serialized bytes of one **VQ** tier record at `sh_degree` against
/// `cb`: scale + rotation + DC indices, the SH band indices of bands
/// `1..=sh_degree`, and the opacity byte. At degree 3 this is exactly
/// [`FeatureCodebooks::record_bytes`].
pub fn vq_tier_bytes(cb: &FeatureCodebooks, sh_degree: u8) -> u64 {
    cb.scale.index_bytes()
        + cb.rot.index_bytes()
        + cb.dc.index_bytes()
        + cb.sh
            .iter()
            .take(sh_degree.min(MAX_SH_DEGREE) as usize)
            .map(Codebook::index_bytes)
            .sum::<u64>()
        + 1 // opacity byte
}

/// Appends the byte image of `r` truncated to `sh_degree`: like
/// [`FeatureCodebooks::write_record`] but skipping the SH band indices
/// above the tier's degree — exactly [`vq_tier_bytes`] bytes (and the
/// identical bytes at degree 3).
///
/// # Panics
///
/// Panics on an index that does not fit its codebook's narrow width, or
/// an unsupported index width — the same losslessness guards as the
/// full-record codec.
pub fn write_vq_tier_record(
    cb: &FeatureCodebooks,
    sh_degree: u8,
    r: &QuantRecord,
    out: &mut Vec<u8>,
) {
    let put = |out: &mut Vec<u8>, idx: u32, width: u64| {
        assert!(
            matches!(width, 1 | 2),
            "unsupported codebook index width {width} (the tier codec \
             serializes 1- or 2-byte indices only)"
        );
        assert!(
            idx < 1u32 << (8 * width),
            "codebook index {idx} overflows its {width}-byte record slot"
        );
        match width {
            // gs-lint: allow(D004) lossless: the assert above pins idx below 2^(8·width)
            1 => out.push(idx as u8),
            // gs-lint: allow(D004) lossless: the assert above pins idx below 2^(8·width)
            _ => out.extend_from_slice(&(idx as u16).to_le_bytes()),
        }
    };
    put(out, r.scale, cb.scale.index_bytes());
    put(out, r.rot, cb.rot.index_bytes());
    put(out, r.dc, cb.dc.index_bytes());
    for (b, book) in cb
        .sh
        .iter()
        .enumerate()
        .take(sh_degree.min(MAX_SH_DEGREE) as usize)
    {
        put(out, r.sh[b], book.index_bytes());
    }
    out.push(r.opacity_q);
}

/// Decodes a [`write_vq_tier_record`] byte image back to the record,
/// bit-exactly; SH band indices above the tier's degree come back as 0
/// (the decoder never consults them — [`decode_vq_tier_record`] zeroes
/// those bands outright).
///
/// # Panics
///
/// Panics when `bytes` is shorter than [`vq_tier_bytes`] or a codebook
/// reports an unsupported index width — symmetric with the writer.
pub fn read_vq_tier_record(cb: &FeatureCodebooks, sh_degree: u8, bytes: &[u8]) -> QuantRecord {
    let mut at = 0usize;
    let mut get = |width: u64| -> u32 {
        assert!(
            matches!(width, 1 | 2),
            "unsupported codebook index width {width} (the tier codec \
             deserializes 1- or 2-byte indices only)"
        );
        let v = match width {
            1 => u32::from(bytes[at]),
            _ => u32::from(u16::from_le_bytes([bytes[at], bytes[at + 1]])),
        };
        at += width as usize;
        v
    };
    let scale = get(cb.scale.index_bytes());
    let rot = get(cb.rot.index_bytes());
    let dc = get(cb.dc.index_bytes());
    let mut sh = [0u32; 3];
    for (b, book) in cb
        .sh
        .iter()
        .enumerate()
        .take(sh_degree.min(MAX_SH_DEGREE) as usize)
    {
        sh[b] = get(book.index_bytes());
    }
    let opacity_q = bytes[at];
    QuantRecord {
        scale,
        rot,
        dc,
        sh,
        opacity_q,
    }
}

/// Decodes a tier record into a full Gaussian: the kept feature groups
/// through their codebooks (the identical float operations as
/// [`FeatureCodebooks::decode_record`], so degree 3 is bit-exact with the
/// full decode path), the truncated SH bands as exact zeros.
pub fn decode_vq_tier_record(
    cb: &FeatureCodebooks,
    sh_degree: u8,
    pos: Vec3,
    r: &QuantRecord,
) -> Gaussian {
    let scale = scale_from_feature(cb.scale.decode(r.scale));
    let q = cb.rot.decode(r.rot);
    let rot = Quat::new(q[0], q[1], q[2], q[3]).normalized();
    let mut sh = [0.0f32; SH_COEFFS];
    sh[0..3].copy_from_slice(cb.dc.decode(r.dc));
    for (b, range) in SH_BAND_RANGES
        .iter()
        .enumerate()
        .take(sh_degree.min(MAX_SH_DEGREE) as usize)
    {
        sh[range.clone()].copy_from_slice(cb.sh[b].decode(r.sh[b]));
    }
    Gaussian {
        pos,
        scale,
        rot,
        opacity: r.opacity_q as f32 / 255.0,
        sh,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::quantizer::{GaussianQuantizer, VqConfig};
    use gs_scene::{SceneConfig, SceneKind};

    #[test]
    fn raw_tier_widths() {
        assert_eq!(raw_tier_bytes(3), FINE_BYTES_RAW as u64); // 220
        assert_eq!(raw_tier_bytes(2), 4 * (7 + 27)); // 136
        assert_eq!(raw_tier_bytes(1), 4 * (7 + 12)); // 76
        assert_eq!(raw_tier_bytes(0), 4 * (7 + 3)); // 40
        assert_eq!(raw_tier_bytes(9), raw_tier_bytes(3), "degree clamps");
    }

    #[test]
    fn tier0_raw_codec_is_the_identity() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let mut out = Vec::new();
        let mut full = [0u8; FINE_BYTES_RAW];
        for g in scene.trained.iter() {
            let (rec, _tag) = g.fine_record();
            out.clear();
            truncate_raw_record(&rec, 3, &mut out);
            assert_eq!(out.as_slice(), rec.as_slice());
            expand_raw_record(&out, &mut full);
            assert_eq!(full, rec);
        }
    }

    #[test]
    fn raw_truncation_decodes_to_sh_truncated_source() {
        let scene = SceneKind::Truck.build(&SceneConfig::tiny());
        let mut out = Vec::new();
        let mut full = [0u8; FINE_BYTES_RAW];
        for g in scene.trained.iter().take(64) {
            let coarse = g.coarse_record();
            let (rec, tag) = g.fine_record();
            for d in 0..=MAX_SH_DEGREE {
                out.clear();
                truncate_raw_record(&rec, d, &mut out);
                assert_eq!(out.len() as u64, raw_tier_bytes(d));
                expand_raw_record(&out, &mut full);
                let dec = Gaussian::from_split_record(&coarse, &full, tag);
                assert_eq!(dec, truncate_sh(g.clone(), d));
            }
        }
    }

    #[test]
    fn vq_tier_codec_matches_full_codec_at_degree_3() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let q = GaussianQuantizer::train(&scene.trained, &VqConfig::tiny());
        assert_eq!(vq_tier_bytes(&q.codebooks, 3), q.codebooks.record_bytes());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for (i, r) in q.records.iter().enumerate().take(64) {
            a.clear();
            b.clear();
            q.codebooks.write_record(r, &mut a);
            write_vq_tier_record(&q.codebooks, 3, r, &mut b);
            assert_eq!(a, b, "degree-3 tier bytes must equal the full codec");
            assert_eq!(read_vq_tier_record(&q.codebooks, 3, &b), *r);
            let (pos, _) = q.coarse[i];
            assert_eq!(
                decode_vq_tier_record(&q.codebooks, 3, pos, r),
                q.codebooks.decode_record(pos, r)
            );
        }
    }

    #[test]
    fn vq_tier_truncation_zeroes_upper_bands() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let q = GaussianQuantizer::train(&scene.trained, &VqConfig::tiny());
        let mut buf = Vec::new();
        for (i, r) in q.records.iter().enumerate().take(64) {
            let (pos, _) = q.coarse[i];
            for d in 0..MAX_SH_DEGREE {
                buf.clear();
                write_vq_tier_record(&q.codebooks, d, r, &mut buf);
                assert_eq!(buf.len() as u64, vq_tier_bytes(&q.codebooks, d));
                assert!(vq_tier_bytes(&q.codebooks, d) < q.codebooks.record_bytes());
                let back = read_vq_tier_record(&q.codebooks, d, &buf);
                let dec = decode_vq_tier_record(&q.codebooks, d, pos, &back);
                // The kept bands agree with the full decode; the rest is 0.
                let full = q.codebooks.decode_record(pos, r);
                assert_eq!(dec, truncate_sh(full, d));
            }
        }
    }

    #[test]
    fn spec_validation_clamps() {
        let s = TierSpec {
            sh_degree: 9,
            keep_permille: 0,
            codebook_shift: 2,
        }
        .validated();
        assert_eq!(s.sh_degree, 3);
        assert_eq!(s.keep_permille, 1);
        assert!(TierSpec::tier0().is_tier0());
        assert!(!s.is_tier0());
        assert_eq!(TierSpec::default(), TierSpec::tier0());
    }
}
