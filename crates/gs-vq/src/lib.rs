//! # gs-vq — vector quantization of Gaussian features
//!
//! Implements the paper's data-compression scheme (Sec. III-C): the
//! "second half" of each Gaussian (everything except position and maximum
//! scale) is encoded into **separate per-feature codebooks** — scale,
//! rotation and DC colour with 4096 entries, SH bands with 512 — so that the
//! fine-grained filter only fetches compact codebook *indices* from DRAM
//! while the codebooks themselves live in on-chip SRAM.
//!
//! The crate provides:
//!
//! * [`kmeans`] — seeded k-means++ clustering,
//! * [`codebook::Codebook`] — a trained codebook with encode/decode,
//! * [`quantizer`] — the end-to-end Gaussian quantizer producing a
//!   [`quantizer::QuantizedCloud`] with per-Gaussian index records and byte
//!   accounting (13 B/Gaussian vs 220 B raw ⇒ ≈94 % second-half traffic
//!   reduction; the paper reports 92.3 %).
//!
//! ## Example
//!
//! ```
//! use gs_scene::{SceneConfig, SceneKind};
//! use gs_vq::quantizer::{GaussianQuantizer, VqConfig};
//!
//! let scene = SceneKind::Lego.build(&SceneConfig::tiny());
//! let cfg = VqConfig::tiny();
//! let quantized = GaussianQuantizer::train(&scene.trained, &cfg);
//! let decoded = quantized.decode();
//! assert_eq!(decoded.len(), scene.trained.len());
//! ```

pub mod codebook;
pub mod kmeans;
pub mod quantizer;
pub mod tier;

pub use codebook::Codebook;
pub use kmeans::{kmeans, KmeansResult};
pub use quantizer::{FeatureCodebooks, GaussianQuantizer, QuantRecord, QuantizedCloud, VqConfig};
pub use tier::{
    decode_vq_tier_record, expand_raw_record, raw_tier_bytes, read_vq_tier_record, sh_floats,
    truncate_raw_record, truncate_sh, vq_tier_bytes, write_vq_tier_record, TierSpec, MAX_SH_DEGREE,
};
