//! End-to-end Gaussian feature quantization (paper Sec. III-C, Fig. 8).
//!
//! The "second half" of every Gaussian is split into feature groups, each
//! with its own codebook to preserve precision:
//!
//! | group     | dim | entries (paper) | index bytes |
//! |-----------|-----|-----------------|-------------|
//! | scale     | 3   | 4096            | 2           |
//! | rotation  | 4   | 4096            | 2           |
//! | DC colour | 3   | 4096            | 2           |
//! | SH band 1 | 9   | 512             | 2           |
//! | SH band 2 | 15  | 512             | 2           |
//! | SH band 3 | 21  | 512             | 2           |
//! | opacity   | 1   | uniform u8      | 1           |
//!
//! giving 13 B of indices versus 220 B of raw parameters (−94 %; the paper
//! reports −92.3 %). At the paper's codebook sizes the on-chip tables total
//! ≈252 KB — matching the paper's 250 KB codebook buffer.

use crate::codebook::Codebook;
use gs_core::vec::Vec3;
use gs_core::Quat;
use gs_scene::{Gaussian, GaussianCloud};
use serde::{Deserialize, Serialize};

/// Quantizer configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VqConfig {
    /// Entries of the scale codebook.
    pub scale_entries: usize,
    /// Entries of the rotation codebook.
    pub rot_entries: usize,
    /// Entries of the DC-colour codebook.
    pub dc_entries: usize,
    /// Entries of each SH band codebook.
    pub sh_entries: usize,
    /// Lloyd iterations per codebook.
    pub iters: usize,
    /// Training subsample cap (all Gaussians are *encoded* regardless).
    pub max_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VqConfig {
    fn default() -> Self {
        // Paper values (Sec. V-A).
        VqConfig {
            scale_entries: 4096,
            rot_entries: 4096,
            dc_entries: 4096,
            sh_entries: 512,
            iters: 8,
            max_samples: 20_000,
            seed: 0x5151,
        }
    }
}

impl VqConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> VqConfig {
        VqConfig {
            scale_entries: 32,
            rot_entries: 32,
            dc_entries: 32,
            sh_entries: 16,
            iters: 4,
            max_samples: 2_000,
            ..VqConfig::default()
        }
    }

    /// A small configuration for fast benches.
    pub fn small() -> VqConfig {
        VqConfig {
            scale_entries: 256,
            rot_entries: 256,
            dc_entries: 256,
            sh_entries: 64,
            iters: 6,
            max_samples: 8_000,
            ..VqConfig::default()
        }
    }
}

/// Per-Gaussian codebook indices — the only "second half" data in DRAM.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantRecord {
    /// Scale codebook index.
    pub scale: u32,
    /// Rotation codebook index.
    pub rot: u32,
    /// DC colour codebook index.
    pub dc: u32,
    /// SH band codebook indices (bands 1–3).
    pub sh: [u32; 3],
    /// Uniformly quantized opacity.
    pub opacity_q: u8,
}

/// The six trained codebooks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeatureCodebooks {
    pub scale: Codebook,
    pub rot: Codebook,
    pub dc: Codebook,
    pub sh: [Codebook; 3],
}

impl FeatureCodebooks {
    /// Total on-chip SRAM bytes for all codebooks.
    pub fn bytes(&self) -> u64 {
        self.scale.bytes()
            + self.rot.bytes()
            + self.dc.bytes()
            + self.sh.iter().map(Codebook::bytes).sum::<u64>()
    }

    /// DRAM bytes of one serialized index record (the "second half" a
    /// VQ-backed store keeps per Gaussian): one narrow index per codebook
    /// plus the uniform opacity byte.
    pub fn record_bytes(&self) -> u64 {
        self.scale.index_bytes()
            + self.rot.index_bytes()
            + self.dc.index_bytes()
            + self.sh.iter().map(Codebook::index_bytes).sum::<u64>()
            + 1 // opacity byte
    }

    /// Appends the DRAM byte image of `r` to `out`: each codebook index at
    /// its narrow width (1 B for ≤ 256 entries, else 2 B little-endian),
    /// then the opacity byte — exactly [`Self::record_bytes`] bytes.
    ///
    /// # Panics
    ///
    /// Panics when an index does not fit its codebook's narrow width, or
    /// when a codebook reports an index width outside {1, 2} bytes (a
    /// hypothetical > 65536-entry codebook): both would silently truncate
    /// and break the byte codec's losslessness guarantee. The width check
    /// is asserted symmetrically in [`Self::read_record`], so an
    /// unsupported codebook can never round-trip wrongly in either
    /// direction.
    pub fn write_record(&self, r: &QuantRecord, out: &mut Vec<u8>) {
        let put = |out: &mut Vec<u8>, idx: u32, width: u64| {
            assert!(
                matches!(width, 1 | 2),
                "unsupported codebook index width {width} (the record codec \
                 serializes 1- or 2-byte indices only)"
            );
            assert!(
                idx < 1u32 << (8 * width),
                "codebook index {idx} overflows its {width}-byte record slot"
            );
            match width {
                // gs-lint: allow(D004) lossless: the assert above pins idx below 2^(8·width)
                1 => out.push(idx as u8),
                // gs-lint: allow(D004) lossless: the assert above pins idx below 2^(8·width)
                _ => out.extend_from_slice(&(idx as u16).to_le_bytes()),
            }
        };
        put(out, r.scale, self.scale.index_bytes());
        put(out, r.rot, self.rot.index_bytes());
        put(out, r.dc, self.dc.index_bytes());
        for (b, cb) in self.sh.iter().enumerate() {
            put(out, r.sh[b], cb.index_bytes());
        }
        out.push(r.opacity_q);
    }

    /// Decodes a [`Self::write_record`] byte image back to the record,
    /// bit-exactly (indices are always `< 65536`, so the narrow widths are
    /// lossless).
    ///
    /// # Panics
    ///
    /// Panics when `bytes` is shorter than [`Self::record_bytes`], or when
    /// a codebook reports an index width outside {1, 2} bytes — the same
    /// guard [`Self::write_record`] enforces, so the codec's losslessness
    /// contract is checked symmetrically on both sides.
    pub fn read_record(&self, bytes: &[u8]) -> QuantRecord {
        let mut at = 0usize;
        let mut get = |width: u64| -> u32 {
            assert!(
                matches!(width, 1 | 2),
                "unsupported codebook index width {width} (the record codec \
                 deserializes 1- or 2-byte indices only)"
            );
            let v = match width {
                1 => u32::from(bytes[at]),
                _ => u32::from(u16::from_le_bytes([bytes[at], bytes[at + 1]])),
            };
            at += width as usize;
            v
        };
        let scale = get(self.scale.index_bytes());
        let rot = get(self.rot.index_bytes());
        let dc = get(self.dc.index_bytes());
        let mut sh = [0u32; 3];
        for (b, cb) in self.sh.iter().enumerate() {
            sh[b] = get(cb.index_bytes());
        }
        let opacity_q = bytes[at];
        QuantRecord {
            scale,
            rot,
            dc,
            sh,
            opacity_q,
        }
    }

    /// Decodes one index record into a full Gaussian, given the
    /// uncompressed first half's position. This is **the** decode path:
    /// [`QuantizedCloud::decode_one`] and any store fetching records from
    /// DRAM both go through it, so their outputs are bit-identical.
    pub fn decode_record(&self, pos: Vec3, r: &QuantRecord) -> Gaussian {
        let scale = scale_from_feature(self.scale.decode(r.scale));
        let q = self.rot.decode(r.rot);
        let rot = Quat::new(q[0], q[1], q[2], q[3]).normalized();
        let mut sh = [0.0f32; gs_core::sh::SH_COEFFS];
        sh[0..3].copy_from_slice(self.dc.decode(r.dc));
        for (b, range) in SH_BAND_RANGES.iter().enumerate() {
            sh[range.clone()].copy_from_slice(self.sh[b].decode(r.sh[b]));
        }
        Gaussian {
            pos,
            scale,
            rot,
            opacity: r.opacity_q as f32 / 255.0,
            sh,
        }
    }
}

/// SH float ranges of bands 1–3 in the 48-float coefficient array.
pub const SH_BAND_RANGES: [std::ops::Range<usize>; 3] = [3..12, 12..27, 27..48];

// --- feature extraction -----------------------------------------------------

fn scale_feature(g: &Gaussian) -> [f32; 3] {
    // Log-space clusters multiplicative scale variation far better.
    [g.scale.x.ln(), g.scale.y.ln(), g.scale.z.ln()]
}

pub(crate) fn scale_from_feature(f: &[f32]) -> Vec3 {
    Vec3::new(f[0].exp(), f[1].exp(), f[2].exp())
}

fn rot_feature(g: &Gaussian) -> [f32; 4] {
    // Canonical sign: q and −q are the same rotation.
    let q = g.rot.normalized();
    let s = if q.w < 0.0 { -1.0 } else { 1.0 };
    [q.w * s, q.x * s, q.y * s, q.z * s]
}

/// The trained quantizer output: coarse half kept raw, fine half as indices.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantizedCloud {
    /// Uncompressed first half per Gaussian: position + max scale
    /// (paper Fig. 8, "uncompressed data for coarse-grained filter").
    pub coarse: Vec<(Vec3, f32)>,
    /// Compressed second half per Gaussian.
    pub records: Vec<QuantRecord>,
    /// On-chip codebooks.
    pub codebooks: FeatureCodebooks,
}

/// Trains codebooks and encodes a cloud.
#[derive(Clone, Debug, Default)]
pub struct GaussianQuantizer;

impl GaussianQuantizer {
    /// Trains per-feature codebooks on `cloud` and encodes every Gaussian.
    ///
    /// Codebook sizes are clamped to the number of Gaussians.
    pub fn train(cloud: &GaussianCloud, cfg: &VqConfig) -> QuantizedCloud {
        let n = cloud.len();
        let stride = (n / cfg.max_samples.max(1)).max(1);

        let mut scale_data = Vec::new();
        let mut rot_data = Vec::new();
        let mut dc_data = Vec::new();
        let mut sh_data: [Vec<f32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (i, g) in cloud.iter().enumerate() {
            if i % stride != 0 {
                continue;
            }
            scale_data.extend_from_slice(&scale_feature(g));
            rot_data.extend_from_slice(&rot_feature(g));
            dc_data.extend_from_slice(&g.sh[0..3]);
            for (b, range) in SH_BAND_RANGES.iter().enumerate() {
                sh_data[b].extend_from_slice(&g.sh[range.clone()]);
            }
        }

        let codebooks = FeatureCodebooks {
            scale: Codebook::train(&scale_data, 3, cfg.scale_entries, cfg.iters, cfg.seed),
            rot: Codebook::train(&rot_data, 4, cfg.rot_entries, cfg.iters, cfg.seed + 1),
            dc: Codebook::train(&dc_data, 3, cfg.dc_entries, cfg.iters, cfg.seed + 2),
            sh: [
                Codebook::train(&sh_data[0], 9, cfg.sh_entries, cfg.iters, cfg.seed + 3),
                Codebook::train(&sh_data[1], 15, cfg.sh_entries, cfg.iters, cfg.seed + 4),
                Codebook::train(&sh_data[2], 21, cfg.sh_entries, cfg.iters, cfg.seed + 5),
            ],
        };

        let mut out = QuantizedCloud {
            coarse: Vec::with_capacity(n),
            records: Vec::with_capacity(n),
            codebooks,
        };
        for g in cloud {
            out.coarse.push((g.pos, g.max_scale()));
            out.records.push(out.encode_gaussian(g));
        }
        out
    }
}

impl QuantizedCloud {
    /// Encodes one Gaussian against the trained codebooks.
    pub fn encode_gaussian(&self, g: &Gaussian) -> QuantRecord {
        let (scale, _) = self.codebooks.scale.encode(&scale_feature(g));
        let (rot, _) = self.codebooks.rot.encode(&rot_feature(g));
        let (dc, _) = self.codebooks.dc.encode(&g.sh[0..3]);
        let mut sh = [0u32; 3];
        for (b, range) in SH_BAND_RANGES.iter().enumerate() {
            let (idx, _) = self.codebooks.sh[b].encode(&g.sh[range.clone()]);
            sh[b] = idx;
        }
        QuantRecord {
            scale,
            rot,
            dc,
            sh,
            // gs-lint: allow(D004) deliberate 8-bit quantization; clamp pins the value to [0, 255]
            opacity_q: (g.opacity.clamp(0.0, 1.0) * 255.0).round() as u8,
        }
    }

    /// Number of Gaussians.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Decodes Gaussian `i` (position and the coarse max-scale come from the
    /// uncompressed first half; everything else from the codebooks, via
    /// [`FeatureCodebooks::decode_record`]).
    pub fn decode_one(&self, i: usize) -> Gaussian {
        let (pos, _s_max) = self.coarse[i];
        self.codebooks.decode_record(pos, &self.records[i])
    }

    /// Decodes the whole cloud.
    pub fn decode(&self) -> GaussianCloud {
        (0..self.len()).map(|i| self.decode_one(i)).collect()
    }

    /// DRAM bytes of one Gaussian's *fine* (second-half) record.
    pub fn fine_bytes_per_gaussian(&self) -> u64 {
        self.codebooks.record_bytes()
    }

    /// Fraction of second-half traffic removed vs. the raw 220 B
    /// (paper: 92.3 %).
    pub fn fine_traffic_reduction(&self) -> f64 {
        1.0 - self.fine_bytes_per_gaussian() as f64 / gs_scene::gaussian::FINE_BYTES_RAW as f64
    }

    /// Total on-chip codebook bytes (paper budget: 250 KB).
    pub fn codebook_bytes(&self) -> u64 {
        self.codebooks.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scene::{SceneConfig, SceneKind};

    fn quantized() -> (GaussianCloud, QuantizedCloud) {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let q = GaussianQuantizer::train(&scene.trained, &VqConfig::tiny());
        (scene.trained, q)
    }

    #[test]
    fn decode_preserves_positions_exactly() {
        let (cloud, q) = quantized();
        let dec = q.decode();
        for (a, b) in cloud.iter().zip(dec.iter()) {
            assert_eq!(a.pos, b.pos, "positions are stored uncompressed");
        }
    }

    #[test]
    fn decode_approximates_parameters() {
        let (cloud, q) = quantized();
        let dec = q.decode();
        let mut scale_err = 0.0f64;
        let mut op_err = 0.0f64;
        for (a, b) in cloud.iter().zip(dec.iter()) {
            scale_err += ((a.scale - b.scale).length() / a.scale.length()) as f64;
            op_err += (a.opacity - b.opacity).abs() as f64;
        }
        scale_err /= cloud.len() as f64;
        op_err /= cloud.len() as f64;
        assert!(
            scale_err < 0.5,
            "relative scale error too high: {scale_err}"
        );
        assert!(op_err < 0.01, "opacity error too high: {op_err}");
    }

    #[test]
    fn index_record_bytes_and_reduction() {
        // Tiny codebooks (≤256 entries) use 1-byte indices → 7 B records.
        let (_, q) = quantized();
        assert_eq!(q.fine_bytes_per_gaussian(), 7);
        assert!(q.fine_traffic_reduction() > 0.9);

        // Paper-sized codebooks use 2-byte indices → the 13 B record of
        // DESIGN.md §3.
        let paper = QuantizedCloud {
            coarse: Vec::new(),
            records: Vec::new(),
            codebooks: FeatureCodebooks {
                scale: Codebook::from_centroids(vec![0.0; 4096 * 3], 3),
                rot: Codebook::from_centroids(vec![0.0; 4096 * 4], 4),
                dc: Codebook::from_centroids(vec![0.0; 4096 * 3], 3),
                sh: [
                    Codebook::from_centroids(vec![0.0; 512 * 9], 9),
                    Codebook::from_centroids(vec![0.0; 512 * 15], 15),
                    Codebook::from_centroids(vec![0.0; 512 * 21], 21),
                ],
            },
        };
        assert_eq!(paper.fine_bytes_per_gaussian(), 13);
        let red = paper.fine_traffic_reduction();
        assert!(red > 0.92 && red < 0.96, "paper-size reduction {red}");
    }

    #[test]
    fn paper_size_codebooks_fit_250kb_budget() {
        // Synthetic check on table sizes only — no training needed.
        let cb = FeatureCodebooks {
            scale: Codebook::from_centroids(vec![0.0; 4096 * 3], 3),
            rot: Codebook::from_centroids(vec![0.0; 4096 * 4], 4),
            dc: Codebook::from_centroids(vec![0.0; 4096 * 3], 3),
            sh: [
                Codebook::from_centroids(vec![0.0; 512 * 9], 9),
                Codebook::from_centroids(vec![0.0; 512 * 15], 15),
                Codebook::from_centroids(vec![0.0; 512 * 21], 21),
            ],
        };
        let kb = cb.bytes() as f64 / 1024.0;
        assert!((250.0..260.0).contains(&kb), "codebooks = {kb} KB");
    }

    #[test]
    fn quantized_render_stays_close() {
        use gs_render::{RenderConfig, TileRenderer};
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let q = GaussianQuantizer::train(&scene.trained, &VqConfig::small());
        let dec = q.decode();
        let r = TileRenderer::new(RenderConfig::default());
        let cam = &scene.eval_cameras[0];
        let orig = r.render(&scene.trained, cam);
        let quant = r.render(&dec, cam);
        let psnr = quant.image.psnr(&orig.image);
        assert!(psnr > 22.0, "VQ damaged the render too much: {psnr} dB");
    }

    #[test]
    fn opacity_quantization_roundtrip() {
        let (cloud, q) = quantized();
        for (g, r) in cloud.iter().zip(&q.records) {
            let back = r.opacity_q as f32 / 255.0;
            assert!((back - g.opacity).abs() <= 0.5 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn record_byte_codec_roundtrips() {
        let (_, q) = quantized();
        let mut buf = Vec::new();
        for r in &q.records {
            buf.clear();
            q.codebooks.write_record(r, &mut buf);
            assert_eq!(buf.len() as u64, q.codebooks.record_bytes());
            assert_eq!(q.codebooks.read_record(&buf), *r);
        }
    }

    #[test]
    #[should_panic(expected = "overflows its 2-byte record slot")]
    fn oversized_index_panics_instead_of_truncating() {
        let (_, q) = quantized();
        let mut r = q.records[0];
        r.scale = 70_000; // cannot fit any supported index width
        let mut buf = Vec::new();
        // Must panic: silently writing `r.scale as u16` would truncate and
        // break the codec's losslessness guarantee.
        let wide = FeatureCodebooks {
            scale: Codebook::from_centroids(vec![0.0; 512 * 3], 3),
            ..q.codebooks.clone()
        };
        wide.write_record(&r, &mut buf);
    }

    #[test]
    fn every_constructible_codebook_width_is_codec_supported() {
        // `index_bytes` promises 1 or 2 for any entry count — the width
        // asserts in write_record/read_record guard the day that changes.
        for entries in [1usize, 256, 257, 4096, 65_536, 70_000] {
            let cb = Codebook::from_centroids(vec![0.0; entries], 1);
            assert!(
                matches!(cb.index_bytes(), 1 | 2),
                "codebook with {entries} entries reports unsupported width"
            );
        }
    }

    #[test]
    fn decode_record_matches_decode_one() {
        let (_, q) = quantized();
        for i in 0..q.len() {
            let (pos, _) = q.coarse[i];
            assert_eq!(
                q.codebooks.decode_record(pos, &q.records[i]),
                q.decode_one(i)
            );
        }
    }

    #[test]
    fn records_are_deterministic() {
        let scene = SceneKind::Palace.build(&SceneConfig::tiny());
        let a = GaussianQuantizer::train(&scene.trained, &VqConfig::tiny());
        let b = GaussianQuantizer::train(&scene.trained, &VqConfig::tiny());
        assert_eq!(a.records, b.records);
    }
}
