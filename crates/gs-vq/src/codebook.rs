//! A trained codebook: centroid table plus encode/decode.

use crate::kmeans::{kmeans, nearest};
use serde::{Deserialize, Serialize};

/// A `k × dim` centroid table. The accelerator keeps these in on-chip SRAM
/// (paper: 250 KB codebook buffer) while DRAM stores only indices.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Codebook {
    centroids: Vec<f32>,
    dim: usize,
}

impl Codebook {
    /// Trains a codebook on `data` (`n × dim` row-major) with `k` entries.
    pub fn train(data: &[f32], dim: usize, k: usize, iters: usize, seed: u64) -> Codebook {
        let r = kmeans(data, dim, k, iters, seed);
        Codebook {
            centroids: r.centroids,
            dim: r.dim,
        }
    }

    /// Builds a codebook from raw centroids.
    ///
    /// # Panics
    ///
    /// Panics when `centroids.len()` is not a multiple of `dim`.
    pub fn from_centroids(centroids: Vec<f32>, dim: usize) -> Codebook {
        assert!(
            dim > 0 && centroids.len().is_multiple_of(dim),
            "centroid shape mismatch"
        );
        Codebook { centroids, dim }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.centroids.len() / self.dim
    }

    /// `true` when the codebook has no entries.
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The raw `len() × dim` centroid table, row-major (e.g. for
    /// serializing a trained codebook into a scene file).
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Encodes `v` to its nearest entry, returning `(index, squared error)`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != dim`.
    pub fn encode(&self, v: &[f32]) -> (u32, f32) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        nearest(&self.centroids, self.dim, v)
    }

    /// Decodes entry `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn decode(&self, index: u32) -> &[f32] {
        let i = index as usize;
        &self.centroids[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable access to entry `index` (quantization-aware fine-tuning
    /// updates centroids in place).
    pub fn entry_mut(&mut self, index: u32) -> &mut [f32] {
        let i = index as usize;
        &mut self.centroids[i * self.dim..(i + 1) * self.dim]
    }

    /// On-chip bytes this codebook occupies (f32 entries).
    pub fn bytes(&self) -> u64 {
        self.centroids.len() as u64 * 4
    }

    /// Bytes of one stored index in DRAM (u16 for ≤ 65536 entries).
    pub fn index_bytes(&self) -> u64 {
        if self.len() <= 256 {
            1
        } else {
            2
        }
    }

    /// Mean squared encode error over a dataset.
    pub fn distortion(&self, data: &[f32]) -> f64 {
        assert_eq!(data.len() % self.dim, 0);
        let n = data.len() / self.dim;
        if n == 0 {
            return 0.0;
        }
        let mut acc = 0.0f64;
        for i in 0..n {
            let (_, e) = self.encode(&data[i * self.dim..(i + 1) * self.dim]);
            acc += e as f64;
        }
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_data() -> Vec<f32> {
        let mut d = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                d.push(i as f32);
                d.push(j as f32);
            }
        }
        d
    }

    #[test]
    fn encode_decode_roundtrip_on_centroid() {
        let cb = Codebook::from_centroids(vec![1.0, 2.0, 5.0, 6.0], 2);
        let (i, e) = cb.encode(&[5.1, 5.9]);
        assert_eq!(i, 1);
        assert!(e < 0.1);
        assert_eq!(cb.decode(1), &[5.0, 6.0]);
    }

    #[test]
    fn trained_codebook_reduces_distortion() {
        let data = grid_data();
        let small = Codebook::train(&data, 2, 2, 10, 1);
        let large = Codebook::train(&data, 2, 16, 10, 1);
        assert!(large.distortion(&data) < small.distortion(&data));
    }

    #[test]
    fn bytes_accounting() {
        let cb = Codebook::from_centroids(vec![0.0; 512 * 4], 4);
        assert_eq!(cb.len(), 512);
        assert_eq!(cb.bytes(), 512 * 4 * 4);
        assert_eq!(cb.index_bytes(), 2);
        let tiny = Codebook::from_centroids(vec![0.0; 16 * 4], 4);
        assert_eq!(tiny.index_bytes(), 1);
    }

    #[test]
    fn entry_mut_updates_decoding() {
        let mut cb = Codebook::from_centroids(vec![0.0, 0.0, 1.0, 1.0], 2);
        cb.entry_mut(0)[0] = 7.0;
        assert_eq!(cb.decode(0), &[7.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn encode_wrong_dim_panics() {
        let cb = Codebook::from_centroids(vec![0.0, 0.0], 2);
        let _ = cb.encode(&[1.0]);
    }
}
