//! Seeded k-means with k-means++ initialization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a clustering run.
#[derive(Clone, Debug, PartialEq)]
pub struct KmeansResult {
    /// `k × dim` centroids, row-major.
    pub centroids: Vec<f32>,
    /// Vector dimensionality.
    pub dim: usize,
    /// Number of centroids.
    pub k: usize,
    /// Mean squared distance after the final iteration.
    pub distortion: f64,
    /// Distortion after each Lloyd iteration (monotone non-increasing).
    pub history: Vec<f64>,
}

/// Runs k-means++ followed by `iters` Lloyd iterations on `data`
/// (`n × dim` row-major). Returns `k.min(n)` centroids.
///
/// Deterministic in `(data, k, iters, seed)`.
///
/// # Panics
///
/// Panics when `dim == 0`, `data.len()` is not a multiple of `dim`, or the
/// data is empty.
///
/// ```
/// use gs_vq::kmeans;
/// // Two well-separated 1-D clusters.
/// let data = [0.0_f32, 0.1, 0.2, 10.0, 10.1, 10.2];
/// let r = kmeans(&data, 1, 2, 10, 42);
/// let mut c = vec![r.centroids[0], r.centroids[1]];
/// c.sort_by(f32::total_cmp);
/// assert!((c[0] - 0.1).abs() < 0.05 && (c[1] - 10.1).abs() < 0.05);
/// ```
pub fn kmeans(data: &[f32], dim: usize, k: usize, iters: usize, seed: u64) -> KmeansResult {
    assert!(dim > 0, "dimension must be positive");
    assert!(!data.is_empty(), "cannot cluster empty data");
    assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
    let n = data.len() / dim;
    let k = k.min(n).max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b6d_6561);

    let mut centroids = init_pp(data, dim, n, k, &mut rng);
    let mut assignment = vec![0u32; n];
    let mut history = Vec::with_capacity(iters);
    let mut distortion = assign(data, dim, n, &centroids, k, &mut assignment);

    for _ in 0..iters {
        update(data, dim, n, &assignment, k, &mut centroids, &mut rng);
        distortion = assign(data, dim, n, &centroids, k, &mut assignment);
        history.push(distortion);
    }
    KmeansResult {
        centroids,
        dim,
        k,
        distortion,
        history,
    }
}

fn dist2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++ seeding: first centroid uniform, then proportional to D².
fn init_pp(data: &[f32], dim: usize, n: usize, k: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(&data[first * dim..(first + 1) * dim]);

    let mut best_d2 = vec![f32::INFINITY; n];
    while centroids.len() < k * dim {
        let last = &centroids[centroids.len() - dim..];
        let mut total = 0.0f64;
        for i in 0..n {
            let d = dist2(&data[i * dim..(i + 1) * dim], last);
            if d < best_d2[i] {
                best_d2[i] = d;
            }
            total += best_d2[i] as f64;
        }
        let pick = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, d) in best_d2.iter().enumerate() {
                target -= *d as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.extend_from_slice(&data[pick * dim..(pick + 1) * dim]);
    }
    centroids
}

fn assign(
    data: &[f32],
    dim: usize,
    n: usize,
    centroids: &[f32],
    k: usize,
    assignment: &mut [u32],
) -> f64 {
    let mut total = 0.0f64;
    for i in 0..n {
        let v = &data[i * dim..(i + 1) * dim];
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..k {
            let d = dist2(v, &centroids[c * dim..(c + 1) * dim]);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        assignment[i] = best as u32;
        total += best_d as f64;
    }
    total / n as f64
}

fn update(
    data: &[f32],
    dim: usize,
    n: usize,
    assignment: &[u32],
    k: usize,
    centroids: &mut [f32],
    rng: &mut StdRng,
) {
    let mut counts = vec![0u32; k];
    let mut sums = vec![0f64; k * dim];
    for i in 0..n {
        let c = assignment[i] as usize;
        counts[c] += 1;
        for d in 0..dim {
            sums[c * dim + d] += data[i * dim + d] as f64;
        }
    }
    for c in 0..k {
        if counts[c] == 0 {
            // Re-seed empty clusters at a random data point.
            let pick = rng.gen_range(0..n);
            centroids[c * dim..(c + 1) * dim].copy_from_slice(&data[pick * dim..(pick + 1) * dim]);
        } else {
            for d in 0..dim {
                centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
            }
        }
    }
}

/// Nearest-centroid lookup used by encoders. Returns `(index, squared err)`.
pub fn nearest(centroids: &[f32], dim: usize, v: &[f32]) -> (u32, f32) {
    debug_assert_eq!(v.len(), dim);
    let k = centroids.len() / dim;
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..k {
        let d = dist2(v, &centroids[c * dim..(c + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best as u32, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_clusters() {
        let mut data = Vec::new();
        for i in 0..50 {
            data.extend_from_slice(&[0.0 + 0.01 * i as f32, 1.0]);
            data.extend_from_slice(&[5.0 + 0.01 * i as f32, -1.0]);
        }
        let r = kmeans(&data, 2, 2, 15, 7);
        assert_eq!(r.k, 2);
        let c0 = &r.centroids[0..2];
        let c1 = &r.centroids[2..4];
        let (lo, hi) = if c0[0] < c1[0] { (c0, c1) } else { (c1, c0) };
        assert!((lo[0] - 0.245).abs() < 0.1, "lo {lo:?}");
        assert!((hi[0] - 5.245).abs() < 0.1, "hi {hi:?}");
    }

    #[test]
    fn distortion_is_monotone_nonincreasing() {
        let mut data = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            data.push(rng.gen::<f32>() * 10.0);
            data.push(rng.gen::<f32>() * 10.0);
            data.push(rng.gen::<f32>() * 10.0);
        }
        let r = kmeans(&data, 3, 16, 12, 11);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "distortion increased: {w:?}");
        }
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let data = [1.0f32, 2.0, 3.0, 4.0];
        let r = kmeans(&data, 2, 10, 5, 1);
        assert_eq!(r.k, 2);
        assert!(r.distortion < 1e-9);
    }

    #[test]
    fn deterministic_in_seed() {
        let data: Vec<f32> = (0..90).map(|i| (i * 37 % 23) as f32).collect();
        let a = kmeans(&data, 3, 4, 8, 5);
        let b = kmeans(&data, 3, 4, 8, 5);
        assert_eq!(a.centroids, b.centroids);
        let c = kmeans(&data, 3, 4, 8, 6);
        assert!(c.centroids != a.centroids || c.distortion == a.distortion);
    }

    #[test]
    fn more_centroids_lower_distortion() {
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<f32> = (0..600).map(|_| rng.gen::<f32>()).collect();
        let d4 = kmeans(&data, 2, 4, 10, 1).distortion;
        let d32 = kmeans(&data, 2, 32, 10, 1).distortion;
        assert!(d32 < d4);
    }

    #[test]
    fn nearest_finds_exact_centroid() {
        let centroids = [0.0f32, 0.0, 10.0, 10.0];
        let (i, d) = nearest(&centroids, 2, &[9.8, 10.1]);
        assert_eq!(i, 1);
        assert!(d < 0.1);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn bad_shape_panics() {
        let _ = kmeans(&[1.0, 2.0, 3.0], 2, 2, 1, 0);
    }
}
