//! Property-based round-trips for the tier-aware record codecs (ISSUE 9):
//! for **every** tier degree, encode → decode must equal the SH-truncated
//! source bit-for-bit, and tier 0 must be lossless (identical bytes and
//! identical decode to the full-quality codec).

use std::sync::OnceLock;

use gs_core::vec::Vec3;
use gs_scene::gaussian::FINE_BYTES_RAW;
use gs_scene::{Gaussian, SceneConfig, SceneKind};
use gs_vq::quantizer::{GaussianQuantizer, QuantRecord, VqConfig};
use gs_vq::tier::{
    decode_vq_tier_record, expand_raw_record, raw_tier_bytes, read_vq_tier_record,
    truncate_raw_record, truncate_sh, vq_tier_bytes, write_vq_tier_record, MAX_SH_DEGREE,
};
use gs_vq::QuantizedCloud;
use proptest::prelude::*;

/// Codebooks trained once on a small deterministic scene; the proptests
/// exercise them with arbitrary in-range index records.
fn trained() -> &'static QuantizedCloud {
    static Q: OnceLock<QuantizedCloud> = OnceLock::new();
    Q.get_or_init(|| {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        GaussianQuantizer::train(&scene.trained, &VqConfig::tiny())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raw tier codec: at every degree, truncate → expand → decode equals
    /// the SH-truncated canonical decode of the full record; at degree 3
    /// the tier bytes are the full record verbatim.
    #[test]
    fn raw_tier_roundtrip_equals_truncated_source(
        p in proptest::collection::vec(-4.0f32..4.0, 3..4),
        s in proptest::collection::vec(0.01f32..2.0, 3..4),
        q in proptest::collection::vec(-1.0f32..1.0, 4..5),
        op in 0.0f32..1.0,
        sh_raw in proptest::collection::vec(-1.5f32..1.5, 48..49),
    ) {
        let norm = (q[0] * q[0] + q[1] * q[1] + q[2] * q[2] + q[3] * q[3]).sqrt();
        prop_assume!(norm > 1e-3);
        let mut sh = [0.0f32; 48];
        sh.copy_from_slice(&sh_raw);
        let g = Gaussian {
            pos: Vec3::new(p[0], p[1], p[2]),
            scale: Vec3::new(s[0], s[1], s[2]),
            rot: gs_core::Quat::new(q[0], q[1], q[2], q[3]).normalized(),
            opacity: op,
            sh,
        };
        let coarse = g.coarse_record();
        let (rec, tag) = g.fine_record();
        // Canonical full-quality decode (the baseline every tier truncates).
        let full = Gaussian::from_split_record(&coarse, &rec, tag);
        let mut tier = Vec::new();
        let mut expanded = [0u8; FINE_BYTES_RAW];
        for d in 0..=MAX_SH_DEGREE {
            tier.clear();
            truncate_raw_record(&rec, d, &mut tier);
            prop_assert_eq!(tier.len() as u64, raw_tier_bytes(d));
            expand_raw_record(&tier, &mut expanded);
            let dec = Gaussian::from_split_record(&coarse, &expanded, tag);
            prop_assert_eq!(dec, truncate_sh(full.clone(), d));
        }
        // Tier 0 is lossless: identical bytes, not merely identical decode.
        tier.clear();
        truncate_raw_record(&rec, MAX_SH_DEGREE, &mut tier);
        prop_assert_eq!(tier.as_slice(), rec.as_slice());
    }

    /// VQ tier codec: arbitrary in-range index records round-trip through
    /// every tier's byte image, and the tier decode equals the SH-truncated
    /// full decode.
    #[test]
    fn vq_tier_roundtrip_equals_truncated_source(
        feat_idx in proptest::collection::vec(0u32..u32::MAX, 3..4),
        sh_idx in proptest::collection::vec(0u32..u32::MAX, 3..4),
        opacity_raw in 0u32..256,
        px in -3.0f32..3.0,
    ) {
        let q = trained();
        let cb = &q.codebooks;
        let r = QuantRecord {
            scale: feat_idx[0] % cb.scale.len() as u32,
            rot: feat_idx[1] % cb.rot.len() as u32,
            dc: feat_idx[2] % cb.dc.len() as u32,
            sh: [
                sh_idx[0] % cb.sh[0].len() as u32,
                sh_idx[1] % cb.sh[1].len() as u32,
                sh_idx[2] % cb.sh[2].len() as u32,
            ],
            // gs-lint: allow(D004) lossless: opacity_raw is drawn from 0..256
            opacity_q: opacity_raw as u8,
        };
        let pos = Vec3::new(px, -px, 0.5 * px);
        let full = cb.decode_record(pos, &r);
        let mut buf = Vec::new();
        for d in 0..=MAX_SH_DEGREE {
            buf.clear();
            write_vq_tier_record(cb, d, &r, &mut buf);
            prop_assert_eq!(buf.len() as u64, vq_tier_bytes(cb, d));
            let back = read_vq_tier_record(cb, d, &buf);
            // Indices of kept bands survive bit-exactly; truncated bands
            // read back as zero (the decoder never consults them).
            prop_assert_eq!(back.scale, r.scale);
            prop_assert_eq!(back.rot, r.rot);
            prop_assert_eq!(back.dc, r.dc);
            for b in 0..3 {
                let expect = if b < d as usize { r.sh[b] } else { 0 };
                prop_assert_eq!(back.sh[b], expect);
            }
            prop_assert_eq!(back.opacity_q, r.opacity_q);
            let dec = decode_vq_tier_record(cb, d, pos, &back);
            prop_assert_eq!(dec, truncate_sh(full.clone(), d));
        }
        // Tier 0 bytes are the full-quality record codec verbatim.
        buf.clear();
        write_vq_tier_record(cb, MAX_SH_DEGREE, &r, &mut buf);
        let mut full_bytes = Vec::new();
        cb.write_record(&r, &mut full_bytes);
        prop_assert_eq!(buf, full_bytes);
    }
}
