//! Property-based tests for vector quantization.

use gs_vq::kmeans::{kmeans, nearest};
use gs_vq::Codebook;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_error_bounded_by_worst_pair_distance(
        data in proptest::collection::vec(-10.0f32..10.0, 8..120),
    ) {
        // 1-D clustering: the encode error of any *training* point can never
        // exceed the squared span of the data.
        let cb = Codebook::train(&data, 1, 8, 6, 7);
        let span = {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for v in &data {
                lo = lo.min(*v);
                hi = hi.max(*v);
            }
            hi - lo
        };
        for v in &data {
            let (_, err) = cb.encode(std::slice::from_ref(v));
            prop_assert!(err <= span * span + 1e-3);
        }
    }

    #[test]
    fn nearest_is_argmin(
        centroids in proptest::collection::vec(-5.0f32..5.0, 4..40),
        q0 in -5.0f32..5.0,
        q1 in -5.0f32..5.0,
    ) {
        prop_assume!(centroids.len() % 2 == 0);
        let (idx, err) = nearest(&centroids, 2, &[q0, q1]);
        // Exhaustively verify the reported index minimizes distance.
        let k = centroids.len() / 2;
        for c in 0..k {
            let dx = centroids[2 * c] - q0;
            let dy = centroids[2 * c + 1] - q1;
            let d = dx * dx + dy * dy;
            prop_assert!(d + 1e-6 >= err, "centroid {c} beats reported {idx}");
        }
    }

    #[test]
    fn kmeans_distortion_never_exceeds_singleton_solution(
        data in proptest::collection::vec(-3.0f32..3.0, 12..90),
    ) {
        prop_assume!(data.len() % 3 == 0);
        // k ≥ 2 must be at least as good as the best single centroid (the
        // mean), because Lloyd iterations only improve the objective.
        let k1 = kmeans(&data, 3, 1, 12, 3);
        let k4 = kmeans(&data, 3, 4, 12, 3);
        prop_assert!(k4.distortion <= k1.distortion + 1e-6);
    }

    #[test]
    fn decode_returns_exact_centroid(entries in proptest::collection::vec(-2.0f32..2.0, 6..60)) {
        prop_assume!(entries.len() % 3 == 0);
        let cb = Codebook::from_centroids(entries.clone(), 3);
        for i in 0..cb.len() {
            let dec = cb.decode(i as u32);
            prop_assert_eq!(dec, &entries[i * 3..(i + 1) * 3]);
            // Encoding a centroid returns an equally-near entry (zero error).
            let (_, err) = cb.encode(dec);
            prop_assert!(err <= 1e-12);
        }
    }
}
