//! Workspace lint driver: `cargo run -p gs-lint`.
//!
//! Walks every `.rs` file under `crates/` and `src/` at the workspace
//! root (skipping `target/` and `vendor/` — vendored stubs are not ours
//! to lint), runs the [`gs_lint::Analyzer`], prints the human report,
//! and emits a single machine-readable `LINT_JSON` line for CI to
//! persist. Exit status is nonzero on any violation (unjustified allows
//! included) or unreadable file.

use std::path::{Path, PathBuf};

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn main() {
    // `cargo run -p gs-lint` may be invoked from any directory; anchor on
    // this crate's manifest (crates/gs-lint) and walk up to the root.
    let root = match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.ancestors().nth(2).map_or(p.clone(), Path::to_path_buf)
        }
        None => PathBuf::from("."),
    };
    let mut files: Vec<PathBuf> = Vec::new();
    for sub in ["crates", "src"] {
        collect_rs(&root.join(sub), &mut files);
    }
    files.sort();

    let mut analyzer = gs_lint::Analyzer::new();
    let mut unreadable = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(file) {
            Ok(src) => analyzer.add_file(&rel, &src),
            Err(e) => {
                eprintln!("gs-lint: cannot read {rel}: {e}");
                unreadable += 1;
            }
        }
    }
    let report = analyzer.finish();
    print!("{}", report.human());
    println!("{}", report.json_line());
    if !report.ok() || unreadable > 0 {
        std::process::exit(1);
    }
}
