//! `gs-lint` — a pure-std static-analysis pass over the workspace sources
//! that enforces the project's determinism & robustness contract at the
//! source level, where the dynamic exactness suites cannot see a hazard
//! until a scene happens to trigger it.
//!
//! The analyzer tokenizes every `.rs` file (it never executes or expands
//! anything) and checks six project-specific rules that clippy cannot
//! express:
//!
//! | rule | hazard |
//! |------|--------|
//! | D001 | unordered `HashMap`/`HashSet` iteration in render/streaming/store/mem modules |
//! | D002 | panic-family calls (`unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`) in non-test library code outside documented panicking wrappers |
//! | D003 | lock-order cycles in the static acquisition graph (`.lock()`/`.read()`/`.write()`/`lock_unpoisoned`) |
//! | D004 | narrowing `as` casts in the serialization/format modules |
//! | D005 | wall clock (`Instant::now`/`SystemTime`) or `thread::spawn` outside `gs-bench` and the `WorkerPool` internals |
//! | D006 | float accumulation in reduction loops outside the blessed blend kernels (docs/DETERMINISM.md) |
//!
//! A violation can be suppressed only by an inline
//! `// gs-lint: allow(D00x) <reason>` comment on the same line or the
//! line directly above. An allow without a reason suppresses the target
//! but is itself reported (rule `A000`), so the zero-violation gate
//! stays red. See `docs/LINT_RULES.md` for the full catalog.
//!
//! The library is deliberately panic-free: it is linted by itself (and by
//! the workspace-wide `clippy::unwrap_used`/`expect_used` deny).

use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

/// Token classes the rules care about. Literal *content* is opaque to every
/// rule (a doc example or fixture string can never trip a lint).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    Ident,
    Punct,
    Num,
    Str,
    Char,
    Life,
}

/// One source token with its starting line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block). `line..=end_line` is the physical span;
/// allow directives anchor at `end_line` so a directive directly above a
/// statement covers it.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
}

/// Tokenizes Rust source into rule-relevant tokens plus the comment list.
/// Handles nested block comments, (raw/byte) string literals, char
/// literals vs lifetimes, and numeric literals. Never panics; on malformed
/// input it degrades to single-char punct tokens.
pub fn tokenize(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks: Vec<Tok> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (including `///` and `//!`).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            comments.push(Comment {
                line,
                end_line: line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                end_line: line,
                text: chars[start..i.min(n)].iter().collect(),
            });
            continue;
        }
        // Raw / byte string forms: r"..", r#".."#, b"..", br#".."#.
        if (c == 'r' || c == 'b') && looks_like_string_prefix(&chars, i) {
            let start_line = line;
            let (end, nl) = lex_prefixed_string(&chars, i, line);
            toks.push(Tok {
                kind: TokKind::Str,
                text: chars[i..end.min(n)].iter().collect(),
                line: start_line,
            });
            line = nl;
            i = end;
            continue;
        }
        if c == '"' {
            let start_line = line;
            let (end, nl) = lex_quoted(&chars, i, line);
            toks.push(Tok {
                kind: TokKind::Str,
                text: chars[i..end.min(n)].iter().collect(),
                line: start_line,
            });
            line = nl;
            i = end;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: scan to the closing quote.
                let start = i;
                let mut j = i + 2;
                if j < n {
                    j += 1; // the escaped char itself
                }
                while j < n && chars[j] != '\'' && chars[j] != '\n' {
                    j += 1;
                }
                let end = (j + 1).min(n);
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: chars[start..end].iter().collect(),
                    line,
                });
                i = end;
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: chars[i..i + 3].iter().collect(),
                    line,
                });
                i += 3;
                continue;
            }
            if i + 1 < n && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_') {
                let start = i;
                let mut j = i + 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Life,
                    text: chars[start..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            toks.push(Tok {
                kind: TokKind::Punct,
                text: "'".into(),
                line,
            });
            i += 1;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i + 1;
            while j < n {
                let d = chars[j];
                if d.is_ascii_alphanumeric()
                    || d == '_'
                    || (d == '.' && j + 1 < n && chars[j + 1].is_ascii_digit())
                {
                    j += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i + 1;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // `::` is the one multi-char punct the rules pattern-match on.
        if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: "::".into(),
                line,
            });
            i += 2;
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    (toks, comments)
}

/// True when `chars[i..]` starts a raw/byte string prefix (`r"`, `r#`,
/// `b"`, `br"`, `br#`) rather than a plain identifier.
fn looks_like_string_prefix(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == '"' {
            return true; // b"…"
        }
    }
    if j < n && chars[j] == 'r' {
        j += 1;
        while j < n && chars[j] == '#' {
            j += 1;
        }
        return j < n && chars[j] == '"';
    }
    false
}

/// Lexes a raw/byte string starting at `i`; returns (end index, new line).
fn lex_prefixed_string(chars: &[char], i: usize, mut line: u32) -> (usize, u32) {
    let n = chars.len();
    let mut j = i;
    if j < n && chars[j] == 'b' {
        j += 1;
    }
    let raw = j < n && chars[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return (i + 1, line); // not actually a string; treat as one char
    }
    j += 1;
    if !raw {
        // b"…" — ordinary escapes apply.
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '"' => return (j + 1, line),
                '\n' => {
                    line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        return (n, line);
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    while j < n {
        if chars[j] == '\n' {
            line += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && seen < hashes && chars[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, line);
            }
        }
        j += 1;
    }
    (n, line)
}

/// Lexes a plain `"…"` string starting at `i`; returns (end index, line).
fn lex_quoted(chars: &[char], i: usize, mut line: u32) -> (usize, u32) {
    let n = chars.len();
    let mut j = i + 1;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '"' => return (j + 1, line),
            '\n' => {
                line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (n, line)
}

// ---------------------------------------------------------------------------
// Report types
// ---------------------------------------------------------------------------

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule id: `D001`..`D006`, or `A000` for a bad allow directive.
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub msg: String,
}

/// Aggregated result of a whole lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    pub files: usize,
    pub violations: Vec<Violation>,
    /// Allow directives that suppressed at least one violation.
    pub allows_used: usize,
    /// Allow directives missing a reason (each also appears as an `A000`
    /// violation).
    pub unjustified_allows: usize,
}

impl LintReport {
    /// The CI gate: zero violations (which implies zero unjustified
    /// allows, since those are violations too).
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-rule violation counts, every rule id always present.
    pub fn by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut m: BTreeMap<&'static str, usize> = [
            ("D001", 0),
            ("D002", 0),
            ("D003", 0),
            ("D004", 0),
            ("D005", 0),
            ("D006", 0),
            ("A000", 0),
        ]
        .into_iter()
        .collect();
        for v in &self.violations {
            *m.entry(v.rule).or_insert(0) += 1;
        }
        m
    }

    /// Human-readable report, one line per violation plus a summary.
    pub fn human(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            s.push_str(&format!("{}:{} [{}] {}\n", v.path, v.line, v.rule, v.msg));
        }
        let by = self.by_rule();
        let counts: Vec<String> = by.iter().map(|(r, c)| format!("{r}={c}")).collect();
        s.push_str(&format!(
            "gs-lint: {} file(s), {} violation(s) [{}], {} allow(s) used, {} unjustified allow(s)\n",
            self.files,
            self.violations.len(),
            counts.join(" "),
            self.allows_used,
            self.unjustified_allows,
        ));
        s
    }

    /// Machine-readable single-line summary for CI artifact persistence.
    pub fn json_line(&self) -> String {
        let by = self.by_rule();
        let rules: Vec<String> = by.iter().map(|(r, c)| format!("\"{r}\":{c}")).collect();
        format!(
            "LINT_JSON {{\"files\":{},\"violations\":{},\"by_rule\":{{{}}},\"allows_used\":{},\"unjustified_allows\":{},\"lint_ok\":{}}}",
            self.files,
            self.violations.len(),
            rules.join(","),
            self.allows_used,
            self.unjustified_allows,
            self.ok(),
        )
    }
}

// ---------------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Allow {
    rule: String,
    path: String,
    /// Anchor line: the comment's last physical line, so a directive on
    /// the line above a statement covers it.
    line: u32,
    justified: bool,
}

const RULE_IDS: [&str; 6] = ["D001", "D002", "D003", "D004", "D005", "D006"];

/// Parses `gs-lint: allow(D00x) <reason>` directives out of the comment
/// list. Malformed directives and unknown rule ids become `A000`
/// violations immediately.
fn parse_allows(path: &str, comments: &[Comment], out: &mut Vec<Violation>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // Directives live in plain `//` / `/* */` comments only; doc
        // comments merely *describe* the syntax.
        let t = c.text.trim_start();
        if t.starts_with("///")
            || t.starts_with("//!")
            || t.starts_with("/**")
            || t.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find("gs-lint:") else {
            continue;
        };
        let rest = c.text[at + "gs-lint:".len()..].trim_start();
        let Some(inner) = rest.strip_prefix("allow(") else {
            out.push(Violation {
                rule: "A000",
                path: path.to_string(),
                line: c.end_line,
                msg: "malformed gs-lint directive (expected `gs-lint: allow(D00x) <reason>`)"
                    .into(),
            });
            continue;
        };
        let Some(close) = inner.find(')') else {
            out.push(Violation {
                rule: "A000",
                path: path.to_string(),
                line: c.end_line,
                msg: "unterminated gs-lint allow directive".into(),
            });
            continue;
        };
        let rule = inner[..close].trim().to_string();
        if !RULE_IDS.contains(&rule.as_str()) {
            out.push(Violation {
                rule: "A000",
                path: path.to_string(),
                line: c.end_line,
                msg: format!("unknown rule `{rule}` in gs-lint allow directive"),
            });
            continue;
        }
        let mut reason = inner[close + 1..].trim();
        if let Some(stripped) = reason.strip_suffix("*/") {
            reason = stripped.trim();
        }
        let justified = !reason.is_empty();
        if !justified {
            out.push(Violation {
                rule: "A000",
                path: path.to_string(),
                line: c.end_line,
                msg: format!("allow({rule}) without a reason — state why the site is safe"),
            });
        }
        allows.push(Allow {
            rule,
            path: path.to_string(),
            line: c.end_line,
            justified,
        });
    }
    allows
}

// ---------------------------------------------------------------------------
// File classification & structural pre-passes
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Scope {
    crate_name: String,
    /// Test-class file: under `tests/`, `benches/`, `examples/`, or a
    /// `tests.rs` / `build.rs` leaf. Exempt from every code rule.
    is_test: bool,
    rel: String,
}

fn classify(path: &str) -> Scope {
    let rel = path.replace('\\', "/");
    let segs: Vec<&str> = rel.split('/').collect();
    let crate_name = segs
        .iter()
        .position(|s| *s == "crates")
        .and_then(|p| segs.get(p + 1))
        .map_or_else(|| "streaminggs".to_string(), |s| (*s).to_string());
    let leaf = segs.last().copied().unwrap_or("");
    let is_test = segs
        .iter()
        .any(|s| *s == "tests" || *s == "benches" || *s == "examples")
        || leaf == "tests.rs"
        || leaf == "build.rs";
    Scope {
        crate_name,
        is_test,
        rel,
    }
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Returns the token index just past the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        if is_punct(&toks[i], "{") {
            depth += 1;
        } else if is_punct(&toks[i], "}") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Token-index ranges of items gated behind `#[test]`, `#[bench]`, or any
/// `#[cfg(… test …)]` attribute (excluding `cfg(not(test))`).
fn test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(is_punct(&toks[i], "#") && i + 1 < toks.len() && is_punct(&toks[i + 1], "[")) {
            i += 1;
            continue;
        }
        // Scan the attribute contents to its matching `]`.
        let mut j = i + 2;
        let mut depth = 1i64;
        let mut has_test = false;
        let mut has_not = false;
        while j < toks.len() && depth > 0 {
            let t = &toks[j];
            if is_punct(t, "[") {
                depth += 1;
            } else if is_punct(t, "]") {
                depth -= 1;
            } else if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "test" | "bench" => has_test = true,
                    "not" => has_not = true,
                    _ => {}
                }
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j.max(i + 1);
            continue;
        }
        // The attribute gates the next item: everything up to the end of
        // the first braced block, or the first `;` if the item has none.
        let mut k = j;
        let mut end = j;
        while k < toks.len() {
            if is_punct(&toks[k], ";") {
                end = k + 1;
                break;
            }
            if is_punct(&toks[k], "{") {
                end = match_brace(toks, k);
                break;
            }
            k += 1;
        }
        if k >= toks.len() {
            end = toks.len();
        }
        out.push((i, end));
        i = end.max(i + 1);
    }
    out
}

fn in_ranges(i: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i < b)
}

#[derive(Clone, Debug)]
struct FnSpan {
    name: String,
    /// Line of the `fn` keyword.
    line: u32,
    /// Token range of the body, `{` inclusive .. past-`}` exclusive.
    body: (usize, usize),
    /// The doc comment block above the fn has a `# Panics` section:
    /// this is a *documented panicking wrapper*, exempt from D002.
    doc_panics: bool,
}

/// All function bodies, with `# Panics`-documented wrappers marked.
fn fn_spans(toks: &[Tok], comments: &[Comment]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(&toks[i], "fn") {
            i += 1;
            continue;
        }
        let name = toks
            .get(i + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map_or_else(String::new, |t| t.text.clone());
        let mut k = i + 1;
        let mut body = None;
        while k < toks.len() {
            if is_punct(&toks[k], ";") {
                break; // bodyless declaration (trait method, extern)
            }
            if is_punct(&toks[k], "{") {
                body = Some((k, match_brace(toks, k)));
                break;
            }
            k += 1;
        }
        if let Some(b) = body {
            spans.push(FnSpan {
                name,
                line: toks[i].line,
                body: b,
                doc_panics: false,
            });
            // Continue scanning *inside* the body too (nested fns), so do
            // not jump past it.
        }
        i += 1;
    }
    // Attach `# Panics` doc sections: a doc comment documents the first
    // fn that starts after it.
    for c in comments {
        let text = c.text.trim_start();
        if !(text.starts_with("///") && c.text.contains("# Panics")) {
            continue;
        }
        if let Some(f) = spans
            .iter_mut()
            .filter(|f| f.line > c.end_line)
            .min_by_key(|f| f.line)
        {
            f.doc_panics = true;
        }
    }
    spans
}

// ---------------------------------------------------------------------------
// Rules D001 / D002 / D004 / D005 / D006 (per-file)
// ---------------------------------------------------------------------------

const D001_CRATES: [&str; 5] = ["gs-render", "gs-voxel", "gs-mem", "gs-serve", "streaminggs"];
const D001_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

fn rule_d001(scope: &Scope, toks: &[Tok], tests: &[(usize, usize)], out: &mut Vec<Violation>) {
    if scope.is_test || !D001_CRATES.contains(&scope.crate_name.as_str()) {
        return;
    }
    // Pass 1: names bound to a HashMap/HashSet, via a `name: HashMap<…>`
    // annotation (field or let) or a `name = HashMap::new()`-style
    // constructor.
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") && i >= 2 {
            let before = &toks[i - 1];
            let named = &toks[i - 2];
            if (is_punct(before, ":") || is_punct(before, "=")) && named.kind == TokKind::Ident {
                hash_names.insert(named.text.as_str());
            }
        }
    }
    if hash_names.is_empty() {
        return;
    }
    // Pass 2: iteration over those names.
    for i in 0..toks.len() {
        if in_ranges(i, tests) {
            continue;
        }
        // `name.iter()` / `.keys()` / `.drain()` / …
        if is_punct(&toks[i], ".")
            && i >= 1
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && D001_METHODS.contains(&toks[i + 1].text.as_str())
            && is_punct(&toks[i + 2], "(")
            && toks[i - 1].kind == TokKind::Ident
            && hash_names.contains(toks[i - 1].text.as_str())
        {
            out.push(Violation {
                rule: "D001",
                path: scope.rel.clone(),
                line: toks[i + 1].line,
                msg: format!(
                    "unordered iteration: `{}.{}()` on a HashMap/HashSet — use a BTreeMap, \
                     a sorted snapshot, or an index-ordered structure",
                    toks[i - 1].text,
                    toks[i + 1].text
                ),
            });
        }
        // `for … in &name {` / `for … in name {`
        if is_ident(&toks[i], "for") {
            let mut j = i + 1;
            while j < toks.len() && !is_ident(&toks[j], "in") && !is_punct(&toks[j], "{") {
                j += 1;
            }
            if j < toks.len() && is_ident(&toks[j], "in") {
                let mut k = j + 1;
                while k < toks.len() && (is_punct(&toks[k], "&") || is_ident(&toks[k], "mut")) {
                    k += 1;
                }
                if k + 1 < toks.len()
                    && toks[k].kind == TokKind::Ident
                    && hash_names.contains(toks[k].text.as_str())
                    && is_punct(&toks[k + 1], "{")
                {
                    out.push(Violation {
                        rule: "D001",
                        path: scope.rel.clone(),
                        line: toks[k].line,
                        msg: format!(
                            "unordered iteration: `for … in {}` over a HashMap/HashSet",
                            toks[k].text
                        ),
                    });
                }
            }
        }
    }
}

fn rule_d002(
    scope: &Scope,
    toks: &[Tok],
    tests: &[(usize, usize)],
    fns: &[FnSpan],
    out: &mut Vec<Violation>,
) {
    if scope.is_test {
        return;
    }
    let panic_bodies: Vec<(usize, usize)> = fns
        .iter()
        .filter(|f| f.doc_panics)
        .map(|f| f.body)
        .collect();
    for i in 0..toks.len() {
        if in_ranges(i, tests) || in_ranges(i, &panic_bodies) {
            continue;
        }
        if is_punct(&toks[i], ".")
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && (toks[i + 1].text == "unwrap" || toks[i + 1].text == "expect")
            && is_punct(&toks[i + 2], "(")
        {
            out.push(Violation {
                rule: "D002",
                path: scope.rel.clone(),
                line: toks[i + 1].line,
                msg: format!(
                    "`.{}()` in library code — propagate the error, or document the wrapper \
                     with a `# Panics` section",
                    toks[i + 1].text
                ),
            });
        }
        if toks[i].kind == TokKind::Ident
            && matches!(toks[i].text.as_str(), "panic" | "todo" | "unimplemented")
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], "!")
        {
            out.push(Violation {
                rule: "D002",
                path: scope.rel.clone(),
                line: toks[i].line,
                msg: format!(
                    "`{}!` in library code outside a documented panicking wrapper",
                    toks[i].text
                ),
            });
        }
    }
}

const D004_FILES: [&str; 4] = [
    "crates/gs-voxel/src/store.rs",
    "crates/gs-mem/src/crc.rs",
    "crates/gs-vq/src/quantizer.rs",
    "crates/gs-vq/src/codebook.rs",
];
const D004_NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

fn d004_in_scope(rel: &str) -> bool {
    D004_FILES.iter().any(|f| rel.ends_with(f)) || rel.contains("gs-voxel/src/store/")
}

fn rule_d004(scope: &Scope, toks: &[Tok], tests: &[(usize, usize)], out: &mut Vec<Violation>) {
    if scope.is_test || !d004_in_scope(&scope.rel) {
        return;
    }
    for i in 0..toks.len() {
        if in_ranges(i, tests) {
            continue;
        }
        if is_ident(&toks[i], "as")
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && D004_NARROW.contains(&toks[i + 1].text.as_str())
        {
            out.push(Violation {
                rule: "D004",
                path: scope.rel.clone(),
                line: toks[i].line,
                msg: format!(
                    "`as {}` in a serialization/format module — a silent truncation corrupts \
                     the scene image; use `try_from`/`from` or justify the bound",
                    toks[i + 1].text
                ),
            });
        }
    }
}

fn rule_d005(scope: &Scope, toks: &[Tok], tests: &[(usize, usize)], out: &mut Vec<Violation>) {
    if scope.is_test
        || scope.crate_name == "gs-bench"
        || scope.rel.ends_with("gs-render/src/pool.rs")
    {
        return;
    }
    for i in 0..toks.len() {
        if in_ranges(i, tests) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let double_colon = |at: usize, name: &str| {
            at + 2 < toks.len() && is_punct(&toks[at + 1], "::") && is_ident(&toks[at + 2], name)
        };
        if toks[i].text == "Instant" && double_colon(i, "now") {
            out.push(Violation {
                rule: "D005",
                path: scope.rel.clone(),
                line: toks[i].line,
                msg: "`Instant::now()` outside gs-bench — wall clock makes output \
                      timing-dependent"
                    .into(),
            });
        }
        if toks[i].text == "SystemTime" {
            out.push(Violation {
                rule: "D005",
                path: scope.rel.clone(),
                line: toks[i].line,
                msg: "`SystemTime` outside gs-bench — wall clock makes output nondeterministic"
                    .into(),
            });
        }
        if toks[i].text == "thread" && double_colon(i, "spawn") {
            out.push(Violation {
                rule: "D005",
                path: scope.rel.clone(),
                line: toks[i].line,
                msg: "`thread::spawn` outside the WorkerPool — route parallelism through \
                      the pool so worker count stays a rendering-invariant"
                    .into(),
            });
        }
    }
}

/// Crates whose float-summation order is part of the determinism contract:
/// a reordered reduction changes output bytes, so every float accumulation
/// loop there must be a blessed blend kernel or carry a justified allow.
const D006_CRATES: [&str; 5] = [
    "gs-core",
    "gs-render",
    "gs-voxel",
    "gs-serve",
    "streaminggs",
];

/// The blessed blend kernels — the only functions permitted to `+=`-reduce
/// floats inside a loop without an inline allow. Each entry is
/// (workspace-relative path suffix, fn name); the list is mirrored (with
/// the *why*) in `docs/DETERMINISM.md`, so additions must touch both.
const D006_BLESSED: [(&str, &str); 4] = [
    ("gs-voxel/src/streaming.rs", "blend"),
    ("gs-voxel/src/streaming.rs", "blend_reference"),
    ("gs-render/src/rasterize.rs", "rasterize_tile"),
    ("gs-render/src/reference.rs", "rasterize_tile_reference"),
];

/// Float scalar/vector types whose bindings seed the D006 name set.
const D006_FLOAT_TYPES: [&str; 4] = ["f32", "f64", "Vec2", "Vec3"];

/// Token-index ranges of `for`/`while`/`loop` bodies (brace inclusive).
/// Braces nested in the loop *head* (closure bodies in iterator chains)
/// are skipped; `impl Trait for Type` is filtered out by requiring an
/// `in` keyword before a `for` body.
fn loop_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        let is_for = is_ident(t, "for");
        if !(is_for || is_ident(t, "while") || is_ident(t, "loop")) {
            continue;
        }
        let mut depth = 0i64;
        let mut seen_in = false;
        let mut j = i + 1;
        while j < toks.len() {
            let u = &toks[j];
            if is_punct(u, "(") || is_punct(u, "[") {
                depth += 1;
            } else if is_punct(u, ")") || is_punct(u, "]") {
                depth -= 1;
            } else if is_ident(u, "in") && depth == 0 {
                seen_in = true;
            } else if is_punct(u, "{") {
                if depth == 0 {
                    // `for` without `in` is `impl … for …` / an HRTB, not
                    // a loop; its brace is an item body, not a loop body.
                    if !is_for || seen_in {
                        out.push((j, match_brace(toks, j)));
                    }
                    break;
                }
                // Closure body inside the head: step over it whole.
                j = match_brace(toks, j);
                continue;
            } else if is_punct(u, ";") && depth == 0 {
                break;
            }
            j += 1;
        }
    }
    out
}

/// A float literal token: decimal point, `f32`/`f64` suffix, or exponent
/// form (`1e6` — the tokenizer splits `1e-3` into `1e`, `-`, `3`, so the
/// mantissa token still carries the `e`). The exponent test requires the
/// `e`/`E` to directly follow the digits with only digits after it, so
/// integer suffixes (`0usize`) and hex digits (`0xEE`) don't match.
fn is_float_lit(t: &Tok) -> bool {
    if t.kind != TokKind::Num {
        return false;
    }
    let s = t.text.as_str();
    if s.starts_with("0x") || s.starts_with("0X") {
        return false;
    }
    if s.contains('.') || s.contains("f32") || s.contains("f64") {
        return true;
    }
    let mantissa = s.trim_start_matches(|c: char| c.is_ascii_digit() || c == '_');
    let mut exp = mantissa.chars();
    matches!(exp.next(), Some('e' | 'E')) && exp.all(|c| c.is_ascii_digit() || c == '_')
}

/// Pass 1 of D006: names bound to a float scalar/vector, via a type
/// annotation (`acc: f32`, `out: &mut [Vec3]`, `color: Vec<Vec3>` — the
/// walk-back skips reference/container wrappers), a float-literal
/// initialization (`let mut acc = 0.0`, `= -0.5`, `= 1e6`), or a flat
/// tuple binding whose element carries a float literal
/// (`let (mut a, b) = (0.0f32, other)`).
fn d006_float_names(toks: &[Tok]) -> BTreeSet<&str> {
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && D006_FLOAT_TYPES.contains(&t.text.as_str()) {
            let mut j = i;
            while j > 0 {
                let u = &toks[j - 1];
                let wrapper = is_punct(u, "&")
                    || is_punct(u, "<")
                    || is_punct(u, "[")
                    || is_ident(u, "mut")
                    || is_ident(u, "Vec")
                    || is_ident(u, "Box")
                    || is_ident(u, "Arc");
                if !wrapper {
                    break;
                }
                j -= 1;
            }
            if j >= 2 && is_punct(&toks[j - 1], ":") && toks[j - 2].kind == TokKind::Ident {
                names.insert(toks[j - 2].text.as_str());
            }
        }
        // Inferred bindings: `acc = 1.0`, `= 1.0f32`, `= 1e6`, `= -0.5` —
        // the initializer literal types the name. (`+=` spells `+`, `=`
        // in this token stream and `==` spells `=`, `=`, so neither can
        // bind a name here: the token left of the `=` must be an ident.)
        if is_float_lit(t) && i >= 2 {
            let j = if is_punct(&toks[i - 1], "-") {
                i - 1
            } else {
                i
            };
            if j >= 2 && is_punct(&toks[j - 1], "=") && toks[j - 2].kind == TokKind::Ident {
                names.insert(toks[j - 2].text.as_str());
            }
        }
    }
    // Tuple-bound accumulators: `let (mut a, b) = (0.0, next())`. Flat
    // tuple patterns are matched positionally against the initializer
    // elements; a name binds when its element carries a float literal
    // anywhere (a conservative over-approximation — the name only
    // matters if it is later `+=`-reduced inside a loop). Nested
    // patterns are skipped: positional matching would misalign.
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if !is_ident(&toks[i], "let") || !is_punct(&toks[i + 1], "(") {
            i += 1;
            continue;
        }
        let mut pat_names: Vec<&str> = Vec::new();
        let mut j = i + 2;
        let mut flat = true;
        while j < toks.len() && !is_punct(&toks[j], ")") {
            let t = &toks[j];
            if is_punct(t, "(") || is_punct(t, "[") {
                flat = false;
                break;
            }
            if t.kind == TokKind::Ident && !is_ident(t, "mut") && !is_ident(t, "ref") {
                pat_names.push(t.text.as_str());
            }
            j += 1;
        }
        if !flat
            || j + 2 >= toks.len()
            || !is_punct(&toks[j + 1], "=")
            || !is_punct(&toks[j + 2], "(")
        {
            i += 1;
            continue;
        }
        let mut depth = 1i64;
        let mut elem = 0usize;
        let mut k = j + 3;
        while k < toks.len() && depth > 0 {
            let t = &toks[k];
            if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") {
                depth += 1;
            } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") {
                depth -= 1;
            } else if is_punct(t, ",") && depth == 1 {
                elem += 1;
            } else if is_float_lit(t) {
                if let Some(name) = pat_names.get(elem) {
                    names.insert(name);
                }
            }
            k += 1;
        }
        i = k;
    }
    names
}

fn rule_d006(
    scope: &Scope,
    toks: &[Tok],
    tests: &[(usize, usize)],
    fns: &[FnSpan],
    out: &mut Vec<Violation>,
) {
    if scope.is_test || !D006_CRATES.contains(&scope.crate_name.as_str()) {
        return;
    }
    let names = d006_float_names(toks);
    if names.is_empty() {
        return;
    }
    let loops = loop_ranges(toks);
    if loops.is_empty() {
        return;
    }
    let blessed: Vec<(usize, usize)> = fns
        .iter()
        .filter(|f| {
            D006_BLESSED
                .iter()
                .any(|(suffix, name)| scope.rel.ends_with(suffix) && f.name == *name)
        })
        .map(|f| f.body)
        .collect();
    for i in 0..toks.len() {
        // `+=` / `-=` arrive as two adjacent punct tokens.
        let op = if is_punct(&toks[i], "+") {
            "+"
        } else if is_punct(&toks[i], "-") {
            "-"
        } else {
            continue;
        };
        if i + 1 >= toks.len() || !is_punct(&toks[i + 1], "=") {
            continue;
        }
        if !in_ranges(i, &loops) || in_ranges(i, tests) || in_ranges(i, &blessed) {
            continue;
        }
        // Receiver base: the identifier left of the operator, stepping
        // back over index groups (`scores[i] +=`, `acc[p][q] +=`).
        let mut j = i;
        while j > 0 && is_punct(&toks[j - 1], "]") {
            let mut depth = 0i64;
            let mut k = j - 1;
            loop {
                if is_punct(&toks[k], "]") {
                    depth += 1;
                } else if is_punct(&toks[k], "[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            if depth != 0 {
                break;
            }
            j = k;
        }
        if j == 0 {
            continue;
        }
        let recv = &toks[j - 1];
        if recv.kind != TokKind::Ident || !names.contains(recv.text.as_str()) {
            continue;
        }
        out.push(Violation {
            rule: "D006",
            path: scope.rel.clone(),
            line: toks[i].line,
            msg: format!(
                "float accumulation: `{}` is `{}=`-reduced inside a loop — summation order \
                 is part of the determinism contract; keep reductions in the blessed blend \
                 kernels (docs/DETERMINISM.md) or justify the fixed order with an allow",
                recv.text, op
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule D003 (cross-file, per-crate lock-order graph)
// ---------------------------------------------------------------------------

const D003_METHODS: [&str; 3] = ["lock", "read", "write"];

#[derive(Clone, Debug)]
struct LockSeq {
    crate_name: String,
    path: String,
    fn_name: String,
    /// Acquisition order: (lock name, line).
    seq: Vec<(String, u32)>,
}

/// Per-function ordered lock-acquisition sequences. Zero-argument
/// `.lock()`/`.read()`/`.write()` calls (the zero-arg form distinguishes
/// sync primitives from `io::Read`/`io::Write`) plus `lock_unpoisoned(…)`
/// calls; the lock's name is the last path component of the receiver.
fn collect_locks(
    scope: &Scope,
    toks: &[Tok],
    fns: &[FnSpan],
    tests: &[(usize, usize)],
) -> Vec<LockSeq> {
    if scope.is_test {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in fns {
        let (b0, b1) = f.body;
        let mut seq: Vec<(String, u32)> = Vec::new();
        let mut i = b0;
        while i < b1.min(toks.len()) {
            if in_ranges(i, tests) {
                i += 1;
                continue;
            }
            if is_punct(&toks[i], ".")
                && i >= 1
                && i + 3 < toks.len()
                && toks[i + 1].kind == TokKind::Ident
                && D003_METHODS.contains(&toks[i + 1].text.as_str())
                && is_punct(&toks[i + 2], "(")
                && is_punct(&toks[i + 3], ")")
                && matches!(toks[i - 1].kind, TokKind::Ident | TokKind::Num)
            {
                seq.push((toks[i - 1].text.clone(), toks[i + 1].line));
                i += 4;
                continue;
            }
            if is_ident(&toks[i], "lock_unpoisoned")
                && i + 1 < toks.len()
                && is_punct(&toks[i + 1], "(")
            {
                // Name = last ident/number inside the call's parens.
                let mut depth = 0i64;
                let mut j = i + 1;
                let mut name: Option<(String, u32)> = None;
                while j < toks.len() {
                    if is_punct(&toks[j], "(") {
                        depth += 1;
                    } else if is_punct(&toks[j], ")") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if matches!(toks[j].kind, TokKind::Ident | TokKind::Num) {
                        name = Some((toks[j].text.clone(), toks[j].line));
                    }
                    j += 1;
                }
                if let Some(n) = name {
                    seq.push(n);
                }
                i = (j + 1).max(i + 1);
                continue;
            }
            i += 1;
        }
        if seq.len() >= 2 {
            out.push(LockSeq {
                crate_name: scope.crate_name.clone(),
                path: scope.rel.clone(),
                fn_name: f.name.clone(),
                seq,
            });
        }
    }
    out
}

/// Edge in the acquisition graph: `from` acquired before `to`.
#[derive(Clone, Debug)]
struct LockEdge {
    from: String,
    to: String,
    path: String,
    line: u32,
    fn_name: String,
}

/// Builds the per-crate acquisition graphs and reports every edge that
/// participates in a cycle (a static deadlock hazard).
fn rule_d003(seqs: &[LockSeq], out: &mut Vec<Violation>) {
    let mut by_crate: BTreeMap<&str, Vec<&LockSeq>> = BTreeMap::new();
    for s in seqs {
        by_crate.entry(s.crate_name.as_str()).or_default().push(s);
    }
    for (_crate_name, seqs) in by_crate {
        // Distinct ordered pairs within each function, first site wins.
        let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
        for s in &seqs {
            for p in 0..s.seq.len() {
                for q in (p + 1)..s.seq.len() {
                    let (a, b) = (&s.seq[p].0, &s.seq[q].0);
                    if a == b {
                        continue; // re-lock of the same name: guard handoff, not an order
                    }
                    edges
                        .entry((a.clone(), b.clone()))
                        .or_insert_with(|| LockEdge {
                            from: a.clone(),
                            to: b.clone(),
                            path: s.path.clone(),
                            line: s.seq[q].1,
                            fn_name: s.fn_name.clone(),
                        });
                }
            }
        }
        // adjacency
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for k in edges.keys() {
            adj.entry(k.0.as_str()).or_default().push(k.1.as_str());
        }
        let reaches = |from: &str, target: &str| -> bool {
            let mut stack = vec![from];
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            while let Some(n) = stack.pop() {
                if n == target {
                    return true;
                }
                if !seen.insert(n) {
                    continue;
                }
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
            false
        };
        for e in edges.values() {
            // The edge from→to closes a cycle iff `to` can reach `from`.
            if reaches(&e.to, &e.from) {
                out.push(Violation {
                    rule: "D003",
                    path: e.path.clone(),
                    line: e.line,
                    msg: format!(
                        "lock-order cycle: fn `{}` acquires `{}` then `{}`, but another path \
                         acquires them in the reverse order — deadlock hazard",
                        e.fn_name, e.from, e.to
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

/// Accumulates files, then resolves allows and the cross-file lock graph
/// in [`Analyzer::finish`].
#[derive(Default)]
pub struct Analyzer {
    files: usize,
    pending: Vec<Violation>,
    allows: Vec<Allow>,
    locks: Vec<LockSeq>,
}

impl Analyzer {
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// Lints one file. `path` should be workspace-relative with forward
    /// slashes (it drives rule scoping).
    pub fn add_file(&mut self, path: &str, src: &str) {
        self.files += 1;
        let scope = classify(path);
        let (toks, comments) = tokenize(src);
        self.allows
            .extend(parse_allows(&scope.rel, &comments, &mut self.pending));
        let tests = test_ranges(&toks);
        let fns = fn_spans(&toks, &comments);
        rule_d001(&scope, &toks, &tests, &mut self.pending);
        rule_d002(&scope, &toks, &tests, &fns, &mut self.pending);
        rule_d004(&scope, &toks, &tests, &mut self.pending);
        rule_d005(&scope, &toks, &tests, &mut self.pending);
        rule_d006(&scope, &toks, &tests, &fns, &mut self.pending);
        self.locks
            .extend(collect_locks(&scope, &toks, &fns, &tests));
    }

    /// Resolves the lock graph, applies allow directives, and produces
    /// the final report.
    pub fn finish(mut self) -> LintReport {
        rule_d003(&self.locks, &mut self.pending);

        let mut used: Vec<bool> = vec![false; self.allows.len()];
        let mut violations: Vec<Violation> = Vec::new();
        for v in self.pending {
            if v.rule == "A000" {
                violations.push(v);
                continue;
            }
            let suppressed = self.allows.iter().enumerate().find(|(_, a)| {
                a.rule == v.rule && a.path == v.path && (a.line == v.line || a.line + 1 == v.line)
            });
            match suppressed {
                Some((idx, _)) => used[idx] = true,
                None => violations.push(v),
            }
        }
        let allows_used = used.iter().filter(|u| **u).count();
        let unjustified_allows = self.allows.iter().filter(|a| !a.justified).count();
        violations.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
        LintReport {
            files: self.files,
            violations,
            allows_used,
            unjustified_allows,
        }
    }
}
