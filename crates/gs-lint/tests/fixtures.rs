//! Fixture-driven self-tests: each rule is proven on a seeded-violation
//! snippet (including a crafted lock-order cycle for D003), plus the
//! allow-directive contract (justified allows suppress and count; bare
//! allows suppress but are themselves `A000` violations).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gs_lint::{Analyzer, LintReport};

/// Lints a single virtual file.
fn lint_one(path: &str, src: &str) -> LintReport {
    let mut a = Analyzer::new();
    a.add_file(path, src);
    a.finish()
}

fn rules(report: &LintReport) -> Vec<&'static str> {
    report.violations.iter().map(|v| v.rule).collect()
}

// ------------------------------------------------------------------ D001

const D001_HIT: &str = r#"
use std::collections::HashMap;
pub struct S { voxel_pixels: HashMap<u32, Vec<u32>> }
impl S {
    pub fn go(&mut self) -> u64 {
        let mut total = 0;
        for (_, v) in &self.voxel_pixels { total += v.len() as u64; }
        let _ = self.voxel_pixels.keys();
        total
    }
}
"#;

#[test]
fn d001_flags_hashmap_iteration_in_scoped_crates() {
    // `for … in` over the map is not caught at field granularity (the
    // receiver is `self.voxel_pixels`), but the method-call form is.
    let r = lint_one("crates/gs-voxel/src/fake.rs", D001_HIT);
    assert!(
        rules(&r).contains(&"D001"),
        "expected a D001 violation, got: {:?}",
        r.violations
    );
}

#[test]
fn d001_flags_direct_for_loop_over_local_map() {
    let src = r#"
use std::collections::HashMap;
pub fn go() {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    for (k, v) in &m { let _ = (k, v); }
}
"#;
    let r = lint_one("crates/gs-render/src/fake.rs", src);
    assert_eq!(rules(&r), vec!["D001"], "{:?}", r.violations);
}

#[test]
fn d001_ignores_out_of_scope_crates_and_ordered_maps() {
    // Same source in gs-accel (not a render/streaming/store/mem module).
    let r = lint_one("crates/gs-accel/src/fake.rs", D001_HIT);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
    // BTreeMap iteration is ordered and must not be flagged.
    let src = r#"
use std::collections::BTreeMap;
pub fn go(m: &BTreeMap<u32, u32>) -> u64 {
    let mut t = 0; for (_, v) in m.iter() { t += *v as u64; } t
}
"#;
    let r = lint_one("crates/gs-voxel/src/fake.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
}

#[test]
fn d001_exempts_test_code() {
    let src = r#"
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn t() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        let _ = m.drain();
    }
}
"#;
    let r = lint_one("crates/gs-voxel/src/fake.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
}

// ------------------------------------------------------------------ D002

#[test]
fn d002_flags_panic_family_in_lib_code() {
    let src = r#"
pub fn a(x: Option<u32>) -> u32 { x.unwrap() }
pub fn b(x: Option<u32>) -> u32 { x.expect("present") }
pub fn c() { panic!("boom"); }
pub fn d() { todo!() }
pub fn e() { unimplemented!() }
"#;
    let r = lint_one("crates/gs-accel/src/fake.rs", src);
    assert_eq!(rules(&r), vec!["D002"; 5], "{:?}", r.violations);
}

#[test]
fn d002_exempts_documented_panicking_wrappers_and_tests() {
    let src = r#"
/// Renders a frame.
///
/// # Panics
/// Panics when the paged backing faulted permanently.
pub fn render(x: Result<u32, String>) -> u32 {
    match x { Ok(v) => v, Err(e) => panic!("render failed: {e}") }
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert_eq!(Some(1).unwrap(), 1); }
}
"#;
    let r = lint_one("crates/gs-voxel/src/fake.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
}

#[test]
fn d002_ignores_doc_comment_examples_and_strings() {
    let src = r#"
//! Example in module docs: `let x = foo.unwrap();`

/// ```
/// let v = compute().expect("fine in doc examples");
/// ```
pub fn compute() -> Option<u32> {
    let _s = "contains .unwrap( and panic! in a string";
    Some(1)
}
"#;
    let r = lint_one("crates/gs-core/src/fake.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
}

// ------------------------------------------------------------------ D003

/// A crafted lock-order cycle: `forward` takes a→b, `backward` takes b→a.
const D003_CYCLE: &str = r#"
use std::sync::Mutex;
pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
impl S {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }
    pub fn backward(&self) -> u32 {
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        *a - *b
    }
}
"#;

#[test]
fn d003_detects_a_crafted_lock_order_cycle() {
    let r = lint_one("crates/gs-accel/src/fake.rs", D003_CYCLE);
    let d003: Vec<_> = r.violations.iter().filter(|v| v.rule == "D003").collect();
    assert_eq!(
        d003.len(),
        2,
        "both cycle edges reported: {:?}",
        r.violations
    );
    assert!(d003.iter().any(|v| v.msg.contains("`alpha` then `beta`")));
    assert!(d003.iter().any(|v| v.msg.contains("`beta` then `alpha`")));
}

#[test]
fn d003_accepts_a_consistent_order_and_rwlocks() {
    let src = r#"
use std::sync::{Mutex, RwLock};
pub struct S { state: Mutex<u32>, stats: RwLock<u32> }
impl S {
    pub fn one(&self) -> u32 {
        let a = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.stats.read().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }
    pub fn two(&self) -> u32 {
        let a = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut b = self.stats.write().unwrap_or_else(|e| e.into_inner());
        *b += *a; *b
    }
}
"#;
    let r = lint_one("crates/gs-voxel/src/fake.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
}

#[test]
fn d003_graph_is_per_crate() {
    // a→b in one crate and b→a in another is not a cycle: the graphs are
    // disjoint (different processes never hold both).
    let fwd = r#"
use std::sync::Mutex;
pub fn f(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let x = a.lock().unwrap_or_else(|e| e.into_inner());
    let y = b.lock().unwrap_or_else(|e| e.into_inner());
    *x + *y
}
"#;
    let bwd = r#"
use std::sync::Mutex;
pub fn g(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let y = b.lock().unwrap_or_else(|e| e.into_inner());
    let x = a.lock().unwrap_or_else(|e| e.into_inner());
    *x - *y
}
"#;
    let mut an = Analyzer::new();
    an.add_file("crates/gs-voxel/src/fwd.rs", fwd);
    an.add_file("crates/gs-render/src/bwd.rs", bwd);
    let r = an.finish();
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
}

#[test]
fn d003_sees_lock_unpoisoned_acquisitions() {
    let src = r#"
use std::sync::Mutex;
pub struct S { state: Mutex<u32>, file: Mutex<u32> }
impl S {
    pub fn forward(&self) -> u32 { *lock_unpoisoned(&self.state) + *lock_unpoisoned(&self.file) }
    pub fn backward(&self) -> u32 { *lock_unpoisoned(&self.file) - *lock_unpoisoned(&self.state) }
}
"#;
    let r = lint_one("crates/gs-voxel/src/fake.rs", src);
    assert_eq!(
        r.violations.iter().filter(|v| v.rule == "D003").count(),
        2,
        "{:?}",
        r.violations
    );
}

// ------------------------------------------------------------------ D004

#[test]
fn d004_flags_narrowing_casts_in_format_modules_only() {
    let src = r#"
pub fn pack(n: usize) -> u32 { n as u32 }
pub fn widen(n: u32) -> u64 { n as u64 }
"#;
    let r = lint_one("crates/gs-voxel/src/store.rs", src);
    assert_eq!(rules(&r), vec!["D004"], "{:?}", r.violations);
    // Outside the serialization modules the same cast is fine.
    let r = lint_one("crates/gs-voxel/src/grid.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
}

#[test]
fn d004_covers_crc_and_record_codecs() {
    let src = "pub fn f(x: u64) -> u16 { x as u16 }\n";
    for path in [
        "crates/gs-mem/src/crc.rs",
        "crates/gs-vq/src/quantizer.rs",
        "crates/gs-vq/src/codebook.rs",
    ] {
        let r = lint_one(path, src);
        assert_eq!(rules(&r), vec!["D004"], "{path}: {:?}", r.violations);
    }
}

// ------------------------------------------------------------------ D005

#[test]
fn d005_flags_wall_clock_and_spawn_outside_bench_and_pool() {
    let src = r#"
use std::time::{Instant, SystemTime};
pub fn f() {
    let _t = Instant::now();
    let _s = SystemTime::now();
    let _h = std::thread::spawn(|| 0u32);
}
"#;
    let r = lint_one("crates/gs-voxel/src/fake.rs", src);
    // Instant::now, SystemTime (use + call site ×2), thread::spawn.
    assert!(rules(&r).iter().all(|r| *r == "D005"), "{:?}", r.violations);
    assert!(rules(&r).len() >= 3, "{:?}", r.violations);
}

#[test]
fn d005_exempts_gs_bench_pool_and_tests() {
    let src = r#"
use std::time::Instant;
pub fn f() { let _t = Instant::now(); let _h = std::thread::spawn(|| 0u32); }
"#;
    for path in [
        "crates/gs-bench/src/fake.rs",
        "crates/gs-render/src/pool.rs",
        "crates/gs-voxel/tests/fake.rs",
        "crates/gs-bench/benches/fake.rs",
    ] {
        let r = lint_one(path, src);
        assert!(rules(&r).is_empty(), "{path}: {:?}", r.violations);
    }
}

// ------------------------------------------------------------------ D006

/// A blend-kernel-shaped accumulator: flagged everywhere except inside a
/// blessed (path, fn) pair.
const D006_BLEND: &str = r#"
pub struct B { color: Vec<Vec3>, transmittance: Vec<f32> }
impl B {
    pub fn blend(&mut self, w: &[f32]) {
        for (i, x) in w.iter().enumerate() {
            self.color[i] += Vec3::splat(*x);
            self.transmittance[i] -= *x;
        }
    }
}
"#;

#[test]
fn d006_flags_scalar_and_indexed_float_accumulation() {
    let src = r#"
pub fn reduce(xs: &[f32], scores: &mut [f32]) -> f32 {
    let mut acc = 0.0;
    for (i, x) in xs.iter().enumerate() {
        acc += *x;
        scores[i] += *x;
    }
    acc
}
"#;
    let r = lint_one("crates/gs-render/src/fake.rs", src);
    assert_eq!(rules(&r), vec!["D006", "D006"], "{:?}", r.violations);
}

#[test]
fn d006_flags_tuple_bound_float_accumulators() {
    let src = r#"
pub fn minmax(xs: &[f32]) -> (f32, f32) {
    let (mut lo, mut hi) = (0.0f32, -1.0);
    for x in xs {
        lo += x.min(0.0);
        hi += x.max(0.0);
    }
    (lo, hi)
}
"#;
    let r = lint_one("crates/gs-core/src/fake.rs", src);
    assert_eq!(rules(&r), vec!["D006", "D006"], "{:?}", r.violations);
    // Positional matching: only the float element's name binds.
    let src = r#"
pub fn mixed(xs: &[f32]) -> f32 {
    let (mut n, mut acc) = (0u32, 0.0);
    for x in xs {
        n += 1;
        acc += *x;
    }
    acc / n as f32
}
"#;
    let r = lint_one("crates/gs-core/src/fake.rs", src);
    assert_eq!(rules(&r), vec!["D006"], "{:?}", r.violations);
}

#[test]
fn d006_flags_inferred_negative_and_exponent_initializers() {
    let src = r#"
pub fn drift(xs: &[f32]) -> (f32, f32) {
    let mut bias = -0.5;
    let mut tiny = 1e-6;
    for x in xs {
        bias += *x;
        tiny += *x;
    }
    (bias, tiny)
}
"#;
    let r = lint_one("crates/gs-voxel/src/fake.rs", src);
    assert_eq!(rules(&r), vec!["D006", "D006"], "{:?}", r.violations);
    // Hex literals can spell `E` without being floats; integer tuple
    // elements stay unbound.
    let src = r#"
pub fn mask(xs: &[u32]) -> u32 {
    let (mut bits, mut seen) = (0xEE, 0u32);
    for x in xs {
        bits += *x;
        seen += 1;
    }
    bits + seen
}
"#;
    let r = lint_one("crates/gs-voxel/src/fake.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
}

#[test]
fn d006_exempts_only_the_blessed_path_fn_pairs() {
    // Inside the blessed kernel: clean.
    let r = lint_one("crates/gs-voxel/src/streaming.rs", D006_BLEND);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
    // The same function body anywhere else is two violations.
    let r = lint_one("crates/gs-voxel/src/other.rs", D006_BLEND);
    assert_eq!(rules(&r), vec!["D006", "D006"], "{:?}", r.violations);
}

#[test]
fn d006_ignores_integer_accumulation_and_non_loop_adds() {
    let src = r#"
pub fn scale(v: f32) -> f32 { v * 2.0 }
pub fn count(xs: &[u32]) -> u64 {
    let mut total = 0u64;
    for x in xs { total += *x as u64; }
    total
}
pub fn bump(acc: &mut f32, x: f32) { *acc += x; }
"#;
    let r = lint_one("crates/gs-voxel/src/fake.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
}

#[test]
fn d006_exempts_test_code_and_out_of_scope_crates() {
    let r = lint_one("crates/gs-baselines/src/fake.rs", D006_BLEND);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let mut acc = 0.0f32;
        for x in [1.0f32, 2.0] { acc += x; }
        assert!(acc > 0.0);
    }
}
"#;
    let r = lint_one("crates/gs-core/src/fake.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
}

#[test]
fn d006_justified_allow_suppresses() {
    let src = r#"
pub fn mse(xs: &[f32]) -> f32 {
    let mut acc = 0.0;
    for x in xs {
        // gs-lint: allow(D006) fixed slice order; diagnostic metric only
        acc += x * x;
    }
    acc
}
"#;
    let r = lint_one("crates/gs-core/src/fake.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
    assert_eq!(r.allows_used, 1);
}

// ------------------------------------------------ allow directives / A000

#[test]
fn justified_allow_suppresses_and_is_counted() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    // gs-lint: allow(D002) invariant: caller checked is_some() above
    x.unwrap()
}
pub fn g(n: usize) -> u32 {
    n as u32 // gs-lint: allow(D004) bounded by the u32 slot count invariant
}
"#;
    let r = lint_one("crates/gs-voxel/src/store.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
    assert_eq!(r.allows_used, 2);
    assert_eq!(r.unjustified_allows, 0);
}

#[test]
fn bare_allow_suppresses_but_is_itself_a_violation() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    // gs-lint: allow(D002)
    x.unwrap()
}
"#;
    let r = lint_one("crates/gs-voxel/src/fake.rs", src);
    assert_eq!(rules(&r), vec!["A000"], "{:?}", r.violations);
    assert_eq!(r.unjustified_allows, 1);
    assert!(!r.ok(), "the gate must stay red on a bare allow");
}

#[test]
fn unknown_rule_in_allow_is_a_violation() {
    let src = "// gs-lint: allow(D999) nonsense\npub fn f() {}\n";
    let r = lint_one("crates/gs-core/src/fake.rs", src);
    assert_eq!(rules(&r), vec!["A000"], "{:?}", r.violations);
}

#[test]
fn allow_does_not_leak_to_other_lines_or_rules() {
    let src = r#"
pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {
    // gs-lint: allow(D002) only the next line
    let a = x.unwrap();
    let b = y.unwrap();
    a + b
}
"#;
    let r = lint_one("crates/gs-accel/src/fake.rs", src);
    assert_eq!(rules(&r), vec!["D002"], "{:?}", r.violations);
    assert_eq!(r.allows_used, 1);
}

// ------------------------------------------------------------ report shape

#[test]
fn json_line_and_gate() {
    let r = lint_one(
        "crates/gs-accel/src/fake.rs",
        "pub fn f() { panic!(\"x\") }\n",
    );
    assert!(!r.ok());
    let json = r.json_line();
    assert!(json.starts_with("LINT_JSON {"), "{json}");
    assert!(json.contains("\"violations\":1"), "{json}");
    assert!(json.contains("\"D002\":1"), "{json}");
    assert!(json.contains("\"lint_ok\":false"), "{json}");

    let clean = lint_one("crates/gs-accel/src/ok.rs", "pub fn f() -> u32 { 1 }\n");
    assert!(clean.ok());
    assert!(clean.json_line().contains("\"lint_ok\":true"));
}

// ------------------------------------------------------- tokenizer edges

#[test]
fn tokenizer_handles_raw_strings_nested_comments_and_lifetimes() {
    let src = r##"
/* outer /* nested */ still comment with panic! */
pub fn f<'a>(s: &'a str) -> &'a str {
    let _raw = r#"contains .unwrap( and "quotes""#;
    let _c = '\n';
    let _q = '"';
    s
}
"##;
    let r = lint_one("crates/gs-core/src/fake.rs", src);
    assert!(rules(&r).is_empty(), "{:?}", r.violations);
}
