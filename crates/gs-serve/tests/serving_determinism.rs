//! The serving-layer determinism contract (ISSUE 10):
//!
//! 1. **Scheduled ≡ solo** — every frame a session renders through the
//!    [`FrameScheduler`] is byte-identical (image, workload, ledger,
//!    cache report, tier usage, degradation) to rendering the same
//!    camera sequence on a fully private scene, for any worker count
//!    {1, 2, 0}, any request interleaving (session-major, round-robin,
//!    seeded shuffles), raw and VQ stores, resident and paged backings,
//!    with and without per-session caches and hysteresis tier selection.
//! 2. **Shared pages warm across sessions** — on a paged shard, a second
//!    session replaying a trajectory faults in (almost) nothing beyond
//!    what the first session already materialized, while private clones
//!    pay the full cold cost each.
//! 3. **Errors are deterministic and recoverable** — out-of-range
//!    session ids are rejected up front with the queue intact, and
//!    duplicate shard names are rejected by the registry.

// Test code may unwrap freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gs_core::camera::Camera;
use gs_mem::cache::CacheConfig;
use gs_scene::{SceneConfig, SceneKind};
use gs_serve::{FrameScheduler, SceneShard, ServeError, ShardRegistry};
use gs_voxel::{PageConfig, QualityPolicy, StreamingConfig, StreamingOutput, StreamingScene};
use gs_vq::VqConfig;

const SESSIONS: usize = 3;
const FRAMES: usize = 3;

/// Per-session camera trajectories: rotated, strided walks over the
/// scene's eval cameras so every session streams a *different* sequence.
fn trajectories(cams: &[Camera]) -> Vec<Vec<Camera>> {
    (0..SESSIONS)
        .map(|s| {
            (0..FRAMES)
                .map(|f| cams[(s + 2 * f) % cams.len()])
                .collect()
        })
        .collect()
}

/// A submission-order word: session ids, each appearing [`FRAMES`] times;
/// submitting a session's next trajectory frame at each of its
/// occurrences preserves per-session order for any word.
fn shuffled_word(seed: u64) -> Vec<usize> {
    let mut word: Vec<usize> = session_major_word();
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for i in (1..word.len()).rev() {
        word.swap(i, next() % (i + 1));
    }
    word
}

fn session_major_word() -> Vec<usize> {
    (0..SESSIONS)
        .flat_map(|s| std::iter::repeat_n(s, FRAMES))
        .collect()
}

fn round_robin_word() -> Vec<usize> {
    (0..FRAMES).flat_map(|_| 0..SESSIONS).collect()
}

fn assert_same_frame(a: &StreamingOutput, b: &StreamingOutput, what: &str) {
    assert_eq!(a.image, b.image, "{what}: image diverged");
    assert_eq!(a.workload, b.workload, "{what}: workload diverged");
    assert_eq!(a.ledger, b.ledger, "{what}: ledger diverged");
    assert_eq!(a.cache, b.cache, "{what}: cache report diverged");
    assert_eq!(a.tiers, b.tiers, "{what}: tier usage diverged");
    assert_eq!(a.degradation, b.degradation, "{what}: degradation diverged");
}

/// The workhorse: serve [`SESSIONS`] trajectories through a shared shard
/// under every worker count and interleaving, comparing each frame to a
/// fully private solo replay. `drain_per_round` additionally drains after
/// every submission round (instead of once at the end), proving that
/// per-session state carries correctly *across* drains.
fn assert_scheduled_matches_solo(label: &str, cfg: StreamingConfig, page: Option<PageConfig>) {
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let mut prepared = StreamingScene::new(scene.trained.clone(), cfg);
    if let Some(p) = page {
        prepared.page_out(p);
    }
    let trajs = trajectories(&scene.eval_cameras);

    // Solo reference: a private deep clone per session (cold pages, own
    // cache/hysteresis state), rendered serially.
    let solo: Vec<Vec<StreamingOutput>> = trajs
        .iter()
        .map(|traj| {
            let mut private = prepared.clone();
            private.set_threads(1);
            traj.iter().map(|cam| private.render(cam)).collect()
        })
        .collect();
    // The contract must not hold vacuously: the reference frames differ
    // across sessions (distinct trajectories).
    assert_ne!(solo[0][0].image, solo[1][0].image);

    let words = [
        ("session-major", session_major_word()),
        ("round-robin", round_robin_word()),
        ("shuffle-a", shuffled_word(0x5EED_CAFE)),
        ("shuffle-b", shuffled_word(0xD00D_F00D)),
    ];
    for threads in [1usize, 2, 0] {
        for (word_name, word) in &words {
            for drain_per_round in [false, true] {
                let mut shard = SceneShard::new("t", prepared.clone());
                let mut sessions: Vec<_> = (0..SESSIONS).map(|_| shard.open_session()).collect();
                let mut scheduler = FrameScheduler::new(threads);
                let mut next = [0usize; SESSIONS];
                let mut got: Vec<Vec<StreamingOutput>> = vec![Vec::new(); SESSIONS];
                let drain = |sched: &mut FrameScheduler,
                             sessions: &mut Vec<gs_serve::ClientSession>,
                             got: &mut Vec<Vec<StreamingOutput>>| {
                    let n = sched.drain(sessions).expect("fault-free drain");
                    assert!(n > 0);
                    for (sid, session) in sessions.iter().enumerate() {
                        got[sid].extend(session.frames().iter().cloned());
                    }
                };
                for (k, &sid) in word.iter().enumerate() {
                    scheduler.submit(sid, &trajs[sid][next[sid]]);
                    next[sid] += 1;
                    // Per-round drains slice the same word into multiple
                    // batches at arbitrary (here: every 4 submissions)
                    // boundaries.
                    if drain_per_round && (k + 1) % 4 == 0 {
                        drain(&mut scheduler, &mut sessions, &mut got);
                    }
                }
                if scheduler.pending() > 0 {
                    drain(&mut scheduler, &mut sessions, &mut got);
                }
                assert_eq!(scheduler.pending(), 0);
                for sid in 0..SESSIONS {
                    assert_eq!(got[sid].len(), FRAMES);
                    assert_eq!(sessions[sid].frames_rendered(), FRAMES as u64);
                    for (f, (a, b)) in solo[sid].iter().zip(&got[sid]).enumerate() {
                        assert_same_frame(
                            a,
                            b,
                            &format!(
                                "{label}, threads={threads}, {word_name}, \
                                 per_round={drain_per_round}, session {sid} frame {f}"
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn scheduled_frames_match_solo_raw_resident() {
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let cfg = StreamingConfig {
        voxel_size: scene.voxel_size,
        ..Default::default()
    };
    assert_scheduled_matches_solo("raw resident", cfg, None);
}

#[test]
fn scheduled_frames_match_solo_vq_paged_with_cache() {
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let cfg = StreamingConfig {
        voxel_size: scene.voxel_size,
        use_vq: true,
        vq: VqConfig::tiny(),
        cache: Some(CacheConfig::default()),
        ..Default::default()
    };
    assert_scheduled_matches_solo("vq paged cache", cfg, Some(PageConfig::default()));
}

#[test]
fn scheduled_frames_match_solo_with_hysteresis_tiers() {
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let cfg = StreamingConfig {
        voxel_size: scene.voxel_size,
        tiers: StreamingConfig::default_tier_ladder(),
        quality: QualityPolicy::Hysteresis {
            threshold: 64.0,
            margin: 0.25,
        },
        ..Default::default()
    };
    // Hysteresis carries per-session tier history across frames — the
    // sharpest test that per-session state never leaks between clients.
    assert_scheduled_matches_solo("raw resident hysteresis", cfg, None);
}

#[test]
fn scheduled_frames_match_solo_vq_paged_hysteresis_cache() {
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let cfg = StreamingConfig {
        voxel_size: scene.voxel_size,
        use_vq: true,
        vq: VqConfig::tiny(),
        cache: Some(CacheConfig::default()),
        tiers: StreamingConfig::default_tier_ladder(),
        quality: QualityPolicy::Hysteresis {
            threshold: 64.0,
            margin: 0.25,
        },
        ..Default::default()
    };
    assert_scheduled_matches_solo(
        "vq paged hysteresis cache",
        cfg,
        Some(PageConfig::default()),
    );
}

#[test]
fn shared_shard_pages_warm_across_sessions() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cfg = StreamingConfig {
        voxel_size: scene.voxel_size,
        ..Default::default()
    };
    let mut prepared = StreamingScene::new(scene.trained.clone(), cfg);
    prepared.page_out(PageConfig::default());
    let cam = scene.eval_cameras[0];

    // Private clones each pay the full cold page cost.
    let private_a = prepared.clone();
    let private_b = prepared.clone();
    let pa = private_a.render(&cam);
    let pb = private_b.render(&cam);
    let cold = private_a.store().page_faults();
    assert!(cold > 0, "paged render must fault pages in");
    assert_eq!(cold, private_b.store().page_faults());

    // Two sessions of one shard share the page set: the second replay
    // faults in nothing new.
    let mut shard = SceneShard::new("lego", prepared);
    let mut sessions = vec![shard.open_session(), shard.open_session()];
    let mut scheduler = FrameScheduler::new(2);
    scheduler.submit(0, &cam);
    scheduler.drain(&mut sessions).unwrap();
    let shared_a = sessions[0].frames()[0].clone();
    let after_first = shard.page_faults();
    scheduler.submit(1, &cam);
    scheduler.drain(&mut sessions).unwrap();
    let shared_b = sessions[1].frames()[0].clone();
    assert!(
        sessions[0].frames().is_empty(),
        "inactive session kept stale frames"
    );
    let after_second = shard.page_faults();
    assert_eq!(
        after_first, after_second,
        "second session re-faulted pages the first already materialized"
    );
    // And sharing changed no byte of either client's frame.
    assert_same_frame(&pa, &shared_a, "shared vs private, session 0");
    assert_same_frame(&pb, &shared_b, "shared vs private, session 1");
    assert_eq!(shard.sessions_opened(), 2);
}

#[test]
fn unknown_session_is_rejected_up_front_and_recoverable() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cfg = StreamingConfig {
        voxel_size: scene.voxel_size,
        ..Default::default()
    };
    let mut shard = SceneShard::new("lego", StreamingScene::new(scene.trained.clone(), cfg));
    let mut sessions = vec![shard.open_session()];
    let cam = scene.eval_cameras[0];
    let mut scheduler = FrameScheduler::new(1);
    scheduler.submit(0, &cam);
    scheduler.submit(7, &cam); // no such session
    match scheduler.drain(&mut sessions) {
        Err(ServeError::UnknownSession { session: 7 }) => {}
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    // Nothing rendered, queue intact; clearing recovers the scheduler.
    assert_eq!(scheduler.pending(), 2);
    assert_eq!(sessions[0].frames_rendered(), 0);
    scheduler.clear();
    assert_eq!(scheduler.pending(), 0);
    scheduler.submit(0, &cam);
    assert_eq!(scheduler.drain(&mut sessions).unwrap(), 1);
    assert_eq!(sessions[0].frames_rendered(), 1);
}

#[test]
fn registry_rejects_duplicate_shards_and_opens_sessions_by_name() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cfg = StreamingConfig {
        voxel_size: scene.voxel_size,
        ..Default::default()
    };
    let mut registry = ShardRegistry::new();
    assert!(registry.is_empty());
    let make = || SceneShard::new("lego", StreamingScene::new(scene.trained.clone(), cfg));
    registry.insert(make()).unwrap();
    match registry.insert(make()) {
        Err(ServeError::DuplicateShard { name }) => assert_eq!(name, "lego"),
        other => panic!("expected DuplicateShard, got {other:?}"),
    }
    assert_eq!(registry.len(), 1);
    assert!(registry.get("lego").is_some());
    assert!(registry.open_session("lego").is_some());
    assert!(registry.open_session("missing").is_none());
    assert_eq!(registry.get("lego").unwrap().sessions_opened(), 1);
}

#[test]
fn empty_drain_is_a_noop() {
    let mut scheduler = FrameScheduler::new(1);
    assert_eq!(scheduler.drain(&mut []).unwrap(), 0);
    assert_eq!(scheduler.pending(), 0);
}
