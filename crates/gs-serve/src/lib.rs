//! # gs-serve — multi-client frame scheduling over shared scene shards
//!
//! The crates below this one render **one** camera stream; a production
//! deployment of the paper's pipeline serves **many** — the ROADMAP's
//! "millions of users" axis. This crate is that serving layer, kept
//! deliberately small and deterministic:
//!
//! * [`SceneShard`] / [`ShardRegistry`] — a prepared scene (resident or
//!   demand-paged, possibly tiered) opened **once** and shared by every
//!   session. Paged columns are `Arc`-shared through
//!   [`StreamingScene::fork_session`], so a page materialized by one
//!   client's frame is warm for every other client of the shard — the
//!   serving-side analogue of the working-set cache's temporal locality,
//!   measured by the `serve` bench as shared-page amortization.
//! * [`ClientSession`] — one client's frame-persistent state: a forked
//!   scene view (per-session working-set cache, [`QualityPolicy`] and
//!   hysteresis history, render scratch) plus reusable
//!   [`StreamingOutput`] slots, so a warm per-client frame allocates
//!   nothing.
//! * [`FrameScheduler`] — a deterministic batch scheduler. Clients submit
//!   `(session, camera)` requests in any interleaving;
//!   [`FrameScheduler::drain`] partitions the queue by session
//!   (preserving each session's submission order) and renders all
//!   sessions' batches concurrently on one shared [`WorkerPool`], one
//!   pool wakeup per drain instead of one per frame.
//!
//! ## The determinism contract, extended to serving
//!
//! Every frame a session renders through the scheduler is **bit-identical
//! to rendering the same camera sequence solo** — for any worker count
//! and any request interleaving. The argument has two halves:
//!
//! 1. Rendered bytes depend only on the store's bytes. The paged store is
//!    bit-exact regardless of page residency, eviction history or which
//!    thread materialized a page (`tests/paged_cache.rs`), so sharing one
//!    store between sessions cannot change any session's pixels.
//! 2. All *mutable* per-frame state (working-set cache model, hysteresis
//!    tier history, scratch buffers) lives in the session's private fork
//!    and advances only with that session's own frame sequence. The
//!    scheduler hands each active session to exactly one pool job, so a
//!    session's frames render serially in submission order no matter how
//!    requests were interleaved across sessions.
//!
//! `tests/serving_determinism.rs` pins the contract on raw + VQ stores,
//! resident + paged backings, worker counts {1, 2, 0} and shuffled
//! interleavings. Error surfacing is deterministic too: when sessions
//! fail in the same drain, [`FrameScheduler::drain`] reports the failure
//! of the lowest-indexed failing session (and within a session, its
//! first failing frame in submission order).
//!
//! See `docs/SERVING.md` for the session model and shard lifecycle.

use gs_core::camera::Camera;
use gs_render::pool::WorkerPool;
use gs_voxel::{QualityPolicy, StoreError, StreamingOutput, StreamingScene};

/// Everything that can go wrong in the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// A queued request names a session index outside the slice handed to
    /// [`FrameScheduler::drain`]. Nothing was rendered.
    UnknownSession {
        /// The out-of-range session index.
        session: usize,
    },
    /// [`ShardRegistry::insert`] was given a shard whose name is already
    /// registered.
    DuplicateShard {
        /// The contested shard name.
        name: String,
    },
    /// A session's frame failed with a store fault that survived retry
    /// and degradation. The session's earlier frames of the drain are
    /// intact (see [`ClientSession::frames`]); later queued frames of the
    /// failing session were abandoned.
    Render {
        /// Index of the failing session (lowest-indexed failing session
        /// of the drain — deterministic for any interleaving).
        session: usize,
        /// Position of the failing frame in the session's submission
        /// order within the drained batch.
        frame: usize,
        /// The store fault.
        source: StoreError,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSession { session } => {
                write!(f, "frame request names unknown session {session}")
            }
            ServeError::DuplicateShard { name } => {
                write!(f, "shard {name:?} is already registered")
            }
            ServeError::Render {
                session,
                frame,
                source,
            } => write!(f, "session {session} frame {frame} failed: {source}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Render { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One prepared scene, opened once and shared by every session — the
/// serving layer's shard unit (the ROADMAP's "serialized scene image as
/// the shard unit" realized at the scene level: prepare the scene, page
/// it out onto its serialized image, then register it).
///
/// Sessions opened from a shard share the shard's store by reference
/// ([`StreamingScene::fork_session`]): for paged backings this is the
/// whole point — the page set, its LRU clock and its fault/heal state are
/// store-wide, so one client's cold page fault warms the page for all.
#[derive(Debug)]
pub struct SceneShard {
    name: String,
    scene: StreamingScene,
    sessions_opened: u64,
}

impl SceneShard {
    /// Wraps a prepared scene as a shard. Page the scene out (e.g.
    /// [`StreamingScene::page_out`]) *before* wrapping when the shard
    /// should serve from a serialized image; sessions forked afterwards
    /// all read the same paged columns.
    pub fn new(name: impl Into<String>, scene: StreamingScene) -> SceneShard {
        SceneShard {
            name: name.into(),
            scene,
            sessions_opened: 0,
        }
    }

    /// The shard's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared scene (e.g. to reach [`StreamingScene::store`] for
    /// store-wide page-fault or fault/heal counters).
    pub fn scene(&self) -> &StreamingScene {
        &self.scene
    }

    /// Opens a new client session against this shard: a forked scene view
    /// sharing the shard's store, with private per-session cache state,
    /// quality policy and output buffers.
    ///
    /// The fork's worker count is pinned to 1: within a
    /// [`FrameScheduler`] drain each session is one pool job, so
    /// parallelism comes from serving sessions concurrently, not from
    /// splitting one session's frame. Rendering is thread-invariant
    /// (`tests/lod_tiers.rs`), so this changes no byte of any frame.
    pub fn open_session(&mut self) -> ClientSession {
        self.sessions_opened += 1;
        let mut scene = self.scene.fork_session();
        scene.set_threads(1);
        ClientSession {
            scene,
            outputs: Vec::new(),
            batch_len: 0,
            frames_rendered: 0,
            error: None,
        }
    }

    /// Sessions opened so far (diagnostics; nothing caps it).
    pub fn sessions_opened(&self) -> u64 {
        self.sessions_opened
    }

    /// Store-wide page faults of the shared backing (0 for resident
    /// shards). Divide by the frames served across all sessions to see
    /// the shared-page amortization the `serve` bench reports.
    pub fn page_faults(&self) -> u64 {
        self.scene.store().page_faults()
    }
}

/// The set of shards a server process exposes, keyed by name. Backed by a
/// plain vector — shard counts are small and registration is not a hot
/// path, and deterministic iteration order comes free.
#[derive(Debug, Default)]
pub struct ShardRegistry {
    shards: Vec<SceneShard>,
}

impl ShardRegistry {
    /// An empty registry.
    pub fn new() -> ShardRegistry {
        ShardRegistry::default()
    }

    /// Registers `shard`, returning its index.
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateShard`] when a shard of the same name is
    /// already registered (the shard is returned to the caller via the
    /// error's name; the registry is unchanged).
    pub fn insert(&mut self, shard: SceneShard) -> Result<usize, ServeError> {
        if self.shards.iter().any(|s| s.name == shard.name) {
            return Err(ServeError::DuplicateShard { name: shard.name });
        }
        self.shards.push(shard);
        Ok(self.shards.len() - 1)
    }

    /// The shard named `name`, if registered.
    pub fn get(&self, name: &str) -> Option<&SceneShard> {
        self.shards.iter().find(|s| s.name == name)
    }

    /// Mutable access to the shard named `name` (e.g. to open sessions).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut SceneShard> {
        self.shards.iter_mut().find(|s| s.name == name)
    }

    /// Opens a session against the shard named `name`; `None` when no
    /// such shard is registered.
    pub fn open_session(&mut self, name: &str) -> Option<ClientSession> {
        self.get_mut(name).map(SceneShard::open_session)
    }

    /// Number of registered shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` when no shard is registered.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

/// One client's frame-persistent serving state: a forked scene view
/// (shared store, private cache/quality/scratch) plus reusable output
/// slots. Open sessions via [`SceneShard::open_session`].
///
/// A session is identified to the [`FrameScheduler`] purely by its index
/// in the slice passed to [`FrameScheduler::drain`] — keep that order
/// stable across drains.
#[derive(Debug)]
pub struct ClientSession {
    scene: StreamingScene,
    /// One reusable slot per frame of the current drain's batch; grown on
    /// demand, never shrunk, so warm drains reuse every allocation.
    outputs: Vec<StreamingOutput>,
    /// Frames of `outputs` that hold valid results from the last drain.
    batch_len: usize,
    frames_rendered: u64,
    /// First failure of the last drain, taken by the scheduler.
    error: Option<(usize, StoreError)>,
}

impl ClientSession {
    /// The session's scene view (read-only; per-session state like the
    /// cache model advances only through scheduled frames).
    pub fn scene(&self) -> &StreamingScene {
        &self.scene
    }

    /// Re-points the session's per-frame tier selection policy, resetting
    /// its hysteresis history (a policy switch is a stream restart).
    pub fn set_quality(&mut self, quality: QualityPolicy) {
        self.scene.set_quality(quality);
    }

    /// The frames rendered by the last [`FrameScheduler::drain`], in this
    /// session's submission order. Borrowed views into the session's
    /// reusable slots — copy out anything that must outlive the next
    /// drain.
    pub fn frames(&self) -> &[StreamingOutput] {
        &self.outputs[..self.batch_len]
    }

    /// Total frames this session rendered successfully over its lifetime.
    pub fn frames_rendered(&self) -> u64 {
        self.frames_rendered
    }

    /// Renders `cams` serially in order into the reusable output slots,
    /// stopping at the first store fault. Called from exactly one
    /// scheduler job per drain.
    fn render_batch(&mut self, cams: &[Camera]) {
        self.error = None;
        self.batch_len = 0;
        if self.outputs.len() < cams.len() {
            self.outputs
                .resize_with(cams.len(), StreamingOutput::default);
        }
        for (frame, cam) in cams.iter().enumerate() {
            match self.scene.try_render_into(cam, &mut self.outputs[frame]) {
                Ok(()) => {
                    self.batch_len = frame + 1;
                    self.frames_rendered += 1;
                }
                Err(e) => {
                    self.error = Some((frame, e));
                    return;
                }
            }
        }
    }
}

/// Deterministic batch scheduler: submit `(session, camera)` requests in
/// any interleaving, then [`FrameScheduler::drain`] renders every queued
/// frame — sessions in parallel on one shared pool, each session's frames
/// serial in submission order. See the crate docs for why the result is
/// bit-identical to solo rendering.
#[derive(Debug)]
pub struct FrameScheduler {
    /// Requested worker count (0 = all cores), resolved lazily so the
    /// pool is only as wide as a drain can use.
    threads: usize,
    pool: Option<WorkerPool>,
    queue: Vec<(usize, Camera)>,
    /// Per-session camera batches of the current drain (index = session
    /// index); kept allocated across drains.
    plan: Vec<Vec<Camera>>,
    /// Session indices with at least one request this drain, ascending.
    active: Vec<usize>,
}

impl FrameScheduler {
    /// A scheduler dispatching onto `threads` workers (0 = all cores).
    /// The pool is shared by every session the scheduler serves and spun
    /// up on first drain.
    pub fn new(threads: usize) -> FrameScheduler {
        FrameScheduler {
            threads,
            pool: None,
            queue: Vec::new(),
            plan: Vec::new(),
            active: Vec::new(),
        }
    }

    /// Queues one frame request: render `cam` for the session at index
    /// `session` of the slice later passed to [`FrameScheduler::drain`].
    /// Requests of one session keep their submission order; requests of
    /// different sessions may be interleaved arbitrarily.
    pub fn submit(&mut self, session: usize, cam: &Camera) {
        self.queue.push((session, *cam));
    }

    /// Queued requests not yet drained.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Drops every queued request without rendering (e.g. to recover from
    /// [`ServeError::UnknownSession`], which leaves the queue intact).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Renders every queued request and empties the queue. Active
    /// sessions render concurrently (one pool job each, one pool wakeup
    /// total); each session's frames render serially in submission order
    /// into its reusable slots — read them back via
    /// [`ClientSession::frames`]. Returns the number of frames drained.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] when a request's session index is
    /// out of range (checked up front; the queue is left intact).
    /// [`ServeError::Render`] when a session's frame fails with a store
    /// fault: the failing session abandons its remaining frames, other
    /// sessions complete, and the lowest-indexed failing session's first
    /// failure is reported — deterministically, for any interleaving.
    pub fn drain(&mut self, sessions: &mut [ClientSession]) -> Result<usize, ServeError> {
        if let Some(&(session, _)) = self.queue.iter().find(|&&(s, _)| s >= sessions.len()) {
            return Err(ServeError::UnknownSession { session });
        }
        let drained = self.queue.len();
        if drained == 0 {
            return Ok(0);
        }
        // A drain rewrites every session's batch view: sessions with no
        // requests this drain report zero frames, not stale ones.
        for slot in sessions.iter_mut() {
            slot.batch_len = 0;
            slot.error = None;
        }
        if self.plan.len() < sessions.len() {
            self.plan.resize_with(sessions.len(), Vec::new);
        }
        for (session, cam) in self.queue.drain(..) {
            self.plan[session].push(cam);
        }
        self.active.clear();
        self.active
            .extend((0..sessions.len()).filter(|&s| !self.plan[s].is_empty()));

        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        let pool = WorkerPool::ensure(&mut self.pool, threads.min(self.active.len()));
        // Jobs get disjoint `&mut ClientSession`s through a shared base
        // pointer: `active` holds strictly ascending (hence unique)
        // in-range indices, so job i's session is touched by job i alone.
        let base = sessions.as_mut_ptr() as usize;
        let plan = &self.plan;
        let active = &self.active;
        pool.run(active.len(), |i| {
            let session = active[i];
            // SAFETY: see above — indices are unique and in range, and
            // the sessions slice outlives `run` (it blocks until every
            // job finished).
            let slot = unsafe { &mut *(base as *mut ClientSession).add(session) };
            slot.render_batch(&plan[session]);
        });
        for &session in &self.active {
            self.plan[session].clear();
        }
        for (session, slot) in sessions.iter_mut().enumerate() {
            if let Some((frame, source)) = slot.error.take() {
                return Err(ServeError::Render {
                    session,
                    frame,
                    source,
                });
            }
        }
        Ok(drained)
    }
}
