//! A collection of Gaussians plus cloud-level statistics.

use crate::gaussian::Gaussian;
use gs_core::geom::Aabb;
use gs_core::vec::Vec3;
use serde::{Deserialize, Serialize};

/// An unordered set of Gaussians — a scene, checkpoint or voxel content.
///
/// ```
/// use gs_scene::{Gaussian, GaussianCloud};
/// use gs_core::vec::Vec3;
/// let cloud: GaussianCloud = (0..10)
///     .map(|i| Gaussian::isotropic(Vec3::new(i as f32, 0.0, 0.0), 0.1, Vec3::ONE, 0.9))
///     .collect();
/// assert_eq!(cloud.len(), 10);
/// assert!(cloud.bounds().contains(Vec3::new(5.0, 0.0, 0.0)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GaussianCloud {
    gaussians: Vec<Gaussian>,
}

impl GaussianCloud {
    /// Creates an empty cloud.
    pub fn new() -> GaussianCloud {
        GaussianCloud {
            gaussians: Vec::new(),
        }
    }

    /// Creates a cloud from a vector of Gaussians.
    pub fn from_vec(gaussians: Vec<Gaussian>) -> GaussianCloud {
        GaussianCloud { gaussians }
    }

    /// Number of Gaussians.
    pub fn len(&self) -> usize {
        self.gaussians.len()
    }

    /// `true` when the cloud holds no Gaussians.
    pub fn is_empty(&self) -> bool {
        self.gaussians.is_empty()
    }

    /// Appends a Gaussian.
    pub fn push(&mut self, g: Gaussian) {
        self.gaussians.push(g);
    }

    /// Immutable view of the Gaussians.
    pub fn as_slice(&self) -> &[Gaussian] {
        &self.gaussians
    }

    /// Mutable view of the Gaussians.
    pub fn as_mut_slice(&mut self) -> &mut [Gaussian] {
        &mut self.gaussians
    }

    /// Iterates over the Gaussians.
    pub fn iter(&self) -> std::slice::Iter<'_, Gaussian> {
        self.gaussians.iter()
    }

    /// Mutably iterates over the Gaussians.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Gaussian> {
        self.gaussians.iter_mut()
    }

    /// Consumes the cloud, returning the underlying vector.
    pub fn into_inner(self) -> Vec<Gaussian> {
        self.gaussians
    }

    /// Tight bounding box of the Gaussian *centres*.
    pub fn bounds(&self) -> Aabb {
        let mut b = Aabb::empty();
        for g in &self.gaussians {
            b.expand(g.pos);
        }
        b
    }

    /// Bounding box inflated by each Gaussian's 3σ extent — everything the
    /// cloud can visibly touch.
    pub fn render_bounds(&self) -> Aabb {
        let mut b = Aabb::empty();
        for g in &self.gaussians {
            let r = g.bounding_radius();
            b.expand(g.pos - Vec3::splat(r));
            b.expand(g.pos + Vec3::splat(r));
        }
        b
    }

    /// Summary statistics used by the procedural-generator tests and the
    /// experiment logs.
    pub fn stats(&self) -> CloudStats {
        if self.is_empty() {
            return CloudStats::default();
        }
        let n = self.len() as f32;
        let mut mean_scale = 0.0;
        let mut max_scale = 0.0f32;
        let mut mean_opacity = 0.0;
        for g in &self.gaussians {
            mean_scale += g.max_scale();
            max_scale = max_scale.max(g.max_scale());
            mean_opacity += g.opacity;
        }
        CloudStats {
            count: self.len(),
            mean_max_scale: mean_scale / n,
            max_max_scale: max_scale,
            mean_opacity: mean_opacity / n,
            bounds: self.bounds(),
        }
    }

    /// Total uncompressed parameter bytes (59 × 4 per Gaussian) — the
    /// quantity the paper's projection-stage traffic is proportional to.
    pub fn raw_bytes(&self) -> u64 {
        self.len() as u64 * (gs_core::GAUSSIAN_PARAMS as u64) * 4
    }

    /// `true` when every Gaussian is valid (see [`Gaussian::is_valid`]).
    pub fn is_valid(&self) -> bool {
        self.gaussians.iter().all(Gaussian::is_valid)
    }
}

impl FromIterator<Gaussian> for GaussianCloud {
    fn from_iter<I: IntoIterator<Item = Gaussian>>(iter: I) -> GaussianCloud {
        GaussianCloud {
            gaussians: iter.into_iter().collect(),
        }
    }
}

impl Extend<Gaussian> for GaussianCloud {
    fn extend<I: IntoIterator<Item = Gaussian>>(&mut self, iter: I) {
        self.gaussians.extend(iter);
    }
}

impl IntoIterator for GaussianCloud {
    type Item = Gaussian;
    type IntoIter = std::vec::IntoIter<Gaussian>;
    fn into_iter(self) -> Self::IntoIter {
        self.gaussians.into_iter()
    }
}

impl<'a> IntoIterator for &'a GaussianCloud {
    type Item = &'a Gaussian;
    type IntoIter = std::slice::Iter<'a, Gaussian>;
    fn into_iter(self) -> Self::IntoIter {
        self.gaussians.iter()
    }
}

/// Aggregate statistics of a [`GaussianCloud`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CloudStats {
    /// Number of Gaussians.
    pub count: usize,
    /// Mean of per-Gaussian maximum scales.
    pub mean_max_scale: f32,
    /// Largest scale in the cloud.
    pub max_max_scale: f32,
    /// Mean opacity.
    pub mean_opacity: f32,
    /// Bounding box of the centres.
    pub bounds: Aabb,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cloud() -> GaussianCloud {
        (0..5)
            .map(|i| {
                Gaussian::isotropic(
                    Vec3::new(i as f32, -(i as f32), 2.0 * i as f32),
                    0.1 * (i + 1) as f32,
                    Vec3::splat(0.5),
                    0.5,
                )
            })
            .collect()
    }

    #[test]
    fn collect_and_len() {
        let c = sample_cloud();
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        assert!(c.is_valid());
    }

    #[test]
    fn bounds_cover_all_centers() {
        let c = sample_cloud();
        let b = c.bounds();
        for g in &c {
            assert!(b.contains(g.pos));
        }
        assert_eq!(b.min, Vec3::new(0.0, -4.0, 0.0));
        assert_eq!(b.max, Vec3::new(4.0, 0.0, 8.0));
    }

    #[test]
    fn render_bounds_inflate() {
        let c = sample_cloud();
        let b = c.bounds();
        let rb = c.render_bounds();
        assert!(rb.min.x <= b.min.x && rb.max.x >= b.max.x);
        // Largest Gaussian has scale 0.5 → inflation 1.5 beyond its centre.
        assert!(rb.max.x >= 4.0 + 1.4);
    }

    #[test]
    fn stats_reasonable() {
        let s = sample_cloud().stats();
        assert_eq!(s.count, 5);
        assert!((s.mean_opacity - 0.5).abs() < 1e-6);
        assert!((s.max_max_scale - 0.5).abs() < 1e-6);
        assert!((s.mean_max_scale - 0.3).abs() < 1e-6);
    }

    #[test]
    fn raw_bytes_match_param_count() {
        let c = sample_cloud();
        assert_eq!(c.raw_bytes(), 5 * 59 * 4);
    }

    #[test]
    fn empty_cloud_stats_default() {
        let s = GaussianCloud::new().stats();
        assert_eq!(s.count, 0);
    }

    #[test]
    fn extend_appends() {
        let mut c = sample_cloud();
        c.extend(sample_cloud());
        assert_eq!(c.len(), 10);
    }
}
