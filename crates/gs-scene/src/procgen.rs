//! Procedural generation of surface-aligned Gaussian clouds.
//!
//! Trained 3DGS checkpoints place flat, surface-aligned Gaussians on scene
//! geometry with view-dependent colour. This module reproduces those
//! statistics procedurally: primitives (spheres, boxes, cylinders, planes)
//! are sampled uniformly by area, and each sample becomes an anisotropic
//! Gaussian in the surface's tangent frame, coloured by a seeded value-noise
//! texture. Real-world scans additionally get low-opacity "floater"
//! Gaussians, mimicking reconstruction noise.
//!
//! Everything is deterministic given the seed.

use crate::cloud::GaussianCloud;
use crate::gaussian::Gaussian;
use gs_core::geom::Aabb;
use gs_core::mat::Mat3;
use gs_core::sh;
use gs_core::vec::Vec3;
use gs_core::Quat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Seeded value noise (texture synthesis)
// ---------------------------------------------------------------------------

/// Integer lattice hash → `[0, 1)`.
fn hash3(x: i32, y: i32, z: i32, seed: u32) -> f32 {
    let mut h = seed ^ 0x9e37_79b9;
    for v in [x as u32, y as u32, z as u32] {
        h ^= v.wrapping_mul(0x85eb_ca6b);
        h = h.rotate_left(13).wrapping_mul(0xc2b2_ae35);
    }
    h ^= h >> 16;
    (h & 0x00ff_ffff) as f32 / 16_777_216.0
}

fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Trilinear value noise on the unit lattice, range `[0, 1)`.
pub fn value_noise(p: Vec3, seed: u32) -> f32 {
    let base = Vec3::new(p.x.floor(), p.y.floor(), p.z.floor());
    let f = p - base;
    let (ix, iy, iz) = (base.x as i32, base.y as i32, base.z as i32);
    let (u, v, w) = (smoothstep(f.x), smoothstep(f.y), smoothstep(f.z));
    let mut acc = 0.0;
    for (dz, wz) in [(0, 1.0 - w), (1, w)] {
        for (dy, wy) in [(0, 1.0 - v), (1, v)] {
            for (dx, wx) in [(0, 1.0 - u), (1, u)] {
                acc += wx * wy * wz * hash3(ix + dx, iy + dy, iz + dz, seed);
            }
        }
    }
    acc
}

/// Fractal Brownian motion: `octaves` layers of [`value_noise`], range ≈ `[0, 1)`.
pub fn fbm(p: Vec3, octaves: u32, seed: u32) -> f32 {
    let mut amp = 0.5;
    let mut freq = 1.0;
    let mut acc = 0.0;
    let mut norm = 0.0;
    for o in 0..octaves {
        acc += amp * value_noise(p * freq, seed.wrapping_add(o));
        norm += amp;
        amp *= 0.5;
        freq *= 2.03;
    }
    acc / norm.max(1e-6)
}

// ---------------------------------------------------------------------------
// Palettes
// ---------------------------------------------------------------------------

/// A two-colour noise-mixed material palette.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Palette {
    /// Primary colour.
    pub a: Vec3,
    /// Secondary colour.
    pub b: Vec3,
    /// Spatial frequency of the mixing texture.
    pub frequency: f32,
    /// Noise seed.
    pub seed: u32,
}

impl Palette {
    /// Creates a palette mixing `a` and `b` with noise of the given frequency.
    pub fn new(a: Vec3, b: Vec3, frequency: f32, seed: u32) -> Palette {
        Palette {
            a,
            b,
            frequency,
            seed,
        }
    }

    /// Evaluates the albedo at world position `p`.
    pub fn color_at(&self, p: Vec3) -> Vec3 {
        let t = fbm(p * self.frequency, 3, self.seed);
        self.a.lerp(self.b, t).clamp(0.02, 0.98)
    }
}

// ---------------------------------------------------------------------------
// Surface primitives
// ---------------------------------------------------------------------------

/// A point sampled on a primitive's surface.
#[derive(Copy, Clone, Debug)]
pub struct SurfaceSample {
    /// Surface point.
    pub pos: Vec3,
    /// Outward unit normal.
    pub normal: Vec3,
}

/// Parametric surfaces the generator can sample by area.
#[derive(Clone, Debug, PartialEq)]
pub enum Primitive {
    /// Full sphere surface.
    Sphere { center: Vec3, radius: f32 },
    /// Upper half-sphere (`z >= center.z` hemisphere around `up`).
    Dome { center: Vec3, radius: f32 },
    /// All six faces of an axis-aligned box.
    BoxSurface { aabb: Aabb },
    /// Open cylinder side plus both caps, axis-aligned along `axis`
    /// (0 = x, 1 = y, 2 = z).
    Cylinder {
        base: Vec3,
        axis: usize,
        radius: f32,
        height: f32,
    },
    /// Rectangle spanned by `u_vec` × `v_vec` from `origin`, normal
    /// `u_vec × v_vec` normalized.
    Rect {
        origin: Vec3,
        u_vec: Vec3,
        v_vec: Vec3,
    },
}

impl Primitive {
    /// Total surface area (used to distribute sample budgets).
    pub fn area(&self) -> f32 {
        match self {
            Primitive::Sphere { radius, .. } => 4.0 * std::f32::consts::PI * radius * radius,
            Primitive::Dome { radius, .. } => 2.0 * std::f32::consts::PI * radius * radius,
            Primitive::BoxSurface { aabb } => {
                let e = aabb.extent();
                2.0 * (e.x * e.y + e.y * e.z + e.x * e.z)
            }
            Primitive::Cylinder { radius, height, .. } => {
                2.0 * std::f32::consts::PI * radius * height
                    + 2.0 * std::f32::consts::PI * radius * radius
            }
            Primitive::Rect { u_vec, v_vec, .. } => u_vec.cross(*v_vec).length(),
        }
    }

    /// Draws one uniform-by-area surface sample.
    pub fn sample(&self, rng: &mut StdRng) -> SurfaceSample {
        match self {
            Primitive::Sphere { center, radius } => {
                let n = sample_unit_sphere(rng);
                SurfaceSample {
                    pos: *center + n * *radius,
                    normal: n,
                }
            }
            Primitive::Dome { center, radius } => {
                let mut n = sample_unit_sphere(rng);
                n.z = n.z.abs();
                SurfaceSample {
                    pos: *center + n * *radius,
                    normal: n,
                }
            }
            Primitive::BoxSurface { aabb } => sample_box_surface(aabb, rng),
            Primitive::Cylinder {
                base,
                axis,
                radius,
                height,
            } => sample_cylinder(*base, *axis, *radius, *height, rng),
            Primitive::Rect {
                origin,
                u_vec,
                v_vec,
            } => {
                let (su, sv) = (rng.gen::<f32>(), rng.gen::<f32>());
                SurfaceSample {
                    pos: *origin + *u_vec * su + *v_vec * sv,
                    normal: u_vec.cross(*v_vec).normalized(),
                }
            }
        }
    }
}

fn sample_unit_sphere(rng: &mut StdRng) -> Vec3 {
    // Marsaglia rejection-free: z uniform, azimuth uniform.
    let z: f32 = rng.gen_range(-1.0..1.0);
    let theta: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    let r = (1.0 - z * z).max(0.0).sqrt();
    Vec3::new(r * theta.cos(), r * theta.sin(), z)
}

fn sample_box_surface(aabb: &Aabb, rng: &mut StdRng) -> SurfaceSample {
    let e = aabb.extent();
    // Face areas: ±x, ±y, ±z pairs.
    let areas = [
        e.y * e.z,
        e.y * e.z,
        e.x * e.z,
        e.x * e.z,
        e.x * e.y,
        e.x * e.y,
    ];
    let total: f32 = areas.iter().sum();
    let mut pick = rng.gen_range(0.0..total.max(1e-12));
    let mut face = 0;
    for (i, a) in areas.iter().enumerate() {
        if pick < *a {
            face = i;
            break;
        }
        pick -= a;
    }
    let (u, v) = (rng.gen::<f32>(), rng.gen::<f32>());
    let (pos, normal) = match face {
        0 => (
            Vec3::new(aabb.min.x, aabb.min.y + u * e.y, aabb.min.z + v * e.z),
            -Vec3::X,
        ),
        1 => (
            Vec3::new(aabb.max.x, aabb.min.y + u * e.y, aabb.min.z + v * e.z),
            Vec3::X,
        ),
        2 => (
            Vec3::new(aabb.min.x + u * e.x, aabb.min.y, aabb.min.z + v * e.z),
            -Vec3::Y,
        ),
        3 => (
            Vec3::new(aabb.min.x + u * e.x, aabb.max.y, aabb.min.z + v * e.z),
            Vec3::Y,
        ),
        4 => (
            Vec3::new(aabb.min.x + u * e.x, aabb.min.y + v * e.y, aabb.min.z),
            -Vec3::Z,
        ),
        _ => (
            Vec3::new(aabb.min.x + u * e.x, aabb.min.y + v * e.y, aabb.max.z),
            Vec3::Z,
        ),
    };
    SurfaceSample { pos, normal }
}

fn sample_cylinder(
    base: Vec3,
    axis: usize,
    radius: f32,
    height: f32,
    rng: &mut StdRng,
) -> SurfaceSample {
    let side_area = std::f32::consts::TAU * radius * height;
    let cap_area = std::f32::consts::PI * radius * radius;
    let total = side_area + 2.0 * cap_area;
    let pick: f32 = rng.gen_range(0.0..total);
    let theta: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    // Local frame: axis direction `w`, radial in the orthogonal plane.
    let (u_axis, v_axis, w_axis) = match axis {
        0 => (Vec3::Y, Vec3::Z, Vec3::X),
        1 => (Vec3::Z, Vec3::X, Vec3::Y),
        _ => (Vec3::X, Vec3::Y, Vec3::Z),
    };
    if pick < side_area {
        let h: f32 = rng.gen_range(0.0..height);
        let radial = u_axis * theta.cos() + v_axis * theta.sin();
        SurfaceSample {
            pos: base + radial * radius + w_axis * h,
            normal: radial,
        }
    } else {
        let top = pick >= side_area + cap_area;
        let r = radius * rng.gen::<f32>().sqrt();
        let radial = u_axis * theta.cos() + v_axis * theta.sin();
        let h = if top { height } else { 0.0 };
        let normal = if top { w_axis } else { -w_axis };
        SurfaceSample {
            pos: base + radial * r + w_axis * h,
            normal,
        }
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Knobs shared by all emitted Gaussians of one surface batch.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SurfaceStyle {
    /// Mean tangent-plane extent (standard deviation) of a splat.
    pub patch: f32,
    /// Ratio of the normal-direction scale to the tangent scales
    /// (≈0.15 for flat, surface-hugging splats).
    pub flatness: f32,
    /// Mean opacity.
    pub opacity: f32,
    /// Strength of random higher-order SH (view dependence).
    pub sh_detail: f32,
}

impl Default for SurfaceStyle {
    fn default() -> Self {
        SurfaceStyle {
            patch: 0.02,
            flatness: 0.15,
            opacity: 0.85,
            sh_detail: 0.08,
        }
    }
}

/// Accumulates primitives into a Gaussian cloud with one seeded RNG.
///
/// ```
/// use gs_scene::procgen::{Palette, Primitive, SceneBuilder, SurfaceStyle};
/// use gs_core::vec::Vec3;
/// let mut b = SceneBuilder::new(7);
/// let pal = Palette::new(Vec3::new(0.8, 0.2, 0.2), Vec3::new(0.9, 0.8, 0.2), 2.0, 1);
/// b.add_surface(
///     &Primitive::Sphere { center: Vec3::ZERO, radius: 1.0 },
///     500,
///     &pal,
///     &SurfaceStyle::default(),
/// );
/// let cloud = b.finish();
/// assert_eq!(cloud.len(), 500);
/// assert!(cloud.is_valid());
/// ```
#[derive(Debug)]
pub struct SceneBuilder {
    rng: StdRng,
    cloud: GaussianCloud,
}

impl SceneBuilder {
    /// Creates a builder with a deterministic seed.
    pub fn new(seed: u64) -> SceneBuilder {
        SceneBuilder {
            rng: StdRng::seed_from_u64(seed),
            cloud: GaussianCloud::new(),
        }
    }

    /// Number of Gaussians emitted so far.
    pub fn len(&self) -> usize {
        self.cloud.len()
    }

    /// `true` when nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.cloud.is_empty()
    }

    /// Emits `count` surface-aligned Gaussians on `prim`.
    pub fn add_surface(
        &mut self,
        prim: &Primitive,
        count: usize,
        palette: &Palette,
        style: &SurfaceStyle,
    ) {
        for _ in 0..count {
            let s = prim.sample(&mut self.rng);
            let g = self.surface_gaussian(&s, palette, style);
            self.cloud.push(g);
        }
    }

    /// Emits low-opacity volumetric "floaters" inside `volume` — the
    /// reconstruction noise real-world 3DGS scans exhibit.
    pub fn add_floaters(&mut self, volume: &Aabb, count: usize, palette: &Palette, scale: f32) {
        let e = volume.extent();
        for _ in 0..count {
            let pos = volume.min
                + Vec3::new(
                    self.rng.gen::<f32>() * e.x,
                    self.rng.gen::<f32>() * e.y,
                    self.rng.gen::<f32>() * e.z,
                );
            let s = scale * (0.5 + self.rng.gen::<f32>());
            let color = palette.color_at(pos);
            let mut g = Gaussian::isotropic(pos, s, color, 0.04 + 0.10 * self.rng.gen::<f32>());
            g.scale = Vec3::new(
                s * (0.6 + 0.8 * self.rng.gen::<f32>()),
                s * (0.6 + 0.8 * self.rng.gen::<f32>()),
                s * (0.6 + 0.8 * self.rng.gen::<f32>()),
            );
            g.rot = random_rotation(&mut self.rng);
            self.cloud.push(g);
        }
    }

    /// Finishes and returns the cloud.
    pub fn finish(self) -> GaussianCloud {
        self.cloud
    }

    fn surface_gaussian(
        &mut self,
        s: &SurfaceSample,
        palette: &Palette,
        style: &SurfaceStyle,
    ) -> Gaussian {
        let rng = &mut self.rng;
        // Tangent frame: normal = local z.
        let n = s.normal;
        let helper = if n.x.abs() < 0.8 { Vec3::X } else { Vec3::Y };
        let t = n.cross(helper).normalized();
        let b = n.cross(t);
        // Random in-plane spin so splats are not aligned.
        let spin: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let tp = t * spin.cos() + b * spin.sin();
        let bp = n.cross(tp);
        let rot = Quat::from_rotation(&Mat3::from_cols(tp, bp, n));

        let patch = style.patch * (0.55 + 0.9 * rng.gen::<f32>());
        let aniso = 0.6 + 0.8 * rng.gen::<f32>();
        let scale =
            Vec3::new(patch * aniso, patch / aniso, patch * style.flatness).max(Vec3::splat(1e-4));

        let color = palette.color_at(s.pos);
        let mut g = Gaussian {
            pos: s.pos,
            scale,
            rot,
            opacity: (style.opacity + 0.12 * (rng.gen::<f32>() - 0.5)).clamp(0.05, 0.99),
            sh: [0.0; sh::SH_COEFFS],
        };
        g.sh[..3].copy_from_slice(&sh::color_to_dc(color));
        // Mild view dependence: band-1/2 coefficients, decaying with band.
        for k in 1..sh::SH_BASIS {
            let band = (k as f32).sqrt().floor();
            let amp = style.sh_detail / (1.0 + band);
            for c in 0..3 {
                g.sh[3 * k + c] = amp * (rng.gen::<f32>() - 0.5);
            }
        }
        g
    }
}

fn random_rotation(rng: &mut StdRng) -> Quat {
    let axis = sample_unit_sphere(rng);
    let angle: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    Quat::from_axis_angle(axis, angle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let p = Vec3::new(1.3, -2.7, 0.4);
        let a = value_noise(p, 42);
        let b = value_noise(p, 42);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
        assert_ne!(value_noise(p, 43), a);
        let f = fbm(p, 4, 7);
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn noise_is_continuous() {
        let p = Vec3::new(0.5, 0.5, 0.5);
        let q = p + Vec3::splat(1e-3);
        assert!((value_noise(p, 1) - value_noise(q, 1)).abs() < 0.05);
    }

    #[test]
    fn sphere_samples_lie_on_sphere_with_outward_normals() {
        let prim = Primitive::Sphere {
            center: Vec3::new(1.0, 2.0, 3.0),
            radius: 2.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = prim.sample(&mut rng);
            let r = (s.pos - Vec3::new(1.0, 2.0, 3.0)).length();
            assert!((r - 2.0).abs() < 1e-4);
            let out = (s.pos - Vec3::new(1.0, 2.0, 3.0)).normalized();
            assert!(out.dot(s.normal) > 0.999);
        }
    }

    #[test]
    fn box_samples_lie_on_faces() {
        let aabb = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 1.0, 3.0));
        let prim = Primitive::BoxSurface { aabb };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..300 {
            let s = prim.sample(&mut rng);
            let on_face = (s.pos.x - 0.0).abs() < 1e-5
                || (s.pos.x - 2.0).abs() < 1e-5
                || (s.pos.y - 0.0).abs() < 1e-5
                || (s.pos.y - 1.0).abs() < 1e-5
                || (s.pos.z - 0.0).abs() < 1e-5
                || (s.pos.z - 3.0).abs() < 1e-5;
            assert!(on_face, "sample not on a face: {}", s.pos);
            assert!((s.normal.length() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cylinder_samples_within_bounds() {
        let prim = Primitive::Cylinder {
            base: Vec3::ZERO,
            axis: 2,
            radius: 1.0,
            height: 2.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let s = prim.sample(&mut rng);
            let r = (s.pos.x * s.pos.x + s.pos.y * s.pos.y).sqrt();
            assert!(r <= 1.0 + 1e-4);
            assert!((-1e-4..=2.0001).contains(&s.pos.z));
        }
    }

    #[test]
    fn dome_samples_in_upper_half() {
        let prim = Primitive::Dome {
            center: Vec3::ZERO,
            radius: 1.5,
        };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let s = prim.sample(&mut rng);
            assert!(s.pos.z >= -1e-5);
        }
    }

    #[test]
    fn areas_are_positive_and_sane() {
        let sphere = Primitive::Sphere {
            center: Vec3::ZERO,
            radius: 1.0,
        };
        assert!((sphere.area() - 4.0 * std::f32::consts::PI).abs() < 1e-4);
        let rect = Primitive::Rect {
            origin: Vec3::ZERO,
            u_vec: Vec3::new(2.0, 0.0, 0.0),
            v_vec: Vec3::new(0.0, 3.0, 0.0),
        };
        assert!((rect.area() - 6.0).abs() < 1e-5);
    }

    #[test]
    fn builder_is_deterministic() {
        let pal = Palette::new(Vec3::splat(0.2), Vec3::splat(0.8), 1.0, 5);
        let make = || {
            let mut b = SceneBuilder::new(99);
            b.add_surface(
                &Primitive::Sphere {
                    center: Vec3::ZERO,
                    radius: 1.0,
                },
                100,
                &pal,
                &SurfaceStyle::default(),
            );
            b.finish()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn surface_gaussians_are_flat_and_valid() {
        let pal = Palette::new(Vec3::splat(0.3), Vec3::splat(0.7), 1.0, 5);
        let mut b = SceneBuilder::new(11);
        b.add_surface(
            &Primitive::Rect {
                origin: Vec3::ZERO,
                u_vec: Vec3::new(1.0, 0.0, 0.0),
                v_vec: Vec3::new(0.0, 1.0, 0.0),
            },
            200,
            &pal,
            &SurfaceStyle::default(),
        );
        let cloud = b.finish();
        assert!(cloud.is_valid());
        for g in &cloud {
            // Flat: smallest scale well below the largest.
            assert!(g.scale.min_component() < 0.5 * g.max_scale());
        }
    }

    #[test]
    fn floaters_have_low_opacity() {
        let pal = Palette::new(Vec3::splat(0.4), Vec3::splat(0.6), 1.0, 5);
        let mut b = SceneBuilder::new(12);
        let vol = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
        b.add_floaters(&vol, 150, &pal, 0.3);
        let cloud = b.finish();
        assert_eq!(cloud.len(), 150);
        for g in &cloud {
            assert!(g.opacity < 0.2);
            assert!(vol.contains(g.pos));
        }
    }
}
