//! The 59-parameter Gaussian primitive.

use gs_core::ewa::covariance3d;
use gs_core::sh::{self, SH_COEFFS};
use gs_core::sym::Sym3;
use gs_core::vec::Vec3;
use gs_core::Quat;
use serde::{Deserialize, Serialize};

/// Offset of the position block in the flat 59-float parameter vector.
pub const PARAM_POS: usize = 0;
/// Offset of the scale block.
pub const PARAM_SCALE: usize = 3;
/// Offset of the rotation quaternion block.
pub const PARAM_ROT: usize = 6;
/// Offset of the opacity scalar.
pub const PARAM_OPACITY: usize = 10;
/// Offset of the SH coefficient block.
pub const PARAM_SH: usize = 11;

/// Bytes of the uncompressed "first half" of the customized layout
/// (paper Fig. 8): x, y, z and the maximum scale as f32.
pub const COARSE_BYTES: usize = 4 * 4;

/// Bytes of the uncompressed "second half": the remaining 55 parameters.
pub const FINE_BYTES_RAW: usize = gs_core::FINE_PARAMS * 4;

/// A single 3-D Gaussian: the atom of 3DGS scenes.
///
/// Carries the full 59-parameter payload the paper counts: position (3),
/// scale (3), rotation (4), opacity (1) and 48 SH colour coefficients.
///
/// ```
/// use gs_scene::Gaussian;
/// use gs_core::vec::Vec3;
/// let g = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::new(1.0, 0.0, 0.0), 0.9);
/// assert_eq!(g.max_scale(), 0.1);
/// assert!((g.color_toward(Vec3::Z).x - 1.0).abs() < 1e-5);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    /// World-space centre.
    pub pos: Vec3,
    /// Per-axis standard deviations (linear, not log).
    pub scale: Vec3,
    /// Orientation.
    pub rot: Quat,
    /// Base opacity in `[0, 1]`.
    pub opacity: f32,
    /// SH coefficients, layout `[basis][rgb]`, DC first.
    #[serde(with = "sh_serde")]
    pub sh: [f32; SH_COEFFS],
}

/// Serde support for the 48-element SH array (serde only derives arrays up
/// to 32 elements).
// The vendored offline serde stub ignores `#[serde(with = ...)]`, leaving
// these adapters unreferenced; they are kept for real-serde compatibility.
#[allow(dead_code)]
mod sh_serde {
    use super::SH_COEFFS;
    use serde::de::Error;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &[f32; SH_COEFFS], s: S) -> Result<S::Ok, S::Error> {
        v.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[f32; SH_COEFFS], D::Error> {
        let v = Vec::<f32>::deserialize(d)?;
        v.try_into()
            .map_err(|v: Vec<f32>| D::Error::invalid_length(v.len(), &"48 SH coefficients"))
    }
}

impl Default for Gaussian {
    fn default() -> Self {
        Gaussian {
            pos: Vec3::ZERO,
            scale: Vec3::splat(0.01),
            rot: Quat::IDENTITY,
            opacity: 1.0,
            sh: [0.0; SH_COEFFS],
        }
    }
}

impl Gaussian {
    /// Creates an isotropic Gaussian of the given colour (encoded into the
    /// DC coefficients) — handy for tests and synthetic content.
    pub fn isotropic(pos: Vec3, scale: f32, color: Vec3, opacity: f32) -> Gaussian {
        let mut sh = [0.0; SH_COEFFS];
        sh[..3].copy_from_slice(&sh::color_to_dc(color));
        Gaussian {
            pos,
            scale: Vec3::splat(scale),
            rot: Quat::IDENTITY,
            opacity,
            sh,
        }
    }

    /// Largest of the three scales — the `s` of the coarse-filter layout.
    pub fn max_scale(&self) -> f32 {
        self.scale.max_component()
    }

    /// World-space 3-D covariance.
    pub fn cov3d(&self) -> Sym3 {
        covariance3d(self.scale, self.rot)
    }

    /// View-dependent colour seen from direction `dir` (unit vector from the
    /// camera centre toward the Gaussian), full SH degree.
    pub fn color_toward(&self, dir: Vec3) -> Vec3 {
        sh::eval_color(&self.sh, dir, 3)
    }

    /// The DC (view-independent) colour.
    pub fn base_color(&self) -> Vec3 {
        sh::eval_color(&self.sh, Vec3::Z, 0)
    }

    /// A conservative world-space bounding radius (3σ of the largest scale).
    pub fn bounding_radius(&self) -> f32 {
        3.0 * self.max_scale()
    }

    /// Serializes to the flat 59-float parameter vector
    /// (`[pos, scale, rot, opacity, sh]`).
    pub fn to_params(&self) -> [f32; gs_core::GAUSSIAN_PARAMS] {
        let mut p = [0.0; gs_core::GAUSSIAN_PARAMS];
        p[PARAM_POS..PARAM_POS + 3].copy_from_slice(&self.pos.to_array());
        p[PARAM_SCALE..PARAM_SCALE + 3].copy_from_slice(&self.scale.to_array());
        p[PARAM_ROT..PARAM_ROT + 4].copy_from_slice(&self.rot.to_array());
        p[PARAM_OPACITY] = self.opacity;
        p[PARAM_SH..].copy_from_slice(&self.sh);
        p
    }

    /// Deserializes from the flat parameter vector.
    pub fn from_params(p: &[f32; gs_core::GAUSSIAN_PARAMS]) -> Gaussian {
        let mut sh = [0.0; SH_COEFFS];
        sh.copy_from_slice(&p[PARAM_SH..]);
        Gaussian {
            pos: Vec3::new(p[0], p[1], p[2]),
            scale: Vec3::new(p[3], p[4], p[5]),
            rot: Quat::new(p[6], p[7], p[8], p[9]),
            opacity: p[PARAM_OPACITY],
            sh,
        }
    }

    /// Returns `true` when all parameters are finite and physically valid
    /// (positive scales, opacity in `[0, 1]`).
    pub fn is_valid(&self) -> bool {
        self.pos.is_finite()
            && self.scale.is_finite()
            && self.scale.min_component() > 0.0
            && self.rot.is_finite()
            && self.opacity.is_finite()
            && (0.0..=1.0).contains(&self.opacity)
            && self.sh.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_roundtrip() {
        let mut g = Gaussian::isotropic(
            Vec3::new(1.0, 2.0, 3.0),
            0.25,
            Vec3::new(0.2, 0.4, 0.8),
            0.7,
        );
        g.scale = Vec3::new(0.1, 0.2, 0.3);
        g.rot = Quat::new(0.9, 0.1, -0.2, 0.3);
        g.sh[20] = 0.5;
        let p = g.to_params();
        assert_eq!(Gaussian::from_params(&p), g);
    }

    #[test]
    fn param_layout_offsets() {
        let g = Gaussian::isotropic(Vec3::new(7.0, 8.0, 9.0), 0.5, Vec3::splat(0.5), 0.25);
        let p = g.to_params();
        assert_eq!(p[0], 7.0);
        assert_eq!(p[PARAM_SCALE], 0.5);
        assert_eq!(p[PARAM_ROT], 1.0); // identity quaternion w
        assert_eq!(p[PARAM_OPACITY], 0.25);
    }

    #[test]
    fn max_scale_and_radius() {
        let g = Gaussian {
            scale: Vec3::new(0.1, 0.4, 0.2),
            ..Gaussian::default()
        };
        assert_eq!(g.max_scale(), 0.4);
        assert!((g.bounding_radius() - 1.2).abs() < 1e-6);
    }

    #[test]
    fn isotropic_color_is_direction_independent() {
        let g = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::new(0.9, 0.1, 0.3), 1.0);
        let a = g.color_toward(Vec3::Z);
        let b = g.color_toward(Vec3::new(0.6, 0.0, 0.8));
        assert!((a - b).length() < 1e-6);
        assert!((a - Vec3::new(0.9, 0.1, 0.3)).length() < 1e-5);
    }

    #[test]
    fn validity_checks() {
        let g = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::splat(0.5), 0.5);
        assert!(g.is_valid());
        let mut bad = g.clone();
        bad.opacity = 1.5;
        assert!(!bad.is_valid());
        let mut bad2 = g.clone();
        bad2.scale.y = 0.0;
        assert!(!bad2.is_valid());
        let mut bad3 = g;
        bad3.sh[5] = f32::NAN;
        assert!(!bad3.is_valid());
    }

    #[test]
    fn layout_byte_sizes_match_paper() {
        assert_eq!(COARSE_BYTES, 16);
        assert_eq!(FINE_BYTES_RAW, 220);
        assert_eq!(COARSE_BYTES + FINE_BYTES_RAW, gs_core::GAUSSIAN_PARAMS * 4);
    }
}
