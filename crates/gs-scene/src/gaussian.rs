//! The 59-parameter Gaussian primitive.

use gs_core::ewa::covariance3d;
use gs_core::sh::{self, SH_COEFFS};
use gs_core::sym::Sym3;
use gs_core::vec::Vec3;
use gs_core::Quat;
use serde::{Deserialize, Serialize};

/// Offset of the position block in the flat 59-float parameter vector.
pub const PARAM_POS: usize = 0;
/// Offset of the scale block.
pub const PARAM_SCALE: usize = 3;
/// Offset of the rotation quaternion block.
pub const PARAM_ROT: usize = 6;
/// Offset of the opacity scalar.
pub const PARAM_OPACITY: usize = 10;
/// Offset of the SH coefficient block.
pub const PARAM_SH: usize = 11;

/// Bytes of the uncompressed "first half" of the customized layout
/// (paper Fig. 8): x, y, z and the maximum scale as f32.
pub const COARSE_BYTES: usize = 4 * 4;

/// Bytes of the uncompressed "second half": the remaining 55 parameters
/// (the two non-maximum scales, rotation, opacity, SH — the maximum scale
/// lives in the first half and is *not* duplicated).
pub const FINE_BYTES_RAW: usize = gs_core::FINE_PARAMS * 4;

/// A single 3-D Gaussian: the atom of 3DGS scenes.
///
/// Carries the full 59-parameter payload the paper counts: position (3),
/// scale (3), rotation (4), opacity (1) and 48 SH colour coefficients.
///
/// ```
/// use gs_scene::Gaussian;
/// use gs_core::vec::Vec3;
/// let g = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::new(1.0, 0.0, 0.0), 0.9);
/// assert_eq!(g.max_scale(), 0.1);
/// assert!((g.color_toward(Vec3::Z).x - 1.0).abs() < 1e-5);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    /// World-space centre.
    pub pos: Vec3,
    /// Per-axis standard deviations (linear, not log).
    pub scale: Vec3,
    /// Orientation.
    pub rot: Quat,
    /// Base opacity in `[0, 1]`.
    pub opacity: f32,
    /// SH coefficients, layout `[basis][rgb]`, DC first.
    #[serde(with = "sh_serde")]
    pub sh: [f32; SH_COEFFS],
}

/// Serde support for the 48-element SH array (serde only derives arrays up
/// to 32 elements).
// The vendored offline serde stub ignores `#[serde(with = ...)]`, leaving
// these adapters unreferenced; they are kept for real-serde compatibility.
#[allow(dead_code)]
mod sh_serde {
    use super::SH_COEFFS;
    use serde::de::Error;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &[f32; SH_COEFFS], s: S) -> Result<S::Ok, S::Error> {
        v.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[f32; SH_COEFFS], D::Error> {
        let v = Vec::<f32>::deserialize(d)?;
        v.try_into()
            .map_err(|v: Vec<f32>| D::Error::invalid_length(v.len(), &"48 SH coefficients"))
    }
}

impl Default for Gaussian {
    fn default() -> Self {
        Gaussian {
            pos: Vec3::ZERO,
            scale: Vec3::splat(0.01),
            rot: Quat::IDENTITY,
            opacity: 1.0,
            sh: [0.0; SH_COEFFS],
        }
    }
}

impl Gaussian {
    /// Creates an isotropic Gaussian of the given colour (encoded into the
    /// DC coefficients) — handy for tests and synthetic content.
    pub fn isotropic(pos: Vec3, scale: f32, color: Vec3, opacity: f32) -> Gaussian {
        let mut sh = [0.0; SH_COEFFS];
        sh[..3].copy_from_slice(&sh::color_to_dc(color));
        Gaussian {
            pos,
            scale: Vec3::splat(scale),
            rot: Quat::IDENTITY,
            opacity,
            sh,
        }
    }

    /// Largest of the three scales — the `s` of the coarse-filter layout.
    pub fn max_scale(&self) -> f32 {
        self.scale.max_component()
    }

    /// World-space 3-D covariance.
    pub fn cov3d(&self) -> Sym3 {
        covariance3d(self.scale, self.rot)
    }

    /// View-dependent colour seen from direction `dir` (unit vector from the
    /// camera centre toward the Gaussian), full SH degree.
    pub fn color_toward(&self, dir: Vec3) -> Vec3 {
        sh::eval_color(&self.sh, dir, 3)
    }

    /// The DC (view-independent) colour.
    pub fn base_color(&self) -> Vec3 {
        sh::eval_color(&self.sh, Vec3::Z, 0)
    }

    /// A conservative world-space bounding radius (3σ of the largest scale).
    pub fn bounding_radius(&self) -> f32 {
        3.0 * self.max_scale()
    }

    /// Serializes to the flat 59-float parameter vector
    /// (`[pos, scale, rot, opacity, sh]`).
    pub fn to_params(&self) -> [f32; gs_core::GAUSSIAN_PARAMS] {
        let mut p = [0.0; gs_core::GAUSSIAN_PARAMS];
        p[PARAM_POS..PARAM_POS + 3].copy_from_slice(&self.pos.to_array());
        p[PARAM_SCALE..PARAM_SCALE + 3].copy_from_slice(&self.scale.to_array());
        p[PARAM_ROT..PARAM_ROT + 4].copy_from_slice(&self.rot.to_array());
        p[PARAM_OPACITY] = self.opacity;
        p[PARAM_SH..].copy_from_slice(&self.sh);
        p
    }

    /// Deserializes from the flat parameter vector.
    pub fn from_params(p: &[f32; gs_core::GAUSSIAN_PARAMS]) -> Gaussian {
        let mut sh = [0.0; SH_COEFFS];
        sh.copy_from_slice(&p[PARAM_SH..]);
        Gaussian {
            pos: Vec3::new(p[0], p[1], p[2]),
            scale: Vec3::new(p[3], p[4], p[5]),
            rot: Quat::new(p[6], p[7], p[8], p[9]),
            opacity: p[PARAM_OPACITY],
            sh,
        }
    }

    /// Index (0/1/2) of the first scale axis achieving [`Self::max_scale`].
    ///
    /// This is the layout tag of the split record: the coarse half carries
    /// the maximum scale, the fine half the two remaining ones, and this
    /// tag says where to re-insert the maximum on decode. It travels with
    /// the per-voxel index metadata, not inside the 220 B fine record.
    pub fn max_axis(&self) -> u8 {
        let s = self.scale.to_array();
        let m = self.max_scale();
        s.iter().position(|v| *v == m).unwrap_or(0) as u8
    }

    /// Serializes the "first half" of the customized split layout
    /// (paper Fig. 8): `[x, y, z, s_max]` as little-endian f32.
    pub fn coarse_record(&self) -> [u8; COARSE_BYTES] {
        let mut out = [0u8; COARSE_BYTES];
        for (slot, v) in [self.pos.x, self.pos.y, self.pos.z, self.max_scale()]
            .into_iter()
            .enumerate()
        {
            out[slot * 4..slot * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes a [`Self::coarse_record`] back to `(position, max scale)`,
    /// bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics when `bytes` is shorter than [`COARSE_BYTES`].
    pub fn decode_coarse(bytes: &[u8]) -> (Vec3, f32) {
        let f = |i: usize| {
            f32::from_le_bytes([
                bytes[i * 4],
                bytes[i * 4 + 1],
                bytes[i * 4 + 2],
                bytes[i * 4 + 3],
            ])
        };
        (Vec3::new(f(0), f(1), f(2)), f(3))
    }

    /// Serializes the "second half" of the split layout: the 55 remaining
    /// parameters `[scale minors (2), rot (4), opacity (1), sh (48)]` as
    /// little-endian f32, plus the [`Self::max_axis`] layout tag needed to
    /// re-insert the coarse half's maximum scale on decode.
    pub fn fine_record(&self) -> ([u8; FINE_BYTES_RAW], u8) {
        let axis = self.max_axis() as usize;
        let mut params = [0.0f32; gs_core::FINE_PARAMS];
        let mut k = 0;
        for (a, s) in self.scale.to_array().into_iter().enumerate() {
            if a != axis {
                params[k] = s;
                k += 1;
            }
        }
        params[2..6].copy_from_slice(&self.rot.to_array());
        params[6] = self.opacity;
        params[7..].copy_from_slice(&self.sh);
        let mut out = [0u8; FINE_BYTES_RAW];
        for (slot, v) in params.into_iter().enumerate() {
            out[slot * 4..slot * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        (out, axis as u8)
    }

    /// Reassembles a Gaussian from its split halves, bit-exactly:
    /// position and maximum scale from the coarse record, everything else
    /// from the fine record, with the maximum scale re-inserted at
    /// `max_axis`.
    ///
    /// # Panics
    ///
    /// Panics when either record is shorter than its layout or
    /// `max_axis > 2`.
    pub fn from_split_record(coarse: &[u8], fine: &[u8], max_axis: u8) -> Gaussian {
        assert!(max_axis < 3, "max_axis out of range");
        let (pos, s_max) = Self::decode_coarse(coarse);
        let f = |i: usize| {
            f32::from_le_bytes([
                fine[i * 4],
                fine[i * 4 + 1],
                fine[i * 4 + 2],
                fine[i * 4 + 3],
            ])
        };
        let mut scale = [0.0f32; 3];
        let mut k = 0;
        for (a, s) in scale.iter_mut().enumerate() {
            if a == max_axis as usize {
                *s = s_max;
            } else {
                *s = f(k);
                k += 1;
            }
        }
        let rot = Quat::new(f(2), f(3), f(4), f(5));
        let opacity = f(6);
        let mut sh = [0.0f32; SH_COEFFS];
        for (i, v) in sh.iter_mut().enumerate() {
            *v = f(7 + i);
        }
        Gaussian {
            pos,
            scale: Vec3::new(scale[0], scale[1], scale[2]),
            rot,
            opacity,
            sh,
        }
    }

    /// Returns `true` when all parameters are finite and physically valid
    /// (positive scales, opacity in `[0, 1]`).
    pub fn is_valid(&self) -> bool {
        self.pos.is_finite()
            && self.scale.is_finite()
            && self.scale.min_component() > 0.0
            && self.rot.is_finite()
            && self.opacity.is_finite()
            && (0.0..=1.0).contains(&self.opacity)
            && self.sh.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_roundtrip() {
        let mut g = Gaussian::isotropic(
            Vec3::new(1.0, 2.0, 3.0),
            0.25,
            Vec3::new(0.2, 0.4, 0.8),
            0.7,
        );
        g.scale = Vec3::new(0.1, 0.2, 0.3);
        g.rot = Quat::new(0.9, 0.1, -0.2, 0.3);
        g.sh[20] = 0.5;
        let p = g.to_params();
        assert_eq!(Gaussian::from_params(&p), g);
    }

    #[test]
    fn param_layout_offsets() {
        let g = Gaussian::isotropic(Vec3::new(7.0, 8.0, 9.0), 0.5, Vec3::splat(0.5), 0.25);
        let p = g.to_params();
        assert_eq!(p[0], 7.0);
        assert_eq!(p[PARAM_SCALE], 0.5);
        assert_eq!(p[PARAM_ROT], 1.0); // identity quaternion w
        assert_eq!(p[PARAM_OPACITY], 0.25);
    }

    #[test]
    fn max_scale_and_radius() {
        let g = Gaussian {
            scale: Vec3::new(0.1, 0.4, 0.2),
            ..Gaussian::default()
        };
        assert_eq!(g.max_scale(), 0.4);
        assert!((g.bounding_radius() - 1.2).abs() < 1e-6);
    }

    #[test]
    fn isotropic_color_is_direction_independent() {
        let g = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::new(0.9, 0.1, 0.3), 1.0);
        let a = g.color_toward(Vec3::Z);
        let b = g.color_toward(Vec3::new(0.6, 0.0, 0.8));
        assert!((a - b).length() < 1e-6);
        assert!((a - Vec3::new(0.9, 0.1, 0.3)).length() < 1e-5);
    }

    #[test]
    fn validity_checks() {
        let g = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::splat(0.5), 0.5);
        assert!(g.is_valid());
        let mut bad = g.clone();
        bad.opacity = 1.5;
        assert!(!bad.is_valid());
        let mut bad2 = g.clone();
        bad2.scale.y = 0.0;
        assert!(!bad2.is_valid());
        let mut bad3 = g;
        bad3.sh[5] = f32::NAN;
        assert!(!bad3.is_valid());
    }

    #[test]
    fn split_record_roundtrips_bit_exactly() {
        let mut g = Gaussian::isotropic(
            Vec3::new(1.5, -2.25, 3.0),
            0.2,
            Vec3::new(0.1, 0.7, 0.3),
            0.625,
        );
        g.scale = Vec3::new(0.125, 0.5, 0.25); // max on axis 1
        g.rot = Quat::new(0.9, 0.1, -0.2, 0.3);
        g.sh[31] = -0.037;
        assert_eq!(g.max_axis(), 1);
        let coarse = g.coarse_record();
        let (pos, s_max) = Gaussian::decode_coarse(&coarse);
        assert_eq!(pos, g.pos);
        assert_eq!(s_max, 0.5);
        let (fine, axis) = g.fine_record();
        assert_eq!(Gaussian::from_split_record(&coarse, &fine, axis), g);
    }

    #[test]
    fn split_record_handles_tied_scales() {
        // Isotropic scales: every axis holds the maximum; the tag picks the
        // first and the roundtrip must still be exact.
        let g = Gaussian::isotropic(Vec3::new(0.5, 0.5, 0.5), 0.1, Vec3::ONE, 0.9);
        assert_eq!(g.max_axis(), 0);
        let coarse = g.coarse_record();
        let (fine, axis) = g.fine_record();
        assert_eq!(Gaussian::from_split_record(&coarse, &fine, axis), g);
    }

    #[test]
    fn split_record_roundtrips_every_max_axis() {
        for axis in 0..3usize {
            let mut g = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::ONE, 0.8);
            let mut s = [0.1f32, 0.2, 0.3];
            s.swap(axis, 2); // put the maximum on `axis`
            g.scale = Vec3::new(s[0], s[1], s[2]);
            assert_eq!(g.max_axis() as usize, axis);
            let (fine, tag) = g.fine_record();
            assert_eq!(
                Gaussian::from_split_record(&g.coarse_record(), &fine, tag),
                g
            );
        }
    }

    #[test]
    fn layout_byte_sizes_match_paper() {
        assert_eq!(COARSE_BYTES, 16);
        assert_eq!(FINE_BYTES_RAW, 220);
        assert_eq!(COARSE_BYTES + FINE_BYTES_RAW, gs_core::GAUSSIAN_PARAMS * 4);
    }
}
