//! # gs-scene — Gaussian scene model and procedural stand-in datasets
//!
//! The StreamingGS paper evaluates on trained 3DGS checkpoints of six scenes
//! (Lego, Palace, Train, Truck, Playroom, Drjohnson). Trained checkpoints are
//! not available offline, so this crate provides:
//!
//! * the [`Gaussian`]/[`GaussianCloud`] data model (the paper's 59-parameter
//!   representation),
//! * a deterministic procedural generator ([`procgen`]) that builds
//!   surface-aligned Gaussian clouds for six *stand-in* scenes with the same
//!   qualitative statistics (compact synthetic objects vs. large real-world
//!   scans — see `DESIGN.md` §2 for the substitution argument),
//! * a perturbation model ([`perturb`]) that turns a ground-truth cloud into
//!   a "trained" cloud whose render-vs-ground-truth PSNR lands in the paper's
//!   per-scene range, and
//! * camera rigs and trajectories ([`trajectory`]).
//!
//! ## Example
//!
//! ```
//! use gs_scene::scenes::{SceneConfig, SceneKind};
//!
//! let scene = SceneKind::Lego.build(&SceneConfig::tiny());
//! assert!(scene.ground_truth.len() > 100);
//! assert!(!scene.eval_cameras.is_empty());
//! ```

pub mod cloud;
pub mod gaussian;
pub mod io;
pub mod perturb;
pub mod procgen;
pub mod scenes;
pub mod trajectory;

pub use cloud::GaussianCloud;
pub use gaussian::Gaussian;
pub use perturb::PerturbConfig;
pub use scenes::{Scene, SceneConfig, SceneKind};
