//! Perturbation model: ground-truth cloud → "trained" cloud.
//!
//! We do not have the paper's trained checkpoints, so the "trained model"
//! is simulated as the ground-truth cloud plus calibrated parameter noise
//! (DESIGN.md §2). The noise magnitudes are per-scene knobs chosen so the
//! tile-centric render of the perturbed cloud scores a PSNR against the
//! ground-truth render in the paper's per-scene range — which is what makes
//! Table II's *deltas* meaningful.
//!
//! Positions receive a small jitter too (imperfect geometry), but the
//! fine-tuning stage (`gs-tune`) later keeps positions fixed, exactly as the
//! paper prescribes.

use crate::cloud::GaussianCloud;
use gs_core::vec::Vec3;
use gs_core::Quat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Noise magnitudes applied to each parameter group.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerturbConfig {
    /// Position jitter as a fraction of the Gaussian's own max scale.
    pub pos_sigma: f32,
    /// Log-space scale noise (σ of `ln s` perturbation).
    pub scale_sigma: f32,
    /// Rotation noise: σ of the random axis-angle in radians.
    pub rot_sigma: f32,
    /// Logit-space opacity noise.
    pub opacity_sigma: f32,
    /// Absolute SH coefficient noise (scaled down for higher bands).
    pub sh_sigma: f32,
}

impl Default for PerturbConfig {
    fn default() -> Self {
        PerturbConfig {
            pos_sigma: 0.2,
            scale_sigma: 0.12,
            rot_sigma: 0.08,
            opacity_sigma: 0.25,
            sh_sigma: 0.03,
        }
    }
}

impl PerturbConfig {
    /// A configuration with every magnitude multiplied by `k` — the single
    /// knob the per-scene calibration turns.
    pub fn scaled(&self, k: f32) -> PerturbConfig {
        PerturbConfig {
            pos_sigma: self.pos_sigma * k,
            scale_sigma: self.scale_sigma * k,
            rot_sigma: self.rot_sigma * k,
            opacity_sigma: self.opacity_sigma * k,
            sh_sigma: self.sh_sigma * k,
        }
    }

    /// No-op configuration (all magnitudes zero).
    pub fn none() -> PerturbConfig {
        PerturbConfig {
            pos_sigma: 0.0,
            scale_sigma: 0.0,
            rot_sigma: 0.0,
            opacity_sigma: 0.0,
            sh_sigma: 0.0,
        }
    }
}

fn gauss(rng: &mut StdRng) -> f32 {
    // Box–Muller; two uniforms → one normal sample.
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

fn logit(p: f32) -> f32 {
    let p = p.clamp(1e-5, 1.0 - 1e-5);
    (p / (1.0 - p)).ln()
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Applies the perturbation, returning the "trained" cloud.
///
/// Deterministic in `(cloud, config, seed)`.
///
/// ```
/// use gs_scene::perturb::{perturb, PerturbConfig};
/// use gs_scene::{Gaussian, GaussianCloud};
/// use gs_core::vec::Vec3;
/// let gt: GaussianCloud =
///     (0..4).map(|i| Gaussian::isotropic(Vec3::new(i as f32, 0.0, 0.0), 0.1, Vec3::ONE, 0.9)).collect();
/// let trained = perturb(&gt, &PerturbConfig::default(), 1);
/// assert_eq!(trained.len(), gt.len());
/// assert!(trained.is_valid());
/// assert_ne!(trained, gt);
/// ```
pub fn perturb(cloud: &GaussianCloud, cfg: &PerturbConfig, seed: u64) -> GaussianCloud {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_f00d);
    let mut out = cloud.clone();
    for g in out.iter_mut() {
        let jitter = cfg.pos_sigma * g.max_scale();
        g.pos += Vec3::new(gauss(&mut rng), gauss(&mut rng), gauss(&mut rng)) * jitter;

        g.scale = Vec3::new(
            g.scale.x * (cfg.scale_sigma * gauss(&mut rng)).exp(),
            g.scale.y * (cfg.scale_sigma * gauss(&mut rng)).exp(),
            g.scale.z * (cfg.scale_sigma * gauss(&mut rng)).exp(),
        )
        .max(Vec3::splat(1e-5));

        if cfg.rot_sigma > 0.0 {
            let axis = Vec3::new(gauss(&mut rng), gauss(&mut rng), gauss(&mut rng));
            if axis.length() > 1e-6 {
                let angle = cfg.rot_sigma * gauss(&mut rng);
                g.rot = (Quat::from_axis_angle(axis, angle) * g.rot).normalized();
            }
        }

        g.opacity = sigmoid(logit(g.opacity) + cfg.opacity_sigma * gauss(&mut rng));

        for k in 0..gs_core::sh::SH_BASIS {
            let band = (k as f32).sqrt().floor();
            let amp = cfg.sh_sigma / (1.0 + band);
            for c in 0..3 {
                g.sh[3 * k + c] += amp * gauss(&mut rng);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::Gaussian;

    fn gt() -> GaussianCloud {
        (0..50)
            .map(|i| {
                Gaussian::isotropic(
                    Vec3::new((i % 7) as f32, (i % 5) as f32, (i % 3) as f32),
                    0.05 + 0.01 * (i % 4) as f32,
                    Vec3::new(0.3, 0.5, 0.7),
                    0.8,
                )
            })
            .collect()
    }

    #[test]
    fn deterministic_given_seed() {
        let c = gt();
        let cfg = PerturbConfig::default();
        assert_eq!(perturb(&c, &cfg, 9), perturb(&c, &cfg, 9));
        assert_ne!(perturb(&c, &cfg, 9), perturb(&c, &cfg, 10));
    }

    #[test]
    fn zero_noise_is_identity() {
        let c = gt();
        assert_eq!(perturb(&c, &PerturbConfig::none(), 3), c);
    }

    #[test]
    fn output_stays_valid() {
        let c = gt();
        let strong = PerturbConfig::default().scaled(3.0);
        let p = perturb(&c, &strong, 4);
        assert!(p.is_valid());
    }

    #[test]
    fn scaled_knob_increases_displacement() {
        let c = gt();
        let small = perturb(&c, &PerturbConfig::default().scaled(0.2), 5);
        let large = perturb(&c, &PerturbConfig::default().scaled(2.0), 5);
        let disp = |a: &GaussianCloud| -> f32 {
            a.iter()
                .zip(c.iter())
                .map(|(x, y)| (x.pos - y.pos).length() + (x.scale - y.scale).length())
                .sum()
        };
        assert!(disp(&large) > disp(&small));
    }

    #[test]
    fn opacity_stays_in_unit_interval() {
        let c = gt();
        let p = perturb(&c, &PerturbConfig::default().scaled(5.0), 6);
        for g in &p {
            assert!((0.0..=1.0).contains(&g.opacity));
        }
    }
}
