//! The six evaluation scenes of the paper, as procedural stand-ins.
//!
//! | Scene     | Dataset (paper)    | Type       | Voxel size (paper) |
//! |-----------|--------------------|------------|--------------------|
//! | Lego      | Synthetic-NeRF     | synthetic  | 0.4                |
//! | Palace    | Synthetic-NSVF     | synthetic  | 0.4                |
//! | Train     | Tanks&Temples      | real-world | 2.0                |
//! | Truck     | Tanks&Temples      | real-world | 2.0                |
//! | Playroom  | Deep Blending      | real-world | 2.0                |
//! | Drjohnson | Deep Blending      | real-world | 2.0                |
//!
//! The stand-ins preserve the workload-relevant structure: synthetic scenes
//! are compact single objects orbited from outside; real-world scenes are
//! large (tens of units), cluttered, and carry low-opacity floaters. Gaussian
//! counts are scaled down for tractability and recorded alongside the
//! paper-scale (`native_*`) quantities used to extrapolate DRAM-traffic and
//! FPS figures.

use crate::cloud::GaussianCloud;
use crate::perturb::{perturb, PerturbConfig};
use crate::procgen::{Palette, Primitive, SceneBuilder, SurfaceStyle};
use crate::trajectory::{orbit, RigSpec};
use gs_core::camera::Camera;
use gs_core::geom::Aabb;
use gs_core::vec::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six paper scenes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SceneKind {
    Lego,
    Palace,
    Train,
    Truck,
    Playroom,
    Drjohnson,
}

impl fmt::Display for SceneKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl SceneKind {
    /// All six scenes, in the paper's figure order.
    pub const ALL: [SceneKind; 6] = [
        SceneKind::Lego,
        SceneKind::Palace,
        SceneKind::Train,
        SceneKind::Playroom,
        SceneKind::Truck,
        SceneKind::Drjohnson,
    ];

    /// Scene name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            SceneKind::Lego => "lego",
            SceneKind::Palace => "palace",
            SceneKind::Train => "train",
            SceneKind::Truck => "truck",
            SceneKind::Playroom => "playroom",
            SceneKind::Drjohnson => "drjohnson",
        }
    }

    /// `true` for the Synthetic-NeRF/NSVF scenes.
    pub fn is_synthetic(self) -> bool {
        matches!(self, SceneKind::Lego | SceneKind::Palace)
    }

    /// Voxel edge length the paper uses for this scene class (Sec. V-A:
    /// 2 for real-world, 0.4 for synthetic).
    pub fn default_voxel_size(self) -> f32 {
        if self.is_synthetic() {
            0.4
        } else {
            2.0
        }
    }

    /// Default Gaussian budget of the scaled-down stand-in.
    pub fn default_gaussians(self) -> usize {
        match self {
            SceneKind::Lego => 12_000,
            SceneKind::Palace => 16_000,
            SceneKind::Train => 30_000,
            SceneKind::Truck => 25_000,
            SceneKind::Playroom => 20_000,
            SceneKind::Drjohnson => 36_000,
        }
    }

    /// Approximate Gaussian count of the *real* trained scene (public 3DGS
    /// checkpoints) — used to extrapolate workload-scale figures.
    pub fn native_gaussians(self) -> u64 {
        match self {
            SceneKind::Lego => 330_000,
            SceneKind::Palace => 450_000,
            SceneKind::Train => 1_050_000,
            SceneKind::Truck => 2_500_000,
            SceneKind::Playroom => 2_300_000,
            SceneKind::Drjohnson => 3_300_000,
        }
    }

    /// Native evaluation resolution of the dataset.
    pub fn native_resolution(self) -> (u32, u32) {
        match self {
            SceneKind::Lego | SceneKind::Palace => (800, 800),
            SceneKind::Train | SceneKind::Truck => (980, 545),
            SceneKind::Playroom | SceneKind::Drjohnson => (1264, 832),
        }
    }

    /// Default stand-in rendering resolution.
    pub fn default_resolution(self) -> (u32, u32) {
        if self.is_synthetic() {
            (256, 256)
        } else {
            (320, 208)
        }
    }

    /// Per-scene multiplier on the base [`PerturbConfig`], calibrated so the
    /// baseline render-vs-ground-truth PSNR lands in the paper's range
    /// (Table II: higher noise ⇒ lower PSNR).
    pub fn noise_multiplier(self) -> f32 {
        match self {
            SceneKind::Lego => 1.03,
            SceneKind::Palace => 0.28,
            SceneKind::Train => 2.54,
            SceneKind::Truck => 1.87,
            SceneKind::Playroom => 0.56,
            SceneKind::Drjohnson => 1.14,
        }
    }

    /// Deterministic per-scene seed.
    pub fn seed(self) -> u64 {
        match self {
            SceneKind::Lego => 101,
            SceneKind::Palace => 202,
            SceneKind::Train => 303,
            SceneKind::Truck => 404,
            SceneKind::Playroom => 505,
            SceneKind::Drjohnson => 606,
        }
    }

    /// Builds the scene (ground truth, trained cloud, camera rigs).
    pub fn build(self, cfg: &SceneConfig) -> Scene {
        build_scene(self, cfg)
    }
}

/// Build-time configuration: budgets, resolution, view counts.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Total Gaussian budget; `0` uses the kind's default.
    pub gaussians: usize,
    /// Image width; `0` uses the kind's default resolution.
    pub width: u32,
    /// Image height; `0` uses the kind's default resolution.
    pub height: u32,
    /// Number of training cameras.
    pub train_views: usize,
    /// Number of held-out evaluation cameras.
    pub eval_views: usize,
    /// Extra seed folded into the scene seed.
    pub seed: u64,
    /// Multiplier on the scene's calibrated perturbation (1.0 = paper-like).
    pub noise_scale: f32,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            gaussians: 0,
            width: 0,
            height: 0,
            train_views: 8,
            eval_views: 4,
            seed: 0,
            noise_scale: 1.0,
        }
    }
}

impl SceneConfig {
    /// Full-size stand-in (kind defaults).
    pub fn full() -> SceneConfig {
        SceneConfig::default()
    }

    /// A small configuration for fast benches (~6 k Gaussians, 160×120).
    pub fn small() -> SceneConfig {
        SceneConfig {
            gaussians: 6_000,
            width: 160,
            height: 120,
            train_views: 5,
            eval_views: 3,
            ..SceneConfig::default()
        }
    }

    /// A tiny configuration for unit tests (~1.5 k Gaussians, 96×72).
    pub fn tiny() -> SceneConfig {
        SceneConfig {
            gaussians: 1_500,
            width: 96,
            height: 72,
            train_views: 3,
            eval_views: 2,
            ..SceneConfig::default()
        }
    }
}

/// A fully built scene: ground truth, simulated "trained" cloud, cameras.
#[derive(Clone, Debug)]
pub struct Scene {
    /// Which paper scene this stands in for.
    pub kind: SceneKind,
    /// The procedural ground-truth cloud (renders the "photographs").
    pub ground_truth: GaussianCloud,
    /// The simulated trained checkpoint (ground truth + calibrated noise).
    pub trained: GaussianCloud,
    /// Cameras used for fine-tuning.
    pub train_cameras: Vec<Camera>,
    /// Held-out cameras used for PSNR evaluation.
    pub eval_cameras: Vec<Camera>,
    /// Voxel edge length for the streaming pipeline.
    pub voxel_size: f32,
}

impl Scene {
    /// The point the camera rigs look at.
    pub fn focus(&self) -> Vec3 {
        if self.kind.is_synthetic() {
            Vec3::new(0.0, 0.45, 0.0)
        } else {
            Vec3::new(0.0, 1.2, 0.0)
        }
    }
}

fn build_scene(kind: SceneKind, cfg: &SceneConfig) -> Scene {
    let budget = if cfg.gaussians == 0 {
        kind.default_gaussians()
    } else {
        cfg.gaussians
    };
    let (dw, dh) = kind.default_resolution();
    let width = if cfg.width == 0 { dw } else { cfg.width };
    let height = if cfg.height == 0 { dh } else { cfg.height };
    let seed = kind.seed() ^ cfg.seed.rotate_left(17);

    let ground_truth = match kind {
        SceneKind::Lego => build_lego(budget, seed),
        SceneKind::Palace => build_palace(budget, seed),
        SceneKind::Train => build_train(budget, seed),
        SceneKind::Truck => build_truck(budget, seed),
        SceneKind::Playroom => build_playroom(budget, seed),
        SceneKind::Drjohnson => build_drjohnson(budget, seed),
    };

    let noise = PerturbConfig::default().scaled(kind.noise_multiplier() * cfg.noise_scale);
    let trained = perturb(&ground_truth, &noise, seed ^ 0xbeef);

    let spec = RigSpec {
        width,
        height,
        fov_x: 0.9,
    };
    let (focus, radius, h) = if kind.is_synthetic() {
        // Close orbit: the object fills the frame, as in the NeRF-synthetic
        // capture rigs (keeps tiles-per-Gaussian representative).
        (Vec3::new(0.0, 0.45, 0.0), 2.6, 1.0)
    } else if matches!(kind, SceneKind::Train | SceneKind::Truck) {
        (Vec3::new(0.0, 1.2, 0.0), 11.0, 3.2)
    } else {
        // Indoor: cameras orbit inside the room.
        (Vec3::new(0.0, 1.4, 0.0), 2.8, 1.6)
    };
    let train_cameras = orbit(focus, radius, h, cfg.train_views, 0.0, &spec);
    let eval_cameras = orbit(focus, radius * 0.95, h * 1.1, cfg.eval_views, 0.37, &spec);

    Scene {
        kind,
        ground_truth,
        trained,
        train_cameras,
        eval_cameras,
        voxel_size: kind.default_voxel_size(),
    }
}

// ---------------------------------------------------------------------------
// Scene constructions (y-up; ground at y = 0)
// ---------------------------------------------------------------------------

fn box3(cx: f32, cy: f32, cz: f32, ex: f32, ey: f32, ez: f32) -> Primitive {
    Primitive::BoxSurface {
        aabb: Aabb::new(
            Vec3::new(cx - ex * 0.5, cy - ey * 0.5, cz - ez * 0.5),
            Vec3::new(cx + ex * 0.5, cy + ey * 0.5, cz + ez * 0.5),
        ),
    }
}

/// Distributes `budget` Gaussians over `parts` proportionally to weights.
fn split_budget(budget: usize, weights: &[f32]) -> Vec<usize> {
    let total: f32 = weights.iter().sum();
    let mut out: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * budget as f32) as usize)
        .collect();
    let assigned: usize = out.iter().sum();
    if let Some(first) = out.first_mut() {
        *first += budget.saturating_sub(assigned);
    }
    out
}

fn build_lego(budget: usize, seed: u64) -> GaussianCloud {
    let mut b = SceneBuilder::new(seed);
    let yellow = Palette::new(
        Vec3::new(0.92, 0.75, 0.12),
        Vec3::new(0.75, 0.55, 0.08),
        4.0,
        11,
    );
    let gray = Palette::new(
        Vec3::new(0.35, 0.35, 0.38),
        Vec3::new(0.18, 0.18, 0.2),
        6.0,
        12,
    );
    let black = Palette::new(
        Vec3::new(0.1, 0.1, 0.1),
        Vec3::new(0.22, 0.22, 0.22),
        8.0,
        13,
    );
    let style = SurfaceStyle {
        patch: 0.016,
        ..SurfaceStyle::default()
    };

    // Bulldozer stand-in: plate, body, cabin, blade, wheels, exhaust.
    let parts: Vec<(Primitive, &Palette)> = vec![
        (box3(0.0, 0.05, 0.0, 1.6, 0.1, 0.9), &gray), // base plate
        (box3(0.0, 0.35, 0.0, 1.0, 0.45, 0.6), &yellow), // body
        (box3(-0.15, 0.75, 0.0, 0.45, 0.4, 0.5), &yellow), // cabin
        (
            Primitive::Rect {
                origin: Vec3::new(0.72, 0.05, -0.45),
                u_vec: Vec3::new(0.12, 0.55, 0.0),
                v_vec: Vec3::new(0.0, 0.0, 0.9),
            },
            &gray,
        ), // blade
        (
            Primitive::Cylinder {
                base: Vec3::new(-0.45, 0.16, -0.52),
                axis: 2,
                radius: 0.16,
                height: 1.04,
            },
            &black,
        ), // rear axle wheels
        (
            Primitive::Cylinder {
                base: Vec3::new(0.35, 0.16, -0.52),
                axis: 2,
                radius: 0.16,
                height: 1.04,
            },
            &black,
        ), // front axle wheels
        (
            Primitive::Cylinder {
                base: Vec3::new(-0.35, 0.95, 0.1),
                axis: 1,
                radius: 0.05,
                height: 0.3,
            },
            &gray,
        ), // exhaust
    ];
    let weights: Vec<f32> = parts.iter().map(|(p, _)| p.area()).collect();
    for ((prim, pal), n) in parts.iter().zip(split_budget(budget, &weights)) {
        b.add_surface(prim, n, pal, &style);
    }
    b.finish()
}

fn build_palace(budget: usize, seed: u64) -> GaussianCloud {
    let mut b = SceneBuilder::new(seed);
    let beige = Palette::new(
        Vec3::new(0.85, 0.78, 0.62),
        Vec3::new(0.7, 0.6, 0.45),
        3.0,
        21,
    );
    let gold = Palette::new(
        Vec3::new(0.9, 0.72, 0.25),
        Vec3::new(0.75, 0.55, 0.15),
        5.0,
        22,
    );
    let stone = Palette::new(
        Vec3::new(0.55, 0.55, 0.58),
        Vec3::new(0.4, 0.42, 0.45),
        6.0,
        23,
    );
    let style = SurfaceStyle {
        patch: 0.018,
        ..SurfaceStyle::default()
    };

    let mut parts: Vec<(Primitive, &Palette)> = vec![
        (box3(0.0, 0.1, 0.0, 2.4, 0.2, 2.0), &stone), // platform
        (box3(0.0, 0.65, 0.0, 1.5, 0.9, 1.2), &beige), // main hall
        (box3(-1.0, 0.45, 0.0, 0.5, 0.5, 0.9), &beige), // west wing
        (box3(1.0, 0.45, 0.0, 0.5, 0.5, 0.9), &beige), // east wing
        (
            Primitive::Dome {
                center: Vec3::new(0.0, 1.1, 0.0),
                radius: 0.55,
            },
            &gold,
        ), // dome
    ];
    // Colonnade: six columns along the front face.
    for i in 0..6 {
        let x = -0.75 + 0.3 * i as f32;
        parts.push((
            Primitive::Cylinder {
                base: Vec3::new(x, 0.2, 0.75),
                axis: 1,
                radius: 0.07,
                height: 0.9,
            },
            &stone,
        ));
    }
    let weights: Vec<f32> = parts.iter().map(|(p, _)| p.area()).collect();
    for ((prim, pal), n) in parts.iter().zip(split_budget(budget, &weights)) {
        b.add_surface(prim, n, pal, &style);
    }
    b.finish()
}

fn outdoor_ground_and_backdrop(b: &mut SceneBuilder, budget: usize, seed_palettes: u32) -> usize {
    // Returns the budget left for the foreground object.
    let ground = Palette::new(
        Vec3::new(0.35, 0.4, 0.25),
        Vec3::new(0.5, 0.45, 0.3),
        0.3,
        seed_palettes,
    );
    let wall = Palette::new(
        Vec3::new(0.5, 0.45, 0.4),
        Vec3::new(0.35, 0.3, 0.28),
        0.5,
        seed_palettes + 1,
    );
    let foliage = Palette::new(
        Vec3::new(0.15, 0.4, 0.15),
        Vec3::new(0.3, 0.5, 0.2),
        1.2,
        seed_palettes + 2,
    );
    let style = SurfaceStyle {
        patch: 0.12,
        ..SurfaceStyle::default()
    };

    let ground_n = budget * 22 / 100;
    b.add_surface(
        &Primitive::Rect {
            origin: Vec3::new(-14.0, 0.0, -10.0),
            u_vec: Vec3::new(28.0, 0.0, 0.0),
            v_vec: Vec3::new(0.0, 0.0, 20.0),
        },
        ground_n,
        &ground,
        &style,
    );
    let wall_n = budget * 10 / 100;
    b.add_surface(&box3(0.0, 2.0, -9.0, 26.0, 4.0, 0.8), wall_n, &wall, &style);

    let mut tree_n = 0;
    for (i, x) in [-9.0f32, -5.0, 6.0, 10.0].iter().enumerate() {
        let n = budget * 3 / 100;
        tree_n += n + n / 3;
        b.add_surface(
            &Primitive::Sphere {
                center: Vec3::new(*x, 3.0, -6.5 + (i as f32) * 0.8),
                radius: 1.4,
            },
            n,
            &foliage,
            &SurfaceStyle {
                patch: 0.15,
                ..SurfaceStyle::default()
            },
        );
        b.add_surface(
            &Primitive::Cylinder {
                base: Vec3::new(*x, 0.0, -6.5 + (i as f32) * 0.8),
                axis: 1,
                radius: 0.25,
                height: 2.0,
            },
            n / 3,
            &wall,
            &style,
        );
    }
    budget - ground_n - wall_n - tree_n
}

fn build_train(budget: usize, seed: u64) -> GaussianCloud {
    let mut b = SceneBuilder::new(seed);
    let remaining = outdoor_ground_and_backdrop(&mut b, budget, 31);
    let body = Palette::new(
        Vec3::new(0.45, 0.12, 0.1),
        Vec3::new(0.3, 0.08, 0.07),
        1.5,
        34,
    );
    let metal = Palette::new(
        Vec3::new(0.2, 0.2, 0.22),
        Vec3::new(0.35, 0.35, 0.38),
        2.0,
        35,
    );
    let style = SurfaceStyle {
        patch: 0.08,
        ..SurfaceStyle::default()
    };

    // Locomotive + tender along the x axis.
    let floater_n = remaining / 10;
    let fg = remaining - floater_n;
    let parts: Vec<(Primitive, &Palette)> = vec![
        (box3(-2.0, 1.5, 0.0, 9.0, 2.2, 2.4), &body), // boiler/body
        (box3(3.4, 1.9, 0.0, 2.6, 3.0, 2.6), &body),  // cab
        (
            Primitive::Cylinder {
                base: Vec3::new(-5.2, 2.6, 0.0),
                axis: 1,
                radius: 0.35,
                height: 1.2,
            },
            &metal,
        ), // chimney
        (
            Primitive::Cylinder {
                base: Vec3::new(-4.0, 0.55, -1.35),
                axis: 2,
                radius: 0.55,
                height: 2.7,
            },
            &metal,
        ), // wheels 1
        (
            Primitive::Cylinder {
                base: Vec3::new(-1.5, 0.55, -1.35),
                axis: 2,
                radius: 0.55,
                height: 2.7,
            },
            &metal,
        ), // wheels 2
        (
            Primitive::Cylinder {
                base: Vec3::new(1.0, 0.55, -1.35),
                axis: 2,
                radius: 0.55,
                height: 2.7,
            },
            &metal,
        ), // wheels 3
        (box3(0.0, 0.2, 0.0, 16.0, 0.25, 1.6), &metal), // track bed
    ];
    let weights: Vec<f32> = parts.iter().map(|(p, _)| p.area()).collect();
    for ((prim, pal), n) in parts.iter().zip(split_budget(fg, &weights)) {
        b.add_surface(prim, n, pal, &style);
    }
    let dust = Palette::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(0.6, 0.6, 0.65), 0.4, 36);
    b.add_floaters(
        &Aabb::new(Vec3::new(-12.0, 0.5, -8.0), Vec3::new(12.0, 6.0, 8.0)),
        floater_n,
        &dust,
        0.5,
    );
    b.finish()
}

fn build_truck(budget: usize, seed: u64) -> GaussianCloud {
    let mut b = SceneBuilder::new(seed);
    let remaining = outdoor_ground_and_backdrop(&mut b, budget, 41);
    let paint = Palette::new(
        Vec3::new(0.12, 0.3, 0.5),
        Vec3::new(0.08, 0.2, 0.38),
        1.8,
        44,
    );
    let metal = Palette::new(
        Vec3::new(0.25, 0.25, 0.28),
        Vec3::new(0.4, 0.4, 0.42),
        2.0,
        45,
    );
    let style = SurfaceStyle {
        patch: 0.08,
        ..SurfaceStyle::default()
    };

    let floater_n = remaining / 10;
    let fg = remaining - floater_n;
    let parts: Vec<(Primitive, &Palette)> = vec![
        (box3(-1.0, 1.9, 0.0, 6.5, 2.6, 2.5), &paint), // cargo bed
        (box3(3.2, 1.4, 0.0, 2.2, 1.9, 2.4), &paint),  // cabin
        (
            Primitive::Cylinder {
                base: Vec3::new(-2.8, 0.5, -1.35),
                axis: 2,
                radius: 0.5,
                height: 2.7,
            },
            &metal,
        ),
        (
            Primitive::Cylinder {
                base: Vec3::new(-0.6, 0.5, -1.35),
                axis: 2,
                radius: 0.5,
                height: 2.7,
            },
            &metal,
        ),
        (
            Primitive::Cylinder {
                base: Vec3::new(3.2, 0.5, -1.35),
                axis: 2,
                radius: 0.5,
                height: 2.7,
            },
            &metal,
        ),
        (box3(0.0, 0.9, 0.0, 7.5, 0.3, 2.3), &metal), // chassis
    ];
    let weights: Vec<f32> = parts.iter().map(|(p, _)| p.area()).collect();
    for ((prim, pal), n) in parts.iter().zip(split_budget(fg, &weights)) {
        b.add_surface(prim, n, pal, &style);
    }
    let dust = Palette::new(
        Vec3::new(0.55, 0.5, 0.45),
        Vec3::new(0.65, 0.6, 0.55),
        0.4,
        46,
    );
    b.add_floaters(
        &Aabb::new(Vec3::new(-10.0, 0.5, -7.0), Vec3::new(10.0, 5.0, 7.0)),
        floater_n,
        &dust,
        0.45,
    );
    b.finish()
}

fn indoor_room(b: &mut SceneBuilder, budget: usize, half: Vec3, palette_seed: u32) -> usize {
    // Walls/floor/ceiling as inward-facing rects; returns remaining budget.
    let wall = Palette::new(
        Vec3::new(0.75, 0.72, 0.65),
        Vec3::new(0.6, 0.58, 0.52),
        0.8,
        palette_seed,
    );
    let floor = Palette::new(
        Vec3::new(0.45, 0.3, 0.2),
        Vec3::new(0.55, 0.4, 0.28),
        2.5,
        palette_seed + 1,
    );
    let style = SurfaceStyle {
        patch: 0.07,
        ..SurfaceStyle::default()
    };
    let (hx, hy, hz) = (half.x, half.y, half.z);
    let faces = [
        // floor (normal +y), ceiling (−y)
        (
            Vec3::new(-hx, 0.0, -hz),
            Vec3::new(2.0 * hx, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0 * hz),
            &floor,
        ),
        (
            Vec3::new(-hx, 2.0 * hy, -hz),
            Vec3::new(0.0, 0.0, 2.0 * hz),
            Vec3::new(2.0 * hx, 0.0, 0.0),
            &wall,
        ),
        // ±z walls
        (
            Vec3::new(-hx, 0.0, -hz),
            Vec3::new(0.0, 2.0 * hy, 0.0),
            Vec3::new(2.0 * hx, 0.0, 0.0),
            &wall,
        ),
        (
            Vec3::new(-hx, 0.0, hz),
            Vec3::new(2.0 * hx, 0.0, 0.0),
            Vec3::new(0.0, 2.0 * hy, 0.0),
            &wall,
        ),
        // ±x walls
        (
            Vec3::new(-hx, 0.0, -hz),
            Vec3::new(0.0, 0.0, 2.0 * hz),
            Vec3::new(0.0, 2.0 * hy, 0.0),
            &wall,
        ),
        (
            Vec3::new(hx, 0.0, -hz),
            Vec3::new(0.0, 2.0 * hy, 0.0),
            Vec3::new(0.0, 0.0, 2.0 * hz),
            &wall,
        ),
    ];
    let wall_budget = budget / 2;
    let areas: Vec<f32> = faces
        .iter()
        .map(|(_, u, v, _)| u.cross(*v).length())
        .collect();
    let counts = split_budget(wall_budget, &areas);
    for ((origin, u, v, pal), n) in faces.iter().zip(counts) {
        b.add_surface(
            &Primitive::Rect {
                origin: *origin,
                u_vec: *u,
                v_vec: *v,
            },
            n,
            pal,
            &style,
        );
    }
    budget - wall_budget
}

fn build_playroom(budget: usize, seed: u64) -> GaussianCloud {
    let mut b = SceneBuilder::new(seed);
    let remaining = indoor_room(&mut b, budget, Vec3::new(5.0, 1.5, 4.0), 51);
    let wood = Palette::new(
        Vec3::new(0.5, 0.33, 0.2),
        Vec3::new(0.4, 0.26, 0.15),
        3.0,
        54,
    );
    let fabric = Palette::new(
        Vec3::new(0.7, 0.25, 0.3),
        Vec3::new(0.55, 0.18, 0.25),
        2.0,
        55,
    );
    let toy = Palette::new(Vec3::new(0.2, 0.5, 0.8), Vec3::new(0.85, 0.7, 0.2), 4.0, 56);
    let style = SurfaceStyle {
        patch: 0.05,
        ..SurfaceStyle::default()
    };

    let parts: Vec<(Primitive, &Palette)> = vec![
        (box3(1.5, 0.4, 1.0, 1.8, 0.8, 1.0), &wood),      // table
        (box3(-2.5, 0.45, -2.0, 2.2, 0.9, 1.0), &fabric), // sofa
        (box3(-2.5, 0.95, -2.45, 2.2, 0.9, 0.25), &fabric), // sofa back
        (box3(3.5, 0.9, -2.8, 1.4, 1.8, 0.6), &wood),     // shelf
        (
            Primitive::Sphere {
                center: Vec3::new(0.5, 0.25, -0.8),
                radius: 0.25,
            },
            &toy,
        ),
        (
            Primitive::Sphere {
                center: Vec3::new(-0.6, 0.2, 1.6),
                radius: 0.2,
            },
            &toy,
        ),
        (
            Primitive::Cylinder {
                base: Vec3::new(2.8, 0.0, 2.6),
                axis: 1,
                radius: 0.18,
                height: 1.1,
            },
            &wood,
        ), // lamp pole
        (
            Primitive::Sphere {
                center: Vec3::new(2.8, 1.3, 2.6),
                radius: 0.3,
            },
            &toy,
        ), // lamp shade
    ];
    let weights: Vec<f32> = parts.iter().map(|(p, _)| p.area()).collect();
    for ((prim, pal), n) in parts.iter().zip(split_budget(remaining * 9 / 10, &weights)) {
        b.add_surface(prim, n, pal, &style);
    }
    let dust = Palette::new(Vec3::new(0.6, 0.6, 0.6), Vec3::new(0.7, 0.7, 0.7), 0.6, 57);
    b.add_floaters(
        &Aabb::new(Vec3::new(-4.5, 0.3, -3.5), Vec3::new(4.5, 2.7, 3.5)),
        remaining / 10,
        &dust,
        0.18,
    );
    b.finish()
}

fn build_drjohnson(budget: usize, seed: u64) -> GaussianCloud {
    let mut b = SceneBuilder::new(seed);
    let remaining = indoor_room(&mut b, budget, Vec3::new(7.0, 2.0, 5.0), 61);
    let wood = Palette::new(
        Vec3::new(0.42, 0.28, 0.16),
        Vec3::new(0.3, 0.2, 0.12),
        3.0,
        64,
    );
    let leather = Palette::new(
        Vec3::new(0.35, 0.2, 0.12),
        Vec3::new(0.25, 0.15, 0.1),
        2.0,
        65,
    );
    let paper = Palette::new(
        Vec3::new(0.8, 0.75, 0.65),
        Vec3::new(0.65, 0.6, 0.5),
        5.0,
        66,
    );
    let style = SurfaceStyle {
        patch: 0.06,
        ..SurfaceStyle::default()
    };

    let parts: Vec<(Primitive, &Palette)> = vec![
        (box3(2.0, 0.45, 0.0, 2.4, 0.9, 1.2), &wood),    // desk
        (box3(-3.0, 1.2, -4.4, 3.0, 2.4, 0.5), &paper),  // bookshelf wall
        (box3(3.0, 1.2, -4.4, 2.5, 2.4, 0.5), &paper),   // bookshelf wall 2
        (box3(-2.0, 0.5, 1.5, 2.0, 1.0, 1.1), &leather), // chesterfield
        (box3(-2.0, 1.05, 1.95, 2.0, 0.8, 0.25), &leather), // sofa back
        (box3(5.0, 0.4, 2.5, 1.2, 0.8, 1.2), &wood),     // side table
        (
            Primitive::Cylinder {
                base: Vec3::new(-5.5, 0.0, -2.0),
                axis: 1,
                radius: 0.2,
                height: 2.2,
            },
            &wood,
        ), // floor lamp
        (
            Primitive::Sphere {
                center: Vec3::new(-5.5, 2.5, -2.0),
                radius: 0.35,
            },
            &paper,
        ),
        (
            Primitive::Sphere {
                center: Vec3::new(0.8, 0.3, -1.5),
                radius: 0.3,
            },
            &leather,
        ), // globe
        (box3(0.0, 0.06, 0.0, 6.0, 0.12, 4.0), &leather), // rug
    ];
    let weights: Vec<f32> = parts.iter().map(|(p, _)| p.area()).collect();
    for ((prim, pal), n) in parts.iter().zip(split_budget(remaining * 9 / 10, &weights)) {
        b.add_surface(prim, n, pal, &style);
    }
    let dust = Palette::new(
        Vec3::new(0.55, 0.52, 0.48),
        Vec3::new(0.68, 0.65, 0.6),
        0.6,
        67,
    );
    b.add_floaters(
        &Aabb::new(Vec3::new(-6.5, 0.3, -4.5), Vec3::new(6.5, 3.7, 4.5)),
        remaining / 10,
        &dust,
        0.2,
    );
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenes_build_at_tiny_size() {
        for kind in SceneKind::ALL {
            let s = kind.build(&SceneConfig::tiny());
            assert!(s.ground_truth.len() >= 1_000, "{kind}: too few Gaussians");
            assert!(s.ground_truth.is_valid(), "{kind}: invalid ground truth");
            assert!(s.trained.is_valid(), "{kind}: invalid trained cloud");
            assert_eq!(s.ground_truth.len(), s.trained.len());
            assert_eq!(s.train_cameras.len(), 3);
            assert_eq!(s.eval_cameras.len(), 2);
        }
    }

    #[test]
    fn budgets_are_respected_approximately() {
        let cfg = SceneConfig {
            gaussians: 4_000,
            ..SceneConfig::tiny()
        };
        for kind in SceneKind::ALL {
            let s = kind.build(&cfg);
            let n = s.ground_truth.len();
            assert!(
                (3_200..=4_400).contains(&n),
                "{kind}: expected ≈4000 Gaussians, got {n}"
            );
        }
    }

    #[test]
    fn synthetic_scenes_are_compact() {
        let s = SceneKind::Lego.build(&SceneConfig::tiny());
        let e = s.ground_truth.bounds().extent();
        assert!(e.max_component() < 4.0, "synthetic extent too large: {e}");
        let t = SceneKind::Train.build(&SceneConfig::tiny());
        let et = t.ground_truth.bounds().extent();
        assert!(
            et.max_component() > 15.0,
            "real-world extent too small: {et}"
        );
    }

    #[test]
    fn voxel_sizes_match_paper() {
        assert_eq!(SceneKind::Lego.default_voxel_size(), 0.4);
        assert_eq!(SceneKind::Drjohnson.default_voxel_size(), 2.0);
    }

    #[test]
    fn scenes_are_deterministic() {
        let a = SceneKind::Truck.build(&SceneConfig::tiny());
        let b = SceneKind::Truck.build(&SceneConfig::tiny());
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_eq!(a.trained, b.trained);
    }

    #[test]
    fn trained_cloud_differs_from_ground_truth() {
        let s = SceneKind::Playroom.build(&SceneConfig::tiny());
        assert_ne!(s.ground_truth, s.trained);
    }

    #[test]
    fn cameras_see_the_scene() {
        for kind in SceneKind::ALL {
            let s = kind.build(&SceneConfig::tiny());
            for cam in s.eval_cameras.iter().chain(&s.train_cameras) {
                let mut visible = 0usize;
                for g in s.ground_truth.iter().take(300) {
                    if let Some((px, _)) = cam.project(g.pos) {
                        if px.x >= 0.0
                            && px.x < cam.width() as f32
                            && px.y >= 0.0
                            && px.y < cam.height() as f32
                        {
                            visible += 1;
                        }
                    }
                }
                assert!(
                    visible > 30,
                    "{kind}: camera sees only {visible}/300 Gaussians"
                );
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(SceneKind::Lego.to_string(), "lego");
        assert_eq!(SceneKind::ALL.len(), 6);
    }
}
