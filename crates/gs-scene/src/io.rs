//! Binary serialization of Gaussian clouds (a minimal checkpoint format).
//!
//! Layout: magic `GSCL`, version `u32` LE, count `u64` LE, then `count`
//! records of 59 `f32` LE parameters each ([`crate::gaussian`] layout).

use crate::cloud::GaussianCloud;
use crate::gaussian::Gaussian;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GSCL";
const VERSION: u32 = 1;

/// Errors produced when decoding a cloud file.
#[derive(Debug)]
pub enum ReadCloudError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The payload ended before `count` records were read.
    Truncated,
}

impl fmt::Display for ReadCloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadCloudError::Io(e) => write!(f, "i/o error reading cloud: {e}"),
            ReadCloudError::BadMagic => write!(f, "not a GSCL cloud file"),
            ReadCloudError::BadVersion(v) => write!(f, "unsupported cloud version {v}"),
            ReadCloudError::Truncated => write!(f, "cloud file truncated"),
        }
    }
}

impl Error for ReadCloudError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadCloudError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadCloudError {
    fn from(e: io::Error) -> Self {
        ReadCloudError::Io(e)
    }
}

/// Writes a cloud to any writer. Pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_cloud<W: Write>(mut w: W, cloud: &GaussianCloud) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(cloud.len() as u64).to_le_bytes())?;
    for g in cloud {
        for v in g.to_params() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a cloud from any reader. Pass `&mut reader` to keep ownership.
///
/// # Errors
///
/// Returns [`ReadCloudError`] on malformed input or I/O failure.
pub fn read_cloud<R: Read>(mut r: R) -> Result<GaussianCloud, ReadCloudError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadCloudError::BadMagic);
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(ReadCloudError::BadVersion(version));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let count = u64::from_le_bytes(buf8) as usize;

    let mut cloud = GaussianCloud::new();
    let mut record = [0f32; gs_core::GAUSSIAN_PARAMS];
    let mut raw = vec![0u8; gs_core::GAUSSIAN_PARAMS * 4];
    for _ in 0..count {
        r.read_exact(&mut raw).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ReadCloudError::Truncated
            } else {
                ReadCloudError::Io(e)
            }
        })?;
        for (i, chunk) in raw.chunks_exact(4).enumerate() {
            record[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        cloud.push(Gaussian::from_params(&record));
    }
    Ok(cloud)
}

/// Writes a cloud to a file path.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_cloud<P: AsRef<Path>>(path: P, cloud: &GaussianCloud) -> io::Result<()> {
    let mut buf = Vec::with_capacity(16 + cloud.len() * gs_core::GAUSSIAN_PARAMS * 4);
    write_cloud(&mut buf, cloud)?;
    std::fs::write(path, buf)
}

/// Reads a cloud from a file path.
///
/// # Errors
///
/// Returns [`ReadCloudError`] on malformed input or I/O failure.
pub fn load_cloud<P: AsRef<Path>>(path: P) -> Result<GaussianCloud, ReadCloudError> {
    let bytes = std::fs::read(path).map_err(ReadCloudError::Io)?;
    read_cloud(bytes.as_slice())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use gs_core::vec::Vec3;

    fn sample() -> GaussianCloud {
        (0..17)
            .map(|i| {
                let mut g = Gaussian::isotropic(
                    Vec3::new(i as f32, 0.5 * i as f32, -(i as f32)),
                    0.05 + 0.01 * i as f32,
                    Vec3::new(0.1, 0.5, 0.9),
                    0.33,
                );
                g.sh[30] = i as f32 * 0.01;
                g
            })
            .collect()
    }

    #[test]
    fn roundtrip_in_memory() {
        let cloud = sample();
        let mut buf = Vec::new();
        write_cloud(&mut buf, &cloud).unwrap();
        let back = read_cloud(buf.as_slice()).unwrap();
        assert_eq!(back, cloud);
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("gs_scene_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cloud.gscl");
        let cloud = sample();
        save_cloud(&path, &cloud).unwrap();
        assert_eq!(load_cloud(&path).unwrap(), cloud);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_cloud(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, ReadCloudError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GSCL");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_cloud(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadCloudError::BadVersion(99)));
    }

    #[test]
    fn truncated_payload_rejected() {
        let cloud = sample();
        let mut buf = Vec::new();
        write_cloud(&mut buf, &cloud).unwrap();
        buf.truncate(buf.len() - 10);
        let err = read_cloud(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadCloudError::Truncated));
    }

    #[test]
    fn empty_cloud_roundtrip() {
        let cloud = GaussianCloud::new();
        let mut buf = Vec::new();
        write_cloud(&mut buf, &cloud).unwrap();
        assert_eq!(read_cloud(buf.as_slice()).unwrap(), cloud);
    }

    #[test]
    fn error_display_messages() {
        assert!(ReadCloudError::BadMagic.to_string().contains("GSCL"));
        assert!(ReadCloudError::Truncated.to_string().contains("truncated"));
    }
}
