//! Camera rigs: orbit rings and walkthrough paths.

use gs_core::camera::Camera;
use gs_core::vec::Vec3;

/// Parameters shared by the rig constructors.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RigSpec {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Horizontal field of view in radians.
    pub fov_x: f32,
}

impl Default for RigSpec {
    fn default() -> Self {
        RigSpec {
            width: 320,
            height: 240,
            fov_x: 1.0,
        }
    }
}

/// `n` cameras on a horizontal ring of the given radius and height, all
/// looking at `center`. `phase` rotates the ring (use different phases for
/// train vs. eval views).
///
/// ```
/// use gs_scene::trajectory::{orbit, RigSpec};
/// use gs_core::vec::Vec3;
/// let cams = orbit(Vec3::ZERO, 4.0, 1.0, 8, 0.0, &RigSpec::default());
/// assert_eq!(cams.len(), 8);
/// // All cameras look at the origin: it projects near the image centre.
/// for cam in &cams {
///     let (px, _) = cam.project(Vec3::ZERO).expect("visible");
///     assert!((px.x - 160.0).abs() < 1.0);
/// }
/// ```
pub fn orbit(
    center: Vec3,
    radius: f32,
    height: f32,
    n: usize,
    phase: f32,
    spec: &RigSpec,
) -> Vec<Camera> {
    (0..n)
        .map(|i| {
            let a = phase + std::f32::consts::TAU * i as f32 / n as f32;
            let eye = center + Vec3::new(radius * a.cos(), height, radius * a.sin());
            Camera::look_at(eye, center, Vec3::Y, spec.width, spec.height, spec.fov_x)
        })
        .collect()
}

/// `n` cameras interpolated from `from` to `to`, each looking at
/// `look_target` — a straight walkthrough segment (the VR example's path).
pub fn walkthrough(
    from: Vec3,
    to: Vec3,
    look_target: Vec3,
    n: usize,
    spec: &RigSpec,
) -> Vec<Camera> {
    assert!(n >= 1, "a walkthrough needs at least one frame");
    (0..n)
        .map(|i| {
            let t = if n == 1 {
                0.0
            } else {
                i as f32 / (n - 1) as f32
            };
            let eye = from.lerp(to, t);
            Camera::look_at(
                eye,
                look_target,
                Vec3::Y,
                spec.width,
                spec.height,
                spec.fov_x,
            )
        })
        .collect()
}

/// A two-height orbit ("dome") rig: half the cameras low, half elevated —
/// closer to the inward-facing capture rigs the real datasets use.
pub fn dome(center: Vec3, radius: f32, n: usize, phase: f32, spec: &RigSpec) -> Vec<Camera> {
    let low = orbit(center, radius, 0.25 * radius, n / 2 + n % 2, phase, spec);
    let high = orbit(center, 0.8 * radius, 0.6 * radius, n / 2, phase + 0.3, spec);
    low.into_iter().chain(high).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orbit_cameras_at_radius() {
        let cams = orbit(
            Vec3::new(1.0, 0.0, 2.0),
            5.0,
            2.0,
            6,
            0.1,
            &RigSpec::default(),
        );
        assert_eq!(cams.len(), 6);
        for cam in &cams {
            let c = cam.pose.center();
            let horizontal = Vec3::new(c.x - 1.0, 0.0, c.z - 2.0).length();
            assert!((horizontal - 5.0).abs() < 1e-3);
            assert!((c.y - 2.0).abs() < 1e-3);
        }
    }

    #[test]
    fn phase_rotates_ring() {
        let spec = RigSpec::default();
        let a = orbit(Vec3::ZERO, 3.0, 0.0, 4, 0.0, &spec);
        let b = orbit(Vec3::ZERO, 3.0, 0.0, 4, 0.5, &spec);
        assert!((a[0].pose.center() - b[0].pose.center()).length() > 0.1);
    }

    #[test]
    fn walkthrough_endpoints() {
        let cams = walkthrough(
            Vec3::ZERO,
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::new(5.0, 0.0, 5.0),
            5,
            &RigSpec::default(),
        );
        assert_eq!(cams.len(), 5);
        assert!((cams[0].pose.center() - Vec3::ZERO).length() < 1e-4);
        assert!((cams[4].pose.center() - Vec3::new(10.0, 0.0, 0.0)).length() < 1e-3);
    }

    #[test]
    fn walkthrough_single_frame() {
        let cams = walkthrough(Vec3::ZERO, Vec3::X, Vec3::Z, 1, &RigSpec::default());
        assert_eq!(cams.len(), 1);
    }

    #[test]
    fn dome_counts() {
        let cams = dome(Vec3::ZERO, 4.0, 9, 0.0, &RigSpec::default());
        assert_eq!(cams.len(), 9);
    }
}
