//! Statistical checks on the procedural stand-in scenes: the workload
//! properties the characterization figures depend on.

use gs_render::{RenderConfig, TileRenderer};
use gs_scene::{SceneConfig, SceneKind};
use gs_voxel::VoxelGrid;

#[test]
fn real_world_scenes_are_heavier_than_synthetic() {
    // Fig. 3/4's premise: real-world scenes carry more Gaussians and more
    // rendering work than synthetic objects.
    let cfg = SceneConfig::tiny();
    let renderer = TileRenderer::new(RenderConfig::default());
    let mut synth_pairs = 0.0;
    let mut real_pairs = 0.0;
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig {
            gaussians: 2_000,
            ..cfg
        });
        let stats = renderer
            .render(&scene.trained, &scene.eval_cameras[0])
            .stats;
        let per_gaussian = stats.tile_pairs as f64 / stats.total_gaussians.max(1) as f64;
        if kind.is_synthetic() {
            synth_pairs += per_gaussian;
        } else {
            real_pairs += per_gaussian;
        }
        // Default budgets: every real-world scene is larger than every
        // synthetic one.
        if !kind.is_synthetic() {
            assert!(kind.default_gaussians() > SceneKind::Palace.default_gaussians());
            assert!(kind.native_gaussians() > SceneKind::Palace.native_gaussians());
        }
    }
    assert!(synth_pairs > 0.0 && real_pairs > 0.0);
}

#[test]
fn voxel_grids_match_paper_scale_expectations() {
    // Paper voxel sizes produce non-degenerate grids: synthetic scenes get
    // tens-to-hundreds of occupied 0.4-voxels, real scenes hundreds of
    // 2.0-voxels, and per-voxel populations fit the 16 KB double-buffered
    // input buffer when streamed in coarse (16 B) records.
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig::tiny());
        let grid = VoxelGrid::build(&scene.trained, scene.voxel_size);
        assert!(grid.voxel_count() >= 10, "{kind}: degenerate grid");
        let max_pop = grid.max_voxel_population();
        let coarse_bytes = max_pop * 16;
        assert!(
            coarse_bytes < 64 * 1024,
            "{kind}: largest voxel ({max_pop} Gaussians) far exceeds the input-buffer class"
        );
    }
}

#[test]
fn floaters_exist_only_in_real_world_scenes() {
    // Low-opacity reconstruction noise is a real-world capture artifact.
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig::tiny());
        let low_opacity = scene
            .ground_truth
            .iter()
            .filter(|g| g.opacity < 0.2)
            .count();
        if kind.is_synthetic() {
            assert_eq!(low_opacity, 0, "{kind}: synthetic scenes should be clean");
        } else {
            assert!(low_opacity > 0, "{kind}: real-world scenes need floaters");
        }
    }
}

#[test]
fn eval_views_differ_from_train_views() {
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    for e in &scene.eval_cameras {
        for t in &scene.train_cameras {
            let d = (e.pose.center() - t.pose.center()).length();
            assert!(d > 0.2, "eval camera coincides with a train camera");
        }
    }
}

#[test]
fn noise_calibration_orders_scene_quality_like_the_paper() {
    // Table II's 3DGS column orders scenes train < truck < drjohnson <
    // playroom < lego < palace; the calibrated noise multipliers must
    // reproduce that ordering of baseline PSNRs.
    let renderer = TileRenderer::new(RenderConfig::default());
    let psnr_of = |kind: SceneKind| -> f64 {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let gt = renderer.render(&scene.ground_truth, cam).image;
        renderer
            .render(&scene.trained, cam)
            .image
            .psnr(&gt)
            .min(99.0)
    };
    let train = psnr_of(SceneKind::Train);
    let truck = psnr_of(SceneKind::Truck);
    let palace = psnr_of(SceneKind::Palace);
    let lego = psnr_of(SceneKind::Lego);
    assert!(
        train < truck,
        "train {train} should be the hardest scene ({truck})"
    );
    assert!(truck < lego, "truck {truck} below lego {lego}");
    assert!(
        lego < palace + 3.0,
        "lego {lego} and palace {palace} are the cleanest"
    );
}
