//! Property-based tests for the math substrate.

// Tests may unwrap: a panic is exactly the right failure mode here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gs_core::camera::Camera;
use gs_core::ewa::{covariance3d, project_coarse, project_gaussian};
use gs_core::geom::{Aabb, Ray};
use gs_core::mat::Mat3;
use gs_core::quat::Quat;
use gs_core::vec::Vec3;
use proptest::prelude::*;

fn finite_vec3(range: f32) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_quat() -> impl Strategy<Value = Quat> {
    (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0, 0.05f32..1.0)
        .prop_map(|(x, y, z, w)| Quat::new(w, x, y, z).normalized())
}

proptest! {
    #[test]
    fn rotation_matrices_are_orthonormal(q in unit_quat()) {
        let r = q.to_rotation();
        prop_assert!((r * r.transpose()).distance(&Mat3::IDENTITY) < 1e-4);
        prop_assert!((r.det() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn quat_matrix_roundtrip(q in unit_quat()) {
        let r = q.to_rotation();
        let q2 = Quat::from_rotation(&r);
        prop_assert!(q2.to_rotation().distance(&r) < 1e-3);
    }

    #[test]
    fn covariance_is_positive_semidefinite(
        s in (1e-3f32..1.0, 1e-3f32..1.0, 1e-3f32..1.0),
        q in unit_quat(),
    ) {
        let cov = covariance3d(Vec3::new(s.0, s.1, s.2), q);
        prop_assert!(cov.is_positive_semidefinite(1e-4));
        // Trace equals the sum of squared scales (rotation invariant).
        let expect = s.0 * s.0 + s.1 * s.1 + s.2 * s.2;
        prop_assert!((cov.trace() - expect).abs() < 1e-2 * expect.max(1e-3));
    }

    #[test]
    fn coarse_radius_dominates_fine_radius(
        pos in finite_vec3(2.0),
        s in (1e-3f32..0.5, 1e-3f32..0.5, 1e-3f32..0.5),
        q in unit_quat(),
    ) {
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -6.0), Vec3::ZERO, Vec3::Y, 320, 240, 1.0,
        );
        let scale = Vec3::new(s.0, s.1, s.2);
        let fine = project_gaussian(&cam, pos, covariance3d(scale, q));
        let coarse = project_coarse(&cam, pos, scale.max_component());
        if let Some(f) = fine {
            let c = coarse.expect("coarse must accept whatever fine accepts");
            prop_assert!(
                c.radius_px + 1.5 >= f.radius_px,
                "coarse {} < fine {}", c.radius_px, f.radius_px
            );
        }
    }

    #[test]
    fn aabb_slab_test_matches_sampling(
        origin in finite_vec3(4.0),
        dir in finite_vec3(1.0),
        lo in finite_vec3(1.5),
    ) {
        prop_assume!(dir.length() > 1e-3);
        let b = Aabb::new(lo, lo + Vec3::new(1.0, 1.5, 0.8));
        let ray = Ray::new(origin, dir.normalized());
        match b.intersect_ray(&ray) {
            Some((t0, t1)) => {
                prop_assert!(t0 <= t1);
                // The slab test is a *line* test: the interval may lie at
                // negative parameters when the box is behind the origin.
                // Its midpoint always lies inside the (slightly inflated)
                // box regardless of sign.
                let mid = ray.at(0.5 * (t0 + t1));
                prop_assert!(b.inflated(1e-3).contains(mid));
            }
            None => {
                // Sample along the ray: no point may fall inside.
                for i in 0..100 {
                    let p = ray.at(i as f32 * 0.2);
                    prop_assert!(!b.contains(p), "missed intersection at t={}", i as f32 * 0.2);
                }
            }
        }
    }

    #[test]
    fn projection_depth_matches_camera_distance_along_axis(p in finite_vec3(3.0)) {
        let cam = Camera::look_at(
            Vec3::new(0.0, 1.0, -8.0), Vec3::ZERO, Vec3::Y, 160, 120, 0.9,
        );
        if let Some((_, depth)) = cam.project(p) {
            let expect = (p - cam.pose.center()).dot(cam.pose.forward());
            prop_assert!((depth - expect).abs() < 1e-3 * expect.abs().max(1.0));
        }
    }
}
