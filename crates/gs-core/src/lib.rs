//! # gs-core — math substrate for the StreamingGS reproduction
//!
//! This crate provides the numerical foundation shared by every other crate in
//! the workspace: small fixed-size linear algebra ([`Vec3`], [`Mat3`],
//! [`Quat`], symmetric matrices), the pinhole [`camera`] model, real
//! [`sh`] (spherical harmonics) evaluation up to degree 3, the EWA splatting
//! primitives in [`ewa`] (3-D covariance construction, perspective projection
//! to a 2-D conic), axis-aligned boxes and rays in [`geom`], and a tiny
//! float image type with PSNR in [`image`].
//!
//! Everything is `f32` (the precision 3DGS renderers use) and dependency-free
//! apart from `serde` derives.
//!
//! ## Example
//!
//! Project a single Gaussian onto a camera and evaluate its colour:
//!
//! ```
//! use gs_core::camera::Camera;
//! use gs_core::ewa::{covariance3d, project_gaussian};
//! use gs_core::quat::Quat;
//! use gs_core::vec::Vec3;
//!
//! let cam = Camera::look_at(
//!     Vec3::new(0.0, 0.0, -5.0),
//!     Vec3::ZERO,
//!     Vec3::new(0.0, 1.0, 0.0),
//!     256,
//!     192,
//!     60.0_f32.to_radians(),
//! );
//! let cov = covariance3d(Vec3::new(0.05, 0.05, 0.05), Quat::IDENTITY);
//! let proj = project_gaussian(&cam, Vec3::ZERO, cov).expect("in front of camera");
//! assert!(proj.depth > 0.0);
//! assert!(proj.radius_px > 0.0);
//! ```

pub mod camera;
pub mod ewa;
pub mod geom;
pub mod image;
pub mod mat;
pub mod quat;
pub mod sh;
pub mod sym;
pub mod vec;

pub use camera::{Camera, Intrinsics, Pose};
pub use ewa::{covariance3d, project_coarse, project_gaussian, CoarseProjection, Projected};
pub use geom::{Aabb, Ray};
pub use image::ImageRgb;
pub use mat::Mat3;
pub use quat::Quat;
pub use sym::{Sym2, Sym3};
pub use vec::{Vec2, Vec3};

/// Number of parameters a single 3DGS Gaussian carries (paper Sec. II-B):
/// position (3) + scale (3) + rotation quaternion (4) + opacity (1) +
/// degree-3 spherical-harmonic coefficients (48).
pub const GAUSSIAN_PARAMS: usize = 59;

/// Parameters fetched by the coarse-grained filter (paper Sec. III-B):
/// the 3-D position and the maximum scale.
pub const COARSE_PARAMS: usize = 4;

/// Parameters belonging to the "second half" of the customized data layout
/// (paper Fig. 8), fetched only by the fine-grained filter.
pub const FINE_PARAMS: usize = GAUSSIAN_PARAMS - COARSE_PARAMS;

/// Multiply-accumulate operations of the coarse-grained filter per Gaussian
/// (paper Sec. IV-C: "from 427 MACs to 55").
pub const COARSE_FILTER_MACS: u64 = 55;

/// Multiply-accumulate operations of a full (fine-grained) projection per
/// Gaussian (paper Sec. IV-C).
pub const FINE_FILTER_MACS: u64 = 427;

/// Relative tolerance helper used across the workspace's tests.
///
/// Returns `true` when `a` and `b` agree to `eps` either absolutely or
/// relatively (whichever is looser), which is the right notion for chained
/// f32 math.
pub fn approx_eq(a: f32, b: f32, eps: f32) -> bool {
    let diff = (a - b).abs();
    if diff <= eps {
        return true;
    }
    diff <= eps * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-7, 1e-5));
        assert!(approx_eq(1e6, 1e6 * (1.0 + 1e-6), 1e-5));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
        assert!(approx_eq(0.0, 0.0, 1e-9));
    }

    #[test]
    fn parameter_counts_match_paper() {
        assert_eq!(GAUSSIAN_PARAMS, 59);
        assert_eq!(COARSE_PARAMS, 4);
        assert_eq!(FINE_PARAMS, 55);
    }
}
