//! Pinhole camera model: intrinsics, pose, projection and ray generation.

use crate::geom::Ray;
use crate::mat::Mat3;
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// Pinhole intrinsics in pixels.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Intrinsics {
    /// Focal length along x, in pixels.
    pub fx: f32,
    /// Focal length along y, in pixels.
    pub fy: f32,
    /// Principal point x, in pixels.
    pub cx: f32,
    /// Principal point y, in pixels.
    pub cy: f32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl Intrinsics {
    /// Builds intrinsics from a horizontal field of view.
    ///
    /// The principal point is placed at the image centre and `fy = fx`
    /// (square pixels).
    pub fn from_fov(width: u32, height: u32, fov_x: f32) -> Intrinsics {
        let fx = width as f32 * 0.5 / (fov_x * 0.5).tan();
        Intrinsics {
            fx,
            fy: fx,
            cx: width as f32 * 0.5,
            cy: height as f32 * 0.5,
            width,
            height,
        }
    }

    /// Horizontal field of view in radians.
    pub fn fov_x(&self) -> f32 {
        2.0 * (self.width as f32 * 0.5 / self.fx).atan()
    }

    /// Vertical field of view in radians.
    pub fn fov_y(&self) -> f32 {
        2.0 * (self.height as f32 * 0.5 / self.fy).atan()
    }

    /// Total pixel count.
    pub fn pixels(&self) -> usize {
        self.width as usize * self.height as usize
    }
}

/// Rigid world-to-camera transform: `p_cam = rotation * p_world + translation`.
///
/// The camera looks down its local +Z axis (the 3DGS / COLMAP convention).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// World-to-camera rotation.
    pub rotation: Mat3,
    /// World-to-camera translation.
    pub translation: Vec3,
}

impl Default for Pose {
    fn default() -> Self {
        Pose {
            rotation: Mat3::IDENTITY,
            translation: Vec3::ZERO,
        }
    }
}

impl Pose {
    /// Builds the pose of a camera placed at `eye`, looking at `target`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `eye == target` or `up` is parallel to the
    /// viewing direction (the frame is then underdetermined).
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Pose {
        let forward = (target - eye).normalized();
        let right = forward.cross(up).normalized();
        let down = forward.cross(right); // completes the right-handed +Z-forward frame
                                         // Camera axes are the rows of the world-to-camera rotation.
        let rotation = Mat3::from_rows(right.to_array(), down.to_array(), forward.to_array());
        Pose {
            rotation,
            translation: -(rotation * eye),
        }
    }

    /// Camera centre in world coordinates.
    pub fn center(&self) -> Vec3 {
        -(self.rotation.transpose() * self.translation)
    }

    /// Viewing direction (+Z of the camera) in world coordinates.
    pub fn forward(&self) -> Vec3 {
        self.rotation.row(2)
    }
}

/// A full camera: intrinsics plus pose.
///
/// ```
/// use gs_core::camera::Camera;
/// use gs_core::vec::Vec3;
/// let cam = Camera::look_at(
///     Vec3::new(0.0, 0.0, -4.0),
///     Vec3::ZERO,
///     Vec3::Y,
///     320,
///     240,
///     std::f32::consts::FRAC_PI_2,
/// );
/// // The look-at target projects to the image centre.
/// let (px, depth) = cam.project(Vec3::ZERO).expect("in front");
/// assert!((px.x - 160.0).abs() < 1e-3);
/// assert!((px.y - 120.0).abs() < 1e-3);
/// assert!((depth - 4.0).abs() < 1e-4);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    pub intrinsics: Intrinsics,
    pub pose: Pose,
}

impl Camera {
    /// Convenience constructor combining [`Pose::look_at`] and
    /// [`Intrinsics::from_fov`].
    pub fn look_at(
        eye: Vec3,
        target: Vec3,
        up: Vec3,
        width: u32,
        height: u32,
        fov_x: f32,
    ) -> Camera {
        Camera {
            intrinsics: Intrinsics::from_fov(width, height, fov_x),
            pose: Pose::look_at(eye, target, up),
        }
    }

    /// Transforms a world point into camera space.
    pub fn world_to_camera(&self, p: Vec3) -> Vec3 {
        self.pose.rotation * p + self.pose.translation
    }

    /// Projects a world point to `(pixel, depth)`.
    ///
    /// Returns `None` when the point lies behind (or numerically on) the
    /// camera plane; callers cull such Gaussians.
    pub fn project(&self, p: Vec3) -> Option<(Vec2, f32)> {
        let c = self.world_to_camera(p);
        if c.z <= 1e-6 {
            return None;
        }
        let inv_z = 1.0 / c.z;
        Some((
            Vec2::new(
                self.intrinsics.fx * c.x * inv_z + self.intrinsics.cx,
                self.intrinsics.fy * c.y * inv_z + self.intrinsics.cy,
            ),
            c.z,
        ))
    }

    /// Returns the world-space ray through the centre of pixel `(px, py)`.
    pub fn pixel_ray(&self, px: f32, py: f32) -> Ray {
        let dir_cam = Vec3::new(
            (px - self.intrinsics.cx) / self.intrinsics.fx,
            (py - self.intrinsics.cy) / self.intrinsics.fy,
            1.0,
        );
        let dir_world = (self.pose.rotation.transpose() * dir_cam).normalized();
        Ray::new(self.pose.center(), dir_world)
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.intrinsics.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.intrinsics.height
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn sample_camera() -> Camera {
        Camera::look_at(
            Vec3::new(1.0, 2.0, -5.0),
            Vec3::new(0.0, 0.5, 0.0),
            Vec3::Y,
            640,
            480,
            std::f32::consts::FRAC_PI_2,
        )
    }

    #[test]
    fn look_at_center_recovers_eye() {
        let cam = sample_camera();
        let eye = Vec3::new(1.0, 2.0, -5.0);
        assert!((cam.pose.center() - eye).length() < 1e-4);
    }

    #[test]
    fn target_projects_to_principal_point() {
        let cam = sample_camera();
        let (px, depth) = cam.project(Vec3::new(0.0, 0.5, 0.0)).unwrap();
        assert!(approx_eq(px.x, cam.intrinsics.cx, 1e-3));
        assert!(approx_eq(px.y, cam.intrinsics.cy, 1e-3));
        assert!(depth > 0.0);
    }

    #[test]
    fn rotation_is_orthonormal() {
        let r = sample_camera().pose.rotation;
        assert!((r * r.transpose()).distance(&Mat3::IDENTITY) < 1e-5);
        assert!(approx_eq(r.det(), 1.0, 1e-4));
    }

    #[test]
    fn behind_camera_is_culled() {
        let cam = sample_camera();
        // A point far behind the eye along the backward direction.
        let behind = cam.pose.center() - cam.pose.forward() * 10.0;
        assert!(cam.project(behind).is_none());
    }

    #[test]
    fn pixel_ray_hits_projected_point() {
        let cam = sample_camera();
        let p = Vec3::new(0.3, 0.8, 1.2);
        let (px, depth) = cam.project(p).unwrap();
        let ray = cam.pixel_ray(px.x, px.y);
        // The point should lie on the ray: distance from ray to p near zero.
        let t = (p - ray.origin).dot(ray.dir);
        let closest = ray.origin + ray.dir * t;
        assert!((closest - p).length() < 1e-3);
        assert!(t > 0.0 && depth > 0.0);
    }

    #[test]
    fn fov_roundtrip() {
        let intr = Intrinsics::from_fov(800, 600, 1.2);
        assert!(approx_eq(intr.fov_x(), 1.2, 1e-5));
        assert_eq!(intr.pixels(), 480_000);
    }

    #[test]
    fn up_vector_points_up_in_image() {
        // A point above the target must land at smaller v (image y grows downward).
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::Y,
            320,
            240,
            1.0,
        );
        let (above, _) = cam.project(Vec3::new(0.0, 0.5, 0.0)).unwrap();
        let (center, _) = cam.project(Vec3::ZERO).unwrap();
        assert!(above.y < center.y);
    }
}
