//! Real spherical harmonics up to degree 3 — the 3DGS colour model.
//!
//! A Gaussian's view-dependent colour is `clamp(0.5 + Σ_k c_k · Y_k(d), 0, ·)`
//! per channel, where `d` is the unit direction from the camera centre to the
//! Gaussian and `Y_k` are the 16 real SH basis functions. Coefficients are
//! stored channel-interleaved: `coeffs[k]` is the RGB triple for basis `k`,
//! `coeffs[0]` being the DC term.

use crate::vec::Vec3;

/// Number of SH basis functions at degree 3 (`(3+1)² = 16`).
pub const SH_BASIS: usize = 16;

/// Number of SH coefficients per Gaussian (16 basis × 3 channels).
pub const SH_COEFFS: usize = SH_BASIS * 3;

/// Degree-0 normalization constant.
pub const SH_C0: f32 = 0.282_094_79;
/// Degree-1 normalization constant.
pub const SH_C1: f32 = 0.488_602_51;
/// Degree-2 normalization constants.
#[allow(clippy::excessive_precision)]
pub const SH_C2: [f32; 5] = [
    1.092_548_4,
    -1.092_548_4,
    0.315_391_57,
    -1.092_548_4,
    0.546_274_215,
];
/// Degree-3 normalization constants.
#[allow(clippy::excessive_precision)]
pub const SH_C3: [f32; 7] = [
    -0.590_043_59,
    2.890_611_4,
    -0.457_045_8,
    0.373_176_33,
    -0.457_045_8,
    1.445_305_7,
    -0.590_043_59,
];

/// Evaluates the 16 real SH basis functions at unit direction `d`.
///
/// The ordering and sign conventions follow the reference 3DGS CUDA
/// implementation, so coefficients trained there would evaluate identically.
pub fn eval_basis(d: Vec3) -> [f32; SH_BASIS] {
    let (x, y, z) = (d.x, d.y, d.z);
    let (xx, yy, zz) = (x * x, y * y, z * z);
    let (xy, yz, xz) = (x * y, y * z, x * z);
    [
        SH_C0,
        -SH_C1 * y,
        SH_C1 * z,
        -SH_C1 * x,
        SH_C2[0] * xy,
        SH_C2[1] * yz,
        SH_C2[2] * (2.0 * zz - xx - yy),
        SH_C2[3] * xz,
        SH_C2[4] * (xx - yy),
        SH_C3[0] * y * (3.0 * xx - yy),
        SH_C3[1] * xy * z,
        SH_C3[2] * y * (4.0 * zz - xx - yy),
        SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy),
        SH_C3[4] * x * (4.0 * zz - xx - yy),
        SH_C3[5] * z * (xx - yy),
        SH_C3[6] * x * (xx - 3.0 * yy),
    ]
}

/// Evaluates the RGB colour of SH coefficients `coeffs` (length
/// [`SH_COEFFS`], layout `[basis][rgb]`) seen from direction `d` (unit),
/// truncated to `degree` (0–3).
///
/// Matches 3DGS: a 0.5 offset is added and the result is clamped at zero.
///
/// # Panics
///
/// Panics when `coeffs.len() != SH_COEFFS` or `degree > 3`.
///
/// ```
/// use gs_core::sh::{eval_color, SH_C0, SH_COEFFS};
/// use gs_core::vec::Vec3;
/// // A pure-DC grey Gaussian: colour is direction independent.
/// let mut coeffs = [0.0_f32; SH_COEFFS];
/// coeffs[0] = 0.5 / SH_C0; // red DC
/// let c = eval_color(&coeffs, Vec3::Z, 3);
/// assert!((c.x - 1.0).abs() < 1e-5);
/// assert!((c.y - 0.5).abs() < 1e-5);
/// ```
pub fn eval_color(coeffs: &[f32], d: Vec3, degree: u8) -> Vec3 {
    assert_eq!(
        coeffs.len(),
        SH_COEFFS,
        "expected {SH_COEFFS} SH coefficients"
    );
    assert!(degree <= 3, "SH degree must be 0..=3");
    let basis = eval_basis(d);
    let n_basis = ((degree as usize) + 1) * ((degree as usize) + 1);
    let mut c = Vec3::ZERO;
    for (k, &b) in basis.iter().take(n_basis).enumerate() {
        c.x += b * coeffs[3 * k];
        c.y += b * coeffs[3 * k + 1];
        // gs-lint: allow(D006) fixed ascending-k basis walk; pinned by the exactness suites
        c.z += b * coeffs[3 * k + 2];
    }
    (c + Vec3::splat(0.5)).max(Vec3::ZERO)
}

/// Converts a target RGB colour into the DC coefficient triple that
/// reproduces it exactly (inverse of the degree-0 term of [`eval_color`]).
pub fn color_to_dc(color: Vec3) -> [f32; 3] {
    let v = (color - Vec3::splat(0.5)) * (1.0 / SH_C0);
    [v.x, v.y, v.z]
}

/// Number of basis functions in each band (degree), `[1, 3, 5, 7]`.
pub const BAND_SIZES: [usize; 4] = [1, 3, 5, 7];

/// Coefficient index range (in basis indices, not floats) of band `degree`.
pub fn band_range(degree: usize) -> std::ops::Range<usize> {
    let start: usize = BAND_SIZES[..degree].iter().sum();
    start..start + BAND_SIZES[degree]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn basis_dc_is_constant() {
        let a = eval_basis(Vec3::Z);
        let b = eval_basis(Vec3::new(0.6, 0.0, 0.8));
        assert_eq!(a[0], SH_C0);
        assert_eq!(b[0], SH_C0);
    }

    #[test]
    fn basis_degree1_is_linear_in_direction() {
        let d = Vec3::new(0.36, 0.48, 0.8);
        let b = eval_basis(d);
        assert!(approx_eq(b[1], -SH_C1 * d.y, 1e-6));
        assert!(approx_eq(b[2], SH_C1 * d.z, 1e-6));
        assert!(approx_eq(b[3], -SH_C1 * d.x, 1e-6));
    }

    #[test]
    fn basis_orthogonality_monte_carlo() {
        // ∫ Y_i Y_j dΩ = δ_ij; with uniform sphere samples the empirical
        // mean of Y_i·Y_j·4π approximates the identity.
        let n = 20_000;
        let mut acc = [[0.0f64; SH_BASIS]; SH_BASIS];
        // Fibonacci sphere: deterministic, well spread.
        let golden = std::f32::consts::PI * (3.0 - 5.0_f32.sqrt());
        for i in 0..n {
            let z = 1.0 - 2.0 * (i as f32 + 0.5) / n as f32;
            let r = (1.0 - z * z).max(0.0).sqrt();
            let th = golden * i as f32;
            let d = Vec3::new(r * th.cos(), r * th.sin(), z);
            let b = eval_basis(d);
            for p in 0..SH_BASIS {
                for q in 0..SH_BASIS {
                    acc[p][q] += (b[p] * b[q]) as f64;
                }
            }
        }
        let scale = 4.0 * std::f64::consts::PI / n as f64;
        #[allow(clippy::needless_range_loop)]
        for p in 0..SH_BASIS {
            for q in 0..SH_BASIS {
                let v = acc[p][q] * scale;
                let expected = if p == q { 1.0 } else { 0.0 };
                assert!(
                    (v - expected).abs() < 0.02,
                    "orthogonality violated at ({p},{q}): {v}"
                );
            }
        }
    }

    #[test]
    fn color_clamped_at_zero() {
        let mut coeffs = [0.0; SH_COEFFS];
        coeffs[0] = -10.0; // drives red far negative
        let c = eval_color(&coeffs, Vec3::Z, 0);
        assert_eq!(c.x, 0.0);
        assert!(approx_eq(c.y, 0.5, 1e-6));
    }

    #[test]
    fn dc_roundtrip() {
        let target = Vec3::new(0.9, 0.2, 0.6);
        let dc = color_to_dc(target);
        let mut coeffs = [0.0; SH_COEFFS];
        coeffs[..3].copy_from_slice(&dc);
        let c = eval_color(&coeffs, Vec3::new(0.0, 0.6, 0.8), 3);
        assert!((c - target).length() < 1e-5);
    }

    #[test]
    fn degree_truncation_ignores_higher_bands() {
        let mut coeffs = [0.0; SH_COEFFS];
        coeffs[0] = 1.0;
        coeffs[3 * 9] = 100.0; // a degree-3 coefficient
        let d = Vec3::new(0.6, 0.48, 0.64).normalized();
        let c2 = eval_color(&coeffs, d, 2);
        let c3 = eval_color(&coeffs, d, 3);
        assert!(approx_eq(c2.x, 0.5 + SH_C0, 1e-5));
        assert!(
            (c3.x - c2.x).abs() > 1e-3,
            "degree-3 term should matter at full degree"
        );
    }

    #[test]
    fn band_ranges_partition_basis() {
        assert_eq!(band_range(0), 0..1);
        assert_eq!(band_range(1), 1..4);
        assert_eq!(band_range(2), 4..9);
        assert_eq!(band_range(3), 9..16);
    }

    #[test]
    #[should_panic(expected = "SH coefficients")]
    fn wrong_coefficient_count_panics() {
        let _ = eval_color(&[0.0; 10], Vec3::Z, 3);
    }
}
