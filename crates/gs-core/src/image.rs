//! A minimal float RGB image with PSNR and PPM export.

use crate::vec::Vec3;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;

/// An RGB image with `f32` channels in `[0, 1]` (values outside are permitted
/// mid-pipeline and clamped on export).
///
/// ```
/// use gs_core::image::ImageRgb;
/// use gs_core::vec::Vec3;
/// let mut img = ImageRgb::new(4, 2);
/// img.set(1, 0, Vec3::new(1.0, 0.0, 0.0));
/// assert_eq!(img.get(1, 0).x, 1.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ImageRgb {
    width: u32,
    height: u32,
    data: Vec<Vec3>,
}

impl ImageRgb {
    /// Creates a black image.
    pub fn new(width: u32, height: u32) -> ImageRgb {
        ImageRgb {
            width,
            height,
            data: vec![Vec3::ZERO; width as usize * height as usize],
        }
    }

    /// Re-shapes the image in place to `width`×`height`, zeroing every
    /// pixel. Keeps the pixel buffer's allocation when it already fits, so
    /// a frame loop can reuse one output image without heap churn.
    pub fn reset(&mut self, width: u32, height: u32) {
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data
            .resize(width as usize * height as usize, Vec3::ZERO);
    }

    /// Creates an image filled with `color`.
    pub fn filled(width: u32, height: u32, color: Vec3) -> ImageRgb {
        ImageRgb {
            width,
            height,
            data: vec![color; width as usize * height as usize],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of pixels.
    pub fn pixels(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        y as usize * self.width as usize + x as usize
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Vec3 {
        self.data[self.idx(x, y)]
    }

    /// Writes pixel `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: Vec3) {
        let i = self.idx(x, y);
        self.data[i] = c;
    }

    /// Adds `c` into pixel `(x, y)` (used for partial-value accumulation in
    /// the streaming renderer).
    #[inline]
    pub fn accumulate(&mut self, x: u32, y: u32, c: Vec3) {
        let i = self.idx(x, y);
        self.data[i] += c;
    }

    /// Raw pixel slice in row-major order.
    pub fn as_slice(&self) -> &[Vec3] {
        &self.data
    }

    /// Mutable raw pixel slice.
    pub fn as_mut_slice(&mut self) -> &mut [Vec3] {
        &mut self.data
    }

    /// Mean squared error against `other` over all channels.
    ///
    /// # Panics
    ///
    /// Panics when dimensions differ.
    pub fn mse(&self, other: &ImageRgb) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image dimensions must match"
        );
        let mut acc = 0.0f64;
        for (a, b) in self.data.iter().zip(&other.data) {
            let d = *a - *b;
            // gs-lint: allow(D006) fixed row-major pixel order; f64 quality metric, not render output
            acc += (d.x as f64).powi(2) + (d.y as f64).powi(2) + (d.z as f64).powi(2);
        }
        acc / (self.data.len() as f64 * 3.0)
    }

    /// Peak signal-to-noise ratio in dB against `other`, with peak 1.0.
    ///
    /// Returns `f64::INFINITY` for identical images.
    pub fn psnr(&self, other: &ImageRgb) -> f64 {
        let mse = self.mse(other);
        if mse <= 0.0 {
            return f64::INFINITY;
        }
        10.0 * (1.0 / mse).log10()
    }

    /// Mean absolute (L1) difference against `other`.
    pub fn l1(&self, other: &ImageRgb) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        let mut acc = 0.0f64;
        for (a, b) in self.data.iter().zip(&other.data) {
            let d = (*a - *b).abs();
            // gs-lint: allow(D006) fixed row-major pixel order; f64 quality metric, not render output
            acc += (d.x + d.y + d.z) as f64;
        }
        acc / (self.data.len() as f64 * 3.0)
    }

    /// Writes a binary PPM (P6). Values are clamped to `[0, 1]` and
    /// quantized to 8 bits.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_ppm<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut buf = Vec::with_capacity(self.data.len() * 3 + 64);
        write!(buf, "P6\n{} {}\n255\n", self.width, self.height)?;
        for p in &self.data {
            let c = p.clamp(0.0, 1.0) * 255.0;
            buf.push(c.x.round() as u8);
            buf.push(c.y.round() as u8);
            buf.push(c.z.round() as u8);
        }
        std::fs::write(path, buf)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn new_image_is_black() {
        let img = ImageRgb::new(3, 2);
        assert_eq!(img.pixels(), 6);
        assert_eq!(img.get(2, 1), Vec3::ZERO);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = ImageRgb::new(4, 4);
        img.set(3, 2, Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(img.get(3, 2), Vec3::new(0.1, 0.2, 0.3));
        img.accumulate(3, 2, Vec3::splat(0.1));
        assert!((img.get(3, 2) - Vec3::new(0.2, 0.3, 0.4)).length() < 1e-6);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let img = ImageRgb::filled(8, 8, Vec3::splat(0.5));
        assert!(img.psnr(&img).is_infinite());
    }

    #[test]
    fn psnr_known_value() {
        let a = ImageRgb::filled(8, 8, Vec3::splat(0.5));
        let b = ImageRgb::filled(8, 8, Vec3::splat(0.6));
        // MSE = 0.01 → PSNR = 20 dB (up to f32 rounding of the 0.1 delta).
        assert!((a.psnr(&b) - 20.0).abs() < 1e-4);
    }

    #[test]
    fn psnr_symmetric() {
        let mut a = ImageRgb::new(4, 4);
        let mut b = ImageRgb::new(4, 4);
        a.set(0, 0, Vec3::splat(1.0));
        b.set(3, 3, Vec3::new(0.3, 0.1, 0.9));
        assert!((a.psnr(&b) - b.psnr(&a)).abs() < 1e-9);
    }

    #[test]
    fn l1_of_constant_offset() {
        let a = ImageRgb::filled(2, 2, Vec3::splat(0.25));
        let b = ImageRgb::filled(2, 2, Vec3::splat(0.75));
        assert!((a.l1(&b) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn mse_dimension_mismatch_panics() {
        let a = ImageRgb::new(2, 2);
        let b = ImageRgb::new(3, 2);
        let _ = a.mse(&b);
    }

    #[test]
    fn ppm_export_has_header_and_size() {
        let dir = std::env::temp_dir().join("gs_core_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("img.ppm");
        let img = ImageRgb::filled(5, 3, Vec3::new(1.0, 0.0, 0.5));
        img.write_ppm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n5 3\n255\n"));
        assert_eq!(bytes.len(), b"P6\n5 3\n255\n".len() + 5 * 3 * 3);
    }
}
