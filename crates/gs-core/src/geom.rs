//! Rays and axis-aligned bounding boxes (voxel grid geometry).

use crate::vec::Vec3;
use serde::{Deserialize, Serialize};

/// A ray `origin + t * dir` with (by convention) unit `dir`.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ray {
    pub origin: Vec3,
    pub dir: Vec3,
}

impl Ray {
    /// Creates a ray. `dir` should be normalized by the caller.
    pub const fn new(origin: Vec3, dir: Vec3) -> Ray {
        Ray { origin, dir }
    }

    /// Point at parameter `t`.
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }
}

/// An axis-aligned bounding box.
///
/// ```
/// use gs_core::geom::{Aabb, Ray};
/// use gs_core::vec::Vec3;
/// let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
/// let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
/// let (t0, t1) = b.intersect_ray(&ray).expect("hits");
/// assert!((t0 - 1.0).abs() < 1e-6 && (t1 - 2.0).abs() < 1e-6);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from corners; components of `min` must not exceed `max`.
    pub fn new(min: Vec3, max: Vec3) -> Aabb {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "inverted AABB: {min} > {max}"
        );
        Aabb { min, max }
    }

    /// The empty box (suitable as a fold identity for [`Aabb::union`]).
    pub fn empty() -> Aabb {
        Aabb {
            min: Vec3::splat(f32::INFINITY),
            max: Vec3::splat(f32::NEG_INFINITY),
        }
    }

    /// `true` when no point is contained (as produced by [`Aabb::empty`]).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Grows the box to contain `p`.
    pub fn expand(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Smallest box containing both inputs.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The box inflated by `r` on every side.
    pub fn inflated(&self, r: f32) -> Aabb {
        Aabb {
            min: self.min - Vec3::splat(r),
            max: self.max + Vec3::splat(r),
        }
    }

    /// `true` when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Box extent (`max - min`).
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Box centre.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Slab test: returns the entry/exit parameters `(t0, t1)` of the ray
    /// against the box, or `None` when the ray misses. `t0` may be negative
    /// when the origin is inside.
    pub fn intersect_ray(&self, ray: &Ray) -> Option<(f32, f32)> {
        let mut t0 = f32::NEG_INFINITY;
        let mut t1 = f32::INFINITY;
        for axis in 0..3 {
            let o = ray.origin[axis];
            let d = ray.dir[axis];
            let (lo, hi) = (self.min[axis], self.max[axis]);
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (mut ta, mut tb) = ((lo - o) * inv, (hi - o) * inv);
                if ta > tb {
                    std::mem::swap(&mut ta, &mut tb);
                }
                t0 = t0.max(ta);
                t1 = t1.min(tb);
                if t0 > t1 {
                    return None;
                }
            }
        }
        Some((t0, t1))
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_contains_nothing_and_unions_correctly() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert!(!e.contains(Vec3::ZERO));
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(e.union(&b), b);
    }

    #[test]
    fn expand_grows_box() {
        let mut b = Aabb::empty();
        b.expand(Vec3::new(1.0, -2.0, 3.0));
        b.expand(Vec3::new(-1.0, 4.0, 0.0));
        assert_eq!(b.min, Vec3::new(-1.0, -2.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 4.0, 3.0));
        assert!(b.contains(Vec3::new(0.0, 0.0, 1.0)));
    }

    #[test]
    fn ray_hits_box_from_outside() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let ray = Ray::new(Vec3::new(-1.0, 1.0, 1.0), Vec3::X);
        let (t0, t1) = b.intersect_ray(&ray).unwrap();
        assert!((t0 - 1.0).abs() < 1e-6);
        assert!((t1 - 3.0).abs() < 1e-6);
    }

    #[test]
    fn ray_from_inside_has_negative_entry() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let ray = Ray::new(Vec3::splat(1.0), Vec3::Z);
        let (t0, t1) = b.intersect_ray(&ray).unwrap();
        assert!(t0 < 0.0 && t1 > 0.0);
    }

    #[test]
    fn parallel_ray_outside_slab_misses() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let ray = Ray::new(Vec3::new(-0.5, 2.0, 0.5), Vec3::X);
        assert!(b.intersect_ray(&ray).is_none());
    }

    #[test]
    fn diagonal_ray_hits_corner_region() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let dir = Vec3::ONE.normalized();
        let ray = Ray::new(Vec3::splat(-1.0), dir);
        assert!(b.intersect_ray(&ray).is_some());
    }

    #[test]
    fn inflated_contains_original() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE).inflated(0.5);
        assert!(b.contains(Vec3::splat(-0.4)));
        assert_eq!(b.extent(), Vec3::splat(2.0));
        assert_eq!(b.center(), Vec3::splat(0.5));
    }

    #[test]
    fn ray_at_parameter() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        assert_eq!(r.at(2.5), Vec3::new(2.5, 0.0, 0.0));
    }
}
