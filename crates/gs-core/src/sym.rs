//! Symmetric 2×2 and 3×3 matrices (covariances and conics).
//!
//! Splatting only ever manipulates *symmetric* covariance matrices, so we
//! store the unique entries: 3 floats for 2-D, 6 floats for 3-D. This is also
//! exactly the storage layout real 3DGS checkpoints use.

use crate::mat::Mat3;
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul};

/// A symmetric 2×2 matrix `[[a, b], [b, c]]`.
///
/// Used both for projected 2-D covariances and (inverted) for the conic that
/// evaluates the Gaussian falloff per pixel.
///
/// ```
/// use gs_core::sym::Sym2;
/// let cov = Sym2::new(2.0, 0.0, 0.5);
/// let conic = cov.inverse().expect("positive definite");
/// assert!((conic.a - 0.5).abs() < 1e-6);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Sym2 {
    pub a: f32,
    pub b: f32,
    pub c: f32,
}

impl Sym2 {
    /// Creates the matrix `[[a, b], [b, c]]`.
    pub const fn new(a: f32, b: f32, c: f32) -> Sym2 {
        Sym2 { a, b, c }
    }

    /// The identity matrix.
    pub const IDENTITY: Sym2 = Sym2 {
        a: 1.0,
        b: 0.0,
        c: 1.0,
    };

    /// Determinant.
    pub fn det(self) -> f32 {
        self.a * self.c - self.b * self.b
    }

    /// Inverse, or `None` when (nearly) singular.
    pub fn inverse(self) -> Option<Sym2> {
        let det = self.det();
        if det.abs() < 1e-20 {
            return None;
        }
        let inv = 1.0 / det;
        Some(Sym2::new(self.c * inv, -self.b * inv, self.a * inv))
    }

    /// Eigenvalues in `(max, min)` order.
    ///
    /// Symmetric 2×2 eigenvalues are available in closed form; the maximum one
    /// determines the projected Gaussian's screen-space radius.
    pub fn eigenvalues(self) -> (f32, f32) {
        let mid = 0.5 * (self.a + self.c);
        let det = self.det();
        let disc = (mid * mid - det).max(0.0).sqrt();
        (mid + disc, mid - disc)
    }

    /// Evaluates the quadratic form `dᵀ M d`.
    pub fn quadratic_form(self, d: Vec2) -> f32 {
        self.a * d.x * d.x + 2.0 * self.b * d.x * d.y + self.c * d.y * d.y
    }

    /// `true` when the matrix is positive definite.
    pub fn is_positive_definite(self) -> bool {
        self.a > 0.0 && self.det() > 0.0
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(self) -> bool {
        self.a.is_finite() && self.b.is_finite() && self.c.is_finite()
    }
}

impl Add for Sym2 {
    type Output = Sym2;
    fn add(self, r: Sym2) -> Sym2 {
        Sym2::new(self.a + r.a, self.b + r.b, self.c + r.c)
    }
}

impl Mul<f32> for Sym2 {
    type Output = Sym2;
    fn mul(self, s: f32) -> Sym2 {
        Sym2::new(self.a * s, self.b * s, self.c * s)
    }
}

/// A symmetric 3×3 matrix storing the upper triangle
/// `[xx, xy, xz, yy, yz, zz]` — the 3-D covariance of a Gaussian.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Sym3 {
    pub xx: f32,
    pub xy: f32,
    pub xz: f32,
    pub yy: f32,
    pub yz: f32,
    pub zz: f32,
}

impl Sym3 {
    /// Creates a matrix from the upper-triangle entries.
    pub const fn new(xx: f32, xy: f32, xz: f32, yy: f32, yz: f32, zz: f32) -> Sym3 {
        Sym3 {
            xx,
            xy,
            xz,
            yy,
            yz,
            zz,
        }
    }

    /// The identity matrix.
    pub const IDENTITY: Sym3 = Sym3 {
        xx: 1.0,
        xy: 0.0,
        xz: 0.0,
        yy: 1.0,
        yz: 0.0,
        zz: 1.0,
    };

    /// A diagonal matrix.
    pub fn diagonal(d: Vec3) -> Sym3 {
        Sym3::new(d.x, 0.0, 0.0, d.y, 0.0, d.z)
    }

    /// Expands to a dense [`Mat3`].
    pub fn to_mat3(self) -> Mat3 {
        Mat3::from_rows(
            [self.xx, self.xy, self.xz],
            [self.xy, self.yy, self.yz],
            [self.xz, self.yz, self.zz],
        )
    }

    /// Symmetrizes a (numerically almost symmetric) dense matrix.
    pub fn from_mat3(m: &Mat3) -> Sym3 {
        Sym3::new(
            m.m[0][0],
            0.5 * (m.m[0][1] + m.m[1][0]),
            0.5 * (m.m[0][2] + m.m[2][0]),
            m.m[1][1],
            0.5 * (m.m[1][2] + m.m[2][1]),
            m.m[2][2],
        )
    }

    /// Congruence transform `M Σ Mᵀ` — how covariances move through a linear
    /// map. The result is symmetric by construction.
    pub fn congruence(self, m: &Mat3) -> Sym3 {
        let dense = *m * self.to_mat3() * m.transpose();
        Sym3::from_mat3(&dense)
    }

    /// Evaluates the quadratic form `dᵀ Σ d`.
    pub fn quadratic_form(self, d: Vec3) -> f32 {
        self.xx * d.x * d.x
            + self.yy * d.y * d.y
            + self.zz * d.z * d.z
            + 2.0 * (self.xy * d.x * d.y + self.xz * d.x * d.z + self.yz * d.y * d.z)
    }

    /// Trace of the matrix.
    pub fn trace(self) -> f32 {
        self.xx + self.yy + self.zz
    }

    /// `true` when positive semi-definite (up to tolerance), checked via the
    /// leading principal minors with a small slack for f32 rounding.
    pub fn is_positive_semidefinite(self, eps: f32) -> bool {
        let m1 = self.xx;
        let m2 = self.xx * self.yy - self.xy * self.xy;
        let m3 = self.to_mat3().det();
        m1 >= -eps && m2 >= -eps && m3 >= -eps
    }

    /// The unique entries as `[xx, xy, xz, yy, yz, zz]`.
    pub fn to_array(self) -> [f32; 6] {
        [self.xx, self.xy, self.xz, self.yy, self.yz, self.zz]
    }
}

impl Add for Sym3 {
    type Output = Sym3;
    fn add(self, r: Sym3) -> Sym3 {
        Sym3::new(
            self.xx + r.xx,
            self.xy + r.xy,
            self.xz + r.xz,
            self.yy + r.yy,
            self.yz + r.yz,
            self.zz + r.zz,
        )
    }
}

impl Mul<f32> for Sym3 {
    type Output = Sym3;
    fn mul(self, s: f32) -> Sym3 {
        Sym3::new(
            self.xx * s,
            self.xy * s,
            self.xz * s,
            self.yy * s,
            self.yz * s,
            self.zz * s,
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::quat::Quat;

    #[test]
    fn sym2_inverse_roundtrip() {
        let m = Sym2::new(3.0, 1.0, 2.0);
        let inv = m.inverse().unwrap();
        // m * inv should be the identity: compute entries manually.
        let i00 = m.a * inv.a + m.b * inv.b;
        let i01 = m.a * inv.b + m.b * inv.c;
        let i11 = m.b * inv.b + m.c * inv.c;
        assert!(approx_eq(i00, 1.0, 1e-5));
        assert!(approx_eq(i01, 0.0, 1e-5));
        assert!(approx_eq(i11, 1.0, 1e-5));
    }

    #[test]
    fn sym2_eigenvalues_of_diagonal() {
        let (l1, l2) = Sym2::new(5.0, 0.0, 2.0).eigenvalues();
        assert!(approx_eq(l1, 5.0, 1e-6));
        assert!(approx_eq(l2, 2.0, 1e-6));
    }

    #[test]
    fn sym2_eigenvalues_sum_and_product() {
        let m = Sym2::new(2.0, 1.5, 4.0);
        let (l1, l2) = m.eigenvalues();
        assert!(approx_eq(l1 + l2, m.a + m.c, 1e-5));
        assert!(approx_eq(l1 * l2, m.det(), 1e-4));
        assert!(l1 >= l2);
    }

    #[test]
    fn sym2_singular_has_no_inverse() {
        assert!(Sym2::new(1.0, 1.0, 1.0).inverse().is_none());
    }

    #[test]
    fn sym2_quadratic_form_positive_for_pd() {
        let m = Sym2::new(2.0, 0.3, 1.0);
        assert!(m.is_positive_definite());
        assert!(m.quadratic_form(Vec2::new(0.7, -1.3)) > 0.0);
    }

    #[test]
    fn sym3_congruence_with_rotation_preserves_trace_and_psd() {
        let sigma = Sym3::diagonal(Vec3::new(1.0, 4.0, 0.25));
        let r = Quat::from_axis_angle(Vec3::new(0.3, 1.0, -0.2), 0.9).to_rotation();
        let rotated = sigma.congruence(&r);
        assert!(approx_eq(rotated.trace(), sigma.trace(), 1e-4));
        assert!(rotated.is_positive_semidefinite(1e-5));
    }

    #[test]
    fn sym3_quadratic_form_matches_dense() {
        let s = Sym3::new(2.0, 0.5, -0.2, 1.5, 0.1, 3.0);
        let d = Vec3::new(0.4, -1.2, 0.9);
        let dense = s.to_mat3() * d;
        assert!(approx_eq(s.quadratic_form(d), dense.dot(d), 1e-5));
    }

    #[test]
    fn sym3_dense_roundtrip() {
        let s = Sym3::new(1.0, 0.2, 0.3, 2.0, 0.4, 3.0);
        assert_eq!(Sym3::from_mat3(&s.to_mat3()), s);
    }
}
