//! Unit quaternions representing Gaussian orientations.

use crate::mat::Mat3;
use crate::vec::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk`.
///
/// Gaussian rotations are stored as (usually unit) quaternions, exactly as in
/// the 3DGS parameterization; [`Quat::to_rotation`] converts to the rotation
/// matrix used when building the 3-D covariance. Conversion normalizes
/// internally, so slightly denormalized quaternions (e.g. mid-optimization)
/// are handled gracefully.
///
/// ```
/// use gs_core::quat::Quat;
/// use gs_core::vec::Vec3;
/// let q = Quat::from_axis_angle(Vec3::Z, std::f32::consts::FRAC_PI_2);
/// let r = q.to_rotation();
/// let v = r * Vec3::X;
/// assert!((v - Vec3::Y).length() < 1e-5);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    pub w: f32,
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from components.
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Quat {
        Quat { w, x, y, z }
    }

    /// Creates a rotation of `angle` radians around `axis`.
    ///
    /// The axis does not need to be normalized.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Quat {
        let axis = axis.normalized();
        let (s, c) = (angle * 0.5).sin_cos();
        Quat::new(c, axis.x * s, axis.y * s, axis.z * s)
    }

    /// Quaternion norm.
    pub fn norm(self) -> f32 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the normalized (unit) quaternion.
    ///
    /// Falls back to the identity when the norm is (nearly) zero, which is the
    /// safe choice during optimization where a quaternion may collapse.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n < 1e-12 {
            return Quat::IDENTITY;
        }
        Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
    }

    /// Conjugate (inverse for unit quaternions).
    pub fn conjugate(self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Converts to a rotation matrix. Normalizes first.
    pub fn to_rotation(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_rows(
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        )
    }

    /// Rotates a vector.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        self.to_rotation() * v
    }

    /// Recovers a quaternion from a rotation matrix (Shepperd's method).
    ///
    /// The input must be a proper rotation (orthonormal, det +1); the result
    /// satisfies `q.to_rotation() ≈ m`.
    pub fn from_rotation(m: &Mat3) -> Quat {
        let t = m.m[0][0] + m.m[1][1] + m.m[2][2];
        let q = if t > 0.0 {
            let s = (t + 1.0).sqrt() * 2.0;
            Quat::new(
                0.25 * s,
                (m.m[2][1] - m.m[1][2]) / s,
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[1][0] - m.m[0][1]) / s,
            )
        } else if m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2] {
            let s = (1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m.m[2][1] - m.m[1][2]) / s,
                0.25 * s,
                (m.m[0][1] + m.m[1][0]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
            )
        } else if m.m[1][1] > m.m[2][2] {
            let s = (1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[0][1] + m.m[1][0]) / s,
                0.25 * s,
                (m.m[1][2] + m.m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]).sqrt() * 2.0;
            Quat::new(
                (m.m[1][0] - m.m[0][1]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
                (m.m[1][2] + m.m[2][1]) / s,
                0.25 * s,
            )
        };
        q.normalized()
    }

    /// The components as `[w, x, y, z]`.
    pub fn to_array(self) -> [f32; 4] {
        [self.w, self.x, self.y, self.z]
    }

    /// Builds a quaternion from `[w, x, y, z]`.
    pub fn from_array(a: [f32; 4]) -> Quat {
        Quat::new(a[0], a[1], a[2], a[3])
    }

    /// Returns `true` when every component is finite.
    pub fn is_finite(self) -> bool {
        self.w.is_finite() && self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Mul for Quat {
    type Output = Quat;
    /// Hamilton product: `self * rhs` applies `rhs` first, then `self`.
    fn mul(self, r: Quat) -> Quat {
        Quat::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }
}

impl fmt::Display for Quat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} + {}i + {}j + {}k)", self.w, self.x, self.y, self.z)
    }
}

impl From<[f32; 4]> for Quat {
    fn from(a: [f32; 4]) -> Quat {
        Quat::from_array(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn identity_rotation_is_identity_matrix() {
        assert!(Quat::IDENTITY.to_rotation().distance(&Mat3::IDENTITY) < 1e-6);
    }

    #[test]
    fn axis_angle_rotates_correctly() {
        let q = Quat::from_axis_angle(Vec3::Y, std::f32::consts::FRAC_PI_2);
        let v = q.rotate(Vec3::X);
        assert!((v - (-Vec3::Z)).length() < 1e-5, "got {v}");
    }

    #[test]
    fn rotation_matrix_is_orthonormal() {
        let q = Quat::new(0.3, -0.4, 0.5, 0.7);
        let r = q.to_rotation();
        let rrt = r * r.transpose();
        assert!(rrt.distance(&Mat3::IDENTITY) < 1e-5);
        assert!(approx_eq(r.det(), 1.0, 1e-5));
    }

    #[test]
    fn hamilton_product_composes_rotations() {
        let a = Quat::from_axis_angle(Vec3::X, 0.7);
        let b = Quat::from_axis_angle(Vec3::Y, -0.4);
        let composed = (a * b).to_rotation();
        let sequential = a.to_rotation() * b.to_rotation();
        assert!(composed.distance(&sequential) < 1e-5);
    }

    #[test]
    fn conjugate_inverts_unit_rotation() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 1.1);
        let p = q * q.conjugate();
        assert!(approx_eq(p.w, 1.0, 1e-5));
        assert!(p.x.abs() < 1e-5 && p.y.abs() < 1e-5 && p.z.abs() < 1e-5);
    }

    #[test]
    fn degenerate_quaternion_normalizes_to_identity() {
        let q = Quat::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(q.normalized(), Quat::IDENTITY);
    }

    #[test]
    fn from_rotation_roundtrip() {
        let cases = [
            Quat::IDENTITY,
            Quat::from_axis_angle(Vec3::X, 3.0), // near-π: stresses the w≈0 branches
            Quat::from_axis_angle(Vec3::Y, -2.9),
            Quat::from_axis_angle(Vec3::Z, 3.1),
            Quat::from_axis_angle(Vec3::new(1.0, -1.0, 0.5), 1.3),
        ];
        for q in cases {
            let m = q.to_rotation();
            let q2 = Quat::from_rotation(&m);
            // q and -q encode the same rotation; compare matrices instead.
            assert!(q2.to_rotation().distance(&m) < 1e-4, "failed for {q}");
        }
    }

    #[test]
    fn array_roundtrip() {
        let q = Quat::new(0.1, 0.2, 0.3, 0.4);
        assert_eq!(Quat::from_array(q.to_array()), q);
        assert_eq!(Quat::from([0.1, 0.2, 0.3, 0.4]), q);
    }
}
