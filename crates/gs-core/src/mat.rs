//! 3×3 matrices (row-major) for rotations and covariance transforms.

use crate::vec::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul};

/// A 3×3 matrix stored row-major.
///
/// Used for world↔camera rotations and for transforming 3-D covariances
/// during EWA projection.
///
/// ```
/// use gs_core::mat::Mat3;
/// use gs_core::vec::Vec3;
/// let r = Mat3::IDENTITY;
/// assert_eq!(r * Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major entries: `m[r][c]`.
    pub m: [[f32; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };

    /// Builds a matrix from rows.
    pub const fn from_rows(r0: [f32; 3], r1: [f32; 3], r2: [f32; 3]) -> Mat3 {
        Mat3 { m: [r0, r1, r2] }
    }

    /// Builds a matrix whose columns are the given vectors.
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Mat3 {
        Mat3 {
            m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]],
        }
    }

    /// A diagonal matrix with the given diagonal.
    pub fn diagonal(d: Vec3) -> Mat3 {
        Mat3::from_rows([d.x, 0.0, 0.0], [0.0, d.y, 0.0], [0.0, 0.0, d.z])
    }

    /// Returns row `r` as a vector.
    pub fn row(&self, r: usize) -> Vec3 {
        Vec3::new(self.m[r][0], self.m[r][1], self.m[r][2])
    }

    /// Returns column `c` as a vector.
    pub fn col(&self, c: usize) -> Vec3 {
        Vec3::new(self.m[0][c], self.m[1][c], self.m[2][c])
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_cols(self.row(0), self.row(1), self.row(2))
    }

    /// Determinant.
    pub fn det(&self) -> f32 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Matrix inverse, or `None` when the determinant is (nearly) zero.
    pub fn inverse(&self) -> Option<Mat3> {
        let det = self.det();
        if det.abs() < 1e-20 {
            return None;
        }
        let inv_det = 1.0 / det;
        let m = &self.m;
        let mut out = Mat3::ZERO;
        out.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
        out.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
        out.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
        out.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
        out.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
        out.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
        out.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
        out.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
        out.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
        Some(out)
    }

    /// Frobenius norm of `self - other` (test helper).
    pub fn distance(&self, other: &Mat3) -> f32 {
        let mut acc = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                let d = self.m[r][c] - other.m[r][c];
                // gs-lint: allow(D006) fixed row-major element order; diagnostic norm helper
                acc += d * d;
            }
        }
        acc.sqrt()
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.m.iter().all(|row| row.iter().all(|v| v.is_finite()))
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.row(r).dot(rhs.col(c));
            }
        }
        out
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] + rhs.m[r][c];
            }
        }
        out
    }
}

impl Mul<f32> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f32) -> Mat3 {
        let mut out = self;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] *= s;
            }
        }
        out
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{:?}", self.m[0])?;
        writeln!(f, " {:?}", self.m[1])?;
        write!(f, " {:?}]", self.m[2])
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn sample() -> Mat3 {
        Mat3::from_rows([2.0, 1.0, 0.5], [-1.0, 3.0, 2.0], [0.0, -0.5, 1.5])
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample();
        assert_eq!(a * Mat3::IDENTITY, a);
        assert_eq!(Mat3::IDENTITY * a, a);
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY * v, v);
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.row(1), a.transpose().col(1));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = sample();
        let inv = a.inverse().expect("invertible");
        let prod = a * inv;
        assert!(prod.distance(&Mat3::IDENTITY) < 1e-5, "got {prod}");
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 0.0]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn determinant_of_product() {
        let a = sample();
        let b = Mat3::diagonal(Vec3::new(2.0, 3.0, 0.5));
        assert!(approx_eq((a * b).det(), a.det() * b.det(), 1e-4));
    }

    #[test]
    fn diagonal_scales_components() {
        let d = Mat3::diagonal(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(d * Vec3::ONE, Vec3::new(2.0, 3.0, 4.0));
    }

    #[test]
    fn matvec_matches_manual() {
        let a = sample();
        let v = Vec3::new(1.0, 2.0, 3.0);
        let r = a * v;
        assert!(approx_eq(r.x, 2.0 + 2.0 + 1.5, 1e-6));
        assert!(approx_eq(r.y, -1.0 + 6.0 + 6.0, 1e-6));
        assert!(approx_eq(r.z, 0.0 - 1.0 + 4.5, 1e-6));
    }

    #[test]
    fn from_cols_matches_columns() {
        let c0 = Vec3::new(1.0, 2.0, 3.0);
        let c1 = Vec3::new(4.0, 5.0, 6.0);
        let c2 = Vec3::new(7.0, 8.0, 9.0);
        let m = Mat3::from_cols(c0, c1, c2);
        assert_eq!(m.col(0), c0);
        assert_eq!(m.col(1), c1);
        assert_eq!(m.col(2), c2);
    }
}
