//! EWA splatting primitives: covariance construction and projection.
//!
//! These functions implement the projection stage of 3DGS (paper Fig. 2):
//! building the world-space covariance `Σ = R S Sᵀ Rᵀ` from scale and
//! rotation, projecting it through the local affine (Jacobian) approximation
//! of the perspective map, and deriving the screen-space conic used by the
//! rasterizer — plus the 4-parameter *coarse* projection the hierarchical
//! filter uses ([`project_coarse`], paper Sec. III-B).

use crate::camera::Camera;
use crate::mat::Mat3;
use crate::quat::Quat;
use crate::sym::{Sym2, Sym3};
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// Low-pass dilation added to the projected covariance diagonal, exactly as
/// in the 3DGS reference implementation (ensures every splat covers at least
/// ~one pixel and keeps the conic invertible).
pub const COV2D_DILATION: f32 = 0.3;

/// Screen radius multiplier: splats are rasterized out to 3σ.
pub const RADIUS_SIGMAS: f32 = 3.0;

/// Builds the 3-D covariance `R · diag(s)² · Rᵀ` of a Gaussian.
///
/// ```
/// use gs_core::ewa::covariance3d;
/// use gs_core::quat::Quat;
/// use gs_core::vec::Vec3;
/// let cov = covariance3d(Vec3::new(0.1, 0.2, 0.3), Quat::IDENTITY);
/// assert!((cov.xx - 0.01).abs() < 1e-6);
/// assert!((cov.yy - 0.04).abs() < 1e-6);
/// ```
pub fn covariance3d(scale: Vec3, rotation: Quat) -> Sym3 {
    let r = rotation.to_rotation();
    let s2 = Sym3::diagonal(scale.hadamard(scale));
    s2.congruence(&r)
}

/// The result of a full (fine-grained) EWA projection.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Projected {
    /// Screen-space mean in pixels.
    pub mean_px: Vec2,
    /// Camera-space depth (distance along the optical axis).
    pub depth: f32,
    /// Projected 2-D covariance (after dilation).
    pub cov2d: Sym2,
    /// Inverse of `cov2d` — the conic evaluated per pixel.
    pub conic: Sym2,
    /// Conservative screen radius in pixels (3σ of the major axis).
    pub radius_px: f32,
}

/// The result of the coarse-grained (4-parameter) projection used by the
/// first phase of hierarchical filtering (paper Sec. III-B).
///
/// Only the position and the maximum scale are available, so the radius is a
/// conservative over-estimate: an isotropic Gaussian of scale `s_max` can
/// never project smaller than the true anisotropic one projects larger.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoarseProjection {
    /// Screen-space centre in pixels.
    pub mean_px: Vec2,
    /// Camera-space depth.
    pub depth: f32,
    /// Conservative screen radius in pixels.
    pub radius_px: f32,
}

/// A full projection result including the affine map rows — everything the
/// analytic backward pass (crate `gs-tune`) needs to chain gradients from
/// the 2-D conic back to the 3-D covariance.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProjectionFull {
    /// Screen-space mean in pixels.
    pub mean_px: Vec2,
    /// Camera-space depth.
    pub depth: f32,
    /// Projected 2-D covariance (after dilation).
    pub cov2d: Sym2,
    /// Inverse of `cov2d`.
    pub conic: Sym2,
    /// Conservative screen radius (3σ of the major axis).
    pub radius_px: f32,
    /// First row of `M = J·W` (the affine covariance map).
    pub m1: Vec3,
    /// Second row of `M = J·W`.
    pub m2: Vec3,
}

/// Projects a Gaussian and returns the full detail (see [`ProjectionFull`]).
pub fn project_gaussian_full(cam: &Camera, pos: Vec3, cov3d: Sym3) -> Option<ProjectionFull> {
    let t = cam.world_to_camera(pos);
    if t.z <= 0.01 {
        return None;
    }

    let intr = &cam.intrinsics;
    // Clamp the off-axis position used by the Jacobian, as 3DGS does, to keep
    // the affine approximation stable near the frustum edges.
    let lim_x = 1.3 * (intr.fov_x() * 0.5).tan();
    let lim_y = 1.3 * (intr.fov_y() * 0.5).tan();
    let txz = (t.x / t.z).clamp(-lim_x, lim_x) * t.z;
    let tyz = (t.y / t.z).clamp(-lim_y, lim_y) * t.z;

    let inv_z = 1.0 / t.z;
    let inv_z2 = inv_z * inv_z;
    // Rows of the 2×3 Jacobian J, padded to 3×3 (third row zero).
    let j = Mat3::from_rows(
        [intr.fx * inv_z, 0.0, -intr.fx * txz * inv_z2],
        [0.0, intr.fy * inv_z, -intr.fy * tyz * inv_z2],
        [0.0, 0.0, 0.0],
    );
    let w = cam.pose.rotation;
    let m = j * w;
    let full = cov3d.congruence(&m);
    let cov2d = Sym2::new(full.xx + COV2D_DILATION, full.xy, full.yy + COV2D_DILATION);

    let conic = cov2d.inverse()?;
    if !conic.is_finite() {
        return None;
    }
    let (lmax, _) = cov2d.eigenvalues();
    let radius_px = (RADIUS_SIGMAS * lmax.max(0.0).sqrt()).ceil();

    let mean_px = Vec2::new(
        intr.fx * t.x * inv_z + intr.cx,
        intr.fy * t.y * inv_z + intr.cy,
    );
    Some(ProjectionFull {
        mean_px,
        depth: t.z,
        cov2d,
        conic,
        radius_px,
        m1: m.row(0),
        m2: m.row(1),
    })
}

/// Projects a Gaussian (position + 3-D covariance) through `cam`.
///
/// Returns `None` when the Gaussian is behind the near plane or its projected
/// covariance degenerates; such Gaussians are culled exactly as in 3DGS.
pub fn project_gaussian(cam: &Camera, pos: Vec3, cov3d: Sym3) -> Option<Projected> {
    let p = project_gaussian_full(cam, pos, cov3d)?;
    Some(Projected {
        mean_px: p.mean_px,
        depth: p.depth,
        cov2d: p.cov2d,
        conic: p.conic,
        radius_px: p.radius_px,
    })
}

/// Coarse 4-parameter projection: position plus maximum scale only.
///
/// This is the computation the paper's coarse-grained filter unit performs
/// (55 MACs instead of 427): project the centre and conservatively bound
/// the projected radius. An isotropic Gaussian of scale `s` projects to a
/// 2-D covariance `s²·J Jᵀ`, so the radius bound needs the largest singular
/// value of the Jacobian `J` — which *exceeds* `f/z` off-axis. We use the
/// provable bound `σ_max(J)² ≤ max(‖j₁‖², ‖j₂‖²) + |j₁·j₂|` (the largest
/// eigenvalue of the 2×2 Gram matrix is at most its largest diagonal entry
/// plus the off-diagonal magnitude), which keeps the filter conservative
/// for any position in the frustum while staying a ~20-MAC computation.
pub fn project_coarse(cam: &Camera, pos: Vec3, s_max: f32) -> Option<CoarseProjection> {
    let t = cam.world_to_camera(pos);
    if t.z <= 0.01 {
        return None;
    }
    let intr = &cam.intrinsics;
    let inv_z = 1.0 / t.z;
    let mean_px = Vec2::new(
        intr.fx * t.x * inv_z + intr.cx,
        intr.fy * t.y * inv_z + intr.cy,
    );
    // Same clamped off-axis terms as the fine path's Jacobian.
    let lim_x = 1.3 * (intr.fov_x() * 0.5).tan();
    let lim_y = 1.3 * (intr.fov_y() * 0.5).tan();
    let u = (t.x * inv_z).clamp(-lim_x, lim_x); // tx/z
    let v = (t.y * inv_z).clamp(-lim_y, lim_y); // ty/z
    let a = (intr.fx * inv_z) * (intr.fx * inv_z) * (1.0 + u * u); // ‖j₁‖²
    let b = (intr.fy * inv_z) * (intr.fy * inv_z) * (1.0 + v * v); // ‖j₂‖²
    let c = (intr.fx * inv_z) * (intr.fy * inv_z) * u * v; // j₁·j₂
    let sigma_px = s_max * (a.max(b) + c.abs()).sqrt();
    let radius_px = (RADIUS_SIGMAS * (sigma_px * sigma_px + COV2D_DILATION).sqrt()).ceil();
    Some(CoarseProjection {
        mean_px,
        depth: t.z,
        radius_px,
    })
}

/// Gaussian falloff weight at pixel offset `d` from the projected mean:
/// `exp(-½ dᵀ conic d)`, or 0 when the power is positive (numerically
/// invalid), mirroring the reference rasterizer.
pub fn falloff(conic: Sym2, d: Vec2) -> f32 {
    falloff_from_power(falloff_power(conic, d))
}

/// The exponent of [`falloff`]: `-½ dᵀ conic d`.
pub fn falloff_power(conic: Sym2, d: Vec2) -> f32 {
    -0.5 * conic.quadratic_form(d)
}

/// Completes [`falloff`] from a precomputed [`falloff_power`] exponent.
pub fn falloff_from_power(power: f32) -> f32 {
    if power > 0.0 {
        return 0.0;
    }
    power.exp()
}

/// Row-hoisted conic evaluation for lane-wise blenders.
///
/// For a fixed pixel-row offset `dy`, the quadratic form
/// `a·dx² + 2b·dx·dy + c·dy²` shares the subterms `2b` (per splat) and
/// `(c·dy)·dy` (per row) across every pixel of the row. [`Self::power_at`]
/// hoists exactly those subtrees and keeps the remaining operations in the
/// same association order as [`Sym2::quadratic_form`]
/// (`((a·dx)·dx + ((2b)·dx)·dy) + (c·dy)·dy`), so the result is
/// **bit-identical** to the scalar `falloff_power(conic, Vec2::new(dx, dy))`
/// — hoisting is caching identical subtree evaluations, never re-associating
/// them. (A forward-differenced quadratic would be cheaper still, but its
/// running sums round differently and break byte-exactness.)
#[derive(Copy, Clone, Debug)]
pub struct RowFalloff {
    a: f32,
    tb: f32,
    dy: f32,
    cyy: f32,
}

impl RowFalloff {
    /// Prepares a row at vertical offset `dy` from the splat mean.
    pub fn new(conic: Sym2, dy: f32) -> RowFalloff {
        RowFalloff {
            a: conic.a,
            tb: 2.0 * conic.b,
            dy,
            cyy: (conic.c * dy) * dy,
        }
    }

    /// `falloff_power(conic, Vec2::new(dx, self.dy))`, bit-identically.
    #[inline(always)]
    pub fn power_at(self, dx: f32) -> f32 {
        -0.5 * (self.a * dx * dx + self.tb * dx * self.dy + self.cyy)
    }
}

/// Safety margin of [`cull_power_threshold`], in nats. Far larger than the
/// combined rounding error of `ln` and `exp` (a few ulps), far smaller than
/// the spacing of interesting power values.
pub const CULL_MARGIN: f32 = 0.0625;

/// Power threshold below which `opacity * falloff` is **guaranteed** to be
/// below `alpha_eps`, so a blender may skip the pixel without evaluating
/// `exp` — taking exactly the branch the scalar code takes at its
/// `alpha < alpha_eps` test.
///
/// Conservative by construction: `power < ln(alpha_eps/opacity) − margin`
/// implies `exp(power) < (alpha_eps/opacity)·e^−margin`, and the margin
/// absorbs every rounding error in `ln`/`exp`/the final multiply. Edge
/// cases degrade to "never cull" or "always cull" soundly: a negative
/// `opacity` yields a NaN threshold (every `<` comparison false — the
/// caller's exact path handles it), while a zero or denormal-positive
/// `opacity` yields `+∞` (always cull — correct, since
/// `alpha ≤ opacity < alpha_eps` already).
pub fn cull_power_threshold(opacity: f32, alpha_eps: f32) -> f32 {
    (alpha_eps / opacity).ln() - CULL_MARGIN
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn test_cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::Y,
            640,
            480,
            std::f32::consts::FRAC_PI_2,
        )
    }

    #[test]
    fn covariance_of_isotropic_gaussian_is_isotropic() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.3), 0.8);
        let cov = covariance3d(Vec3::splat(0.2), q);
        // Rotation must not change an isotropic covariance.
        assert!(approx_eq(cov.xx, 0.04, 1e-5));
        assert!(approx_eq(cov.yy, 0.04, 1e-5));
        assert!(approx_eq(cov.zz, 0.04, 1e-5));
        assert!(cov.xy.abs() < 1e-6 && cov.xz.abs() < 1e-6 && cov.yz.abs() < 1e-6);
    }

    #[test]
    fn covariance_is_psd_for_random_params() {
        let q = Quat::new(0.4, -0.3, 0.7, 0.2);
        let cov = covariance3d(Vec3::new(0.5, 0.01, 0.2), q);
        assert!(cov.is_positive_semidefinite(1e-6));
    }

    #[test]
    fn projection_centers_on_projected_mean() {
        let cam = test_cam();
        let pos = Vec3::new(0.4, -0.2, 0.3);
        let proj = project_gaussian(&cam, pos, Sym3::diagonal(Vec3::splat(0.01))).unwrap();
        let (px, depth) = cam.project(pos).unwrap();
        assert!((proj.mean_px - px).length() < 1e-3);
        assert!(approx_eq(proj.depth, depth, 1e-5));
    }

    #[test]
    fn behind_camera_is_culled() {
        let cam = test_cam();
        let behind = cam.pose.center() - cam.pose.forward();
        assert!(project_gaussian(&cam, behind, Sym3::IDENTITY).is_none());
        assert!(project_coarse(&cam, behind, 0.1).is_none());
    }

    #[test]
    fn conic_inverts_cov2d() {
        let cam = test_cam();
        let cov = covariance3d(Vec3::new(0.1, 0.05, 0.2), Quat::new(0.9, 0.1, 0.3, -0.2));
        let proj = project_gaussian(&cam, Vec3::new(0.2, 0.1, 0.0), cov).unwrap();
        let prod_det = proj.cov2d.det() * proj.conic.det();
        assert!(approx_eq(prod_det, 1.0, 1e-3));
    }

    #[test]
    fn coarse_radius_bounds_fine_radius() {
        // The coarse filter must be conservative: its radius always covers
        // the precise projected extent.
        let cam = test_cam();
        for i in 0..50 {
            let t = i as f32 / 50.0;
            let scale = Vec3::new(0.02 + 0.1 * t, 0.05, 0.15 * (1.0 - t) + 0.01);
            let q = Quat::from_axis_angle(Vec3::new(t, 1.0 - t, 0.5), t * 3.0);
            let pos = Vec3::new(t - 0.5, 0.3 * t, t * 0.8 - 0.2);
            let cov = covariance3d(scale, q);
            let fine = project_gaussian(&cam, pos, cov).unwrap();
            let coarse = project_coarse(&cam, pos, scale.max_component()).unwrap();
            assert!(
                coarse.radius_px + 1.0 >= fine.radius_px,
                "coarse {} < fine {} at i={}",
                coarse.radius_px,
                fine.radius_px,
                i
            );
        }
    }

    #[test]
    fn full_projection_rows_reproduce_cov2d() {
        // Recomputing A = m1ᵀΣm1 etc. from the exposed rows must reproduce
        // the projected covariance (minus dilation) — the invariant the
        // backward pass relies on.
        let cam = test_cam();
        let cov = covariance3d(Vec3::new(0.2, 0.07, 0.11), Quat::new(0.8, 0.2, -0.4, 0.1));
        let p = project_gaussian_full(&cam, Vec3::new(0.3, -0.2, 0.5), cov).unwrap();
        let q = |u: Vec3, v: Vec3| -> f32 {
            let m = cov.to_mat3();
            (m * v).dot(u)
        };
        assert!(approx_eq(p.cov2d.a - COV2D_DILATION, q(p.m1, p.m1), 1e-3));
        assert!(approx_eq(p.cov2d.b, q(p.m1, p.m2), 1e-3));
        assert!(approx_eq(p.cov2d.c - COV2D_DILATION, q(p.m2, p.m2), 1e-3));
    }

    #[test]
    fn falloff_is_one_at_center_and_decays() {
        let conic = Sym2::new(0.5, 0.0, 0.5);
        assert!(approx_eq(falloff(conic, Vec2::ZERO), 1.0, 1e-6));
        let near = falloff(conic, Vec2::new(1.0, 0.0));
        let far = falloff(conic, Vec2::new(3.0, 0.0));
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn row_falloff_is_bit_identical_to_scalar() {
        // The hoisted row evaluation must reproduce the scalar falloff to
        // the last bit — this is what lets the lane-wise blender keep
        // byte-identical images.
        let conics = [
            Sym2::new(0.5, 0.0, 0.5),
            Sym2::new(1.7, -0.3, 0.9),
            Sym2::new(0.02, 0.013, 3.5),
            Sym2::new(123.0, 45.0, 67.0),
        ];
        for conic in conics {
            for iy in -7..=7 {
                let dy = iy as f32 * 0.83 + 0.5;
                let row = RowFalloff::new(conic, dy);
                for ix in -9..=9 {
                    let dx = ix as f32 * 1.21 + 0.5;
                    let d = Vec2::new(dx, dy);
                    let scalar = falloff_power(conic, d);
                    let hoisted = row.power_at(dx);
                    assert_eq!(
                        scalar.to_bits(),
                        hoisted.to_bits(),
                        "row-hoisted power diverged at d={d:?} conic={conic:?}"
                    );
                    assert_eq!(
                        falloff(conic, d).to_bits(),
                        falloff_from_power(hoisted).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn cull_threshold_is_conservative() {
        let alpha_eps = 1.0 / 255.0;
        for &opacity in &[1.0f32, 0.99, 0.5, 0.1, 0.004, 1e-6] {
            let thr = cull_power_threshold(opacity, alpha_eps);
            // Any power below the threshold must yield alpha < eps — walk a
            // band just under it.
            for i in 1..100 {
                let power = thr - i as f32 * 0.01;
                if power < thr {
                    let alpha = opacity * falloff_from_power(power);
                    assert!(
                        alpha < alpha_eps,
                        "culled power {power} gave alpha {alpha} >= {alpha_eps} \
                         (opacity {opacity})"
                    );
                }
            }
        }
    }

    #[test]
    fn cull_threshold_degrades_on_hostile_opacity() {
        let alpha_eps = 1.0 / 255.0;
        // Negative opacity: NaN threshold — `power < thr` always false,
        // so the caller falls through to the exact path.
        let thr = cull_power_threshold(-0.5, alpha_eps);
        assert!(thr.is_nan(), "threshold must be NaN, got {thr}");
        // Zero or denormal-positive opacity: +inf threshold — always cull,
        // and that is correct because alpha <= opacity < eps everywhere.
        let tiny = f32::from_bits(1);
        for &opacity in &[0.0f32, tiny] {
            assert_eq!(cull_power_threshold(opacity, alpha_eps), f32::INFINITY);
            assert!(opacity * 1.0 < alpha_eps);
        }
    }

    #[test]
    fn bigger_scale_bigger_radius() {
        let cam = test_cam();
        let small = project_gaussian(
            &cam,
            Vec3::ZERO,
            covariance3d(Vec3::splat(0.05), Quat::IDENTITY),
        )
        .unwrap();
        let large = project_gaussian(
            &cam,
            Vec3::ZERO,
            covariance3d(Vec3::splat(0.5), Quat::IDENTITY),
        )
        .unwrap();
        assert!(large.radius_px > small.radius_px);
    }

    #[test]
    fn closer_gaussian_projects_larger() {
        let cam = test_cam();
        let cov = covariance3d(Vec3::splat(0.1), Quat::IDENTITY);
        let near = project_gaussian(&cam, Vec3::new(0.0, 0.0, -2.0), cov).unwrap();
        let far = project_gaussian(&cam, Vec3::new(0.0, 0.0, 3.0), cov).unwrap();
        assert!(near.radius_px > far.radius_px);
        assert!(near.depth < far.depth);
    }
}
