//! Fixed-size `f32` vectors used throughout the workspace.
//!
//! Only the operations the splatting pipeline needs are provided; this is not
//! a general-purpose linear-algebra library.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-D vector (screen-space positions, conic offsets).
///
/// ```
/// use gs_core::vec::Vec2;
/// let d = Vec2::new(3.0, 4.0);
/// assert_eq!(d.length(), 5.0);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Vec2 {
    pub x: f32,
    pub y: f32,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec2) -> f32 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f32> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f32) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A 3-D vector (world/camera-space positions, scales, colours).
///
/// ```
/// use gs_core::vec::Vec3;
/// let n = Vec3::new(1.0, 0.0, 0.0).cross(Vec3::new(0.0, 1.0, 0.0));
/// assert_eq!(n, Vec3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length.
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the unit vector pointing in the same direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the vector is (nearly) zero, because a
    /// direction cannot be recovered from it.
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 1e-12, "cannot normalize a zero-length vector");
        self / len
    }

    /// Component-wise minimum.
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Largest component.
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Component-wise multiplication (Hadamard product).
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise absolute value.
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Linear interpolation: `self * (1 - t) + rhs * t`.
    pub fn lerp(self, rhs: Vec3, t: f32) -> Vec3 {
        self * (1.0 - t) + rhs * t
    }

    /// Clamps every component into `[lo, hi]`.
    pub fn clamp(self, lo: f32, hi: f32) -> Vec3 {
        Vec3::new(
            self.x.clamp(lo, hi),
            self.y.clamp(lo, hi),
            self.z.clamp(lo, hi),
        )
    }

    /// Returns `true` when every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The components as an array, in `[x, y, z]` order.
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an `[x, y, z]` array.
    pub fn from_array(a: [f32; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f32> for Vec3 {
    fn mul_assign(&mut self, rhs: f32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    /// Component by index (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// If `i > 2`.
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    /// Mutable component by index (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// If `i > 2`.
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Vec3 {
        Vec3::from_array(a)
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> [f32; 3] {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn vec2_basics() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!((-a), Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(Vec2::new(3.0, 4.0).length_squared(), 25.0);
    }

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, 2.0 * a);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn cross_product_orthogonality() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(approx_eq(c.dot(a), 0.0, 1e-5));
        assert!(approx_eq(c.dot(b), 0.0, 1e-5));
        // anti-commutativity
        let d = b.cross(a);
        assert!(approx_eq((c + d).length(), 0.0, 1e-5));
    }

    #[test]
    fn normalization_unit_length() {
        let v = Vec3::new(3.0, -4.0, 12.0).normalized();
        assert!(approx_eq(v.length(), 1.0, 1e-6));
    }

    #[test]
    fn min_max_component_ops() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(0.0, 7.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(0.0, 5.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 7.0, -1.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), -2.0);
    }

    #[test]
    fn hadamard_and_lerp() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(2.0, 0.5, -1.0);
        assert_eq!(a.hadamard(b), Vec3::new(2.0, 1.0, -3.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert!(approx_eq(mid.x, 1.5, 1e-6));
    }

    #[test]
    fn indexing_roundtrip() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        for i in 0..3 {
            v[i] += 1.0;
        }
        assert_eq!(v, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(v.to_array(), [2.0, 3.0, 4.0]);
        assert_eq!(Vec3::from([2.0, 3.0, 4.0]), v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn clamp_and_abs() {
        let v = Vec3::new(-2.0, 0.5, 9.0);
        assert_eq!(v.clamp(0.0, 1.0), Vec3::new(0.0, 0.5, 1.0));
        assert_eq!(v.abs(), Vec3::new(2.0, 0.5, 9.0));
        assert!(v.is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
    }
}
