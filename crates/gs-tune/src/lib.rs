//! # gs-tune — boundary-aware and quantization-aware fine-tuning
//!
//! The paper's training-side components (Sec. III-B/III-C):
//!
//! * [`diff`] — an analytic forward/backward splatting renderer producing
//!   exact gradients of the image loss with respect to every trainable
//!   Gaussian parameter (scale, rotation, opacity, SH). **Positions stay
//!   fixed**, exactly as the paper prescribes for its fine-tuning stage.
//!   The backward pass is validated against finite differences in the test
//!   suite.
//! * [`cbp`] — the cross-boundary penalty `L_CBP = (1/N) Σ Sᵢ·Tᵢ`
//!   (paper Eq. 2), where the indicator `Tᵢ` comes from *measured*
//!   depth-order violations of the streaming renderer.
//! * [`tuner`] — the boundary-aware fine-tuning loop
//!   (`L = L_origin + β·L_CBP`, paper Eq. 1) with Adam, producing the
//!   error-ratio / PSNR history of paper Fig. 7.
//! * [`qat`] — quantization-aware fine-tuning: optimize through the VQ
//!   decode with a straight-through estimator and periodically refresh the
//!   codebooks, as in Compact-3DGS (paper ref. [9]).
//!
//! ## Example
//!
//! ```
//! use gs_tune::diff::{render_with_gradients, DiffConfig, Loss};
//! use gs_render::{RenderConfig, TileRenderer};
//! use gs_scene::{SceneConfig, SceneKind};
//!
//! let scene = SceneKind::Lego.build(&SceneConfig::tiny());
//! let cam = &scene.train_cameras[0];
//! let target = TileRenderer::new(RenderConfig::default())
//!     .render(&scene.ground_truth, cam)
//!     .image;
//! let out = render_with_gradients(&scene.trained, cam, &target, &DiffConfig::default());
//! assert!(out.loss > 0.0);
//! assert_eq!(out.grads.len(), scene.trained.len());
//! # let _ = Loss::L2;
//! ```

pub mod adam;
pub mod cbp;
pub mod diff;
pub mod qat;
pub mod tuner;

pub use adam::Adam;
pub use cbp::cbp_loss;
pub use diff::{render_with_gradients, DiffConfig, DiffOutput, GaussGrad, Loss};
pub use qat::{quantization_aware_finetune, QatConfig};
pub use tuner::{boundary_aware_finetune, TuneConfig, TunePoint, TuneResult};
