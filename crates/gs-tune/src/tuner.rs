//! Boundary-aware fine-tuning (paper Sec. III-B, Eq. 1, Fig. 7).
//!
//! Optimizes `L = L_origin + β·L_CBP` with Adam over scale, rotation,
//! opacity and SH (positions fixed). `L_origin` is the image loss of the
//! *streaming-rendered* cloud against ground-truth targets, computed through
//! the analytic backward pass; `L_CBP` penalizes Gaussians whose blends were
//! observed out of depth order by the streaming renderer.

use crate::adam::{Adam, LearningRates};
use crate::cbp::{add_cbp_gradient, cbp_loss};
use crate::diff::{render_with_gradients, DiffConfig, Loss};
use gs_core::camera::Camera;
use gs_core::image::ImageRgb;
use gs_scene::GaussianCloud;
use gs_voxel::{StreamingConfig, StreamingScene};
use serde::{Deserialize, Serialize};

/// Fine-tuning configuration.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TuneConfig {
    /// Optimization iterations (the paper runs 3000; scaled-down defaults
    /// keep the benches tractable).
    pub iters: u32,
    /// β weight of the cross-boundary penalty (paper Sec. V-A: 0.05).
    pub beta: f32,
    /// Learning rates.
    pub lrs: LearningRates,
    /// Image loss flavour (`L1` matches 3DGS; D-SSIM omitted, DESIGN.md §2).
    pub loss: Loss,
    /// Voxel size used to measure order violations.
    pub voxel_size: f32,
    /// Refresh the violation flags every this many iterations.
    pub refresh_every: u32,
    /// Record a history point every this many iterations.
    pub record_every: u32,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            iters: 300,
            beta: 0.05,
            lrs: LearningRates::default(),
            loss: Loss::L1,
            voxel_size: 1.0,
            refresh_every: 50,
            record_every: 50,
        }
    }
}

/// One point of the Fig. 7 curve.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TunePoint {
    /// Iteration index.
    pub iter: u32,
    /// Streaming-render PSNR against the ground-truth targets, dB.
    pub psnr_db: f64,
    /// Fraction of Gaussians blended out of depth order ("error Gaussian
    /// ratio").
    pub error_ratio: f64,
    /// Total loss at this point.
    pub loss: f64,
}

/// Result of a fine-tuning run.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// The tuned cloud.
    pub cloud: GaussianCloud,
    /// History of (iteration, PSNR, error ratio) — the Fig. 7 series.
    pub history: Vec<TunePoint>,
}

/// Runs boundary-aware fine-tuning of `trained` against per-view targets.
///
/// `targets` pairs each training camera with its ground-truth image.
///
/// # Panics
///
/// Panics when `targets` is empty.
pub fn boundary_aware_finetune(
    trained: &GaussianCloud,
    targets: &[(Camera, ImageRgb)],
    cfg: &TuneConfig,
) -> TuneResult {
    assert!(
        !targets.is_empty(),
        "fine-tuning needs at least one target view"
    );
    let mut cloud = trained.clone();
    let mut opt = Adam::new(cloud.len(), cfg.lrs);
    let diff_cfg = DiffConfig {
        loss: cfg.loss,
        ..Default::default()
    };
    let mut history = Vec::new();

    let mut flags = measure(&cloud, targets, cfg, &mut history, 0);

    for it in 0..cfg.iters {
        let (cam, target) = &targets[it as usize % targets.len()];
        let mut out = render_with_gradients(&cloud, cam, target, &diff_cfg);
        add_cbp_gradient(&cloud, &flags, cfg.beta, &mut out.grads);
        opt.step(&mut cloud, &out.grads);

        let iter1 = it + 1;
        if iter1 % cfg.refresh_every == 0 || iter1 == cfg.iters {
            let record = iter1 % cfg.record_every == 0 || iter1 == cfg.iters;
            flags = measure(
                &cloud,
                targets,
                cfg,
                &mut history,
                if record { iter1 } else { u32::MAX },
            );
        }
    }

    TuneResult { cloud, history }
}

/// Streams the current cloud over all target views; refreshes violation
/// flags and optionally records a history point (when `record_iter != MAX`).
fn measure(
    cloud: &GaussianCloud,
    targets: &[(Camera, ImageRgb)],
    cfg: &TuneConfig,
    history: &mut Vec<TunePoint>,
    record_iter: u32,
) -> Vec<bool> {
    let scene = StreamingScene::new(
        cloud.clone(),
        StreamingConfig {
            voxel_size: cfg.voxel_size,
            ..Default::default()
        },
    );
    let cams: Vec<Camera> = targets.iter().map(|(c, _)| *c).collect();
    let (outputs, violations) = scene.render_views(&cams);
    if record_iter != u32::MAX {
        let mut psnr_acc = 0.0;
        for (o, (_, tgt)) in outputs.iter().zip(targets) {
            psnr_acc += o.image.psnr(tgt).min(99.0);
        }
        history.push(TunePoint {
            iter: record_iter,
            psnr_db: psnr_acc / targets.len() as f64,
            error_ratio: violations.gaussian_ratio(),
            loss: cbp_loss(cloud, &violations.flags),
        });
    }
    violations.flags
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use gs_render::{RenderConfig, TileRenderer};
    use gs_scene::{SceneConfig, SceneKind};

    fn setup() -> (GaussianCloud, Vec<(Camera, ImageRgb)>, f32) {
        let scene = SceneKind::Lego.build(&SceneConfig {
            gaussians: 900,
            width: 64,
            height: 48,
            train_views: 2,
            eval_views: 1,
            ..SceneConfig::tiny()
        });
        let r = TileRenderer::new(RenderConfig::default());
        let targets: Vec<(Camera, ImageRgb)> = scene
            .train_cameras
            .iter()
            .map(|c| (*c, r.render(&scene.ground_truth, c).image))
            .collect();
        (scene.trained, targets, scene.voxel_size)
    }

    #[test]
    fn finetune_improves_streaming_psnr() {
        let (trained, targets, voxel) = setup();
        let cfg = TuneConfig {
            iters: 30,
            voxel_size: voxel,
            refresh_every: 10,
            record_every: 10,
            ..Default::default()
        };
        let result = boundary_aware_finetune(&trained, &targets, &cfg);
        assert!(result.history.len() >= 3);
        let first = result.history.first().unwrap();
        let last = result.history.last().unwrap();
        assert!(
            last.psnr_db > first.psnr_db - 0.2,
            "PSNR degraded: {} -> {}",
            first.psnr_db,
            last.psnr_db
        );
        assert!(result.cloud.is_valid());
        // Positions must be untouched.
        for (a, b) in trained.iter().zip(result.cloud.iter()) {
            assert_eq!(a.pos, b.pos);
        }
    }

    #[test]
    fn history_iterations_are_monotone() {
        let (trained, targets, voxel) = setup();
        let cfg = TuneConfig {
            iters: 20,
            voxel_size: voxel,
            refresh_every: 5,
            record_every: 5,
            ..Default::default()
        };
        let result = boundary_aware_finetune(&trained, &targets, &cfg);
        for w in result.history.windows(2) {
            assert!(w[1].iter > w[0].iter);
        }
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_panic() {
        let (trained, _, _) = setup();
        let _ = boundary_aware_finetune(&trained, &[], &TuneConfig::default());
    }
}
