//! Analytic forward/backward splatting: exact gradients of the image loss
//! with respect to scale, rotation, opacity and SH coefficients.
//!
//! Positions are **not** differentiated — the paper's fine-tuning keeps
//! Gaussian positions fixed to preserve scene geometry (Sec. III-B), which
//! also means the projected mean, the Jacobian `M = J·W` and the SH viewing
//! direction are constants per (Gaussian, camera).
//!
//! The backward pass follows the reference 3DGS recomputation scheme: the
//! forward pass stores, per pixel, the final transmittance and the index of
//! the last blended splat; the backward pass walks each pixel's list in
//! reverse, recovering `Tᵢ` by division and accumulating the suffix colour.
//! Every formula here is validated against central finite differences in
//! the test suite.

use gs_core::camera::Camera;
use gs_core::ewa::{covariance3d, project_gaussian_full, ProjectionFull};
use gs_core::image::ImageRgb;
use gs_core::mat::Mat3;
use gs_core::sh;
use gs_core::vec::{Vec2, Vec3};
use gs_render::binning::bin_and_sort;
use gs_render::projection::{support_bbox, tile_grid, tile_rect_of, Splat};
use gs_render::{ALPHA_EPS, ALPHA_MAX, TILE_SIZE, TRANSMITTANCE_EPS};
use gs_scene::GaussianCloud;
use serde::{Deserialize, Serialize};

/// Image loss flavour.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean absolute error (the 3DGS `L1` term; the paper's `L_origin`
    /// without the D-SSIM component, see DESIGN.md §2).
    L1,
    /// Mean squared error (smooth — used by the finite-difference tests).
    L2,
}

/// Differentiable-render configuration.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiffConfig {
    /// Loss flavour.
    pub loss: Loss,
    /// SH degree.
    pub sh_degree: u8,
    /// Background colour.
    pub background: Vec3,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            loss: Loss::L1,
            sh_degree: 3,
            background: Vec3::ZERO,
        }
    }
}

/// Gradient of the loss with respect to one Gaussian's trainable parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaussGrad {
    /// d loss / d scale.
    pub scale: Vec3,
    /// d loss / d rotation quaternion `[w, x, y, z]`.
    pub rot: [f32; 4],
    /// d loss / d opacity.
    pub opacity: f32,
    /// d loss / d SH coefficients.
    #[serde(with = "serde_sh")]
    pub sh: [f32; sh::SH_COEFFS],
}

// The vendored offline serde stub ignores `#[serde(with = ...)]`, leaving
// these adapters unreferenced; they are kept for real-serde compatibility.
#[allow(dead_code)]
mod serde_sh {
    use gs_core::sh::SH_COEFFS;
    use serde::de::Error;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &[f32; SH_COEFFS], s: S) -> Result<S::Ok, S::Error> {
        v.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[f32; SH_COEFFS], D::Error> {
        let v = Vec::<f32>::deserialize(d)?;
        v.try_into()
            .map_err(|v: Vec<f32>| D::Error::invalid_length(v.len(), &"48 floats"))
    }
}

impl Default for GaussGrad {
    fn default() -> Self {
        GaussGrad {
            scale: Vec3::ZERO,
            rot: [0.0; 4],
            opacity: 0.0,
            sh: [0.0; sh::SH_COEFFS],
        }
    }
}

/// Output of one differentiable render.
#[derive(Clone, Debug)]
pub struct DiffOutput {
    /// The rendered image (identical to the plain renderer's output).
    pub image: ImageRgb,
    /// Scalar loss value.
    pub loss: f64,
    /// Per-Gaussian gradients, indexed like the input cloud.
    pub grads: Vec<GaussGrad>,
}

/// Per-projected-splat accumulator gathered over pixels.
#[derive(Copy, Clone, Debug, Default)]
struct SplatAcc {
    d_conic: [f32; 3],
    d_color: Vec3,
    d_opacity: f32,
}

/// Per-splat constants cached at projection time.
struct ProjCache {
    gi: u32,
    proj: ProjectionFull,
    basis: [f32; sh::SH_BASIS],
    pre_clamp: Vec3,
    rot_mat: Mat3,
}

/// Renders `cloud` from `cam` and returns the loss against `target` plus
/// analytic gradients for every Gaussian.
///
/// # Panics
///
/// Panics when `target` dimensions differ from the camera's.
pub fn render_with_gradients(
    cloud: &GaussianCloud,
    cam: &Camera,
    target: &ImageRgb,
    cfg: &DiffConfig,
) -> DiffOutput {
    assert_eq!(
        (target.width(), target.height()),
        (cam.width(), cam.height()),
        "target image must match the camera resolution"
    );
    let width = cam.width();
    let height = cam.height();
    let (tiles_x, tiles_y) = tile_grid(width, height);
    let cam_center = cam.pose.center();
    let n_basis = ((cfg.sh_degree as usize) + 1) * ((cfg.sh_degree as usize) + 1);

    // ---- projection with caches -----------------------------------------
    let mut splats: Vec<Splat> = Vec::new();
    let mut caches: Vec<ProjCache> = Vec::new();
    for (gi, g) in cloud.iter().enumerate() {
        let Some(proj) = project_gaussian_full(cam, g.pos, covariance3d(g.scale, g.rot)) else {
            continue;
        };
        let Some(tile_rect) = tile_rect_of(proj.mean_px, proj.radius_px, tiles_x, tiles_y) else {
            continue;
        };
        let dir = (g.pos - cam_center).normalized();
        let basis = sh::eval_basis(dir);
        let mut pre = Vec3::splat(0.5);
        for (k, b) in basis.iter().take(n_basis).enumerate() {
            pre.x += b * g.sh[3 * k];
            pre.y += b * g.sh[3 * k + 1];
            pre.z += b * g.sh[3 * k + 2];
        }
        let color = pre.max(Vec3::ZERO);
        splats.push(Splat {
            mean_px: proj.mean_px,
            conic: proj.conic,
            color,
            opacity: g.opacity,
            depth: proj.depth,
            tile_rect,
            bbox_px: support_bbox(proj.mean_px, proj.cov2d, g.opacity),
        });
        caches.push(ProjCache {
            gi: gi as u32,
            proj,
            basis,
            pre_clamp: pre,
            rot_mat: g.rot.to_rotation(),
        });
    }

    let (keys, ranges) = bin_and_sort(&splats, tiles_x, tiles_y);

    // ---- forward + backward per tile -------------------------------------
    let n_px = (width as u64 * height as u64) as f64;
    let loss_norm = 1.0 / (n_px * 3.0);
    let mut image = ImageRgb::new(width, height);
    let mut loss = 0.0f64;
    let mut accs: Vec<SplatAcc> = vec![SplatAcc::default(); splats.len()];

    let n = TILE_SIZE as usize;
    let n_tiles = (tiles_x * tiles_y) as usize;
    #[allow(clippy::needless_range_loop)]
    for t in 0..n_tiles {
        let (r0, r1) = ranges[t];
        let ox = (t as u32 % tiles_x) * TILE_SIZE;
        let oy = (t as u32 / tiles_x) * TILE_SIZE;

        // Forward.
        let mut color = vec![Vec3::ZERO; n * n];
        let mut trans = vec![1.0f32; n * n];
        let mut last = vec![r0; n * n]; // one past the last blended key index
        for ly in 0..n {
            for lx in 0..n {
                let px = ox + lx as u32;
                let py = oy + ly as u32;
                if px >= width || py >= height {
                    continue;
                }
                let pi = ly * n + lx;
                let pc = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
                let mut tcur = 1.0f32;
                let mut c = Vec3::ZERO;
                for ki in r0..r1 {
                    let s = &splats[keys[ki as usize].splat as usize];
                    let d = Vec2::new(pc.x - s.mean_px.x, pc.y - s.mean_px.y);
                    let alpha = (s.opacity * gs_core::ewa::falloff(s.conic, d)).min(ALPHA_MAX);
                    if alpha < ALPHA_EPS {
                        continue;
                    }
                    c += s.color * (alpha * tcur);
                    tcur *= 1.0 - alpha;
                    last[pi] = ki + 1;
                    if tcur < TRANSMITTANCE_EPS {
                        break;
                    }
                }
                color[pi] = c + cfg.background * tcur;
                trans[pi] = tcur;
                image.set(px, py, color[pi]);

                // Loss + upstream gradient.
                let tgt = target.get(px, py);
                let diff = color[pi] - tgt;
                let (l, dldc) = match cfg.loss {
                    Loss::L1 => (
                        (diff.x.abs() + diff.y.abs() + diff.z.abs()) as f64,
                        Vec3::new(diff.x.signum(), diff.y.signum(), diff.z.signum())
                            * loss_norm as f32,
                    ),
                    Loss::L2 => (
                        (diff.x * diff.x + diff.y * diff.y + diff.z * diff.z) as f64,
                        diff * (2.0 * loss_norm as f32),
                    ),
                };
                loss += l * loss_norm;

                // Backward for this pixel: walk blended splats in reverse.
                let mut tafter = trans[pi];
                let mut suffix = cfg.background * trans[pi];
                for ki in (r0..last[pi]).rev() {
                    let si = keys[ki as usize].splat as usize;
                    let s = &splats[si];
                    let d = Vec2::new(pc.x - s.mean_px.x, pc.y - s.mean_px.y);
                    let w = gs_core::ewa::falloff(s.conic, d);
                    let alpha_raw = s.opacity * w;
                    let alpha = alpha_raw.min(ALPHA_MAX);
                    if alpha < ALPHA_EPS {
                        continue;
                    }
                    let tbefore = tafter / (1.0 - alpha);
                    // dL/dα and dL/dc.
                    let dl_dalpha = dldc.x * (s.color.x * tbefore - suffix.x / (1.0 - alpha))
                        + dldc.y * (s.color.y * tbefore - suffix.y / (1.0 - alpha))
                        + dldc.z * (s.color.z * tbefore - suffix.z / (1.0 - alpha));
                    let at = alpha * tbefore;
                    let acc = &mut accs[si];
                    acc.d_color += dldc * at;
                    // α clamp: zero gradient when pinned at ALPHA_MAX.
                    if alpha_raw < ALPHA_MAX {
                        acc.d_opacity += w * dl_dalpha;
                        let dl_dw = s.opacity * dl_dalpha;
                        acc.d_conic[0] += dl_dw * (-0.5 * d.x * d.x) * w;
                        acc.d_conic[1] += dl_dw * (-d.x * d.y) * w;
                        acc.d_conic[2] += dl_dw * (-0.5 * d.y * d.y) * w;
                    }
                    suffix += s.color * at;
                    tafter = tbefore;
                }
            }
        }
    }

    // ---- per-splat chain: conic → cov2d → Σ3D → (s, q); colour → SH -------
    let mut grads: Vec<GaussGrad> = vec![GaussGrad::default(); cloud.len()];
    for (si, cache) in caches.iter().enumerate() {
        let acc = &accs[si];
        let g = &cloud.as_slice()[cache.gi as usize];
        let out = &mut grads[cache.gi as usize];

        // Colour → SH (clamp mask per channel; the +0.5 offset has unit
        // derivative).
        for ch in 0..3 {
            let pre = cache.pre_clamp[ch];
            if pre <= 0.0 {
                continue;
            }
            let dc = acc.d_color[ch];
            for (k, b) in cache.basis.iter().take(n_basis).enumerate() {
                out.sh[3 * k + ch] += b * dc;
            }
        }
        out.opacity += acc.d_opacity;

        // conic = inverse(cov2d): closed-form derivatives.
        let (da, db, dc_) = (acc.d_conic[0], acc.d_conic[1], acc.d_conic[2]);
        if da == 0.0 && db == 0.0 && dc_ == 0.0 {
            continue;
        }
        let cov = cache.proj.cov2d;
        let (ca, cb, cc) = (cov.a, cov.b, cov.c);
        let det = ca * cc - cb * cb;
        let inv_det2 = 1.0 / (det * det);
        // a' = C/D, b' = −B/D, c' = A/D (primes: conic entries).
        let d_ca = (-cc * cc * da + cb * cc * db - cb * cb * dc_) * inv_det2;
        let d_cb =
            (2.0 * cb * cc * da + (-det - 2.0 * cb * cb) * db + 2.0 * ca * cb * dc_) * inv_det2;
        let d_cc = (-cb * cb * da + ca * cb * db - ca * ca * dc_) * inv_det2;

        // cov2d (A,B,C) → Σ3D (6 params, q-form convention). Dilation is
        // additive and passes gradients through.
        let m1 = cache.proj.m1;
        let m2 = cache.proj.m2;
        let pair = |u: Vec3, v: Vec3, a: usize, b: usize| -> f32 {
            if a == b {
                u[a] * v[a]
            } else {
                u[a] * v[b] + u[b] * v[a]
            }
        };
        // 6 params ordered (xx, xy, xz, yy, yz, zz) with index pairs:
        const PAIRS: [(usize, usize); 6] = [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)];
        let mut d_sigma = [0.0f32; 6];
        for (p, (a, b)) in PAIRS.iter().enumerate() {
            // dA/dΣ_ab: q-form coefficient of Σ_ab in m1ᵀΣm1.
            let ka = if a == b {
                m1[*a] * m1[*b]
            } else {
                2.0 * m1[*a] * m1[*b]
            };
            let kb = pair(m1, m2, *a, *b);
            let kc = if a == b {
                m2[*a] * m2[*b]
            } else {
                2.0 * m2[*a] * m2[*b]
            };
            d_sigma[p] = d_ca * ka + d_cb * kb + d_cc * kc;
        }

        // Σ3D → (scale, rotation): Σ_ab = Σ_k s_k² R_ak R_bk.
        let r = &cache.rot_mat;
        let s = g.scale;
        let mut d_rot_mat = [[0.0f32; 3]; 3];
        for (p, (a, b)) in PAIRS.iter().enumerate() {
            let gp = d_sigma[p];
            if gp == 0.0 {
                continue;
            }
            for k in 0..3 {
                let sk = s[k];
                out.scale[k] += gp * 2.0 * sk * r.m[*a][k] * r.m[*b][k];
                let sk2 = sk * sk;
                if a == b {
                    d_rot_mat[*a][k] += gp * 2.0 * sk2 * r.m[*a][k];
                } else {
                    d_rot_mat[*a][k] += gp * sk2 * r.m[*b][k];
                    d_rot_mat[*b][k] += gp * sk2 * r.m[*a][k];
                }
            }
        }

        // Rotation matrix → quaternion (through normalization).
        let dq = rot_matrix_backward(g.rot.normalized(), &d_rot_mat);
        let qn = g.rot.normalized();
        let norm = g.rot.norm().max(1e-12);
        let dot = qn.w * dq[0] + qn.x * dq[1] + qn.y * dq[2] + qn.z * dq[3];
        out.rot[0] += (dq[0] - qn.w * dot) / norm;
        out.rot[1] += (dq[1] - qn.x * dot) / norm;
        out.rot[2] += (dq[2] - qn.y * dot) / norm;
        out.rot[3] += (dq[3] - qn.z * dot) / norm;
    }

    DiffOutput { image, loss, grads }
}

/// Backprop through `R(q)` for a unit quaternion: given `dL/dR`, returns
/// `dL/d(w,x,y,z)`.
fn rot_matrix_backward(q: gs_core::Quat, dr: &[[f32; 3]; 3]) -> [f32; 4] {
    let (w, x, y, z) = (q.w, q.x, q.y, q.z);
    // ∂R/∂w, ∂R/∂x, ∂R/∂y, ∂R/∂z for the unit-quaternion rotation matrix.
    let dw = [
        [0.0, -2.0 * z, 2.0 * y],
        [2.0 * z, 0.0, -2.0 * x],
        [-2.0 * y, 2.0 * x, 0.0],
    ];
    let dx = [
        [0.0, 2.0 * y, 2.0 * z],
        [2.0 * y, -4.0 * x, -2.0 * w],
        [2.0 * z, 2.0 * w, -4.0 * x],
    ];
    let dy = [
        [-4.0 * y, 2.0 * x, 2.0 * w],
        [2.0 * x, 0.0, 2.0 * z],
        [-2.0 * w, 2.0 * z, -4.0 * y],
    ];
    let dz = [
        [-4.0 * z, -2.0 * w, 2.0 * x],
        [2.0 * w, -4.0 * z, 2.0 * y],
        [2.0 * x, 2.0 * y, 0.0],
    ];
    let contract = |d: &[[f32; 3]; 3]| -> f32 {
        let mut acc = 0.0;
        for a in 0..3 {
            for b in 0..3 {
                acc += dr[a][b] * d[a][b];
            }
        }
        acc
    };
    [contract(&dw), contract(&dx), contract(&dy), contract(&dz)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::Quat;
    use gs_scene::Gaussian;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, -4.0), Vec3::ZERO, Vec3::Y, 48, 32, 1.0)
    }

    fn small_cloud() -> GaussianCloud {
        let mut c = GaussianCloud::new();
        let mut g0 = Gaussian::isotropic(
            Vec3::new(-0.3, 0.1, 0.0),
            0.15,
            Vec3::new(0.8, 0.3, 0.2),
            0.7,
        );
        g0.scale = Vec3::new(0.22, 0.12, 0.08);
        g0.rot = Quat::from_axis_angle(Vec3::new(0.3, 1.0, 0.2), 0.7);
        g0.sh[5] = 0.1;
        let mut g1 = Gaussian::isotropic(
            Vec3::new(0.3, -0.1, 0.4),
            0.2,
            Vec3::new(0.2, 0.6, 0.9),
            0.5,
        );
        g1.scale = Vec3::new(0.1, 0.25, 0.15);
        g1.rot = Quat::from_axis_angle(Vec3::new(1.0, -0.2, 0.5), -0.4);
        g1.sh[14] = -0.08;
        let g2 = Gaussian::isotropic(
            Vec3::new(0.0, 0.25, -0.3),
            0.12,
            Vec3::new(0.5, 0.5, 0.1),
            0.85,
        );
        c.push(g0);
        c.push(g1);
        c.push(g2);
        c
    }

    fn target() -> ImageRgb {
        // A fixed non-trivial target: horizontal colour ramp.
        let mut img = ImageRgb::new(48, 32);
        for y in 0..32 {
            for x in 0..48 {
                img.set(x, y, Vec3::new(x as f32 / 48.0, 0.3, y as f32 / 32.0));
            }
        }
        img
    }

    fn loss_of(cloud: &GaussianCloud) -> f64 {
        let cfg = DiffConfig {
            loss: Loss::L2,
            ..Default::default()
        };
        render_with_gradients(cloud, &cam(), &target(), &cfg).loss
    }

    /// Central finite difference on one scalar parameter.
    fn fd(cloud: &GaussianCloud, mutate: impl Fn(&mut GaussianCloud, f32), h: f32) -> f64 {
        let mut plus = cloud.clone();
        mutate(&mut plus, h);
        let mut minus = cloud.clone();
        mutate(&mut minus, -h);
        (loss_of(&plus) - loss_of(&minus)) / (2.0 * h as f64)
    }

    fn check(analytic: f32, numeric: f64, what: &str) {
        let a = analytic as f64;
        let tol = 1e-3 * a.abs().max(numeric.abs()).max(1e-4);
        assert!(
            (a - numeric).abs() < tol.max(2e-4),
            "{what}: analytic {a} vs numeric {numeric}"
        );
    }

    #[test]
    fn forward_matches_plain_renderer() {
        use gs_render::{RenderConfig, TileRenderer};
        let cloud = small_cloud();
        let c = cam();
        let plain = TileRenderer::new(RenderConfig {
            threads: 1,
            ..Default::default()
        })
        .render(&cloud, &c);
        let diff = render_with_gradients(&cloud, &c, &target(), &DiffConfig::default());
        let psnr = diff.image.psnr(&plain.image);
        assert!(
            psnr > 70.0 || psnr.is_infinite(),
            "forward diverged: {psnr}"
        );
    }

    #[test]
    fn opacity_gradients_match_finite_differences() {
        let cloud = small_cloud();
        let out = render_with_gradients(
            &cloud,
            &cam(),
            &target(),
            &DiffConfig {
                loss: Loss::L2,
                ..Default::default()
            },
        );
        for gi in 0..cloud.len() {
            let num = fd(&cloud, |c, h| c.as_mut_slice()[gi].opacity += h, 1e-3);
            check(out.grads[gi].opacity, num, &format!("opacity[{gi}]"));
        }
    }

    #[test]
    fn sh_gradients_match_finite_differences() {
        let cloud = small_cloud();
        let out = render_with_gradients(
            &cloud,
            &cam(),
            &target(),
            &DiffConfig {
                loss: Loss::L2,
                ..Default::default()
            },
        );
        for gi in 0..cloud.len() {
            for idx in [0usize, 1, 2, 5, 14, 30] {
                let num = fd(&cloud, |c, h| c.as_mut_slice()[gi].sh[idx] += h, 1e-3);
                check(out.grads[gi].sh[idx], num, &format!("sh[{gi}][{idx}]"));
            }
        }
    }

    #[test]
    fn scale_gradients_match_finite_differences() {
        let cloud = small_cloud();
        let out = render_with_gradients(
            &cloud,
            &cam(),
            &target(),
            &DiffConfig {
                loss: Loss::L2,
                ..Default::default()
            },
        );
        for gi in 0..cloud.len() {
            for axis in 0..3 {
                let num = fd(&cloud, |c, h| c.as_mut_slice()[gi].scale[axis] += h, 1e-4);
                check(
                    out.grads[gi].scale[axis],
                    num,
                    &format!("scale[{gi}][{axis}]"),
                );
            }
        }
    }

    #[test]
    fn rotation_gradients_match_finite_differences() {
        let cloud = small_cloud();
        let out = render_with_gradients(
            &cloud,
            &cam(),
            &target(),
            &DiffConfig {
                loss: Loss::L2,
                ..Default::default()
            },
        );
        for gi in 0..cloud.len() {
            for comp in 0..4 {
                let num = fd(
                    &cloud,
                    |c, h| {
                        let g = &mut c.as_mut_slice()[gi];
                        let mut q = g.rot.to_array();
                        q[comp] += h;
                        g.rot = Quat::from_array(q);
                    },
                    1e-4,
                );
                check(out.grads[gi].rot[comp], num, &format!("rot[{gi}][{comp}]"));
            }
        }
    }

    #[test]
    fn zero_loss_when_target_is_render() {
        let cloud = small_cloud();
        let c = cam();
        let cfg = DiffConfig {
            loss: Loss::L2,
            ..Default::default()
        };
        let self_target = render_with_gradients(&cloud, &c, &target(), &cfg).image;
        let out = render_with_gradients(&cloud, &c, &self_target, &cfg);
        assert!(out.loss < 1e-12, "loss against own render: {}", out.loss);
        // All gradients vanish at the optimum.
        let max_grad: f32 = out
            .grads
            .iter()
            .map(|g| {
                g.opacity
                    .abs()
                    .max(g.scale.abs().max_component())
                    .max(g.rot.iter().fold(0.0f32, |a, v| a.max(v.abs())))
            })
            .fold(0.0, f32::max);
        assert!(max_grad < 1e-6, "gradients at optimum: {max_grad}");
    }

    #[test]
    fn gradient_step_reduces_loss() {
        let cloud = small_cloud();
        let cfg = DiffConfig {
            loss: Loss::L2,
            ..Default::default()
        };
        let out = render_with_gradients(&cloud, &cam(), &target(), &cfg);
        // Take a tiny step against the gradient on opacity + SH.
        let mut stepped = cloud.clone();
        let lr = 0.5;
        for (g, gr) in stepped.iter_mut().zip(&out.grads) {
            g.opacity = (g.opacity - lr * gr.opacity).clamp(0.01, 0.99);
            for i in 0..sh::SH_COEFFS {
                g.sh[i] -= lr * gr.sh[i];
            }
        }
        let after = render_with_gradients(&stepped, &cam(), &target(), &cfg);
        assert!(
            after.loss < out.loss,
            "step increased loss: {} -> {}",
            out.loss,
            after.loss
        );
    }
}
