//! The cross-boundary penalty `L_CBP` (paper Eq. 2).
//!
//! `L_CBP = (1/N) · Σᵢ Sᵢ·Tᵢ`, where `Sᵢ` is Gaussian i's maximum scale and
//! `Tᵢ` flags Gaussians that were blended out of depth order. The indicator
//! comes from *measured* violations of the streaming renderer
//! ([`gs_voxel::streaming::ViolationReport`]), exactly matching the paper's
//! definition ("if the current Gaussian has a smaller depth than a
//! previously rendered one, penalize it").
//!
//! The (sub)gradient shrinks the violating Gaussian's largest scale:
//! `∂L_CBP/∂s_k = Tᵢ/N` for `k = argmax scale`, 0 otherwise.

use crate::diff::GaussGrad;
use gs_scene::GaussianCloud;

/// Evaluates `L_CBP` over a cloud given per-Gaussian violation flags.
///
/// # Panics
///
/// Panics when `flags.len() != cloud.len()`.
pub fn cbp_loss(cloud: &GaussianCloud, flags: &[bool]) -> f64 {
    assert_eq!(cloud.len(), flags.len(), "flag count mismatch");
    if cloud.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for (g, &t) in cloud.iter().zip(flags) {
        if t {
            acc += g.max_scale() as f64;
        }
    }
    acc / cloud.len() as f64
}

/// Adds `β · ∂L_CBP/∂θ` into `grads` (in place).
///
/// The paper's `(1/N)` normalization is folded into `β`: at the paper's
/// 10⁶-Gaussian scale, a mean-normalized penalty with β = 0.05 exerts the
/// same *per-Gaussian* pressure as an unnormalized penalty of β here at our
/// 10³–10⁴-Gaussian stand-in scale. Without this fold the penalty is
/// invisible next to the image-loss gradients under Adam's per-parameter
/// normalization.
///
/// # Panics
///
/// Panics when lengths mismatch.
pub fn add_cbp_gradient(cloud: &GaussianCloud, flags: &[bool], beta: f32, grads: &mut [GaussGrad]) {
    assert_eq!(cloud.len(), flags.len(), "flag count mismatch");
    assert_eq!(cloud.len(), grads.len(), "gradient count mismatch");
    if cloud.is_empty() {
        return;
    }
    let scale = beta;
    for ((g, &t), gr) in cloud.iter().zip(flags).zip(grads.iter_mut()) {
        if !t {
            continue;
        }
        // Subgradient through max: only the largest scale axis.
        let mut k = 0;
        if g.scale.y > g.scale[k] {
            k = 1;
        }
        if g.scale.z > g.scale[k] {
            k = 2;
        }
        gr.scale[k] += scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::vec::Vec3;
    use gs_scene::Gaussian;

    fn cloud() -> GaussianCloud {
        let mut c = GaussianCloud::new();
        let mut a = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::ONE, 0.9);
        a.scale = Vec3::new(0.1, 0.4, 0.2);
        let b = Gaussian::isotropic(Vec3::X, 0.3, Vec3::ONE, 0.9);
        c.push(a);
        c.push(b);
        c
    }

    #[test]
    fn loss_counts_only_flagged() {
        let c = cloud();
        assert_eq!(cbp_loss(&c, &[false, false]), 0.0);
        let l = cbp_loss(&c, &[true, false]);
        assert!((l - 0.2).abs() < 1e-6); // max scale 0.4 / N=2
        let both = cbp_loss(&c, &[true, true]);
        assert!((both - (0.4 + 0.3) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_targets_argmax_scale_axis() {
        let c = cloud();
        let mut grads = vec![GaussGrad::default(); 2];
        add_cbp_gradient(&c, &[true, false], 0.05, &mut grads);
        // Gaussian 0's largest axis is y; the penalty weight applies
        // per-Gaussian (1/N folded into beta, see the doc comment).
        assert_eq!(grads[0].scale.x, 0.0);
        assert!((grads[0].scale.y - 0.05).abs() < 1e-9);
        assert_eq!(grads[0].scale.z, 0.0);
        // Unflagged Gaussian untouched.
        assert_eq!(grads[1].scale, Vec3::ZERO);
    }

    #[test]
    fn shrinking_flagged_scale_reduces_loss() {
        let mut c = cloud();
        let before = cbp_loss(&c, &[true, true]);
        c.as_mut_slice()[0].scale *= 0.5;
        let after = cbp_loss(&c, &[true, true]);
        assert!(after < before);
    }

    #[test]
    #[should_panic(expected = "flag count mismatch")]
    fn mismatched_flags_panic() {
        let _ = cbp_loss(&cloud(), &[true]);
    }
}
