//! Adam optimizer over per-Gaussian parameter groups.

use crate::diff::GaussGrad;
use gs_core::sh;
use gs_core::vec::Vec3;
use serde::{Deserialize, Serialize};

/// Per-group learning-rate multipliers (3DGS uses much smaller rates for
/// geometry than for appearance).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LearningRates {
    /// Log-scale parameters.
    pub scale: f32,
    /// Quaternion parameters.
    pub rot: f32,
    /// Logit-opacity parameter.
    pub opacity: f32,
    /// SH coefficients.
    pub sh: f32,
}

impl Default for LearningRates {
    fn default() -> Self {
        LearningRates {
            scale: 5e-3,
            rot: 1e-3,
            opacity: 2.5e-2,
            sh: 2.5e-3,
        }
    }
}

/// First/second moment state for one Gaussian (56 trainable scalars).
#[derive(Clone, Debug, PartialEq)]
struct Moments {
    m: [f32; 56],
    v: [f32; 56],
}

impl Default for Moments {
    fn default() -> Self {
        Moments {
            m: [0.0; 56],
            v: [0.0; 56],
        }
    }
}

/// Adam over a cloud's trainable parameters.
///
/// Parameters are optimized in *transformed* space — `ln(scale)`,
/// `logit(opacity)`, raw quaternion, raw SH — so box constraints hold by
/// construction; [`Adam::step`] converts the incoming raw-space gradients.
#[derive(Clone, Debug)]
pub struct Adam {
    lrs: LearningRates,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    state: Vec<Moments>,
}

impl Adam {
    /// Creates an optimizer for `n` Gaussians.
    pub fn new(n: usize, lrs: LearningRates) -> Adam {
        Adam {
            lrs,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: vec![Moments::default(); n],
        }
    }

    /// Number of optimized Gaussians.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// `true` when managing no parameters.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Applies one Adam step given raw-space gradients.
    ///
    /// # Panics
    ///
    /// Panics when `grads.len()` differs from the cloud length.
    pub fn step(&mut self, cloud: &mut gs_scene::GaussianCloud, grads: &[GaussGrad]) {
        assert_eq!(cloud.len(), grads.len(), "gradient count mismatch");
        assert_eq!(cloud.len(), self.state.len(), "optimizer state mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);

        for ((g, gr), st) in cloud.iter_mut().zip(grads).zip(self.state.iter_mut()) {
            // Transformed-space gradients: 56 scalars.
            let mut tg = [0.0f32; 56];
            let mut lr = [0.0f32; 56];
            // scale: s = exp(ls) ⇒ dL/dls = dL/ds · s.
            for a in 0..3 {
                tg[a] = gr.scale[a] * g.scale[a];
                lr[a] = self.lrs.scale;
            }
            // rotation: raw quaternion (renormalized after the step).
            for c in 0..4 {
                tg[3 + c] = gr.rot[c];
                lr[3 + c] = self.lrs.rot;
            }
            // opacity: o = sigmoid(lo) ⇒ dL/dlo = dL/do · o(1−o).
            tg[7] = gr.opacity * g.opacity * (1.0 - g.opacity);
            lr[7] = self.lrs.opacity;
            for i in 0..sh::SH_COEFFS {
                tg[8 + i] = gr.sh[i];
                lr[8 + i] = self.lrs.sh;
            }

            let mut delta = [0.0f32; 56];
            for i in 0..56 {
                st.m[i] = self.beta1 * st.m[i] + (1.0 - self.beta1) * tg[i];
                st.v[i] = self.beta2 * st.v[i] + (1.0 - self.beta2) * tg[i] * tg[i];
                let mh = st.m[i] / bc1;
                let vh = st.v[i] / bc2;
                delta[i] = lr[i] * mh / (vh.sqrt() + self.eps);
            }

            // Apply in transformed space, map back.
            let ls = Vec3::new(
                g.scale.x.ln() - delta[0],
                g.scale.y.ln() - delta[1],
                g.scale.z.ln() - delta[2],
            );
            g.scale = Vec3::new(ls.x.exp(), ls.y.exp(), ls.z.exp()).max(Vec3::splat(1e-6));
            g.rot = gs_core::Quat::new(
                g.rot.w - delta[3],
                g.rot.x - delta[4],
                g.rot.y - delta[5],
                g.rot.z - delta[6],
            )
            .normalized();
            let lo = logit(g.opacity) - delta[7];
            g.opacity = sigmoid(lo).clamp(1e-4, 0.9999);
            for i in 0..sh::SH_COEFFS {
                g.sh[i] -= delta[8 + i];
            }
        }
    }
}

fn logit(p: f32) -> f32 {
    let p = p.clamp(1e-5, 1.0 - 1e-5);
    (p / (1.0 - p)).ln()
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scene::{Gaussian, GaussianCloud};

    fn cloud() -> GaussianCloud {
        (0..3)
            .map(|i| Gaussian::isotropic(Vec3::new(i as f32, 0.0, 0.0), 0.1, Vec3::ONE, 0.5))
            .collect()
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut c = cloud();
        let mut opt = Adam::new(c.len(), LearningRates::default());
        let mut grads = vec![GaussGrad::default(); c.len()];
        grads[0].opacity = 1.0; // positive gradient ⇒ opacity must decrease
        grads[1].opacity = -1.0; // negative ⇒ increase
        let before0 = c.as_slice()[0].opacity;
        let before1 = c.as_slice()[1].opacity;
        opt.step(&mut c, &grads);
        assert!(c.as_slice()[0].opacity < before0);
        assert!(c.as_slice()[1].opacity > before1);
        assert_eq!(c.as_slice()[2].opacity, 0.5);
    }

    #[test]
    fn scale_stays_positive_under_huge_gradients() {
        let mut c = cloud();
        let mut opt = Adam::new(
            c.len(),
            LearningRates {
                scale: 0.5,
                ..Default::default()
            },
        );
        let mut grads = vec![GaussGrad::default(); c.len()];
        grads[0].scale = Vec3::splat(1e6);
        for _ in 0..50 {
            opt.step(&mut c, &grads);
        }
        assert!(c.as_slice()[0].scale.min_component() > 0.0);
        assert!(c.is_valid());
    }

    #[test]
    fn quaternion_stays_normalized() {
        let mut c = cloud();
        let mut opt = Adam::new(
            c.len(),
            LearningRates {
                rot: 0.1,
                ..Default::default()
            },
        );
        let mut grads = vec![GaussGrad::default(); c.len()];
        grads[0].rot = [0.3, -0.5, 0.2, 0.9];
        for _ in 0..20 {
            opt.step(&mut c, &grads);
        }
        assert!((c.as_slice()[0].rot.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "gradient count mismatch")]
    fn mismatched_grads_panic() {
        let mut c = cloud();
        let mut opt = Adam::new(c.len(), LearningRates::default());
        let grads = vec![GaussGrad::default(); 1];
        opt.step(&mut c, &grads);
    }
}
