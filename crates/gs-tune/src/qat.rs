//! Quantization-aware fine-tuning (paper Sec. III-C).
//!
//! Following Compact-3DGS (paper ref. [9]): the forward pass renders the
//! *decoded* (quantized) parameters, gradients flow to the underlying
//! continuous parameters via the straight-through estimator, and the
//! codebooks are periodically refreshed on the updated parameters so the
//! indices "capture feature variations without loss of detail".

use crate::adam::{Adam, LearningRates};
use crate::diff::{render_with_gradients, DiffConfig, Loss};
use gs_core::camera::Camera;
use gs_core::image::ImageRgb;
use gs_scene::GaussianCloud;
use gs_vq::{GaussianQuantizer, QuantizedCloud, VqConfig};
use serde::{Deserialize, Serialize};

/// QAT configuration.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QatConfig {
    /// Optimization iterations (paper: 5000; scaled-down default).
    pub iters: u32,
    /// Learning rates.
    pub lrs: LearningRates,
    /// Codebook configuration.
    pub vq: VqConfig,
    /// Re-train codebooks every this many iterations.
    pub refresh_every: u32,
    /// Image loss flavour.
    pub loss: Loss,
}

impl Default for QatConfig {
    fn default() -> Self {
        QatConfig {
            iters: 200,
            lrs: LearningRates::default(),
            vq: VqConfig::small(),
            refresh_every: 50,
            loss: Loss::L1,
        }
    }
}

/// Runs quantization-aware fine-tuning; returns the tuned continuous cloud
/// and the final trained quantizer over it.
///
/// # Panics
///
/// Panics when `targets` is empty.
pub fn quantization_aware_finetune(
    trained: &GaussianCloud,
    targets: &[(Camera, ImageRgb)],
    cfg: &QatConfig,
) -> (GaussianCloud, QuantizedCloud) {
    assert!(!targets.is_empty(), "QAT needs at least one target view");
    let mut cloud = trained.clone();
    let mut opt = Adam::new(cloud.len(), cfg.lrs);
    let diff_cfg = DiffConfig {
        loss: cfg.loss,
        ..Default::default()
    };

    let mut quant = GaussianQuantizer::train(&cloud, &cfg.vq);
    for it in 0..cfg.iters {
        if it > 0 && it % cfg.refresh_every == 0 {
            quant = GaussianQuantizer::train(&cloud, &cfg.vq);
        }
        let decoded = quant.decode();
        let (cam, target) = &targets[it as usize % targets.len()];
        // Forward/backward on the decoded parameters; straight-through:
        // apply the decoded-parameter gradients to the continuous ones.
        let out = render_with_gradients(&decoded, cam, target, &diff_cfg);
        opt.step(&mut cloud, &out.grads);
        // Keep the quantizer's index assignment in sync with the moving
        // parameters (re-encode against the current codebooks).
        for (i, g) in cloud.iter().enumerate() {
            quant.records[i] = quant.encode_gaussian(g);
            quant.coarse[i] = (g.pos, g.max_scale());
        }
    }
    let quant = GaussianQuantizer::train(&cloud, &cfg.vq);
    (cloud, quant)
}

/// Convenience: PSNR of the decoded cloud against targets, averaged.
pub fn decoded_psnr(quant: &QuantizedCloud, targets: &[(Camera, ImageRgb)]) -> f64 {
    use gs_render::{RenderConfig, TileRenderer};
    let decoded = quant.decode();
    let r = TileRenderer::new(RenderConfig::default());
    let mut acc = 0.0;
    for (cam, tgt) in targets {
        acc += r.render(&decoded, cam).image.psnr(tgt).min(99.0);
    }
    acc / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_render::{RenderConfig, TileRenderer};
    use gs_scene::{SceneConfig, SceneKind};

    fn setup() -> (GaussianCloud, Vec<(Camera, ImageRgb)>) {
        // A quantization-dominated setup: strong perturbation and (below)
        // very coarse codebooks, so VQ error is the binding quality factor.
        let scene = SceneKind::Palace.build(&SceneConfig {
            gaussians: 800,
            width: 64,
            height: 48,
            train_views: 2,
            eval_views: 1,
            noise_scale: 6.0,
            ..SceneConfig::tiny()
        });
        let r = TileRenderer::new(RenderConfig::default());
        let targets: Vec<(Camera, ImageRgb)> = scene
            .train_cameras
            .iter()
            .map(|c| (*c, r.render(&scene.ground_truth, c).image))
            .collect();
        (scene.trained, targets)
    }

    fn coarse_vq() -> VqConfig {
        VqConfig {
            scale_entries: 8,
            rot_entries: 8,
            dc_entries: 8,
            sh_entries: 8,
            ..VqConfig::tiny()
        }
    }

    #[test]
    fn qat_preserves_decoded_quality() {
        let (trained, targets) = setup();
        let cfg = QatConfig {
            iters: 30,
            refresh_every: 15,
            vq: coarse_vq(),
            ..Default::default()
        };
        // PSNR of plain (no QAT) quantization.
        let plain = GaussianQuantizer::train(&trained, &cfg.vq);
        let before = decoded_psnr(&plain, &targets);
        // PSNR after QAT: must stay at least as good as plain quantization
        // (measured: slightly better at this scale).
        let (_, tuned) = quantization_aware_finetune(&trained, &targets, &cfg);
        let after = decoded_psnr(&tuned, &targets);
        assert!(
            after > before - 0.2,
            "QAT degraded decoded quality: {before} -> {after}"
        );
    }

    #[test]
    fn positions_never_move() {
        let (trained, targets) = setup();
        let cfg = QatConfig {
            iters: 5,
            refresh_every: 10,
            vq: VqConfig::tiny(),
            ..Default::default()
        };
        let (cloud, _) = quantization_aware_finetune(&trained, &targets, &cfg);
        for (a, b) in trained.iter().zip(cloud.iter()) {
            assert_eq!(a.pos, b.pos);
        }
    }
}
