//! Calibration constants for all performance/energy models.
//!
//! Every number here is either taken from the paper (marked `paper`), from a
//! public datasheet class (`datasheet`), or a documented calibration choice
//! (`calibrated`) whose value was fixed once against the paper's headline
//! ratios and then held constant across all experiments.

use serde::{Deserialize, Serialize};

/// StreamingGS accelerator configuration (paper Sec. V-A and Table I).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// Clock frequency in GHz (`paper`: 1 GHz).
    pub clock_ghz: f64,
    /// Voxel sorting units (`paper`: 1).
    pub n_vsu: u32,
    /// Hierarchical filtering units (`paper`: 4).
    pub n_hfu: u32,
    /// Coarse-grained filter units per HFU (`paper`: 4).
    pub cfus_per_hfu: u32,
    /// Fine-grained filter units per HFU (`paper`: 1).
    pub ffus_per_hfu: u32,
    /// Bitonic sorting units (`paper`: 2).
    pub n_sorters: u32,
    /// Render units (`paper`: 4×4×4 = 64; organized as 4 Gaussians ×
    /// 16 pixels per cycle).
    pub render_units: u32,
    /// Ray samples the VSU advances per cycle (`calibrated`: a 16-lane DDA
    /// stepper keeps the VSU off the critical path, as Table I's tiny VSU
    /// area implies).
    pub vsu_lanes: u32,
    /// Topological-ordering operations (nodes emitted + edges relaxed —
    /// the measured [`gs_voxel::TileWorkload::order_ops`]) the VSU retires
    /// per cycle (`calibrated`: the ordering tables are small SRAM
    /// structures; 4 ops/cycle keeps the VSU off the critical path like
    /// the DDA lanes do).
    pub order_ops_per_cycle: f64,
    /// Effective initiation interval of one FFU in cycles per Gaussian
    /// (`calibrated`: 427 MACs on a 40-wide MAC array ⇒ ≈10.7 cycles; sized
    /// so that at the paper's 4 CFU + 1 FFU point the fine phase is *just*
    /// at the DRAM-fetch roofline, reproducing Fig. 13's small FFU gains).
    pub ffu_ii: f64,
    /// Cycles per Gaussian per CFU (`calibrated`: 55 MACs on a 6-wide MAC
    /// array ⇒ ≈9 cycles; sized so 16 CFUs saturate the coarse-fetch
    /// bandwidth, reproducing Fig. 13's CFU scaling then saturation).
    pub cfu_ii: f64,
    /// Sorter throughput in elements per cycle per unit (`calibrated`:
    /// GSCore's 32-key bitonic network, ~2 passes per element average).
    pub sorter_elems_per_cycle: f64,
    /// Per-voxel pipeline handoff overhead in cycles (`calibrated`).
    pub voxel_fill_cycles: f64,
    /// Input buffer size in bytes (`paper`: 16 KB double-buffered).
    pub input_buffer_bytes: u64,
    /// Codebook SRAM in bytes (`paper`: 250 KB).
    pub codebook_bytes: u64,
    /// Intermediate SRAM in bytes (`paper`: 89 KB).
    pub intermediate_bytes: u64,
    /// DRAM efficiency for the streaming pipeline's sequential bursts
    /// (`calibrated`: voxel layout ⇒ near-peak row-buffer hits).
    pub seq_dram_efficiency: f64,
}

impl AccelConfig {
    /// The paper's default configuration.
    pub fn paper() -> AccelConfig {
        AccelConfig {
            clock_ghz: 1.0,
            n_vsu: 1,
            n_hfu: 4,
            cfus_per_hfu: 4,
            ffus_per_hfu: 1,
            n_sorters: 2,
            render_units: 64,
            vsu_lanes: 16,
            order_ops_per_cycle: 4.0,
            ffu_ii: 18.0,
            cfu_ii: 18.0,
            sorter_elems_per_cycle: 16.0,
            voxel_fill_cycles: 4.0,
            input_buffer_bytes: 16 * 1024,
            codebook_bytes: 250 * 1024,
            intermediate_bytes: 89 * 1024,
            seq_dram_efficiency: 0.45,
        }
    }

    /// Total CFUs across HFUs.
    pub fn total_cfus(&self) -> u32 {
        self.n_hfu * self.cfus_per_hfu
    }

    /// Total FFUs across HFUs.
    pub fn total_ffus(&self) -> u32 {
        self.n_hfu * self.ffus_per_hfu
    }

    /// Total on-chip SRAM bytes (paper: 355 KB).
    pub fn sram_bytes(&self) -> u64 {
        self.input_buffer_bytes + self.codebook_bytes + self.intermediate_bytes
    }
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig::paper()
    }
}

/// Orin NX GPU model constants (`datasheet` + `calibrated` efficiencies).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Peak FP32 throughput in TFLOPS (`datasheet`: ~3.7 for Orin NX class).
    pub peak_tflops: f64,
    /// Achieved fraction of peak on these irregular kernels (`calibrated`).
    pub compute_efficiency: f64,
    /// Peak DRAM bandwidth in GB/s (`datasheet`: 102.4).
    pub peak_bw_gbs: f64,
    /// Achieved fraction of peak bandwidth with the tile-centric pipeline's
    /// scattered accesses (`calibrated`).
    pub bw_efficiency: f64,
    /// Average board power while rendering, watts (`datasheet` class:
    /// 10–25 W envelope).
    pub power_w: f64,
    /// Fixed per-frame launch/driver overhead in microseconds
    /// (`calibrated`).
    pub frame_overhead_us: f64,
}

impl GpuConfig {
    /// Jetson Orin NX defaults.
    pub fn orin_nx() -> GpuConfig {
        GpuConfig {
            peak_tflops: 3.7,
            compute_efficiency: 0.08,
            peak_bw_gbs: 102.4,
            bw_efficiency: 0.05,
            power_w: 14.0,
            frame_overhead_us: 300.0,
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::orin_nx()
    }
}

/// GSCore model constants (from its published specifications, scaled to the
/// same 32 nm node the paper compares at).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GscoreConfig {
    /// Clock in GHz (`paper` GSCore: 1 GHz).
    pub clock_ghz: f64,
    /// Gaussians processed per cycle by the culling/conversion units.
    pub proj_throughput: f64,
    /// Sort-key elements per cycle through its bitonic sorting units.
    pub sort_elems_per_cycle: f64,
    /// Render lanes (volume rendering units; GSCore also uses 16-pixel
    /// groups).
    pub render_lanes: f64,
    /// Subtile-skipping efficiency: fraction of lane work avoided
    /// (`GSCore paper`: shape-aware intersection skips ~30–50 %).
    pub subtile_skip: f64,
    /// DRAM efficiency for its (still tile-centric, scattered) traffic
    /// (`calibrated`).
    pub dram_efficiency: f64,
}

impl GscoreConfig {
    /// Published-spec defaults.
    pub fn paper() -> GscoreConfig {
        GscoreConfig {
            clock_ghz: 1.0,
            proj_throughput: 4.0,
            sort_elems_per_cycle: 16.0,
            render_lanes: 64.0,
            subtile_skip: 0.4,
            dram_efficiency: 0.75,
        }
    }
}

impl Default for GscoreConfig {
    fn default() -> Self {
        GscoreConfig::paper()
    }
}

/// Energy constants shared by the accelerator models (`datasheet`/CACTI
/// class values at 32 nm).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Picojoules per MAC (32 nm fp datapath).
    pub mac_pj: f64,
    /// Picojoules per byte of SRAM access.
    pub sram_pj_per_byte: f64,
    /// Picojoules per byte of DRAM traffic (LPDDR3).
    pub dram_pj_per_byte: f64,
    /// System background power in watts while the accelerator renders
    /// (SoC uncore, DRAM subsystem, IO). `calibrated`: the paper reports
    /// 62.9× energy saving at 45.7× speedup over a ~14 W GPU board, which
    /// implies ~10 W of system power during accelerated rendering; the
    /// datapath dynamic energy (MACs, SRAM, DRAM) comes on top.
    pub static_w: f64,
}

impl EnergyConfig {
    /// 32 nm defaults.
    pub fn node32nm() -> EnergyConfig {
        EnergyConfig {
            mac_pj: 1.2,
            sram_pj_per_byte: 0.9,
            dram_pj_per_byte: 45.0,
            static_w: 8.0,
        }
    }
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig::node32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1_counts() {
        let c = AccelConfig::paper();
        assert_eq!(c.n_vsu, 1);
        assert_eq!(c.n_hfu, 4);
        assert_eq!(c.total_cfus(), 16);
        assert_eq!(c.total_ffus(), 4);
        assert_eq!(c.n_sorters, 2);
        assert_eq!(c.render_units, 64);
        assert_eq!(c.sram_bytes(), 355 * 1024);
    }

    #[test]
    fn gpu_bandwidth_is_paper_limit() {
        let g = GpuConfig::orin_nx();
        assert!((g.peak_bw_gbs - 102.4).abs() < 1e-9);
        assert!(g.compute_efficiency < 1.0 && g.bw_efficiency < 1.0);
    }
}
