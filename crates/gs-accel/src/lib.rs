//! # gs-accel — transaction-level models of the StreamingGS accelerator,
//! GSCore and the Jetson Orin NX GPU
//!
//! Every model here is *workload-driven*: the functional renderers
//! (`gs-render` for the tile-centric pipeline, `gs-voxel` for the streaming
//! pipeline) count what a frame actually did, and these models convert the
//! counts into cycles, seconds and picojoules. No timing number is assumed
//! that the functional run did not measure.
//!
//! | model | consumes | stands in for |
//! |-------|----------|----------------|
//! | [`pipeline::StreamingGsModel`] | `gs_voxel::FrameWorkload` | the paper's accelerator (1 VSU, 4 HFU, 2 sorters, 64 render units, 1 GHz, LPDDR3 ×4) |
//! | [`gscore::GscoreModel`] | `gs_render::RenderStats` | GSCore (ASPLOS'24), built from its published specs |
//! | [`gpu::GpuModel`] | `gs_render::RenderStats` | Jetson Orin NX (mobile Ampere) roofline |
//!
//! Calibration constants live in [`config`] with documented provenance;
//! [`area`] reproduces the paper's Table I; [`scaling`] extrapolates the
//! scaled-down stand-in workloads to native scene sizes.
//!
//! ## Example
//!
//! ```
//! use gs_accel::config::AccelConfig;
//! use gs_accel::area::area_table;
//! let table = area_table(&AccelConfig::paper());
//! // Paper Table I: total ≈ 5.37 mm².
//! assert!((table.total_mm2() - 5.37).abs() < 0.15);
//! ```

pub mod area;
pub mod bitonic;
pub mod config;
pub mod gpu;
pub mod gscore;
pub mod pipeline;
pub mod report;
pub mod scaling;

pub use config::AccelConfig;
pub use gpu::GpuModel;
pub use gscore::GscoreModel;
pub use pipeline::{StreamingGsModel, TierCost};
pub use report::PerfReport;
