//! Timing/energy model of the StreamingGS accelerator (paper Sec. IV).
//!
//! The accelerator processes tiles sequentially; within a tile, voxels are
//! double-buffered so DRAM streaming overlaps compute, and the four stages
//! (coarse filter → fine filter → sort → render) form a pipeline at voxel
//! granularity. The per-tile latency is therefore the *maximum* of the
//! stage throughput demands plus a per-voxel handoff fill; the VSU for the
//! next tile runs in the shadow of the current tile's streaming.

use crate::config::{AccelConfig, EnergyConfig};
use crate::report::PerfReport;
use gs_core::{COARSE_FILTER_MACS, FINE_FILTER_MACS};
use gs_mem::dram::DramModel;
use gs_mem::{EnergyBreakdown, TrafficLedger, MAX_TIERS};
use gs_voxel::{FrameWorkload, TileWorkload};

/// Per-fragment blend cost in MACs (conic eval, alpha, colour accumulate).
const BLEND_MACS: u64 = 20;

/// The accelerator model.
#[derive(Clone, Debug)]
pub struct StreamingGsModel {
    /// Unit configuration.
    pub config: AccelConfig,
    /// Memory system.
    pub dram: DramModel,
    /// Energy constants.
    pub energy: EnergyConfig,
}

impl Default for StreamingGsModel {
    fn default() -> Self {
        StreamingGsModel {
            config: AccelConfig::paper(),
            dram: DramModel::lpddr3_x4(),
            energy: EnergyConfig::node32nm(),
        }
    }
}

/// Per-tile cycle breakdown (exposed for the sensitivity studies).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct TileCycles {
    pub vsu: f64,
    pub fetch: f64,
    pub coarse: f64,
    pub fine: f64,
    pub sort: f64,
    pub render: f64,
    pub fill: f64,
}

impl TileCycles {
    /// The tile's latency: VSU overlaps the streaming pipeline; the
    /// streaming pipeline is bounded by its slowest stage plus fill.
    pub fn latency(&self) -> f64 {
        let stream = self
            .fetch
            .max(self.coarse)
            .max(self.fine)
            .max(self.sort)
            .max(self.render)
            + self.fill;
        self.vsu.max(stream)
    }

    /// Which stage binds this tile (for diagnostics).
    pub fn bottleneck(&self) -> &'static str {
        let stream = [
            (self.fetch, "fetch"),
            (self.coarse, "coarse"),
            (self.fine, "fine"),
            (self.sort, "sort"),
            (self.render, "render"),
        ];
        let (best, name) =
            stream.iter().fold(
                (f64::MIN, "fetch"),
                |acc, (v, n)| if *v > acc.0 { (*v, n) } else { acc },
            );
        if self.vsu > best + self.fill {
            "vsu"
        } else {
            name
        }
    }
}

/// What one LOD tier's fine-record traffic cost in a frame, priced from
/// the measured per-tier ledger lanes (index 0 = full quality, 1.. = the
/// extra tiers of [`gs_voxel::StreamingConfig::tiers`]).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct TierCost {
    /// Demand bytes the tier's fine fetches asked for.
    pub demand_bytes: u64,
    /// Burst-rounded DRAM transaction bytes the tier actually moved
    /// (cache-miss fills only when the renderer's cache is enabled).
    pub dram_bytes: u64,
    /// Dynamic DRAM energy of those transactions, in pJ.
    pub dram_pj: f64,
}

impl StreamingGsModel {
    /// Creates a model with a custom configuration.
    pub fn new(config: AccelConfig) -> StreamingGsModel {
        StreamingGsModel {
            config,
            ..Default::default()
        }
    }

    /// Cycle breakdown for one tile's workload.
    pub fn tile_cycles(&self, w: &TileWorkload) -> TileCycles {
        let c = &self.config;
        // Sustained streaming bandwidth in bytes per cycle (1 cycle = 1 ns
        // at 1 GHz; scaled for other clocks).
        let bytes_per_cycle =
            self.dram.bandwidth() * self.config.seq_dram_efficiency / (c.clock_ghz * 1e9);

        // VSU: DDA stepping plus the measured topological-ordering work
        // (`order_ops` = nodes emitted + edges relaxed; the pre-PR-3 model
        // approximated this as `dag_edges + 2·voxels`, now it is priced
        // from the recorded count).
        let vsu = w.dda_steps as f64 / (c.vsu_lanes * c.n_vsu) as f64
            + w.order_ops as f64 / (c.order_ops_per_cycle * c.n_vsu as f64);
        // The streaming stage moves DRAM *transactions*: burst-rounded,
        // and only cache misses when the renderer's working-set cache is
        // enabled (hits come from on-chip SRAM in the stage's shadow).
        // Workloads that predate transaction accounting get the same
        // per-tile synthesis `FrameWorkload::to_ledger` prices energy
        // from, so one report never mixes two byte counts.
        let fetch_bytes = if w.has_transaction_accounting() {
            w.coarse_dram_bytes + w.fine_dram_bytes
        } else {
            let (coarse, fine, _) = w.synthesized_dram_bytes();
            coarse + fine
        };
        let fetch = fetch_bytes as f64 / bytes_per_cycle;
        let coarse = w.gaussians_streamed as f64 * c.cfu_ii / c.total_cfus() as f64;
        let fine = w.coarse_survivors as f64 * c.ffu_ii / c.total_ffus() as f64;
        let sort = w.fine_survivors as f64 / (c.sorter_elems_per_cycle * c.n_sorters as f64);
        // Render array: 4 Gaussians × 16 pixels per cycle.
        let render = w.blend_lanes as f64 / c.render_units as f64 + w.fine_survivors as f64 / 4.0;
        let fill = w.voxels_processed as f64 * c.voxel_fill_cycles;
        TileCycles {
            vsu,
            fetch,
            coarse,
            fine,
            sort,
            render,
            fill,
        }
    }

    /// Frame latency/energy from a functional frame workload, pricing DRAM
    /// from the workload's reconstructed ledger. For a measured frame,
    /// prefer [`Self::evaluate_measured`] with the renderer's own ledger —
    /// for freshly rendered frames the two agree exactly (the workload's
    /// byte counters are derived from that ledger).
    pub fn evaluate(&self, frame: &FrameWorkload) -> PerfReport {
        self.evaluate_measured(frame, &frame.to_ledger())
    }

    /// Frame latency/energy with DRAM time and energy priced from
    /// **measured** ledger traffic (the streaming renderer's merged
    /// per-worker ledger) instead of modeled byte estimates.
    ///
    /// DRAM is priced from the ledger's **transaction** counters: each
    /// transfer burst-rounded at the metering site, and only cache-miss
    /// fills when the renderer's working-set cache is enabled (a 13 B VQ
    /// index record really costs a whole 32 B burst; pre-PR-4 this priced
    /// raw demand bytes and understated every sub-burst transfer).
    /// Cache-hit bytes are priced as SRAM traffic. Legacy ledgers without
    /// transaction accounting fall back to demand bytes.
    pub fn evaluate_measured(&self, frame: &FrameWorkload, ledger: &TrafficLedger) -> PerfReport {
        let mut cycles = 0.0f64;
        for t in &frame.tiles {
            cycles += self.tile_cycles(t).latency();
        }
        // Pixel writeback overlaps tile compute except for the last tile.
        let totals = frame.totals();
        let seconds = cycles / (self.config.clock_ghz * 1e9);

        debug_assert_eq!(
            ledger.total(),
            totals.dram_bytes(),
            "ledger and workload demand counters diverged"
        );
        let dram_bytes = if ledger.has_dram_accounting() {
            ledger.dram_total()
        } else {
            ledger.total()
        };
        let macs = totals.gaussians_streamed * COARSE_FILTER_MACS
            + totals.coarse_survivors * FINE_FILTER_MACS
            + totals.blend_lanes * BLEND_MACS
            + totals.dda_steps; // VSU datapath ops
                                // Every DRAM byte lands in SRAM and is read at least once; filter
                                // survivors bounce through the FIFO/sort/render buffers, and
                                // working-set cache hits are on-chip reads.
        let sram_bytes = 2 * dram_bytes
            + ledger.hit_total()
            + totals.fine_survivors * 40 * 3
            + totals.blend_lanes * 8;

        let energy = EnergyBreakdown::new(
            macs as f64 * self.energy.mac_pj,
            sram_bytes as f64 * self.energy.sram_pj_per_byte,
            self.dram.dynamic_pj(dram_bytes)
                + self.dram.static_pj(seconds)
                + self.energy.static_w * seconds * 1e12,
        );
        PerfReport {
            seconds,
            dram_bytes,
            energy,
        }
    }

    /// Prices each LOD tier's fine-record traffic from a measured frame
    /// ledger: demand bytes, DRAM transaction bytes, and the dynamic DRAM
    /// energy of those transactions. The lanes sum to the ledger's fine
    /// traffic, so the per-tier energies are an exact decomposition of the
    /// fine-stage share of [`Self::evaluate_measured`]'s DRAM energy.
    /// Ledgers without transaction accounting price demand bytes (the same
    /// fallback `evaluate_measured` uses).
    pub fn price_tiers(&self, ledger: &TrafficLedger) -> [TierCost; MAX_TIERS] {
        let demand = ledger.tier_demand_all();
        let dram = if ledger.has_dram_accounting() {
            ledger.tier_dram_all()
        } else {
            demand
        };
        let mut costs = [TierCost::default(); MAX_TIERS];
        for t in 0..MAX_TIERS {
            costs[t] = TierCost {
                demand_bytes: demand[t],
                dram_bytes: dram[t],
                dram_pj: self.dram.dynamic_pj(dram[t]),
            };
        }
        costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(streamed: u64, survivors: u64) -> TileWorkload {
        TileWorkload {
            rays: 256,
            dda_steps: 4_000,
            voxels_intersected: 20,
            dag_edges: 30,
            voxels_processed: 18,
            gaussians_streamed: streamed,
            coarse_survivors: survivors,
            fine_survivors: survivors / 2,
            blend_lanes: survivors * 40,
            blend_fragments: survivors * 25,
            coarse_bytes: streamed * 16,
            fine_bytes: survivors * 13,
            pixel_bytes: 4096,
            ..Default::default()
        }
    }

    fn frame(tiles: Vec<TileWorkload>) -> FrameWorkload {
        FrameWorkload {
            tiles,
            width: 160,
            height: 120,
            scene_voxels: 100,
            scene_gaussians: 10_000,
        }
    }

    #[test]
    fn tier_pricing_decomposes_measured_fine_traffic() {
        use gs_mem::{Direction, Stage};
        let m = StreamingGsModel::default();
        let mut l = TrafficLedger::new();
        l.add_transfer(Stage::VoxelFine, Direction::Read, 1500, 32);
        l.note_tier(0, 1000);
        l.note_tier(2, 500);
        l.note_tier_dram(0, 992);
        l.note_tier_dram(2, 512);
        let costs = m.price_tiers(&l);
        assert_eq!(costs[0].demand_bytes, 1000);
        assert_eq!(costs[0].dram_bytes, 992);
        assert_eq!(costs[2].demand_bytes, 500);
        assert_eq!(costs[2].dram_bytes, 512);
        assert_eq!(costs[1], TierCost::default());
        assert_eq!(costs[3], TierCost::default());
        // Dynamic DRAM energy is linear in bytes, so the per-tier energies
        // decompose the fine total exactly.
        let sum_pj: f64 = costs.iter().map(|c| c.dram_pj).sum();
        let total: u64 = costs.iter().map(|c| c.dram_bytes).sum();
        assert!((sum_pj - m.dram.dynamic_pj(total)).abs() < 1e-6);
    }

    #[test]
    fn tier_pricing_falls_back_to_demand_without_transactions() {
        let m = StreamingGsModel::default();
        let mut l = TrafficLedger::new();
        l.note_tier(1, 640);
        let costs = m.price_tiers(&l);
        assert_eq!(costs[1].dram_bytes, 640);
        assert!((costs[1].dram_pj - m.dram.dynamic_pj(640)).abs() < 1e-9);
    }

    #[test]
    fn more_cfus_never_slower() {
        let w = tile(4_000, 1_200);
        let mut cfg1 = AccelConfig::paper();
        cfg1.cfus_per_hfu = 1;
        let mut cfg4 = AccelConfig::paper();
        cfg4.cfus_per_hfu = 4;
        let t1 = StreamingGsModel::new(cfg1).tile_cycles(&w).latency();
        let t4 = StreamingGsModel::new(cfg4).tile_cycles(&w).latency();
        assert!(t4 <= t1);
        assert!(t1 / t4 > 1.5, "CFU scaling should matter when coarse-bound");
    }

    #[test]
    fn ffus_beyond_cfus_give_little() {
        // Paper Fig. 13: with 1 CFU the pipeline is coarse-bound, so extra
        // FFUs change nothing.
        let w = tile(8_000, 2_000);
        let mut base = AccelConfig::paper();
        base.cfus_per_hfu = 1;
        base.ffus_per_hfu = 1;
        let mut more_ffu = base;
        more_ffu.ffus_per_hfu = 4;
        let t1 = StreamingGsModel::new(base).tile_cycles(&w).latency();
        let t4 = StreamingGsModel::new(more_ffu).tile_cycles(&w).latency();
        assert!(
            (t1 - t4).abs() / t1 < 0.02,
            "FFUs shouldn't matter when coarse-bound"
        );
    }

    #[test]
    fn latency_is_max_of_stages_plus_fill() {
        let m = StreamingGsModel::default();
        let c = m.tile_cycles(&tile(4_000, 1_000));
        let stages = [c.fetch, c.coarse, c.fine, c.sort, c.render];
        let max = stages.iter().cloned().fold(f64::MIN, f64::max);
        assert!((c.latency() - (max + c.fill).max(c.vsu)).abs() < 1e-9);
        assert!(!c.bottleneck().is_empty());
    }

    #[test]
    fn evaluate_scales_with_tiles() {
        let m = StreamingGsModel::default();
        let one = m.evaluate(&frame(vec![tile(4_000, 1_000)]));
        let two = m.evaluate(&frame(vec![tile(4_000, 1_000); 2]));
        assert!((two.seconds / one.seconds - 2.0).abs() < 1e-6);
        assert_eq!(two.dram_bytes, 2 * one.dram_bytes);
        assert!(two.energy.total_pj() > one.energy.total_pj());
    }

    #[test]
    fn traffic_reduction_reduces_energy() {
        let m = StreamingGsModel::default();
        let heavy = m.evaluate(&frame(vec![tile(4_000, 4_000)]));
        let light = m.evaluate(&frame(vec![tile(4_000, 500)]));
        assert!(light.energy.total_pj() < heavy.energy.total_pj());
    }

    #[test]
    fn evaluate_equals_evaluate_measured_on_matching_ledger() {
        let m = StreamingGsModel::default();
        let f = frame(vec![tile(4_000, 1_000); 3]);
        let a = m.evaluate(&f);
        let b = m.evaluate_measured(&f, &f.to_ledger());
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.dram_bytes, b.dram_bytes);
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn sub_burst_records_are_priced_as_whole_bursts() {
        use gs_mem::{Direction, Stage};
        // The regression the rounding fix exists for: a 13 B VQ index
        // record is one scattered DRAM transaction and really moves a
        // whole 32 B burst. The pre-fix model priced raw ledger bytes and
        // understated fine traffic by ~59 %.
        let m = StreamingGsModel::default();
        let survivors = 1_000u64;
        let f = frame(vec![tile(4_000, survivors)]); // fine_bytes = 13 B/record
        let ledger = f.to_ledger();
        assert_eq!(
            ledger.get(Stage::VoxelFine, Direction::Read),
            survivors * 13,
            "demand stays at the raw record width"
        );
        assert_eq!(
            ledger.dram(Stage::VoxelFine, Direction::Read),
            survivors * m.dram.burst_round(13),
            "each sub-burst record must be priced as one whole burst"
        );
        let r = m.evaluate(&f);
        assert_eq!(r.dram_bytes, ledger.dram_total());
        assert!(
            r.dram_bytes > f.dram_bytes(),
            "burst-rounded transactions must exceed raw demand bytes"
        );
        // And the measured path prices identically from the same ledger.
        assert_eq!(m.evaluate_measured(&f, &ledger).dram_bytes, r.dram_bytes);
    }

    #[test]
    fn cached_workloads_price_only_miss_traffic() {
        use gs_mem::{Direction, Stage};
        let m = StreamingGsModel::default();
        let mut w = tile(4_000, 1_000);
        // Pretend a warm working-set cache: most coarse demand hits.
        w.coarse_dram_bytes = 2_048; // burst-rounded fills
        w.coarse_hit_bytes = w.coarse_bytes - 1_600;
        w.fine_dram_bytes = 1_000 * 32;
        w.pixel_dram_bytes = 4_096;
        let uncached = tile(4_000, 1_000);
        let fw = frame(vec![w]);
        let fu = frame(vec![uncached]);
        let (rw, ru) = (m.evaluate(&fw), m.evaluate(&fu));
        assert!(
            rw.dram_bytes < ru.dram_bytes,
            "cache hits must reduce priced DRAM bytes"
        );
        let lw = fw.to_ledger();
        assert_eq!(
            lw.hit(Stage::VoxelCoarse, Direction::Read),
            w.coarse_hit_bytes
        );
        assert_eq!(rw.dram_bytes, lw.dram_total());
        // The cached tile's streaming-fetch term shrinks with it.
        assert!(m.tile_cycles(&w).fetch < m.tile_cycles(&uncached).fetch);
    }

    #[test]
    fn order_ops_are_priced_in_the_vsu() {
        let m = StreamingGsModel::default();
        let mut w = tile(4_000, 1_000);
        let base = m.tile_cycles(&w);
        w.order_ops = 1_000_000;
        let heavy = m.tile_cycles(&w);
        assert!(
            heavy.vsu > base.vsu,
            "ordering work must show up in the VSU term"
        );
        let expected = base.vsu + 1_000_000.0 / m.config.order_ops_per_cycle;
        assert!((heavy.vsu - expected).abs() < 1e-6);
    }
}
