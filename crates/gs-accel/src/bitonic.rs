//! Bitonic sorting network — the hardware sorter of the paper's sorting
//! unit (adopted from GSCore's bitonic sort unit).
//!
//! A bitonic network for `n = 2^k` elements has `k(k+1)/2` stages of `n/2`
//! parallel compare-exchange units. The functional sorter here executes the
//! exact network (padding to the next power of two with +∞ keys), and
//! [`network_stats`] reports the stage/op counts the cycle model uses.

/// Size/work statistics of a bitonic network.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Elements after padding to a power of two.
    pub padded_n: usize,
    /// Compare-exchange stages (sequential depth).
    pub stages: u32,
    /// Total compare-exchange operations.
    pub compare_ops: u64,
}

/// Stats of the network that sorts `n` elements.
pub fn network_stats(n: usize) -> NetworkStats {
    if n <= 1 {
        return NetworkStats {
            padded_n: n.max(1),
            stages: 0,
            compare_ops: 0,
        };
    }
    let padded = n.next_power_of_two();
    let k = padded.trailing_zeros();
    let stages = k * (k + 1) / 2;
    NetworkStats {
        padded_n: padded,
        stages,
        compare_ops: stages as u64 * (padded as u64 / 2),
    }
}

/// Sorts `items` ascending by `key` with the exact bitonic network,
/// returning the network statistics.
///
/// The sort is *unstable* (like the hardware) but total: equal keys may
/// swap relative order.
///
/// ```
/// use gs_accel::bitonic::bitonic_sort_by_key;
/// let mut v = vec![5u32, 1, 4, 2, 3];
/// let stats = bitonic_sort_by_key(&mut v, |x| *x);
/// assert_eq!(v, vec![1, 2, 3, 4, 5]);
/// assert_eq!(stats.padded_n, 8);
/// ```
pub fn bitonic_sort_by_key<T, K: Ord + Copy, F: Fn(&T) -> K>(
    items: &mut Vec<T>,
    key: F,
) -> NetworkStats {
    let n = items.len();
    let stats = network_stats(n);
    if n <= 1 {
        return stats;
    }
    let padded = stats.padded_n;
    // Work on an index + key array; pad with None (= +∞).
    let mut lane: Vec<Option<(K, usize)>> = (0..padded)
        .map(|i| {
            if i < n {
                Some((key(&items[i]), i))
            } else {
                None
            }
        })
        .collect();

    // Standard bitonic network: block size doubles, inner stride halves.
    let mut block = 2usize;
    while block <= padded {
        let mut stride = block / 2;
        while stride >= 1 {
            for i in 0..padded {
                let j = i ^ stride;
                if j > i {
                    // Direction: ascending when the block bit is 0.
                    let ascending = (i & block) == 0;
                    let swap = match (&lane[i], &lane[j]) {
                        (Some((a, _)), Some((b, _))) => {
                            if ascending {
                                a > b
                            } else {
                                a < b
                            }
                        }
                        // None = +∞: belongs at the "large" end.
                        (None, Some(_)) => ascending,
                        (Some(_), None) => !ascending,
                        (None, None) => false,
                    };
                    if swap {
                        lane.swap(i, j);
                    }
                }
            }
            stride /= 2;
        }
        block *= 2;
    }

    // Apply the permutation.
    let order: Vec<usize> = lane.iter().flatten().map(|(_, i)| *i).collect();
    debug_assert_eq!(order.len(), n);
    let mut taken: Vec<Option<T>> = items.drain(..).map(Some).collect();
    items.extend(order.into_iter().map(|i| match taken[i].take() {
        Some(item) => item,
        // `order` is a permutation of 0..n by construction, so each slot
        // is taken exactly once.
        None => unreachable!("bitonic order visits each index once"),
    }));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_exact_powers_of_two() {
        let mut v: Vec<u32> = (0..64).rev().collect();
        let stats = bitonic_sort_by_key(&mut v, |x| *x);
        assert_eq!(v, (0..64).collect::<Vec<_>>());
        assert_eq!(stats.padded_n, 64);
        assert_eq!(stats.stages, 21); // k=6 → 6·7/2
        assert_eq!(stats.compare_ops, 21 * 32);
    }

    #[test]
    fn sorts_non_powers_with_padding() {
        let mut v = vec![9u32, 3, 7, 7, 1, 0, 5];
        bitonic_sort_by_key(&mut v, |x| *x);
        assert_eq!(v, vec![0, 1, 3, 5, 7, 7, 9]);
    }

    #[test]
    fn sorts_by_custom_key_descending_depths() {
        let mut v = vec![(1.5f32, 'a'), (0.2, 'b'), (0.9, 'c')];
        bitonic_sort_by_key(&mut v, |x| x.0.to_bits()); // positive f32 bits are monotone
        assert_eq!(
            v.iter().map(|x| x.1).collect::<Vec<_>>(),
            vec!['b', 'c', 'a']
        );
    }

    #[test]
    fn empty_and_singleton() {
        let mut v: Vec<u32> = vec![];
        let s = bitonic_sort_by_key(&mut v, |x| *x);
        assert_eq!(s.compare_ops, 0);
        let mut one = vec![7u32];
        bitonic_sort_by_key(&mut one, |x| *x);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn agrees_with_std_sort_on_pseudorandom_input() {
        let mut v: Vec<u64> = (0..1000)
            .map(|i: u64| i.wrapping_mul(0x9e3779b97f4a7c15) >> 17)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        bitonic_sort_by_key(&mut v, |x| *x);
        assert_eq!(v, expect);
    }

    #[test]
    fn stats_grow_with_n() {
        let a = network_stats(32);
        let b = network_stats(256);
        assert!(b.stages > a.stages);
        assert!(b.compare_ops > a.compare_ops);
        assert_eq!(network_stats(1).compare_ops, 0);
    }
}
