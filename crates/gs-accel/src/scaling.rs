//! Workload extrapolation from the scaled-down stand-ins to native scenes.
//!
//! The stand-in scenes are 10–100× smaller than the trained checkpoints the
//! paper measures (DESIGN.md §2). Figures that report *absolute* quantities
//! (GPU FPS, bandwidth-at-90-FPS) extrapolate the measured per-frame counts
//! to native scale with the factors below; figures that report *ratios*
//! (speedup, energy saving) use the measured counts directly.
//!
//! Scaling rules (documented calibration choices):
//!
//! * Gaussian-proportional counters scale with the Gaussian-count factor
//!   `g` (projection inputs/outputs, sort pairs, consumed list entries —
//!   the *tiles-per-Gaussian* ratio is roughly scale-invariant: native
//!   scenes have proportionally smaller splats at proportionally higher
//!   resolution).
//! * Pixel-proportional counters scale with the pixel factor `p`
//!   (fragments: early termination caps each pixel's blend depth, so
//!   per-pixel work is resolution-bound).

use gs_render::RenderStats;
use gs_scene::SceneKind;
use gs_voxel::FrameWorkload;

/// Scale factors from a stand-in frame to the native scene.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ScaleFactors {
    /// Native Gaussians / stand-in Gaussians.
    pub gaussians: f64,
    /// Native pixels / stand-in pixels.
    pub pixels: f64,
}

impl ScaleFactors {
    /// Factors for `kind` given the stand-in's cloud size and resolution.
    pub fn for_scene(
        kind: SceneKind,
        standin_gaussians: usize,
        width: u32,
        height: u32,
    ) -> ScaleFactors {
        let (nw, nh) = kind.native_resolution();
        ScaleFactors {
            gaussians: kind.native_gaussians() as f64 / standin_gaussians.max(1) as f64,
            pixels: (nw as f64 * nh as f64) / (width as f64 * height as f64).max(1.0),
        }
    }

    /// Identity scaling (no extrapolation).
    pub fn identity() -> ScaleFactors {
        ScaleFactors {
            gaussians: 1.0,
            pixels: 1.0,
        }
    }
}

fn s(v: u64, k: f64) -> u64 {
    (v as f64 * k).round() as u64
}

/// Extrapolates tile-centric stats to native scale.
pub fn scale_render_stats(stats: &RenderStats, f: &ScaleFactors) -> RenderStats {
    let g = f.gaussians;
    let p = f.pixels;
    RenderStats {
        total_gaussians: s(stats.total_gaussians, g),
        visible_gaussians: s(stats.visible_gaussians, g),
        tile_pairs: s(stats.tile_pairs, g),
        occupied_tiles: s(stats.occupied_tiles, p),
        total_tiles: s(stats.total_tiles, p),
        pixels: s(stats.pixels, p),
        blended_fragments: s(stats.blended_fragments, p),
        skipped_fragments: s(stats.skipped_fragments, p),
        early_terminated_pixels: s(stats.early_terminated_pixels, p),
        consumed_entries: s(stats.consumed_entries, g),
        max_tile_list: s(stats.max_tile_list, g),
    }
}

/// Extrapolates a streaming frame workload to native scale.
///
/// Voxel counts stay fixed (the voxel size is a scene-space constant), so
/// per-voxel populations grow with `g`; tiles grow with `p`.
pub fn scale_frame_workload(frame: &FrameWorkload, f: &ScaleFactors) -> FrameWorkload {
    let g = f.gaussians;
    let p = f.pixels;
    let tiles = frame
        .tiles
        .iter()
        .map(|t| gs_voxel::TileWorkload {
            rays: s(t.rays as u64, 1.0) as u32,
            dda_steps: t.dda_steps,
            voxels_intersected: t.voxels_intersected,
            dag_edges: t.dag_edges,
            cycle_breaks: t.cycle_breaks,
            order_ops: t.order_ops,
            voxels_processed: t.voxels_processed,
            gaussians_streamed: s(t.gaussians_streamed, g),
            coarse_survivors: s(t.coarse_survivors, g),
            fine_survivors: s(t.fine_survivors, g),
            max_sort_batch: s(t.max_sort_batch as u64, g) as u32,
            // Early termination caps per-pixel depth: per-tile lane counts
            // grow only mildly (√g) with scene density.
            blend_lanes: s(t.blend_lanes, g.sqrt()),
            blend_fragments: s(t.blend_fragments, g.sqrt()),
            coarse_bytes: s(t.coarse_bytes, g),
            fine_bytes: s(t.fine_bytes, g),
            pixel_bytes: t.pixel_bytes,
            // DRAM transaction / hit bytes scale with their demand
            // counterparts (per-transfer rounding is preserved only
            // approximately under extrapolation, like every other counter).
            coarse_dram_bytes: s(t.coarse_dram_bytes, g),
            fine_dram_bytes: s(t.fine_dram_bytes, g),
            pixel_dram_bytes: t.pixel_dram_bytes,
            coarse_hit_bytes: s(t.coarse_hit_bytes, g),
            fine_hit_bytes: s(t.fine_hit_bytes, g),
            fine_tier_bytes: t.fine_tier_bytes.map(|b| s(b, g)),
            fine_tier_dram_bytes: t.fine_tier_dram_bytes.map(|b| s(b, g)),
        })
        .collect::<Vec<_>>();
    // Tile count itself scales with pixels: replicate tiles cyclically.
    let n_native = ((frame.tiles.len() as f64) * p).round().max(1.0) as usize;
    let mut native_tiles = Vec::with_capacity(n_native);
    for i in 0..n_native {
        native_tiles.push(tiles[i % tiles.len().max(1)]);
    }
    FrameWorkload {
        tiles: native_tiles,
        width: (frame.width as f64 * p.sqrt()).round() as u32,
        height: (frame.height as f64 * p.sqrt()).round() as u32,
        scene_voxels: frame.scene_voxels,
        scene_gaussians: s(frame.scene_gaussians, g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_scaling_is_identity_for_stats() {
        let stats = RenderStats {
            total_gaussians: 100,
            visible_gaussians: 50,
            tile_pairs: 300,
            pixels: 1000,
            blended_fragments: 5000,
            ..Default::default()
        };
        assert_eq!(scale_render_stats(&stats, &ScaleFactors::identity()), stats);
    }

    #[test]
    fn gaussian_factor_scales_projection_inputs() {
        let stats = RenderStats {
            total_gaussians: 100,
            tile_pairs: 10,
            ..Default::default()
        };
        let f = ScaleFactors {
            gaussians: 10.0,
            pixels: 1.0,
        };
        let out = scale_render_stats(&stats, &f);
        assert_eq!(out.total_gaussians, 1000);
        assert_eq!(out.tile_pairs, 100);
    }

    #[test]
    fn scene_factors_are_greater_than_one_for_tiny_standins() {
        let f = ScaleFactors::for_scene(SceneKind::Train, 30_000, 320, 208);
        assert!(f.gaussians > 10.0);
        assert!(f.pixels > 5.0);
    }

    #[test]
    fn frame_workload_tile_count_scales_with_pixels() {
        let frame = FrameWorkload {
            tiles: vec![gs_voxel::TileWorkload::default(); 10],
            width: 160,
            height: 120,
            scene_voxels: 50,
            scene_gaussians: 1000,
        };
        let f = ScaleFactors {
            gaussians: 2.0,
            pixels: 4.0,
        };
        let out = scale_frame_workload(&frame, &f);
        assert_eq!(out.tiles.len(), 40);
        assert_eq!(out.scene_gaussians, 2000);
    }
}
