//! GSCore (ASPLOS'24) model, built from its published specifications.
//!
//! GSCore accelerates the *tile-centric* pipeline: dedicated
//! culling/conversion units, hierarchical bitonic sorting and 64 volume
//! rendering units with shape-aware subtile skipping. Its compute is fast —
//! but the intermediate data between stages still travels through DRAM,
//! which is exactly the bottleneck the paper's characterization identifies.
//! The model therefore takes the stage latency as max(compute, memory) per
//! stage, with the same tile-centric traffic model the GPU incurs.

use crate::config::{EnergyConfig, GscoreConfig};
use crate::report::PerfReport;
use gs_core::FINE_FILTER_MACS;
use gs_mem::dram::DramModel;
use gs_mem::EnergyBreakdown;
use gs_render::{RenderStats, StageTraffic};

/// Per-fragment blend cost in MACs.
const BLEND_MACS: u64 = 20;

/// Bytes of one fp16 feature record in GSCore's layout.
const FEATURE_BYTES: u64 = 20;

/// Bytes of one render-stage gather: a 32-bit sorted index plus its
/// feature record — fetched individually per consumed entry.
const RENDER_ENTRY_BYTES: u64 = 4 + FEATURE_BYTES;

/// The GSCore model.
#[derive(Clone, Debug)]
pub struct GscoreModel {
    /// Unit configuration (published specs).
    pub config: GscoreConfig,
    /// Memory system (same LPDDR3 ×4 as the paper's comparison).
    pub dram: DramModel,
    /// Energy constants.
    pub energy: EnergyConfig,
}

impl Default for GscoreModel {
    fn default() -> Self {
        GscoreModel {
            config: GscoreConfig::paper(),
            dram: DramModel::lpddr3_x4(),
            energy: EnergyConfig::node32nm(),
        }
    }
}

/// GSCore-specific tile-centric DRAM traffic.
///
/// GSCore's RTL differs from the GPU pipeline in three memory-relevant ways
/// (per its published design): parameters and features move as fp16 (half
/// the GPU's bytes), and sorting happens **on-chip** in its hierarchical
/// bitonic units — the pair array is read once and the sorted index lists
/// written once, instead of the GPU's multi-pass radix round-trips.
pub fn gscore_traffic(stats: &RenderStats) -> StageTraffic {
    let param_bytes = (gs_core::GAUSSIAN_PARAMS as u64) * 2; // fp16
    let pair = 8; // 32-bit key + 32-bit payload
    StageTraffic {
        projection_read: stats.total_gaussians * param_bytes,
        projection_write: stats.visible_gaussians * FEATURE_BYTES + stats.tile_pairs * pair,
        sorting_read: stats.tile_pairs * pair,
        sorting_write: stats.tile_pairs * 4, // sorted index list
        rendering_read: stats.consumed_entries * RENDER_ENTRY_BYTES,
        rendering_write: stats.pixels * 8, // fp16 RGBA
    }
}

impl GscoreModel {
    /// [`gscore_traffic`] as DRAM *transactions*: sequential stage streams
    /// coalesce into long bursts (rounded once per stream, a negligible
    /// correction), but the render stage gathers each sorted entry
    /// individually, so its reads are priced one burst-rounded
    /// transaction per consumed entry. Pre-PR-4 the 24 B entry gather was
    /// priced at raw demand bytes, understating it by a third at 32 B
    /// bursts.
    pub fn rounded_traffic(&self, stats: &RenderStats) -> StageTraffic {
        let t = gscore_traffic(stats);
        let r = |b| self.dram.burst_round(b);
        StageTraffic {
            projection_read: r(t.projection_read),
            projection_write: r(t.projection_write),
            sorting_read: r(t.sorting_read),
            sorting_write: r(t.sorting_write),
            rendering_read: stats.consumed_entries * r(RENDER_ENTRY_BYTES),
            rendering_write: r(t.rendering_write),
        }
    }

    /// Frame latency/energy from tile-centric workload statistics, with
    /// DRAM time/energy priced from burst-rounded transactions
    /// ([`GscoreModel::rounded_traffic`]).
    pub fn evaluate(&self, stats: &RenderStats) -> PerfReport {
        let c = &self.config;
        let clock_hz = c.clock_ghz * 1e9;
        let traffic = self.rounded_traffic(stats);
        let bw = self.dram.bandwidth() * c.dram_efficiency;

        // Stage compute cycles.
        let proj_c = stats.total_gaussians as f64 / c.proj_throughput;
        let sort_c = stats.tile_pairs as f64 / c.sort_elems_per_cycle;
        // Subtile skipping removes a fraction of lane work; remaining lanes
        // are the evaluated fragments plus skipped ones.
        let lanes = (stats.blended_fragments + stats.skipped_fragments) as f64
            * (1.0 - c.subtile_skip)
            + stats.blended_fragments as f64 * c.subtile_skip;
        let render_c = lanes / c.render_lanes;

        // Stage latency = max(compute, its DRAM traffic time), stages run
        // back-to-back (the pipeline drains between stages because the
        // intermediate data round-trips through DRAM).
        let stage = |compute_cycles: f64, bytes: u64| -> f64 {
            let t_c = compute_cycles / clock_hz;
            let t_m = bytes as f64 / bw;
            t_c.max(t_m)
        };
        let seconds = stage(proj_c, traffic.projection())
            + stage(sort_c, traffic.sorting())
            + stage(render_c, traffic.rendering());

        let dram_bytes = traffic.total();
        let macs = stats.visible_gaussians * FINE_FILTER_MACS
            + stats.blended_fragments * BLEND_MACS
            + stats.tile_pairs * 4; // sort comparators
        let sram_bytes = 2 * dram_bytes;
        let energy = EnergyBreakdown::new(
            macs as f64 * self.energy.mac_pj,
            sram_bytes as f64 * self.energy.sram_pj_per_byte,
            self.dram.dynamic_pj(dram_bytes)
                + self.dram.static_pj(seconds)
                + self.energy.static_w * seconds * 1e12,
        );
        PerfReport {
            seconds,
            dram_bytes,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RenderStats {
        RenderStats {
            total_gaussians: 30_000,
            visible_gaussians: 22_000,
            tile_pairs: 70_000,
            occupied_tiles: 250,
            total_tiles: 260,
            pixels: 66_560,
            blended_fragments: 1_500_000,
            skipped_fragments: 900_000,
            early_terminated_pixels: 30_000,
            consumed_entries: 45_000,
            max_tile_list: 900,
        }
    }

    #[test]
    fn memory_dominates_for_tile_centric_stats() {
        let m = GscoreModel::default();
        let r = m.evaluate(&stats());
        // The whole point of the paper: GSCore's latency tracks DRAM time.
        let mem_seconds = r.dram_bytes as f64 / (m.dram.bandwidth() * m.config.dram_efficiency);
        assert!(
            r.seconds >= 0.8 * mem_seconds,
            "GSCore should be close to memory-bound: {} vs {}",
            r.seconds,
            mem_seconds
        );
    }

    #[test]
    fn traffic_matches_gscore_model_and_beats_gpu_traffic() {
        let m = GscoreModel::default();
        let r = m.evaluate(&stats());
        let t = m.rounded_traffic(&stats());
        assert_eq!(r.dram_bytes, t.total());
        // On-chip sorting + fp16 must move far less than the GPU pipeline.
        let gpu = gs_render::tile_centric_traffic(&stats(), &gs_render::TrafficModel::default());
        assert!(t.total() * 3 < gpu.total());
    }

    #[test]
    fn render_gather_is_priced_per_burst_rounded_entry() {
        let m = GscoreModel::default();
        let s = stats();
        let demand = gscore_traffic(&s);
        let rounded = m.rounded_traffic(&s);
        // Each gathered entry costs one whole burst.
        assert_eq!(
            demand.rendering_read,
            s.consumed_entries * RENDER_ENTRY_BYTES
        );
        assert_eq!(
            rounded.rendering_read,
            s.consumed_entries * m.dram.burst_round(RENDER_ENTRY_BYTES)
        );
        assert!(rounded.rendering_read > demand.rendering_read);
        // Sequential streams round once: at most one burst of slack each.
        assert!(rounded.projection_read - demand.projection_read < m.dram.burst_bytes);
        assert!(rounded.total() > demand.total());
    }

    #[test]
    fn more_pairs_more_time_and_energy() {
        let m = GscoreModel::default();
        let a = m.evaluate(&stats());
        let mut s = stats();
        s.tile_pairs *= 3;
        let b = m.evaluate(&s);
        assert!(b.seconds > a.seconds);
        assert!(b.energy.total_pj() > a.energy.total_pj());
    }
}
