//! Jetson Orin NX (mobile Ampere) roofline model.
//!
//! Each tile-centric stage runs as a separate kernel: its latency is the
//! roofline maximum of compute time and memory time, and stages serialize
//! (grid-wide barriers between kernels). Calibrated once so that the six
//! stand-in scenes land in the paper's 2–9 FPS range at native workload
//! scale (Fig. 3), then held fixed.

use crate::config::GpuConfig;
use crate::report::PerfReport;
use gs_mem::EnergyBreakdown;
use gs_render::{tile_centric_traffic, RenderStats, TrafficModel};

/// FLOPs per projected Gaussian (EWA + SH: 427 MACs ⇒ ~854 FLOPs).
const PROJ_FLOPS: f64 = 854.0;
/// FLOPs per culled Gaussian (frustum test only).
const CULL_FLOPS: f64 = 40.0;
/// FLOPs per sort element per radix pass (key read, digit, scatter).
const SORT_FLOPS_PER_PASS: f64 = 6.0;
/// Radix passes (matches the traffic model's 8).
const SORT_PASSES: f64 = 8.0;
/// FLOPs per rasterized fragment (conic eval + blend).
const FRAG_FLOPS: f64 = 50.0;

/// The GPU model.
#[derive(Clone, Debug, Default)]
pub struct GpuModel {
    /// Device constants.
    pub config: GpuConfig,
    /// Tile-centric traffic model.
    pub traffic: TrafficModel,
}

impl GpuModel {
    /// Frame latency/energy from tile-centric workload statistics.
    pub fn evaluate(&self, stats: &RenderStats) -> PerfReport {
        let c = &self.config;
        let flops_per_s = c.peak_tflops * 1e12 * c.compute_efficiency;
        let bytes_per_s = c.peak_bw_gbs * 1e9 * c.bw_efficiency;
        let traffic = tile_centric_traffic(stats, &self.traffic);

        // Per-stage FLOPs.
        let proj_flops = stats.visible_gaussians as f64 * PROJ_FLOPS
            + (stats.total_gaussians - stats.visible_gaussians) as f64 * CULL_FLOPS;
        let sort_flops = stats.tile_pairs as f64 * SORT_FLOPS_PER_PASS * SORT_PASSES;
        // On the GPU every pixel of a tile walks the tile's consumed list;
        // blended + skipped fragments is exactly that count.
        let render_flops = (stats.blended_fragments + stats.skipped_fragments) as f64 * FRAG_FLOPS;

        let stage = |flops: f64, bytes: u64| -> f64 {
            (flops / flops_per_s).max(bytes as f64 / bytes_per_s)
        };
        let seconds = stage(proj_flops, traffic.projection())
            + stage(sort_flops, traffic.sorting())
            + stage(render_flops, traffic.rendering())
            + c.frame_overhead_us * 1e-6;

        let dram_bytes = traffic.total();
        // Board-level energy: average render power over the frame. We fold
        // everything into `compute_pj` except the DRAM share, which is
        // estimated from traffic so energy-saving breakdowns stay meaningful.
        let dram_pj = dram_bytes as f64 * 22.0; // LPDDR5 pJ/B
        let total_pj = c.power_w * seconds * 1e12;
        let energy = EnergyBreakdown::new((total_pj - dram_pj).max(0.0), 0.0, dram_pj);
        PerfReport {
            seconds,
            dram_bytes,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RenderStats {
        RenderStats {
            total_gaussians: 1_000_000,
            visible_gaussians: 700_000,
            tile_pairs: 5_000_000,
            occupied_tiles: 2_000,
            total_tiles: 2_100,
            pixels: 534_100,
            blended_fragments: 40_000_000,
            skipped_fragments: 25_000_000,
            early_terminated_pixels: 300_000,
            consumed_entries: 2_500_000,
            max_tile_list: 5_000,
        }
    }

    #[test]
    fn native_scale_workload_is_single_digit_fps() {
        // Fig. 3's point: real-world-scale scenes run at 2–9 FPS.
        let m = GpuModel::default();
        let r = m.evaluate(&stats());
        let fps = r.fps();
        assert!(fps > 1.0 && fps < 14.0, "unexpected GPU fps {fps}");
    }

    #[test]
    fn sorting_traffic_binds_at_scale() {
        let m = GpuModel::default();
        let t = tile_centric_traffic(&stats(), &m.traffic);
        assert!(t.sorting() > t.rendering());
        assert!(t.projection() + t.sorting() > (t.total() as f64 * 0.8) as u64);
    }

    #[test]
    fn energy_tracks_latency() {
        let m = GpuModel::default();
        let a = m.evaluate(&stats());
        let mut s = stats();
        s.tile_pairs *= 2;
        s.blended_fragments *= 2;
        let b = m.evaluate(&s);
        assert!(b.seconds > a.seconds);
        assert!(b.energy.total_pj() > a.energy.total_pj());
        // Energy ≈ power × time.
        let expect = m.config.power_w * a.seconds * 1e12;
        assert!((a.energy.total_pj() - expect).abs() / expect < 1e-6);
    }
}
