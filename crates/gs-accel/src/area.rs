//! Area model reproducing the paper's Table I (TSMC 32 nm).
//!
//! Per-unit constants are derived from Table I's totals: 4 HFUs = 0.79 mm²,
//! 2 sorting units = 0.04 mm², 64 rendering units = 2.53 mm², 355 KB SRAM =
//! 1.95 mm². The HFU is further split into CFU/FFU/shared parts so the
//! CFU-count sensitivity (Fig. 13's area commentary) can be evaluated.

use crate::config::AccelConfig;
use serde::{Deserialize, Serialize};

/// mm² of one VSU (Table I).
pub const VSU_MM2: f64 = 0.06;
/// mm² of one CFU (55-MAC datapath share of the HFU).
pub const CFU_MM2: f64 = 0.018;
/// mm² of one FFU (427-MAC datapath share of the HFU).
pub const FFU_MM2: f64 = 0.090;
/// mm² of HFU shared logic (FIFO, control, intersection testers).
pub const HFU_BASE_MM2: f64 = 0.0355;
/// mm² of one sorting unit (Table I: 2 units = 0.04).
pub const SORTER_MM2: f64 = 0.02;
/// mm² of one rendering unit (Table I: 64 units = 2.53).
pub const RENDER_UNIT_MM2: f64 = 2.53 / 64.0;
/// mm² per KB of SRAM (Table I: 355 KB = 1.95 mm² ⇒ ≈0.005493 mm²/KB,
/// CACTI 7.0 class at 32 nm).
pub const SRAM_MM2_PER_KB: f64 = 1.95 / 355.0;

/// One row of the area table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AreaRow {
    /// Unit name.
    pub unit: String,
    /// Configuration description (e.g. "4 Units").
    pub configuration: String,
    /// Area in mm².
    pub mm2: f64,
}

/// The full area table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AreaTable {
    /// Rows in Table I order.
    pub rows: Vec<AreaRow>,
}

impl AreaTable {
    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.rows.iter().map(|r| r.mm2).sum()
    }
}

/// Computes the area table for a configuration.
pub fn area_table(cfg: &AccelConfig) -> AreaTable {
    let hfu_each =
        HFU_BASE_MM2 + cfg.cfus_per_hfu as f64 * CFU_MM2 + cfg.ffus_per_hfu as f64 * FFU_MM2;
    let sram_kb = cfg.sram_bytes() as f64 / 1024.0;
    AreaTable {
        rows: vec![
            AreaRow {
                unit: "Voxel Sorting Unit".into(),
                configuration: format!("{} Unit", cfg.n_vsu),
                mm2: cfg.n_vsu as f64 * VSU_MM2,
            },
            AreaRow {
                unit: "Hierarchical Filtering Unit".into(),
                configuration: format!("{} Units", cfg.n_hfu),
                mm2: cfg.n_hfu as f64 * hfu_each,
            },
            AreaRow {
                unit: "Sorting Unit".into(),
                configuration: format!("{} Units", cfg.n_sorters),
                mm2: cfg.n_sorters as f64 * SORTER_MM2,
            },
            AreaRow {
                unit: "Rendering Unit".into(),
                configuration: format!("{} Units", cfg.render_units),
                mm2: cfg.render_units as f64 * RENDER_UNIT_MM2,
            },
            AreaRow {
                unit: "SRAM (Input Buffer, Codebook, others)".into(),
                configuration: format!("{sram_kb:.0}KB"),
                mm2: sram_kb * SRAM_MM2_PER_KB,
            },
        ],
    }
}

/// GSCore's reported area at 32 nm (DeepScaleTool-scaled), for comparison.
pub const GSCORE_TOTAL_MM2: f64 = 5.53;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_reproduces_table1_total() {
        let t = area_table(&AccelConfig::paper());
        assert!(
            (t.total_mm2() - 5.37).abs() < 0.1,
            "total {} mm²",
            t.total_mm2()
        );
    }

    #[test]
    fn per_row_values_match_table1() {
        let t = area_table(&AccelConfig::paper());
        let by_name = |n: &str| t.rows.iter().find(|r| r.unit.starts_with(n)).unwrap().mm2;
        assert!((by_name("Voxel") - 0.06).abs() < 1e-9);
        assert!((by_name("Hierarchical") - 0.79).abs() < 0.02);
        assert!((by_name("Sorting Unit") - 0.04).abs() < 1e-9);
        assert!((by_name("Rendering") - 2.53).abs() < 1e-9);
        assert!((by_name("SRAM") - 1.95).abs() < 0.01);
    }

    #[test]
    fn more_cfus_cost_area() {
        let base = area_table(&AccelConfig::paper()).total_mm2();
        let mut cfg = AccelConfig::paper();
        cfg.cfus_per_hfu = 8;
        let bigger = area_table(&cfg).total_mm2();
        assert!(bigger > base);
    }

    #[test]
    fn comparable_to_gscore() {
        let t = area_table(&AccelConfig::paper());
        // Paper: "similar area compared to GSCore (5.53 mm²)".
        assert!((t.total_mm2() - GSCORE_TOTAL_MM2).abs() < 0.5);
    }
}
