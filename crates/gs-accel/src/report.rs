//! Common performance-report type returned by every model.

use gs_mem::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// Timing + energy result for one frame on one hardware model.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Frame latency in seconds.
    pub seconds: f64,
    /// Total DRAM bytes moved.
    pub dram_bytes: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl PerfReport {
    /// Frames per second.
    pub fn fps(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            1.0 / self.seconds
        }
    }

    /// DRAM bandwidth this frame would need at `target_fps`, in GB/s
    /// (the quantity of paper Fig. 4).
    pub fn bandwidth_at_fps(&self, target_fps: f64) -> f64 {
        self.dram_bytes as f64 * target_fps / 1e9
    }

    /// Speedup of `self` over `other` (latency ratio).
    pub fn speedup_over(&self, other: &PerfReport) -> f64 {
        other.seconds / self.seconds
    }

    /// Energy saving of `self` over `other` (energy ratio).
    pub fn energy_saving_over(&self, other: &PerfReport) -> f64 {
        other.energy.total_pj() / self.energy.total_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let a = PerfReport {
            seconds: 0.01,
            dram_bytes: 2_000_000_000,
            energy: EnergyBreakdown::new(0.0, 0.0, 100.0),
        };
        let b = PerfReport {
            seconds: 0.1,
            dram_bytes: 0,
            energy: EnergyBreakdown::new(0.0, 0.0, 500.0),
        };
        assert!((a.fps() - 100.0).abs() < 1e-9);
        assert!((a.speedup_over(&b) - 10.0).abs() < 1e-9);
        assert!((a.energy_saving_over(&b) - 5.0).abs() < 1e-9);
        assert!((a.bandwidth_at_fps(90.0) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn zero_latency_fps_is_zero_not_inf() {
        assert_eq!(PerfReport::default().fps(), 0.0);
    }
}
