//! Behavioural sweeps of the hardware models: the monotonicities an
//! architect relies on when reading Figs. 11–13.

use gs_accel::bitonic::{bitonic_sort_by_key, network_stats};
use gs_accel::config::{AccelConfig, GpuConfig};
use gs_accel::{GpuModel, GscoreModel, StreamingGsModel};
use gs_render::RenderStats;
use gs_voxel::{FrameWorkload, TileWorkload};

fn tile(streamed: u64) -> TileWorkload {
    TileWorkload {
        rays: 1024,
        dda_steps: 20_000,
        voxels_intersected: 30,
        dag_edges: 45,
        voxels_processed: 25,
        gaussians_streamed: streamed,
        coarse_survivors: streamed * 2 / 5,
        fine_survivors: streamed / 3,
        max_sort_batch: 128,
        blend_lanes: streamed * 30,
        blend_fragments: streamed * 18,
        coarse_bytes: streamed * 16,
        fine_bytes: streamed * 2 / 5 * 13,
        pixel_bytes: 16_384,
        ..Default::default()
    }
}

fn frame(n_tiles: usize, streamed: u64) -> FrameWorkload {
    FrameWorkload {
        tiles: vec![tile(streamed); n_tiles],
        width: 160,
        height: 128,
        scene_voxels: 300,
        scene_gaussians: 20_000,
    }
}

fn stats() -> RenderStats {
    RenderStats {
        total_gaussians: 20_000,
        visible_gaussians: 14_000,
        tile_pairs: 50_000,
        occupied_tiles: 70,
        total_tiles: 80,
        pixels: 20_480,
        blended_fragments: 400_000,
        skipped_fragments: 250_000,
        early_terminated_pixels: 9_000,
        consumed_entries: 30_000,
        max_tile_list: 1_500,
    }
}

#[test]
fn speedup_saturates_with_cfus() {
    // Latency must be non-increasing in CFU count and eventually flat
    // (DRAM-bound) — the Fig. 13 row shape.
    let w = frame(20, 2_000);
    let mut last = f64::INFINITY;
    let mut deltas = Vec::new();
    for cfu in 1..=8u32 {
        let mut cfg = AccelConfig::paper();
        cfg.cfus_per_hfu = cfu;
        let t = StreamingGsModel::new(cfg).evaluate(&w).seconds;
        assert!(t <= last + 1e-12, "latency increased with more CFUs");
        deltas.push(last - t);
        last = t;
    }
    // The improvement from 7→8 CFUs is much smaller than from 1→2.
    assert!(deltas[7] < 0.2 * deltas[1].max(1e-15));
}

#[test]
fn ffus_matter_less_than_cfus_at_paper_point() {
    let w = frame(20, 2_000);
    let base = StreamingGsModel::new(AccelConfig::paper())
        .evaluate(&w)
        .seconds;
    let mut more_ffu = AccelConfig::paper();
    more_ffu.ffus_per_hfu = 4;
    let t_ffu = StreamingGsModel::new(more_ffu).evaluate(&w).seconds;
    let mut more_cfu = AccelConfig::paper();
    more_cfu.cfus_per_hfu = 1;
    let t_less_cfu = StreamingGsModel::new(more_cfu).evaluate(&w).seconds;
    let ffu_gain = (base - t_ffu) / base;
    let cfu_loss = (t_less_cfu - base) / base;
    assert!(ffu_gain < 0.25, "FFUs shouldn't dominate: gain {ffu_gain}");
    assert!(cfu_loss > 0.5, "removing CFUs must hurt a lot: {cfu_loss}");
}

#[test]
fn streaming_latency_scales_linearly_in_tiles() {
    let m = StreamingGsModel::default();
    let t1 = m.evaluate(&frame(10, 2_000)).seconds;
    let t2 = m.evaluate(&frame(20, 2_000)).seconds;
    assert!((t2 / t1 - 2.0).abs() < 1e-9);
}

#[test]
fn gpu_slows_down_with_lower_efficiency() {
    let s = stats();
    let fast = GpuModel {
        config: GpuConfig::orin_nx(),
        ..Default::default()
    };
    let mut slow_cfg = GpuConfig::orin_nx();
    slow_cfg.bw_efficiency *= 0.5;
    let slow = GpuModel {
        config: slow_cfg,
        ..Default::default()
    };
    assert!(slow.evaluate(&s).seconds > fast.evaluate(&s).seconds);
}

#[test]
fn gscore_sits_between_gpu_and_streaming() {
    let s = stats();
    let gpu = GpuModel::default().evaluate(&s);
    let gscore = GscoreModel::default().evaluate(&s);
    let sgs = StreamingGsModel::default().evaluate(&frame(20, 800));
    assert!(gscore.seconds < gpu.seconds);
    assert!(sgs.seconds < gscore.seconds);
    assert!(gscore.dram_bytes < gpu.dram_bytes);
}

#[test]
fn bitonic_network_backs_the_sorter_model() {
    // The sorter model's elements/cycle throughput must be consistent with
    // the real network's op counts at the paper's 32-key granularity: a
    // 32-key network has 15 stages of 16 comparators = 240 ops.
    let s = network_stats(32);
    assert_eq!(s.stages, 15);
    assert_eq!(s.compare_ops, 240);
    // And it really sorts.
    let mut keys: Vec<u32> = (0..32)
        .map(|i: u32| i.wrapping_mul(2654435761) >> 8)
        .collect();
    bitonic_sort_by_key(&mut keys, |k| *k);
    for w in keys.windows(2) {
        assert!(w[0] <= w[1]);
    }
}

#[test]
fn energy_is_dominated_by_system_floor_plus_dram() {
    // At the calibrated constants the accelerator's energy is mostly the
    // system-power floor and DRAM traffic, matching the paper's argument
    // that traffic reduction is where the energy savings come from.
    let m = StreamingGsModel::default();
    let r = m.evaluate(&frame(20, 2_000));
    let dram_plus_floor = r.energy.dram_pj;
    assert!(dram_plus_floor > r.energy.compute_pj);
    assert!(dram_plus_floor > r.energy.sram_pj);
}
