//! Reading back the `hotpath` bench's machine-readable summary.
//!
//! The `hotpath` bench ends its run with one `HOTPATH_JSON {...}` line; CI
//! persists that line as `BENCH_hotpath.json`. The figure benches
//! (fig03/fig11) load it here to print the **CPU-measured** hot-path
//! numbers next to the **modeled-hardware** ones, keeping algorithmic wins
//! and modeled accelerator wins separable in one table.
//!
//! The parser is a tiny hand-rolled scanner for the one JSON shape we emit
//! ourselves (the workspace's offline `serde` stub has no `serde_json`);
//! it is not a general JSON parser and does not need to be.

/// One scene row of the hotpath report.
#[derive(Clone, Debug, PartialEq)]
pub struct HotpathScene {
    /// Scene name (`lego`, `truck`, `palace`, …).
    pub scene: String,
    /// Naive (seed pipeline) frames/sec, single-threaded.
    pub naive_fps: f64,
    /// Optimized pipeline frames/sec, single-threaded.
    pub optimized_fps: f64,
    /// `optimized_fps / naive_fps`.
    pub speedup: f64,
    /// Optimized pipeline frames/sec at the bench's worker count
    /// (absent in pre-PR-2 reports).
    pub mt_fps: Option<f64>,
}

/// Front-end stage timings of the hotpath report (PR 2+).
#[derive(Clone, Debug, PartialEq)]
pub struct HotpathStages {
    /// Scene label the stages were measured on.
    pub scene: String,
    /// Serial projection / binning / rasterization milliseconds. Since
    /// PR 3 `raster_ms` is measured directly (timed tile loop over the
    /// binned ranges), not derived as frame-minus-front-end.
    pub project_ms: f64,
    pub bin_ms: f64,
    pub raster_ms: f64,
    /// Whole-frame single-thread milliseconds (cross-check on the stage
    /// sum; 0 in pre-PR-3 reports).
    pub frame_ms: f64,
    /// Splat-parallel projection / binning milliseconds.
    pub project_mt_ms: f64,
    pub bin_mt_ms: f64,
    /// Serial front-end time over parallel front-end time.
    pub front_end_speedup: f64,
}

/// The parsed `HOTPATH_JSON` line.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HotpathReport {
    /// Worker count of the multi-threaded rows (0 when absent).
    pub mt_threads: u32,
    /// Per-scene FPS rows.
    pub scenes: Vec<HotpathScene>,
    /// Front-end stage timings, when the report carries them.
    pub stages: Option<HotpathStages>,
}

impl HotpathScene {
    fn default_row() -> HotpathScene {
        HotpathScene {
            scene: String::new(),
            naive_fps: 0.0,
            optimized_fps: 0.0,
            speedup: 0.0,
            mt_fps: None,
        }
    }
}

/// Extracts the number following `"key":` inside `obj`, if present.
fn num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string following `"key":"` inside `obj`, if present.
fn str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Returns the `{…}`-balanced object starting at the first `{` at or after
/// `from` in `s`.
fn balanced_object(s: &str, from: usize) -> Option<&str> {
    let start = from + s[from..].find('{')?;
    let mut depth = 0usize;
    for (i, b) in s[start..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[start..start + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses one `HOTPATH_JSON` payload (with or without the prefix).
pub fn parse_report(line: &str) -> Option<HotpathReport> {
    let json = line.trim().trim_start_matches("HOTPATH_JSON").trim();
    if !json.starts_with('{') || !json.contains("\"bench\":\"hotpath\"") {
        return None;
    }
    let mut report = HotpathReport {
        mt_threads: num_field(json, "mt_threads").unwrap_or(0.0) as u32,
        ..Default::default()
    };

    // Scene rows: every object inside the "scenes":[ … ] array.
    let scenes_at = json.find("\"scenes\":[")?;
    let scenes_end = scenes_at + json[scenes_at..].find(']')?;
    let mut cursor = scenes_at;
    while cursor < scenes_end {
        let Some(obj) = balanced_object(json, cursor) else {
            break;
        };
        let obj_at = json[cursor..].find('{').map(|o| cursor + o)?;
        if obj_at >= scenes_end {
            break;
        }
        let mut row = HotpathScene::default_row();
        row.scene = str_field(obj, "scene")?;
        row.naive_fps = num_field(obj, "naive_fps")?;
        row.optimized_fps = num_field(obj, "optimized_fps")?;
        row.speedup = num_field(obj, "speedup")?;
        row.mt_fps = num_field(obj, "mt_fps");
        report.scenes.push(row);
        cursor = obj_at + obj.len();
    }

    // Stage timings (optional).
    if let Some(at) = json.find("\"stages\":") {
        if let Some(obj) = balanced_object(json, at) {
            report.stages = Some(HotpathStages {
                scene: str_field(obj, "scene").unwrap_or_default(),
                project_ms: num_field(obj, "project_ms").unwrap_or(0.0),
                bin_ms: num_field(obj, "bin_ms").unwrap_or(0.0),
                raster_ms: num_field(obj, "raster_ms").unwrap_or(0.0),
                frame_ms: num_field(obj, "frame_ms").unwrap_or(0.0),
                project_mt_ms: num_field(obj, "project_mt_ms").unwrap_or(0.0),
                bin_mt_ms: num_field(obj, "bin_mt_ms").unwrap_or(0.0),
                front_end_speedup: num_field(obj, "front_end_speedup").unwrap_or(0.0),
            });
        }
    }
    Some(report)
}

/// Loads the persisted report: the path in `$HOTPATH_JSON` when set, else
/// `BENCH_hotpath.json` in the working directory or up to two parents
/// (cargo runs benches with the package dir as cwd, while CI writes the
/// file at the workspace root). Returns `None` when nothing is found; when
/// a candidate file *exists* but holds no parseable `HOTPATH_JSON` line, a
/// warning naming the file goes to stderr and `None` is still returned —
/// the figure benches then print their modeled tables without the
/// measured column, but a stale or corrupted report no longer disappears
/// silently.
pub fn load_report() -> Option<HotpathReport> {
    let candidates: Vec<String> = match std::env::var("HOTPATH_JSON") {
        Ok(p) => vec![p],
        Err(_) => vec![
            "BENCH_hotpath.json".to_string(),
            "../BENCH_hotpath.json".to_string(),
            "../../BENCH_hotpath.json".to_string(),
        ],
    };
    let (path, text) = candidates
        .iter()
        .find_map(|p| std::fs::read_to_string(p).ok().map(|t| (p.as_str(), t)))?;
    report_from_text(path, &text)
}

/// Parses a report file's contents (the bare JSON line or a full bench
/// log), warning on stderr — with the offending path — when the file
/// exists but no line parses.
fn report_from_text(path: &str, text: &str) -> Option<HotpathReport> {
    let report = text.lines().rev().find_map(parse_report);
    if report.is_none() {
        eprintln!(
            "warning: hotpath report {path} exists but contains no parseable \
             HOTPATH_JSON line ({} bytes read); ignoring it",
            text.len()
        );
    }
    report
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"HOTPATH_JSON {"bench":"hotpath","threads":1,"mt_threads":2,"scenes":[{"scene":"lego","naive_fps":112.67,"optimized_fps":736.68,"speedup":6.54,"mt_fps":719.59},{"scene":"truck","naive_fps":86.02,"optimized_fps":550.18,"speedup":6.40,"mt_fps":472.35}],"truck_speedup":6.40,"truck_speedup_ok":true,"stages":{"scene":"truck_small","project_ms":1.2656,"bin_ms":0.4159,"raster_ms":10.6290,"frame_ms":12.5070,"project_mt_ms":1.2997,"bin_mt_ms":0.4514,"front_end_speedup":0.96,"front_end_ok":false}}"#;

    #[test]
    fn parses_full_report() {
        let r = parse_report(SAMPLE).expect("sample must parse");
        assert_eq!(r.mt_threads, 2);
        assert_eq!(r.scenes.len(), 2);
        assert_eq!(r.scenes[0].scene, "lego");
        assert!((r.scenes[0].naive_fps - 112.67).abs() < 1e-9);
        assert!((r.scenes[1].speedup - 6.40).abs() < 1e-9);
        assert_eq!(r.scenes[1].mt_fps, Some(472.35));
        let st = r.stages.expect("stages present");
        assert_eq!(st.scene, "truck_small");
        assert!((st.project_ms - 1.2656).abs() < 1e-9);
        assert!((st.frame_ms - 12.5070).abs() < 1e-9);
        assert!((st.front_end_speedup - 0.96).abs() < 1e-9);
    }

    #[test]
    fn parses_pre_stage_report() {
        // PR 1 format: no mt fields, no stages.
        let old = r#"{"bench":"hotpath","threads":1,"scenes":[{"scene":"truck","naive_fps":80.0,"optimized_fps":400.0,"speedup":5.00}],"truck_speedup":5.00,"truck_speedup_ok":true}"#;
        let r = parse_report(old).expect("old format must parse");
        assert_eq!(r.mt_threads, 0);
        assert_eq!(r.scenes.len(), 1);
        assert_eq!(r.scenes[0].mt_fps, None);
        assert!(r.stages.is_none());
    }

    #[test]
    fn rejects_unrelated_lines() {
        assert!(parse_report("Gnuplot not found").is_none());
        assert!(parse_report("{\"bench\":\"other\"}").is_none());
        assert!(parse_report("").is_none());
    }

    #[test]
    fn malformed_file_contents_warn_and_fall_back_to_none() {
        // An existing-but-unparsable report must not vanish silently: the
        // helper warns (stderr) and keeps the `None` fallback so figure
        // benches still print their modeled tables.
        assert!(report_from_text("BENCH_hotpath.json", "{ truncated garbag").is_none());
        assert!(report_from_text("BENCH_hotpath.json", "").is_none());
        // A bench log with noise around the JSON line still parses.
        let log = format!("Gnuplot not found\n{SAMPLE}\ntrailing noise");
        let r = report_from_text("hotpath.log", &log).expect("log must parse");
        assert_eq!(r.scenes.len(), 2);
    }
}
