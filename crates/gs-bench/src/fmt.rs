//! Plain-text table formatting for experiment output.

/// A simple aligned-column table printer.
///
/// ```
/// use gs_bench::fmt::Table;
/// let mut t = Table::new(&["scene", "fps"]);
/// t.row(&["lego".to_string(), format!("{:.1}", 8.5)]);
/// let s = t.to_string();
/// assert!(s.contains("lego"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) {
        let mut r: Vec<String> = cells.to_vec();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Convenience: appends a row of `&str`.
    pub fn row_str(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[c]));
            }
            writeln!(f, "{}", line.trim_end())
        };
        print_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        writeln!(f, "{}", "-".repeat(total.min(120)))?;
        for r in &self.rows {
            print_row(f, r)?;
        }
        Ok(())
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Formats bytes as MB with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_counts() {
        let mut t = Table::new(&["a", "longheader"]);
        t.row_str(&["x", "1"]);
        t.row(&["yy".into()]); // short row gets padded
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(s.contains("longheader"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn helpers() {
        assert_eq!(mb(2_500_000), "2.50");
        assert_eq!(pct(0.423), "42.3%");
    }
}
