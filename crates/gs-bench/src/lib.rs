//! # gs-bench — the experiment harness
//!
//! One bench target per paper table/figure (`cargo bench` regenerates all of
//! them; each prints the paper's reference numbers next to our measured
//! ones) plus Criterion micro-benches for the compute kernels.
//!
//! The harness runs at three workload scales selected by the
//! `GS_BENCH_SCALE` environment variable: `tiny` (CI smoke), `small`
//! (default — minutes for the whole suite) and `full` (the complete
//! stand-in scenes).

pub mod fmt;
pub mod hotpath;
pub mod setup;
pub mod variants;

pub use fmt::Table;
pub use hotpath::{load_report, HotpathReport};
pub use setup::{bench_scale, build_scene, BenchScale};
pub use variants::{evaluate_scene, SceneEvaluation, Variant};
