//! Shared experiment setup: scales, scenes, cached ground-truth renders.

use gs_core::camera::Camera;
use gs_core::image::ImageRgb;
use gs_render::{RenderConfig, TileRenderer};
use gs_scene::{Scene, SceneConfig, SceneKind};
use gs_vq::VqConfig;

/// Workload scale of a bench run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BenchScale {
    /// Smoke-test size (seconds for the whole suite).
    Tiny,
    /// Default: minutes for the whole suite.
    Small,
    /// Full stand-in scenes.
    Full,
}

/// Logical CPU count of the bench host, for the `cores` field every bench
/// JSON line carries. Thread-scaling verdicts (e.g. `front_end_ok`) are
/// meaningless on a 1-core host; emitting the count lets report readers
/// tell a true regression from a starved local run.
pub fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Reads `GS_BENCH_SCALE` (tiny/small/full); defaults to `Small`.
pub fn bench_scale() -> BenchScale {
    match std::env::var("GS_BENCH_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "tiny" => BenchScale::Tiny,
        "full" => BenchScale::Full,
        _ => BenchScale::Small,
    }
}

impl BenchScale {
    /// The scene configuration for this scale.
    pub fn scene_config(self) -> SceneConfig {
        match self {
            BenchScale::Tiny => SceneConfig::tiny(),
            BenchScale::Small => SceneConfig::small(),
            BenchScale::Full => SceneConfig::full(),
        }
    }

    /// The VQ configuration for this scale.
    pub fn vq_config(self) -> VqConfig {
        match self {
            BenchScale::Tiny => VqConfig::tiny(),
            BenchScale::Small => VqConfig::small(),
            BenchScale::Full => VqConfig::default(),
        }
    }

    /// Fine-tuning iteration budget at this scale.
    pub fn tune_iters(self) -> u32 {
        match self {
            BenchScale::Tiny => 20,
            BenchScale::Small => 80,
            BenchScale::Full => 400,
        }
    }
}

/// Builds a scene at the current bench scale.
pub fn build_scene(kind: SceneKind) -> Scene {
    kind.build(&bench_scale().scene_config())
}

/// Renders the ground-truth targets for a camera list.
pub fn ground_truth_targets(scene: &Scene, cams: &[Camera]) -> Vec<(Camera, ImageRgb)> {
    let r = TileRenderer::new(RenderConfig::default());
    cams.iter()
        .map(|c| (*c, r.render(&scene.ground_truth, c).image))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_small() {
        // Only valid when the env var is unset in the test environment.
        if std::env::var("GS_BENCH_SCALE").is_err() {
            assert_eq!(bench_scale(), BenchScale::Small);
        }
    }

    #[test]
    fn scale_configs_grow() {
        assert!(
            BenchScale::Tiny.scene_config().gaussians < BenchScale::Small.scene_config().gaussians
        );
        assert!(BenchScale::Tiny.tune_iters() < BenchScale::Full.tune_iters());
    }
}
