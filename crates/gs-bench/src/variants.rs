//! Shared evaluation of the paper's hardware/algorithm variants on a scene.
//!
//! For one Gaussian cloud this renders the tile-centric pipeline (feeding
//! the GPU and GSCore models) and the three streaming variants of paper
//! Sec. V-A (w/o VQ+CGF, w/o CGF, full StreamingGS), producing one
//! [`PerfReport`] per hardware point — the data behind Figs. 11–13.

use gs_accel::scaling::{scale_frame_workload, scale_render_stats, ScaleFactors};
use gs_accel::{GpuModel, GscoreModel, PerfReport, StreamingGsModel};
use gs_mem::EnergyBreakdown;
use gs_render::{RenderConfig, RenderStats, TileRenderer};
use gs_scene::{GaussianCloud, Scene};
use gs_voxel::{FrameWorkload, StreamingConfig, StreamingScene};
use gs_vq::{GaussianQuantizer, VqConfig};

/// The hardware/ablation points of Fig. 11.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Jetson Orin NX (baseline, normalization point).
    Gpu,
    /// GSCore accelerator.
    Gscore,
    /// Streaming without VQ and without the coarse filter.
    WithoutVqCgf,
    /// Streaming with VQ, without the coarse filter.
    WithoutCgf,
    /// Full StreamingGS.
    StreamingGs,
}

impl Variant {
    /// Display name matching the paper legend.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Gpu => "GPU (Orin NX)",
            Variant::Gscore => "GSCore",
            Variant::WithoutVqCgf => "w/o VQ+CGF",
            Variant::WithoutCgf => "w/o CGF",
            Variant::StreamingGs => "StreamingGS",
        }
    }
}

/// All per-variant results for one scene + cloud.
#[derive(Clone, Debug)]
pub struct SceneEvaluation {
    /// GPU baseline.
    pub gpu: PerfReport,
    /// GSCore.
    pub gscore: PerfReport,
    /// Streaming w/o VQ+CGF.
    pub without_vq_cgf: PerfReport,
    /// Streaming w/o CGF.
    pub without_cgf: PerfReport,
    /// Full StreamingGS.
    pub full: PerfReport,
    /// Hierarchical-filter kill rate of the full variant (paper: 76.3 %).
    pub kill_rate: f64,
    /// Second-half traffic reduction from VQ (paper: 92.3 %).
    pub vq_reduction: f64,
    /// Measured (unscaled) tile-centric stats, averaged over views.
    pub render_stats: RenderStats,
    /// One native-scaled streaming workload (for unit sweeps).
    pub sample_workload: FrameWorkload,
}

impl SceneEvaluation {
    /// The report for a variant.
    pub fn report(&self, v: Variant) -> &PerfReport {
        match v {
            Variant::Gpu => &self.gpu,
            Variant::Gscore => &self.gscore,
            Variant::WithoutVqCgf => &self.without_vq_cgf,
            Variant::WithoutCgf => &self.without_cgf,
            Variant::StreamingGs => &self.full,
        }
    }

    /// Speedup of a variant over the GPU baseline.
    pub fn speedup(&self, v: Variant) -> f64 {
        self.report(v).speedup_over(&self.gpu)
    }

    /// Energy saving of a variant over the GPU baseline.
    pub fn energy_saving(&self, v: Variant) -> f64 {
        self.report(v).energy_saving_over(&self.gpu)
    }
}

fn mean_reports(reports: &[PerfReport]) -> PerfReport {
    let n = reports.len().max(1) as f64;
    let mut seconds = 0.0;
    let mut bytes = 0.0;
    let mut energy = EnergyBreakdown::default();
    for r in reports {
        seconds += r.seconds;
        bytes += r.dram_bytes as f64;
        energy = energy + r.energy;
    }
    PerfReport {
        seconds: seconds / n,
        dram_bytes: (bytes / n) as u64,
        energy: energy.scaled(1.0 / n),
    }
}

/// Evaluates every variant of `cloud` in `scene` over its eval views.
///
/// When `native_scale` is set, measured workloads are extrapolated to the
/// native scene size before the timing models run (used for the figures
/// that quote absolute FPS/bandwidth; ratio figures work either way).
pub fn evaluate_scene(
    scene: &Scene,
    cloud: &GaussianCloud,
    vq: &VqConfig,
    native_scale: bool,
) -> SceneEvaluation {
    let cams = &scene.eval_cameras;
    let factors = if native_scale {
        ScaleFactors::for_scene(scene.kind, cloud.len(), cams[0].width(), cams[0].height())
    } else {
        ScaleFactors::identity()
    };

    // --- tile-centric pipeline (GPU + GSCore inputs) ----------------------
    let renderer = TileRenderer::new(RenderConfig::default());
    let gpu_model = GpuModel::default();
    let gscore_model = GscoreModel::default();
    let mut gpu_reports = Vec::new();
    let mut gscore_reports = Vec::new();
    let mut stats_acc = RenderStats::default();
    for cam in cams {
        let out = renderer.render(cloud, cam);
        let scaled = scale_render_stats(&out.stats, &factors);
        gpu_reports.push(gpu_model.evaluate(&scaled));
        gscore_reports.push(gscore_model.evaluate(&scaled));
        stats_acc += out.stats;
    }

    // --- streaming variants ------------------------------------------------
    let voxel = scene.voxel_size;
    let quant = GaussianQuantizer::train(cloud, vq);
    let full_scene = StreamingScene::with_quantization(
        cloud.clone(),
        quant.clone(),
        StreamingConfig::full(voxel, *vq),
    );
    let no_cgf_scene = StreamingScene::with_quantization(
        cloud.clone(),
        quant.clone(),
        StreamingConfig::without_cgf(voxel, *vq),
    );
    let plain_scene = StreamingScene::new(cloud.clone(), StreamingConfig::without_vq_cgf(voxel));

    let accel = StreamingGsModel::default();
    let run = |s: &StreamingScene| -> (Vec<PerfReport>, f64, Option<FrameWorkload>) {
        let mut reports = Vec::new();
        let mut kill_acc = 0.0;
        let mut sample = None;
        for cam in cams {
            let out = s.render(cam);
            let scaled = scale_frame_workload(&out.workload, &factors);
            // Price DRAM from the renderer's measured ledger when the
            // workload is used as-is; an extrapolated workload gets its
            // ledger rebuilt at the same scale.
            let ledger = if native_scale {
                scaled.to_ledger()
            } else {
                out.ledger.clone()
            };
            reports.push(accel.evaluate_measured(&scaled, &ledger));
            kill_acc += out.workload.totals().filter_kill_rate();
            if sample.is_none() {
                sample = Some(scaled);
            }
        }
        (reports, kill_acc / cams.len() as f64, sample)
    };

    let (full_reports, kill_rate, sample) = run(&full_scene);
    let (no_cgf_reports, _, _) = run(&no_cgf_scene);
    let (plain_reports, _, _) = run(&plain_scene);

    SceneEvaluation {
        gpu: mean_reports(&gpu_reports),
        gscore: mean_reports(&gscore_reports),
        without_vq_cgf: mean_reports(&plain_reports),
        without_cgf: mean_reports(&no_cgf_reports),
        full: mean_reports(&full_reports),
        kill_rate,
        vq_reduction: quant.fine_traffic_reduction(),
        render_stats: stats_acc,
        sample_workload: match sample {
            Some(s) => s,
            None => unreachable!("eval rigs always contain at least one camera"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scene::{SceneConfig, SceneKind};

    #[test]
    fn variant_ordering_holds_on_a_real_scene() {
        let scene = SceneKind::Truck.build(&SceneConfig::tiny());
        let eval = evaluate_scene(&scene, &scene.trained, &VqConfig::tiny(), false);
        // The paper's headline ordering: StreamingGS beats w/o CGF beats
        // w/o VQ+CGF; all accelerators beat the GPU.
        let full = eval.speedup(Variant::StreamingGs);
        let no_cgf = eval.speedup(Variant::WithoutCgf);
        let plain = eval.speedup(Variant::WithoutVqCgf);
        let gscore = eval.speedup(Variant::Gscore);
        assert!(full > no_cgf, "full {full} ≤ w/o CGF {no_cgf}");
        assert!(no_cgf >= plain, "w/o CGF {no_cgf} < plain {plain}");
        assert!(gscore > 1.0, "GSCore slower than GPU: {gscore}");
        assert!(full > gscore, "full {full} ≤ GSCore {gscore}");
        assert!(eval.kill_rate > 0.3);
        assert!(eval.vq_reduction > 0.9);
    }
}
