//! Paper Table II: rendering-quality parity (PSNR) of the streaming
//! pipeline against the original tile-centric pipeline, for three upstream
//! algorithms across the six scenes.
//!
//! Paper reference (3DGS rows, dB): train 22.54→22.52, truck 26.65→26.61,
//! playroom 30.18→30.27, drjohnson 29.21→29.07, lego 36.11→36.02, palace
//! 38.56→38.52 — i.e. the fully-streaming pipeline (boundary-aware +
//! quantization-aware fine-tuned, VQ-compressed, voxel-ordered) loses
//! ≈0.04 dB on average and sometimes wins.
//!
//! Our protocol: ground-truth images come from the reference render of the
//! procedural ground-truth cloud; "baseline" is the tile-centric render of
//! the algorithm's cloud; "ours" is the streaming render of the same cloud
//! after boundary-aware fine-tuning with VQ from quantization-aware
//! fine-tuning.

use gs_baselines::{light_gaussian, mini_splatting, LightGaussianConfig, MiniSplattingConfig};
use gs_bench::fmt::{banner, Table};
use gs_bench::setup::{bench_scale, build_scene, ground_truth_targets};
use gs_render::{RenderConfig, TileRenderer};
use gs_scene::{GaussianCloud, Scene, SceneKind};
use gs_tune::{boundary_aware_finetune, quantization_aware_finetune, QatConfig, TuneConfig};
use gs_voxel::{StreamingConfig, StreamingScene};

const SCENE_ORDER: [SceneKind; 6] = [
    SceneKind::Train,
    SceneKind::Truck,
    SceneKind::Playroom,
    SceneKind::Drjohnson,
    SceneKind::Lego,
    SceneKind::Palace,
];

/// Paper 3DGS baseline PSNRs in `SCENE_ORDER` (calibration anchors).
const PAPER_3DGS: [f64; 6] = [22.54, 26.65, 30.18, 29.21, 36.11, 38.56];

fn algorithm_cloud(scene: &Scene, algo: &str) -> GaussianCloud {
    match algo {
        "3DGS" => scene.trained.clone(),
        "Mini-Splatting" => mini_splatting(
            &scene.trained,
            &scene.train_cameras,
            &MiniSplattingConfig::default(),
        ),
        "LightGaussian" => light_gaussian(
            &scene.trained,
            &scene.train_cameras,
            &LightGaussianConfig::default(),
        ),
        _ => unreachable!(),
    }
}

fn mean_psnr(images: &[(f64, ())]) -> f64 {
    images.iter().map(|(p, _)| p).sum::<f64>() / images.len() as f64
}

fn main() {
    banner("Table II — rendering quality (PSNR, dB): baseline pipeline vs ours");
    let scale = bench_scale();
    let iters = scale.tune_iters();
    let vq = scale.vq_config();
    println!(
        "fine-tuning budget: {iters} boundary-aware + {} QAT iterations per cell\n",
        iters / 2
    );

    let renderer = TileRenderer::new(RenderConfig::default());
    for algo in ["3DGS", "Mini-Splatting", "LightGaussian"] {
        let mut table = Table::new(&[
            "scene",
            "baseline(dB)",
            "ours(dB)",
            "delta",
            "paper(3DGS base)",
        ]);
        let mut deltas = Vec::new();
        for (si, kind) in SCENE_ORDER.iter().enumerate() {
            let scene = build_scene(*kind);
            let cloud = algorithm_cloud(&scene, algo);
            let eval_targets = ground_truth_targets(&scene, &scene.eval_cameras);
            let train_targets = ground_truth_targets(&scene, &scene.train_cameras);

            // Baseline: tile-centric render of the algorithm cloud.
            let baseline: Vec<(f64, ())> = eval_targets
                .iter()
                .map(|(cam, gt)| (renderer.render(&cloud, cam).image.psnr(gt).min(99.0), ()))
                .collect();

            // Ours: boundary-aware fine-tune, then QAT, then stream.
            let tuned = boundary_aware_finetune(
                &cloud,
                &train_targets,
                &TuneConfig {
                    iters,
                    voxel_size: scene.voxel_size,
                    refresh_every: (iters / 4).max(10),
                    record_every: u32::MAX,
                    ..Default::default()
                },
            );
            let (qat_cloud, quant) = quantization_aware_finetune(
                &tuned.cloud,
                &train_targets,
                &QatConfig {
                    iters: iters / 2,
                    vq,
                    refresh_every: (iters / 4).max(10),
                    ..Default::default()
                },
            );
            let streaming = StreamingScene::with_quantization(
                qat_cloud,
                quant,
                StreamingConfig::full(scene.voxel_size, vq),
            );
            let ours: Vec<(f64, ())> = eval_targets
                .iter()
                .map(|(cam, gt)| (streaming.render(cam).image.psnr(gt).min(99.0), ()))
                .collect();

            let b = mean_psnr(&baseline);
            let o = mean_psnr(&ours);
            deltas.push(o - b);
            table.row(&[
                kind.name().to_string(),
                format!("{b:.2}"),
                format!("{o:.2}"),
                format!("{:+.2}", o - b),
                format!("{:.2}", PAPER_3DGS[si]),
            ]);
        }
        let mean_delta = deltas.iter().sum::<f64>() / deltas.len() as f64;
        println!("[{algo}]\n{table}mean delta: {mean_delta:+.2} dB (paper: -0.04 dB)\n");
    }
}
