//! Paper Fig. 4: DRAM bandwidth needed for 90 FPS vs. the Orin NX limit.
//!
//! Paper reference: real-world scenes demand more than the 102.4 GB/s the
//! device offers (bars reach ≈250 GB/s); projection + sorting contribute
//! ≈90 % of the traffic.

use gs_accel::scaling::{scale_render_stats, ScaleFactors};
use gs_bench::fmt::{banner, pct, Table};
use gs_bench::setup::build_scene;
use gs_render::{tile_centric_traffic, RenderConfig, TileRenderer, TrafficModel};
use gs_scene::SceneKind;

const ORIN_BW_GBS: f64 = 102.4;
const TARGET_FPS: f64 = 90.0;

fn main() {
    banner("Fig. 4 — DRAM bandwidth required for 90 FPS (native workload scale)");
    println!("paper: real-world scenes exceed the 102.4 GB/s Orin NX limit; proj+sort ≈90%\n");

    let renderer = TileRenderer::new(RenderConfig::default());
    let model = TrafficModel::default();
    let mut table = Table::new(&[
        "scene",
        "proj(GB/s)",
        "sort(GB/s)",
        "rend(GB/s)",
        "total(GB/s)",
        "exceeds_limit",
        "proj+sort",
    ]);

    for kind in SceneKind::ALL {
        let scene = build_scene(kind);
        let cam = &scene.eval_cameras[0];
        let out = renderer.render(&scene.trained, cam);
        let f = ScaleFactors::for_scene(kind, scene.trained.len(), cam.width(), cam.height());
        let stats = scale_render_stats(&out.stats, &f);
        let t = tile_centric_traffic(&stats, &model);
        let gbs = |b: u64| b as f64 * TARGET_FPS / 1e9;
        let total = gbs(t.total());
        let (p, s, _) = t.fractions();
        table.row(&[
            kind.name().to_string(),
            format!("{:.1}", gbs(t.projection())),
            format!("{:.1}", gbs(t.sorting())),
            format!("{:.1}", gbs(t.rendering())),
            format!("{total:.1}"),
            if total > ORIN_BW_GBS {
                "YES".into()
            } else {
                "no".into()
            },
            pct(p + s),
        ]);
    }
    println!("{table}");
    println!("Orin NX bandwidth limit: {ORIN_BW_GBS} GB/s (the red dashed line)");
}
