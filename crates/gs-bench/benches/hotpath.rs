//! Hot-path benchmark: optimized pipeline vs the naive seed pipeline, plus
//! front-end stage timings.
//!
//! Three measurements per run:
//!
//! 1. **Algorithmic win** — single-threaded frames/sec of `TileRenderer`
//!    (bbox-clipped rasterization, counting-sort binning, frame arena +
//!    worker pool) against `gs_render::reference::render_reference`
//!    (full-tile scans, global comparison sort, per-frame allocations) on
//!    the Lego / Truck / Palace tiny scenes. Single-threaded on purpose:
//!    this win is algorithmic, not parallelism.
//! 2. **Parallel win** — the same frames at `mt_threads` workers
//!    (tile-parallel rasterization + splat-parallel front-end).
//! 3. **Front-end stages** — per-stage timings (project / bin / raster) on
//!    the `small`-scale Truck scene, serial vs splat-parallel, yielding the
//!    front-end speedup the parallel projection/binning rework buys. The
//!    rasterize stage is instrumented *directly* (timed tile loop over the
//!    binned ranges) rather than derived as frame-minus-front-end; the
//!    whole-frame time is still measured as a cross-check and reported as
//!    `frame_ms`.
//!
//! Besides the human-readable criterion output, the run ends with one
//! machine-readable JSON line (prefixed `HOTPATH_JSON `) carrying all
//! measurements plus pass/fail flags (Truck algorithmic speedup ≥ 2×;
//! multi-threaded front-end speedup ≥ 1.3× — the latter requires ≥ 2
//! hardware cores to be meaningful). CI persists this line as
//! `BENCH_hotpath.json`, which the fig03/fig11 tables read to print
//! CPU-measured speedups next to the modeled-hardware ones.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gs_core::vec::Vec3;
use gs_render::arena::TILE_PIXELS;
use gs_render::binning::{bin_and_sort_into, bin_and_sort_parallel, BinScratch};
use gs_render::pool::WorkerPool;
use gs_render::projection::{
    project_splats_into, project_splats_parallel, tile_grid, ProjectScratch,
};
use gs_render::rasterize::{rasterize_tile, TileScratch};
use gs_render::reference::render_reference;
use gs_render::{RenderConfig, TileRenderer, TILE_SIZE};
use gs_scene::{SceneConfig, SceneKind};
use std::time::Instant;

/// Frames/sec of `f`, measured over at least `min_frames` frames and 0.4 s.
fn fps_of(mut f: impl FnMut(), min_frames: u32) -> f64 {
    f(); // warm-up (fills arenas / spawns the pool once)
    let start = Instant::now();
    let mut frames = 0u32;
    while frames < min_frames || start.elapsed().as_secs_f64() < 0.4 {
        f();
        frames += 1;
    }
    frames as f64 / start.elapsed().as_secs_f64()
}

/// Milliseconds per call of `f`, measured over at least 30 calls and 0.25 s.
fn ms_of(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    let mut calls = 0u32;
    while calls < 30 || start.elapsed().as_secs_f64() < 0.25 {
        f();
        calls += 1;
    }
    start.elapsed().as_secs_f64() * 1e3 / calls as f64
}

fn bench_hotpath(c: &mut Criterion) {
    let cfg = RenderConfig {
        threads: 1,
        ..RenderConfig::default()
    };
    let mt_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let mt_cfg = RenderConfig {
        threads: mt_threads,
        ..RenderConfig::default()
    };
    let mut rows = Vec::new();

    for kind in [SceneKind::Lego, SceneKind::Truck, SceneKind::Palace] {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = scene.eval_cameras[0];
        let renderer = TileRenderer::new(cfg);
        let mt_renderer = TileRenderer::new(mt_cfg);

        c.bench_function(&format!("hotpath_optimized_{}", kind.name()), |b| {
            b.iter(|| {
                black_box(
                    renderer
                        .render(&scene.trained, &cam)
                        .stats
                        .blended_fragments,
                )
            })
        });
        c.bench_function(&format!("hotpath_naive_{}", kind.name()), |b| {
            b.iter(|| {
                black_box(
                    render_reference(&cfg, &scene.trained, &cam)
                        .stats
                        .blended_fragments,
                )
            })
        });

        let optimized_fps = fps_of(
            || {
                black_box(renderer.render(&scene.trained, &cam));
            },
            5,
        );
        let mt_fps = fps_of(
            || {
                black_box(mt_renderer.render(&scene.trained, &cam));
            },
            5,
        );
        let naive_fps = fps_of(
            || {
                black_box(render_reference(&cfg, &scene.trained, &cam));
            },
            5,
        );
        rows.push((kind.name(), naive_fps, optimized_fps, mt_fps));
    }

    // --- Front-end stage timings (small-scale Truck) ---------------------
    let stage_scene = SceneKind::Truck.build(&SceneConfig::small());
    let cam = stage_scene.eval_cameras[0];
    let cloud = stage_scene.trained.as_slice();
    let (tiles_x, tiles_y) = tile_grid(cam.width(), cam.height());

    let mut splats = Vec::new();
    let mut keys = Vec::new();
    let mut ranges = Vec::new();
    let project_ms = ms_of(|| {
        project_splats_into(cloud, &cam, 3, &mut splats);
        black_box(splats.len());
    });
    let bin_ms = ms_of(|| {
        bin_and_sort_into(&splats, tiles_x, tiles_y, &mut keys, &mut ranges);
        black_box(keys.len());
    });

    // Rasterize stage, instrumented directly: blend every tile's binned
    // range into a reusable tile buffer, exactly as the renderer's tile
    // loop does (single-threaded, serial tile order).
    let n_tiles = (tiles_x * tiles_y) as usize;
    let mut tile_scratch = TileScratch::default();
    let mut tile_buf = vec![Vec3::ZERO; TILE_PIXELS];
    let raster_ms = ms_of(|| {
        let mut fragments = 0u64;
        for (t, &range) in ranges.iter().enumerate().take(n_tiles) {
            let origin = (
                (t as u32 % tiles_x) * TILE_SIZE,
                (t as u32 / tiles_x) * TILE_SIZE,
            );
            fragments += rasterize_tile(
                &splats,
                &keys,
                range,
                origin,
                cam.width(),
                cam.height(),
                Vec3::ZERO,
                &mut tile_scratch,
                &mut tile_buf,
            )
            .fragments;
        }
        black_box(fragments);
    });

    let mut pool = WorkerPool::new(mt_threads);
    let mut pscratch = ProjectScratch::default();
    let mut bscratch = BinScratch::default();
    let project_mt_ms = ms_of(|| {
        project_splats_parallel(
            cloud,
            &cam,
            3,
            &mut splats,
            &mut pscratch,
            &mut pool,
            mt_threads,
        );
        black_box(splats.len());
    });
    let bin_mt_ms = ms_of(|| {
        bin_and_sort_parallel(
            &splats,
            tiles_x,
            tiles_y,
            &mut keys,
            &mut ranges,
            &mut bscratch,
            &mut pool,
            mt_threads,
        );
        black_box(keys.len());
    });

    // Whole-frame single-thread time — a cross-check on the per-stage sum
    // (project + bin + raster + composite), not the source of raster_ms.
    let renderer = TileRenderer::new(cfg);
    let frame_ms = ms_of(|| {
        black_box(renderer.render(&stage_scene.trained, &cam));
    });

    let front_end_speedup = (project_ms + bin_ms) / (project_mt_ms + bin_mt_ms);
    let front_end_ok = front_end_speedup >= 1.3;
    println!(
        "front-end (truck @ small, {mt_threads} workers): \
         project {project_ms:.3} -> {project_mt_ms:.3} ms, \
         bin {bin_ms:.3} -> {bin_mt_ms:.3} ms, raster {raster_ms:.3} ms \
         (frame {frame_ms:.3} ms), \
         speedup {front_end_speedup:.2}x (bar 1.3x)"
    );

    // Machine-readable summary (one line, greppable).
    let cores = gs_bench::setup::cores();
    let mut json = format!(
        "{{\"bench\":\"hotpath\",\"cores\":{cores},\"threads\":1,\"mt_threads\":{mt_threads},\"scenes\":["
    );
    let mut truck_speedup = 0.0;
    for (i, (name, naive, opt, mt)) in rows.iter().enumerate() {
        let speedup = opt / naive;
        if *name == "truck" {
            truck_speedup = speedup;
        }
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"scene\":\"{name}\",\"naive_fps\":{naive:.2},\"optimized_fps\":{opt:.2},\"speedup\":{speedup:.2},\"mt_fps\":{mt:.2}}}"
        ));
    }
    json.push_str(&format!(
        "],\"truck_speedup\":{truck_speedup:.2},\"truck_speedup_ok\":{},\
         \"stages\":{{\"scene\":\"truck_small\",\"project_ms\":{project_ms:.4},\
         \"bin_ms\":{bin_ms:.4},\"raster_ms\":{raster_ms:.4},\"frame_ms\":{frame_ms:.4},\
         \"project_mt_ms\":{project_mt_ms:.4},\"bin_mt_ms\":{bin_mt_ms:.4},\
         \"front_end_speedup\":{front_end_speedup:.2},\"front_end_ok\":{front_end_ok}}}}}",
        truck_speedup >= 2.0
    ));
    println!("HOTPATH_JSON {json}");
}

criterion_group!(hotpath, bench_hotpath);
criterion_main!(hotpath);
