//! Hot-path benchmark: optimized pipeline vs the naive seed pipeline.
//!
//! Measures single-threaded frames/sec of `TileRenderer` (bbox-clipped
//! rasterization, counting-sort binning, frame arena + worker pool) against
//! `gs_render::reference::render_reference` (full-tile scans, global
//! comparison sort, per-frame allocations) on the Lego / Truck / Palace
//! tiny scenes. Single-threaded on purpose: the win measured here is
//! algorithmic, not parallelism.
//!
//! Besides the human-readable criterion output, the run ends with one
//! machine-readable JSON line (prefixed `HOTPATH_JSON `) carrying the
//! per-scene FPS and speedups, plus whether the Truck speedup clears the
//! ≥ 2× acceptance bar.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gs_render::reference::render_reference;
use gs_render::{RenderConfig, TileRenderer};
use gs_scene::{SceneConfig, SceneKind};
use std::time::Instant;

/// Frames/sec of `f`, measured over at least `min_frames` frames and 0.4 s.
fn fps_of(mut f: impl FnMut(), min_frames: u32) -> f64 {
    f(); // warm-up (fills arenas; threads=1, so no pool is spawned)
    let start = Instant::now();
    let mut frames = 0u32;
    while frames < min_frames || start.elapsed().as_secs_f64() < 0.4 {
        f();
        frames += 1;
    }
    frames as f64 / start.elapsed().as_secs_f64()
}

fn bench_hotpath(c: &mut Criterion) {
    let cfg = RenderConfig {
        threads: 1,
        ..RenderConfig::default()
    };
    let mut rows = Vec::new();

    for kind in [SceneKind::Lego, SceneKind::Truck, SceneKind::Palace] {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = scene.eval_cameras[0];
        let renderer = TileRenderer::new(cfg);

        c.bench_function(&format!("hotpath_optimized_{}", kind.name()), |b| {
            b.iter(|| {
                black_box(
                    renderer
                        .render(&scene.trained, &cam)
                        .stats
                        .blended_fragments,
                )
            })
        });
        c.bench_function(&format!("hotpath_naive_{}", kind.name()), |b| {
            b.iter(|| {
                black_box(
                    render_reference(&cfg, &scene.trained, &cam)
                        .stats
                        .blended_fragments,
                )
            })
        });

        let optimized_fps = fps_of(
            || {
                black_box(renderer.render(&scene.trained, &cam));
            },
            5,
        );
        let naive_fps = fps_of(
            || {
                black_box(render_reference(&cfg, &scene.trained, &cam));
            },
            5,
        );
        rows.push((kind.name(), naive_fps, optimized_fps));
    }

    // Machine-readable summary (one line, greppable).
    let mut json = String::from("{\"bench\":\"hotpath\",\"threads\":1,\"scenes\":[");
    let mut truck_speedup = 0.0;
    for (i, (name, naive, opt)) in rows.iter().enumerate() {
        let speedup = opt / naive;
        if *name == "truck" {
            truck_speedup = speedup;
        }
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"scene\":\"{name}\",\"naive_fps\":{naive:.2},\"optimized_fps\":{opt:.2},\"speedup\":{speedup:.2}}}"
        ));
    }
    json.push_str(&format!(
        "],\"truck_speedup\":{truck_speedup:.2},\"truck_speedup_ok\":{}}}",
        truck_speedup >= 2.0
    ));
    println!("HOTPATH_JSON {json}");
}

criterion_group!(hotpath, bench_hotpath);
criterion_main!(hotpath);
