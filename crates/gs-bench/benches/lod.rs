//! LOD tier benchmark: per-frame quality selection vs second-half DRAM
//! traffic.
//!
//! PR 9 gives every scene image up to [`gs_voxel::MAX_EXTRA_TIERS`] extra
//! fine-record tiers — SH-truncated, importance-pruned, VQ'd with smaller
//! codebooks — and a deterministic per-frame [`gs_voxel::QualityPolicy`]
//! that picks one tier per voxel before the frame starts. Two gated
//! properties:
//!
//! * **exact_ok** — building tiers must cost nothing when unused:
//!   [`QualityPolicy::FullQuality`] frames are byte-identical (image,
//!   workload, ledger) to the tierless legacy scene on every scene kind,
//!   raw and VQ, resident and demand-paged, for 1/2/all worker threads.
//! * **monotone_ok** — the tiers are a real quality/traffic dial: forcing
//!   tier 0→3 on Truck strictly shrinks the fine-record (second-half)
//!   DRAM bytes while PSNR against the full-quality frame never rises.
//!
//! The policy sweep rows report what the adaptive policies buy: PSNR vs
//! per-tier fine DRAM bytes for screen-space-error thresholds and byte
//! budgets, plus an importance-steered tier build
//! ([`gs_baselines::view_importance`]) against the id-order default.
//!
//! Ends with one machine-readable `LOD_JSON {...}` line; CI persists it
//! as `BENCH_lod.json` and gates on `exact_ok` and `monotone_ok`.

use gs_bench::fmt::{banner, Table};
use gs_bench::setup::{bench_scale, build_scene, BenchScale};
use gs_scene::SceneKind;
use gs_voxel::{PageConfig, QualityPolicy, StreamingConfig, StreamingOutput, StreamingScene};
use gs_vq::VqConfig;

/// PSNR is unbounded on bit-identical images; report this instead.
const PSNR_CAP: f64 = 99.0;

fn identical(a: &StreamingOutput, b: &StreamingOutput) -> bool {
    a.image == b.image && a.workload == b.workload && a.ledger == b.ledger
}

/// Fine-record (second-half) DRAM transaction bytes of one frame, summed
/// over the tier lanes.
fn fine_dram(out: &StreamingOutput) -> u64 {
    out.tiers.dram_bytes.iter().sum()
}

fn psnr_vs(reference: &StreamingOutput, out: &StreamingOutput) -> f64 {
    reference.image.psnr(&out.image).min(PSNR_CAP)
}

fn main() {
    let scale = bench_scale();
    banner("LOD tiers — per-frame quality selection vs second-half DRAM bytes");
    println!(
        "exact = tiered FullQuality vs tierless legacy, byte-identical (raw/VQ, resident/paged, threads 1/2/all);\nmonotone = forced tier 0..3 on Truck strictly shrinks fine DRAM while PSNR never rises\n"
    );

    let vq_cfg = || {
        if scale == BenchScale::Tiny {
            VqConfig::tiny()
        } else {
            scale.vq_config()
        }
    };

    // --- exact_ok: FullQuality is free on every kind --------------------
    let mut exact_table = Table::new(&["scene", "raw", "vq", "paged", "threads"]);
    let mut exact_rows = Vec::new();
    let mut all_exact = true;
    for kind in SceneKind::ALL {
        let scene = build_scene(kind);
        let cam = scene.eval_cameras[0];
        let mut raw_ok = true;
        let mut vq_ok = true;
        let mut paged_ok = true;
        let mut threads_ok = true;
        for use_vq in [false, true] {
            let base = StreamingConfig {
                voxel_size: scene.voxel_size,
                use_vq,
                vq: vq_cfg(),
                threads: 1,
                ..Default::default()
            };
            let legacy = StreamingScene::new(scene.trained.clone(), base).render(&cam);
            let tiered_cfg = StreamingConfig {
                tiers: StreamingConfig::default_tier_ladder(),
                quality: QualityPolicy::FullQuality,
                ..base
            };
            let ok = identical(
                &legacy,
                &StreamingScene::new(scene.trained.clone(), tiered_cfg).render(&cam),
            );
            if use_vq {
                vq_ok &= ok;
            } else {
                raw_ok &= ok;
            }
            for threads in [2usize, 0] {
                let out = StreamingScene::new(
                    scene.trained.clone(),
                    StreamingConfig {
                        threads,
                        ..tiered_cfg
                    },
                )
                .render(&cam);
                threads_ok &= identical(&legacy, &out);
            }
            let mut paged = StreamingScene::new(scene.trained.clone(), tiered_cfg);
            paged.page_out(PageConfig::default());
            paged_ok &= identical(&legacy, &paged.render(&cam));
        }
        let exact = raw_ok && vq_ok && paged_ok && threads_ok;
        all_exact &= exact;
        exact_table.row(&[
            kind.name().to_string(),
            raw_ok.to_string(),
            vq_ok.to_string(),
            paged_ok.to_string(),
            threads_ok.to_string(),
        ]);
        exact_rows.push(format!(
            "{{\"scene\":\"{}\",\"exact\":{exact}}}",
            kind.name()
        ));
    }
    println!("{exact_table}");

    // --- monotone_ok: the forced-tier dial on Truck ---------------------
    let scene = build_scene(SceneKind::Truck);
    let cam = scene.eval_cameras[0];
    let base = StreamingConfig {
        voxel_size: scene.voxel_size,
        use_vq: true,
        vq: vq_cfg(),
        tiers: StreamingConfig::default_tier_ladder(),
        threads: 1,
        ..Default::default()
    };
    let n_tiers = StreamingScene::new(scene.trained.clone(), base)
        .store()
        .tier_count();
    let full = StreamingScene::new(scene.trained.clone(), base).render(&cam);

    let mut tier_table = Table::new(&["tier", "psnr(dB)", "fine DRAM(B)", "voxels"]);
    let mut tier_rows = Vec::new();
    let mut monotone_ok = true;
    let mut last_dram = u64::MAX;
    let mut last_psnr = f64::INFINITY;
    for tier in 0..=n_tiers as u8 {
        let out = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                quality: QualityPolicy::ForcedTier { tier },
                ..base
            },
        )
        .render(&cam);
        let dram = fine_dram(&out);
        let psnr = psnr_vs(&full, &out);
        monotone_ok &= dram < last_dram && psnr <= last_psnr + 1e-9;
        last_dram = dram;
        last_psnr = psnr;
        tier_table.row(&[
            tier.to_string(),
            format!("{psnr:.2}"),
            dram.to_string(),
            out.tiers.voxels[tier as usize].to_string(),
        ]);
        tier_rows.push(format!(
            "{{\"tier\":{tier},\"psnr_db\":{psnr:.3},\"fine_dram_bytes\":{dram},\"fine_demand_bytes\":{}}}",
            out.tiers.fetched_bytes.iter().sum::<u64>()
        ));
    }
    println!("{tier_table}");

    // --- adaptive policy sweep (reported, not gated) --------------------
    let mut policy_table = Table::new(&["policy", "psnr(dB)", "fine DRAM(B)", "tier voxels"]);
    let mut policy_rows = Vec::new();
    // Budgets compare against fine *demand* (the policy's cost model is
    // record widths, not burst rounding), so derive the sweep from it.
    let full_demand: u64 = full.tiers.fetched_bytes.iter().sum();
    let budgets = [full_demand, full_demand / 4, full_demand / 16];
    let policies: Vec<(String, QualityPolicy)> = [256.0f32, 64.0, 16.0]
        .iter()
        .map(|&t| {
            (
                format!("sse:{t}"),
                QualityPolicy::ScreenSpaceError { threshold: t },
            )
        })
        .chain(budgets.iter().map(|&b| {
            (
                format!("budget:{b}"),
                QualityPolicy::ByteBudget { bytes: b },
            )
        }))
        .collect();
    for (label, quality) in &policies {
        let out = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                quality: *quality,
                ..base
            },
        )
        .render(&cam);
        let dram = fine_dram(&out);
        let psnr = psnr_vs(&full, &out);
        policy_table.row(&[
            label.clone(),
            format!("{psnr:.2}"),
            dram.to_string(),
            format!("{:?}", out.tiers.voxels),
        ]);
        policy_rows.push(format!(
            "{{\"policy\":\"{label}\",\"psnr_db\":{psnr:.3},\"fine_dram_bytes\":{dram},\"tier_voxels\":[{}]}}",
            out.tiers
                .voxels
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    println!("{policy_table}");

    // --- importance-steered tiers vs id-order pruning -------------------
    let importance = gs_baselines::view_importance(&scene.trained, &scene.eval_cameras);
    let sweep_tier = (n_tiers as u8).min(2);
    let forced = StreamingConfig {
        quality: QualityPolicy::ForcedTier { tier: sweep_tier },
        ..base
    };
    let default_psnr = psnr_vs(
        &full,
        &StreamingScene::new(scene.trained.clone(), forced).render(&cam),
    );
    let steered_psnr = psnr_vs(
        &full,
        &StreamingScene::new_with_importance(scene.trained.clone(), forced, &importance)
            .render(&cam),
    );
    println!(
        "importance-steered tier {sweep_tier}: {steered_psnr:.2} dB vs id-order {default_psnr:.2} dB\n"
    );

    println!(
        "LOD_JSON {{\"bench\":\"lod\",\"cores\":{},\"n_extra_tiers\":{n_tiers},\"scenes\":[{}],\"tiers\":[{}],\"policies\":[{}],\"importance_psnr_db\":{steered_psnr:.3},\"id_order_psnr_db\":{default_psnr:.3},\"exact_ok\":{all_exact},\"monotone_ok\":{monotone_ok}}}",
        gs_bench::setup::cores(),
        exact_rows.join(","),
        tier_rows.join(","),
        policy_rows.join(","),
    );
}
