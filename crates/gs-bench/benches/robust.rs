//! Robustness bench: what fault tolerance costs when nothing faults, and
//! what recovery delivers when something does (PR 6).
//!
//! Three gated numbers, one `ROBUST_JSON {...}` line for CI
//! (`BENCH_robust.json`):
//!
//! * **overhead_ok** — steady-state ms/frame on a demand-paged store with
//!   v2 per-chunk CRC verification vs the same store as an unverified v1
//!   image. Checksums are verified once per page materialization, so warm
//!   frames isolate the residual cost of the fault-tolerant fetch path
//!   (Result plumbing, fault snapshots); the gate is ≤ 5 % overhead.
//!   Cold open+first-frame times are reported as context, not gated.
//! * **recovery_ok** — a 2 % seeded transient-fault policy on a paged+VQ
//!   trajectory must render bit-identically to the fault-free frames
//!   while the [`DegradationReport`] counts every injected fault as a
//!   retry.
//! * **survive_ok** — a permanent-fault policy must complete the same
//!   trajectory without panicking, losing pages and degrading voxels
//!   (counted, nonzero) instead of failing the frame.

// Benches may unwrap: a panic is exactly the right failure mode here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gs_bench::fmt::{banner, Table};
use gs_bench::setup::build_scene;
use gs_scene::SceneKind;
use gs_voxel::{FaultPolicy, PageConfig, StreamingConfig, StreamingScene};
use gs_vq::VqConfig;
use std::hint::black_box;
use std::time::Instant;

/// Fault-free verified-vs-unverified steady-state overhead gate.
const OVERHEAD_BAR: f64 = 1.05;

/// Milliseconds per call of `f`, measured over at least `min_calls` calls
/// and 0.2 s.
fn ms_of(min_calls: u32, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (materializes pages, fills scratch)
    let start = Instant::now();
    let mut calls = 0u32;
    while calls < min_calls || start.elapsed().as_secs_f64() < 0.2 {
        f();
        calls += 1;
    }
    start.elapsed().as_secs_f64() * 1e3 / calls as f64
}

fn main() {
    banner("Robustness — checksum overhead, transient recovery, permanent survival");
    let scene = build_scene(SceneKind::Truck);
    let cam = scene.eval_cameras[0];
    let cams = &scene.eval_cameras[..2.min(scene.eval_cameras.len())];
    let cfg = StreamingConfig {
        voxel_size: scene.voxel_size,
        use_vq: true,
        vq: VqConfig::tiny(),
        threads: 1,
        ..Default::default()
    };
    let page_cfg = PageConfig {
        slots_per_page: 64,
        max_read_attempts: 8,
        ..PageConfig::default()
    };
    // Fault sections use small pages so even a tiny scene spans enough
    // page reads for a per-read fault rate to fire.
    let fault_page_cfg = PageConfig {
        slots_per_page: 8,
        ..page_cfg
    };

    // --- Overhead: v2 verified vs v1 unverified, same paged store. -----
    let resident = StreamingScene::new(scene.trained.clone(), cfg);
    let mut verified = resident.clone();
    let mut unverified = resident.clone();
    let open_v2 = Instant::now();
    verified.page_out(page_cfg);
    let cold_v2 = open_v2.elapsed().as_secs_f64() * 1e3 + {
        let t = Instant::now();
        black_box(verified.render(&cam));
        t.elapsed().as_secs_f64() * 1e3
    };
    let open_v1 = Instant::now();
    unverified.page_out_v1(page_cfg);
    let cold_v1 = open_v1.elapsed().as_secs_f64() * 1e3 + {
        let t = Instant::now();
        black_box(unverified.render(&cam));
        t.elapsed().as_secs_f64() * 1e3
    };
    assert!(
        verified
            .store()
            .page_config()
            .is_some_and(|c| c.verify_checksums)
            && unverified
                .store()
                .page_config()
                .is_some_and(|c| !c.verify_checksums),
        "bench must compare a verified v2 store against an unverified v1 store"
    );
    // Interleaved min-of-rounds: warm frames do identical work on both
    // stores (checksums verify at page materialization, not per frame),
    // so the gate must not trip on scheduler noise.
    let (mut warm_v2, mut warm_v1) = (f64::MAX, f64::MAX);
    for _ in 0..5 {
        warm_v2 = warm_v2.min(ms_of(10, || {
            black_box(verified.render(&cam));
        }));
        warm_v1 = warm_v1.min(ms_of(10, || {
            black_box(unverified.render(&cam));
        }));
    }
    let overhead = warm_v2 / warm_v1;
    let overhead_ok = overhead <= OVERHEAD_BAR;

    // --- Recovery: transient faults must be invisible and counted. -----
    let clean_frames: Vec<_> = cams.iter().map(|c| verified.render(c)).collect();
    let mut faulty = resident.clone();
    faulty
        .page_out_with_faults(fault_page_cfg, FaultPolicy::transient(0xB0B5_7ED5, 50))
        .expect("reopen with transient faults");
    let recover_t = Instant::now();
    let faulty_frames: Vec<_> = cams
        .iter()
        .map(|c| faulty.try_render(c).expect("transient faults must recover"))
        .collect();
    let recover_ms = recover_t.elapsed().as_secs_f64() * 1e3 / cams.len() as f64;
    let retries: u64 = faulty_frames
        .iter()
        .map(|f| f.degradation.page_retries)
        .sum();
    let injected: u64 = faulty_frames
        .iter()
        .map(|f| f.degradation.injected.total())
        .sum();
    let recovered_exact = clean_frames
        .iter()
        .zip(&faulty_frames)
        .all(|(a, b)| a.image == b.image && a.ledger == b.ledger && a.workload == b.workload);
    let recovery_ok = recovered_exact && retries > 0 && retries == injected;

    // --- Survival: permanent faults degrade, never panic. --------------
    let mut dying = resident.clone();
    dying
        .page_out_with_faults(
            fault_page_cfg,
            FaultPolicy {
                seed: 0x0DD_5EED5,
                permanent_per_mille: 150,
                ..FaultPolicy::default()
            },
        )
        .expect("reopen with permanent faults");
    let survive_frames: Vec<_> = cams
        .iter()
        .map(|c| dying.try_render(c).expect("degradation must absorb faults"))
        .collect();
    let pages_lost: u64 = survive_frames
        .iter()
        .map(|f| f.degradation.pages_lost)
        .sum();
    let degraded: u64 = survive_frames
        .iter()
        .map(|f| {
            f.degradation.voxels_skipped + f.degradation.fine_degraded + f.degradation.fine_skipped
        })
        .sum();
    let survive_ok = pages_lost > 0 && degraded > 0;

    let mut table = Table::new(&["measurement", "value"]);
    table.row(&[
        "warm v2 verified (ms/frame)".into(),
        format!("{warm_v2:.3}"),
    ]);
    table.row(&[
        "warm v1 unverified (ms/frame)".into(),
        format!("{warm_v1:.3}"),
    ]);
    table.row(&[
        "overhead".into(),
        format!("{overhead:.3}x (bar {OVERHEAD_BAR:.2}x)"),
    ]);
    table.row(&[
        "cold open+frame v2 / v1 (ms)".into(),
        format!("{cold_v2:.2} / {cold_v1:.2}"),
    ]);
    table.row(&[
        "transient recovery (ms/frame)".into(),
        format!("{recover_ms:.3}"),
    ]);
    table.row(&[
        "retries == injected".into(),
        format!("{retries} == {injected}"),
    ]);
    table.row(&["recovered bit-exact".into(), recovered_exact.to_string()]);
    table.row(&[
        "pages lost / degraded voxels".into(),
        format!("{pages_lost} / {degraded}"),
    ]);
    println!("{table}");

    println!(
        "ROBUST_JSON {{\"bench\":\"robust\",\"cores\":{},\"scene\":\"{}\",\"warm_verified_ms\":{:.4},\"warm_unverified_ms\":{:.4},\"overhead\":{:.4},\"overhead_bar\":{OVERHEAD_BAR},\"cold_v2_ms\":{:.3},\"cold_v1_ms\":{:.3},\"recover_ms\":{:.4},\"retries\":{},\"injected\":{},\"pages_lost\":{},\"degraded_voxels\":{},\"overhead_ok\":{},\"recovery_ok\":{},\"survive_ok\":{}}}",
        gs_bench::setup::cores(),
        SceneKind::Truck.name(),
        warm_v2,
        warm_v1,
        overhead,
        cold_v2,
        cold_v1,
        recover_ms,
        retries,
        injected,
        pages_lost,
        degraded,
        overhead_ok,
        recovery_ok,
        survive_ok
    );
}
