//! Paper Fig. 7: the boundary-aware fine-tuning trajectory.
//!
//! Paper reference (train scene, 3000 iterations): the ratio of Gaussians
//! with incorrect depth order falls 2.3 % → 0.4 % while the streaming
//! render's PSNR recovers 21.37 dB → 22.61 dB.
//!
//! The scaled-down default runs 4× the Table II iteration budget; set
//! `GS_BENCH_SCALE=full` for the long run.

// Benches may unwrap: a panic is exactly the right failure mode here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gs_bench::fmt::{banner, Table};
use gs_bench::setup::{bench_scale, build_scene, ground_truth_targets};
use gs_scene::SceneKind;
use gs_tune::{boundary_aware_finetune, TuneConfig};

fn main() {
    banner("Fig. 7 — error-Gaussian ratio and PSNR during boundary-aware fine-tuning");
    println!("paper: error ratio 2.3% -> 0.4%; PSNR 21.37 dB -> 22.61 dB over 3000 iters\n");

    let scale = bench_scale();
    let iters = scale.tune_iters() * 4;
    let scene = build_scene(SceneKind::Train);
    let targets = ground_truth_targets(&scene, &scene.train_cameras);

    let cfg = TuneConfig {
        iters,
        voxel_size: scene.voxel_size,
        refresh_every: (iters / 12).max(5),
        record_every: (iters / 12).max(5),
        ..Default::default()
    };
    let result = boundary_aware_finetune(&scene.trained, &targets, &cfg);

    let mut table = Table::new(&["iteration", "error_gaussian_ratio", "psnr(dB)", "cbp_loss"]);
    for p in &result.history {
        table.row(&[
            p.iter.to_string(),
            format!("{:.2}%", 100.0 * p.error_ratio),
            format!("{:.2}", p.psnr_db),
            format!("{:.4}", p.loss),
        ]);
    }
    println!("{table}");

    let first = result.history.first().expect("history");
    let last = result.history.last().expect("history");
    println!(
        "measured: error ratio {:.2}% -> {:.2}% | PSNR {:.2} -> {:.2} dB over {iters} iters",
        100.0 * first.error_ratio,
        100.0 * last.error_ratio,
        first.psnr_db,
        last.psnr_db
    );
    println!("paper:    error ratio 2.30% -> 0.40% | PSNR 21.37 -> 22.61 dB over 3000 iters");
}
