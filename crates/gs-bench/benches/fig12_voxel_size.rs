//! Paper Fig. 12: sensitivity of energy efficiency and rendering quality to
//! the voxel size (train scene).
//!
//! Paper reference: PSNR climbs from ≈21.5 dB at voxel 0.5 to ≈22.3 dB at
//! voxel 2 and then saturates (fewer cross-boundary Gaussians); energy
//! savings peak near voxel 2 (larger voxels drag irrelevant Gaussians into
//! every group, increasing filtering work and traffic). Every point is
//! re-fine-tuned, as in the paper.

use gs_bench::fmt::{banner, Table};
use gs_bench::setup::{bench_scale, build_scene, ground_truth_targets};
use gs_bench::variants::{evaluate_scene, Variant};
use gs_scene::SceneKind;
use gs_tune::{boundary_aware_finetune, TuneConfig};

fn main() {
    banner("Fig. 12 — voxel-size sensitivity (train scene, re-fine-tuned per size)");
    println!(
        "paper: PSNR 21.5 dB @0.5 rising to ~22.3 dB @2 then flat; energy savings peak near 2\n"
    );

    let scale = bench_scale();
    let iters = scale.tune_iters() / 2;
    let vq = scale.vq_config();
    let mut scene = build_scene(SceneKind::Train);
    let train_targets = ground_truth_targets(&scene, &scene.train_cameras);
    let eval_targets = ground_truth_targets(&scene, &scene.eval_cameras);

    let mut table = Table::new(&[
        "voxel_size",
        "psnr(dB)",
        "error_ratio",
        "energy_savings",
        "speedup",
    ]);
    for voxel in [0.5f32, 1.0, 1.5, 2.0, 2.5, 3.0] {
        // Re-fine-tune for this voxel size (paper: "all variants are
        // retrained according to our training procedure").
        let tuned = boundary_aware_finetune(
            &scene.trained,
            &train_targets,
            &TuneConfig {
                iters,
                voxel_size: voxel,
                refresh_every: (iters / 4).max(5),
                record_every: u32::MAX,
                ..Default::default()
            },
        );

        scene.voxel_size = voxel;
        let eval = evaluate_scene(&scene, &tuned.cloud, &vq, false);

        // Quality of the streaming render against ground truth.
        let streaming = gs_voxel::StreamingScene::new(
            tuned.cloud.clone(),
            gs_voxel::StreamingConfig {
                voxel_size: voxel,
                ..Default::default()
            },
        );
        let mut psnr = 0.0;
        let mut err = 0.0;
        for (cam, gt) in &eval_targets {
            let out = streaming.render(cam);
            psnr += out.image.psnr(gt).min(99.0);
            err += out.violations.gaussian_ratio();
        }
        psnr /= eval_targets.len() as f64;
        err /= eval_targets.len() as f64;

        table.row(&[
            format!("{voxel:.1}"),
            format!("{psnr:.2}"),
            format!("{:.2}%", 100.0 * err),
            format!("{:.1}x", eval.energy_saving(Variant::StreamingGs)),
            format!("{:.1}x", eval.speedup(Variant::StreamingGs)),
        ]);
    }
    println!("{table}");
    println!(
        "paper: PSNR 21.5 -> 22.3 dB (0.5 -> 2.0), flat beyond; energy savings peak near voxel 2"
    );
}
