//! Criterion micro-benches for the compute kernels behind the accelerator
//! model's cycle constants: EWA projection (the FFU's 427-MAC job), the
//! coarse 4-parameter projection (the CFU's 55-MAC job), SH evaluation,
//! DDA traversal (VSU), topological ordering, k-means encoding and tile
//! blending.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gs_core::camera::Camera;
use gs_core::ewa::{covariance3d, project_coarse, project_gaussian};
use gs_core::geom::Ray;
use gs_core::sh;
use gs_core::vec::Vec3;
use gs_scene::{SceneConfig, SceneKind};
use gs_voxel::dda::traverse;
use gs_voxel::order::topological_order;
use gs_voxel::VoxelGrid;

fn bench_projection(c: &mut Criterion) {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cam = scene.eval_cameras[0];
    let gaussians: Vec<_> = scene.trained.iter().take(1000).cloned().collect();
    c.bench_function("ewa_project_1k", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for g in &gaussians {
                if project_gaussian(&cam, g.pos, covariance3d(g.scale, g.rot)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    c.bench_function("coarse_project_1k", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for g in &gaussians {
                if project_coarse(&cam, g.pos, g.max_scale()).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_sh(c: &mut Criterion) {
    let coeffs = [0.1f32; sh::SH_COEFFS];
    let dirs: Vec<Vec3> = (0..256)
        .map(|i| {
            let t = i as f32 * 0.1;
            Vec3::new(t.sin(), t.cos(), (t * 0.7).sin()).normalized()
        })
        .collect();
    c.bench_function("sh_eval_deg3_256", |b| {
        b.iter(|| {
            let mut acc = Vec3::ZERO;
            for d in &dirs {
                acc += sh::eval_color(&coeffs, *d, 3);
            }
            black_box(acc)
        })
    });
}

fn bench_dda(c: &mut Criterion) {
    let scene = SceneKind::Train.build(&SceneConfig::tiny());
    let grid = VoxelGrid::build(&scene.trained, scene.voxel_size);
    let cam: Camera = scene.eval_cameras[0];
    let rays: Vec<Ray> = (0..256)
        .map(|i| cam.pixel_ray((i % 16) as f32 * 4.0 + 0.5, (i / 16) as f32 * 3.0 + 0.5))
        .collect();
    c.bench_function("dda_traverse_256_rays", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for ray in &rays {
                total += traverse(&grid, ray, 256).steps;
            }
            black_box(total)
        })
    });
}

fn bench_toposort(c: &mut Criterion) {
    // 64 rays over a 64-node chain with branching suffixes.
    let lists: Vec<Vec<u32>> = (0..64u32).map(|s| ((s % 8)..64).collect()).collect();
    c.bench_function("toposort_64rays_64nodes", |b| {
        b.iter(|| black_box(topological_order(&lists, |v| v as f32).order.len()))
    });
}

fn bench_vq_encode(c: &mut Criterion) {
    use gs_vq::Codebook;
    let data: Vec<f32> = (0..4096).map(|i| ((i * 37) % 101) as f32 * 0.01).collect();
    let cb = Codebook::train(&data, 4, 64, 5, 1);
    let queries: Vec<[f32; 4]> = (0..256)
        .map(|i| {
            let f = i as f32 * 0.013;
            [f.sin(), f.cos(), (2.0 * f).sin(), (3.0 * f).cos()]
        })
        .collect();
    c.bench_function("vq_encode_256x64", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for q in &queries {
                acc += cb.encode(q).0;
            }
            black_box(acc)
        })
    });
}

fn bench_tile_blend(c: &mut Criterion) {
    use gs_render::{RenderConfig, TileRenderer};
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let renderer = TileRenderer::new(RenderConfig {
        threads: 1,
        ..Default::default()
    });
    let cam = scene.eval_cameras[0];
    c.bench_function("tile_render_frame_tiny", |b| {
        b.iter(|| {
            black_box(
                renderer
                    .render(&scene.trained, &cam)
                    .stats
                    .blended_fragments,
            )
        })
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_projection, bench_sh, bench_dda, bench_toposort, bench_vq_encode, bench_tile_blend
);
criterion_main!(kernels);
