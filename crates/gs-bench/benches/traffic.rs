//! End-to-end DRAM traffic ledger: the measured per-stage byte table of
//! the streaming pipeline (paper Sec. III-C; the headline −92.3 %
//! second-half traffic claim).
//!
//! For every scene kind this renders the store-backed streaming pipeline
//! twice — raw second halves vs VQ index records, coarse filter on in both
//! — and reports each frame's merged [`gs_mem::TrafficLedger`]:
//! voxel-coarse reads, voxel-fine reads and pixel writes, all metered at
//! the `VoxelStore` fetch sites rather than modeled. The accelerator
//! model's frame time is priced from the same measured ledgers
//! (`StreamingGsModel::evaluate_measured`).
//!
//! The run ends with one machine-readable `TRAFFIC_JSON {...}` line:
//! per-scene stage bytes, the second-half reduction (paper bar ≥ 90 %),
//! and `ledger_ok` (ledger stages exactly equal the workload byte
//! counters). CI persists the line as `BENCH_traffic.json` next to
//! `BENCH_hotpath.json`.

use gs_accel::StreamingGsModel;
use gs_bench::fmt::{banner, mb, pct, Table};
use gs_bench::setup::{bench_scale, build_scene};
use gs_mem::{Direction, Stage, TrafficLedger};
use gs_scene::SceneKind;
use gs_voxel::{StreamingConfig, StreamingOutput, StreamingScene};

/// The three streaming stage counters of one frame's ledger.
struct StageBytes {
    coarse: u64,
    fine: u64,
    pixel: u64,
}

impl StageBytes {
    fn of(ledger: &TrafficLedger) -> StageBytes {
        StageBytes {
            coarse: ledger.get(Stage::VoxelCoarse, Direction::Read),
            fine: ledger.get(Stage::VoxelFine, Direction::Read),
            pixel: ledger.get(Stage::PixelOut, Direction::Write),
        }
    }

    fn total(&self) -> u64 {
        self.coarse + self.fine + self.pixel
    }

    fn json(&self) -> String {
        format!(
            "{{\"coarse\":{},\"fine\":{},\"pixel\":{},\"total\":{}}}",
            self.coarse,
            self.fine,
            self.pixel,
            self.total()
        )
    }
}

/// Ledger stages must equal the workload byte counters exactly — the
/// ledger is the source the counters are derived from.
fn ledger_consistent(out: &StreamingOutput) -> bool {
    let t = out.workload.totals();
    let s = StageBytes::of(&out.ledger);
    s.coarse == t.coarse_bytes
        && s.fine == t.fine_bytes
        && s.pixel == t.pixel_bytes
        && out.ledger.total() == out.workload.dram_bytes()
}

fn main() {
    let scale = bench_scale();
    let vq_cfg = scale.vq_config();
    banner("Traffic — measured per-stage DRAM ledger, raw vs VQ second halves");
    println!("paper: VQ cuts second-half (fine) traffic by 92.3%; bar >= 90%\n");

    let model = StreamingGsModel::default();
    let mut table = Table::new(&[
        "scene",
        "coarse(MB)",
        "fine_raw(MB)",
        "fine_vq(MB)",
        "pixel(MB)",
        "2nd-half cut",
        "dram_raw(ms)",
        "dram_vq(ms)",
    ]);

    let mut rows = Vec::new();
    let mut mean_reduction = 0.0f64;
    let mut all_ledger_ok = true;
    for kind in SceneKind::ALL {
        let scene = build_scene(kind);
        let cam = &scene.eval_cameras[0];
        let raw = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                ..Default::default()
            },
        )
        .render(cam);
        let vq = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                use_vq: true,
                vq: vq_cfg,
                ..Default::default()
            },
        )
        .render(cam);

        let raw_b = StageBytes::of(&raw.ledger);
        let vq_b = StageBytes::of(&vq.ledger);
        let reduction = if raw_b.fine > 0 {
            1.0 - vq_b.fine as f64 / raw_b.fine as f64
        } else {
            0.0
        };
        let ledger_ok = ledger_consistent(&raw) && ledger_consistent(&vq);
        all_ledger_ok &= ledger_ok;
        mean_reduction += reduction;

        // Accelerator frame time priced from the measured ledgers.
        let raw_s = model.evaluate_measured(&raw.workload, &raw.ledger).seconds;
        let vq_s = model.evaluate_measured(&vq.workload, &vq.ledger).seconds;

        table.row(&[
            kind.name().to_string(),
            mb(raw_b.coarse),
            mb(raw_b.fine),
            mb(vq_b.fine),
            mb(raw_b.pixel),
            pct(reduction),
            format!("{:.3}", raw_s * 1e3),
            format!("{:.3}", vq_s * 1e3),
        ]);
        rows.push(format!(
            "{{\"scene\":\"{}\",\"raw\":{},\"vq\":{},\"second_half_reduction\":{:.4},\"ledger_ok\":{}}}",
            kind.name(),
            raw_b.json(),
            vq_b.json(),
            reduction,
            ledger_ok
        ));
    }
    mean_reduction /= SceneKind::ALL.len() as f64;
    println!("{table}");
    println!("paper anchor -> second-half traffic reduction 92.3% (bar 90%)");

    let reduction_ok = mean_reduction >= 0.9;
    println!(
        "TRAFFIC_JSON {{\"bench\":\"traffic\",\"cores\":{},\"scenes\":[{}],\"mean_reduction\":{:.4},\"reduction_ok\":{},\"ledger_ok\":{}}}",
        gs_bench::setup::cores(),
        rows.join(","),
        mean_reduction,
        reduction_ok,
        all_ledger_ok
    );
}
