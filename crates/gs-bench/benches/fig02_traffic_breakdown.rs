//! Paper Fig. 2: DRAM traffic proportion across the tile-centric stages.
//!
//! Paper reference: projection ≈41 %, sorting ≈49 %, rendering ≈9 % of the
//! per-frame DRAM traffic; intermediate (inter-stage) data accounts for 85 %
//! of the total.

use gs_accel::scaling::{scale_render_stats, ScaleFactors};
use gs_bench::fmt::{banner, mb, pct, Table};
use gs_bench::setup::build_scene;
use gs_render::{tile_centric_traffic, RenderConfig, TileRenderer, TrafficModel};
use gs_scene::SceneKind;

fn main() {
    banner("Fig. 2 — DRAM traffic proportions of the tile-centric pipeline (native scale)");
    println!("paper: projection 41% | sorting 49% | rendering ~9% | intermediate 85%\n");

    let renderer = TileRenderer::new(RenderConfig::default());
    let model = TrafficModel::default();
    let mut table = Table::new(&[
        "scene",
        "proj_rd(MB)",
        "proj_wr(MB)",
        "sort_rd(MB)",
        "sort_wr(MB)",
        "rend_rd(MB)",
        "rend_wr(MB)",
        "proj%",
        "sort%",
        "rend%",
        "intermediate%",
    ]);

    let mut mean = [0.0f64; 4];
    for kind in SceneKind::ALL {
        let scene = build_scene(kind);
        let cam = &scene.eval_cameras[0];
        let out = renderer.render(&scene.trained, cam);
        let f = ScaleFactors::for_scene(kind, scene.trained.len(), cam.width(), cam.height());
        let stats = scale_render_stats(&out.stats, &f);
        let t = tile_centric_traffic(&stats, &model);
        let (p, s, r) = t.fractions();
        let inter = t.intermediate() as f64 / t.total() as f64;
        mean[0] += p;
        mean[1] += s;
        mean[2] += r;
        mean[3] += inter;
        table.row(&[
            kind.name().to_string(),
            mb(t.projection_read),
            mb(t.projection_write),
            mb(t.sorting_read),
            mb(t.sorting_write),
            mb(t.rendering_read),
            mb(t.rendering_write),
            pct(p),
            pct(s),
            pct(r),
            pct(inter),
        ]);
    }
    let n = SceneKind::ALL.len() as f64;
    table.row(&[
        "MEAN".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        pct(mean[0] / n),
        pct(mean[1] / n),
        pct(mean[2] / n),
        pct(mean[3] / n),
    ]);
    println!("{table}");
    println!(
        "paper anchors -> projection 41.0% | sorting 49.0% | rendering ~9.0% | intermediate 85.0%"
    );
}
