//! Paper Fig. 11: end-to-end speedup and energy savings over the GPU for
//! GSCore / w/o VQ+CGF / w/o CGF / StreamingGS, per upstream algorithm.
//!
//! Paper reference (averaged over the four datasets, 3DGS rows):
//! speedup — GSCore 21.6×, w/o VQ+CGF ≈21×, w/o CGF 22.2×, full 45.7×;
//! energy — full 62.9× vs GPU and 2.3× vs GSCore; the coarse filter and VQ
//! contribute 35.6× and 5.8× of the energy savings respectively.

use gs_baselines::{light_gaussian, mini_splatting, LightGaussianConfig, MiniSplattingConfig};
use gs_bench::fmt::{banner, pct, Table};
use gs_bench::hotpath::load_report;
use gs_bench::setup::{bench_scale, build_scene};
use gs_bench::variants::{evaluate_scene, SceneEvaluation, Variant};
use gs_scene::{GaussianCloud, Scene, SceneKind};

const VARIANTS: [Variant; 4] = [
    Variant::Gscore,
    Variant::WithoutVqCgf,
    Variant::WithoutCgf,
    Variant::StreamingGs,
];

fn algorithm_cloud(scene: &Scene, algo: &str) -> GaussianCloud {
    match algo {
        "3DGS" => scene.trained.clone(),
        "Mini-Splatting" => mini_splatting(
            &scene.trained,
            &scene.train_cameras,
            &MiniSplattingConfig::default(),
        ),
        "LightGaussian" => light_gaussian(
            &scene.trained,
            &scene.train_cameras,
            &LightGaussianConfig::default(),
        ),
        _ => unreachable!(),
    }
}

fn main() {
    banner("Fig. 11 — speedup & energy savings over the Orin NX GPU (dataset average)");
    println!(
        "paper (3DGS): speedup GSCore 21.6x | w/o VQ+CGF ~21x | w/o CGF 22.2x | StreamingGS 45.7x"
    );
    println!("paper (3DGS): energy  StreamingGS 62.9x vs GPU, 2.3x vs GSCore\n");

    let vq = bench_scale().vq_config();
    // The paper averages over the four datasets: Synthetic-NeRF (lego),
    // Synthetic-NSVF (palace), Tanks&Temples (train, truck), Deep Blending
    // (playroom, drjohnson).
    let dataset_groups: [&[SceneKind]; 4] = [
        &[SceneKind::Lego],
        &[SceneKind::Palace],
        &[SceneKind::Train, SceneKind::Truck],
        &[SceneKind::Playroom, SceneKind::Drjohnson],
    ];

    let mut speed = Table::new(&[
        "algorithm",
        "GSCore",
        "w/o VQ+CGF",
        "w/o CGF",
        "StreamingGS",
    ]);
    let mut energy = Table::new(&[
        "algorithm",
        "GSCore",
        "w/o VQ+CGF",
        "w/o CGF",
        "StreamingGS",
    ]);
    let mut aux = Table::new(&[
        "algorithm",
        "filter_kill_rate",
        "vq_fine_reduction",
        "vs_GSCore_speed",
        "vs_GSCore_energy",
    ]);

    // Per-scene modeled StreamingGS speedups from the 3DGS pass, joined
    // below with the CPU-measured hot-path speedups when available.
    let mut modeled_by_scene: Vec<(&'static str, f64)> = Vec::new();

    for algo in ["3DGS", "Mini-Splatting", "LightGaussian"] {
        // Average ratios per dataset group, then across groups.
        let mut speedups = [0.0f64; 4];
        let mut savings = [0.0f64; 4];
        let mut kill = 0.0f64;
        let mut vq_red = 0.0f64;
        for group in dataset_groups {
            let mut gs = [0.0f64; 4];
            let mut ge = [0.0f64; 4];
            for kind in group {
                let scene = build_scene(*kind);
                let cloud = algorithm_cloud(&scene, algo);
                let eval: SceneEvaluation = evaluate_scene(&scene, &cloud, &vq, false);
                if algo == "3DGS" {
                    modeled_by_scene.push((kind.name(), eval.speedup(Variant::StreamingGs)));
                }
                for (i, v) in VARIANTS.iter().enumerate() {
                    gs[i] += eval.speedup(*v);
                    ge[i] += eval.energy_saving(*v);
                }
                kill += eval.kill_rate;
                vq_red += eval.vq_reduction;
            }
            for i in 0..4 {
                speedups[i] += gs[i] / group.len() as f64 / 4.0;
                savings[i] += ge[i] / group.len() as f64 / 4.0;
            }
        }
        kill /= 6.0;
        vq_red /= 6.0;

        speed.row(&[
            algo.to_string(),
            format!("{:.1}x", speedups[0]),
            format!("{:.1}x", speedups[1]),
            format!("{:.1}x", speedups[2]),
            format!("{:.1}x", speedups[3]),
        ]);
        energy.row(&[
            algo.to_string(),
            format!("{:.1}x", savings[0]),
            format!("{:.1}x", savings[1]),
            format!("{:.1}x", savings[2]),
            format!("{:.1}x", savings[3]),
        ]);
        aux.row(&[
            algo.to_string(),
            pct(kill),
            pct(vq_red),
            format!("{:.2}x", speedups[3] / speedups[0]),
            format!("{:.2}x", savings[3] / savings[0]),
        ]);
    }

    println!("Speedup over GPU:\n{speed}");
    println!("Energy savings over GPU:\n{energy}");
    println!("Auxiliary (paper: kill 76.3%, VQ reduction 92.3%, 2.1x / 2.3x vs GSCore):\n{aux}");

    // CPU-measured hot-path speedups (BENCH_hotpath.json, persisted by CI)
    // side by side with the modeled-hardware StreamingGS speedups: the
    // left column is what the host CPU actually gained from the software
    // hot-path work, the right what the modeled accelerator adds on top.
    if let Some(r) = load_report() {
        let mut t = Table::new(&[
            "scene",
            "cpu_measured_speedup",
            "modeled_StreamingGS_speedup",
        ]);
        for s in &r.scenes {
            let modeled = modeled_by_scene
                .iter()
                .find(|(name, _)| *name == s.scene)
                .map(|(_, v)| format!("{v:.1}x"))
                .unwrap_or_else(|| "-".to_string());
            t.row(&[s.scene.clone(), format!("{:.2}x", s.speedup), modeled]);
        }
        println!("CPU-measured (hotpath bench) vs modeled hardware (3DGS rows):\n{t}");
        if let Some(st) = &r.stages {
            println!(
                "front-end ({}): serial {:.3} ms vs parallel {:.3} ms -> {:.2}x @ {} workers",
                st.scene,
                st.project_ms + st.bin_ms,
                st.project_mt_ms + st.bin_mt_ms,
                st.front_end_speedup,
                r.mt_threads,
            );
        }
    } else {
        println!("(no BENCH_hotpath.json — measured-vs-modeled table skipped)");
    }
}
