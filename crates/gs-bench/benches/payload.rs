//! Payload kernel benchmark: the overhauled DDA marcher and lane-wise EWA
//! blender vs their kept bit-exact reference twins.
//!
//! PR 5 proved the group-loop *mechanism* (CSR maps, bitset masks) is no
//! longer where frames go; the payload is: DDA marching is ≈half the frame
//! and EWA blending most of the rest. This PR overhauls exactly those two
//! kernels — incremental linear cell index + branch-lighter axis select in
//! [`gs_voxel::dda`], and live-word iteration + row-hoisted conic +
//! exp-cull in `GroupBlender::blend` — while keeping the previous code as
//! reference twins ([`gs_voxel::dda::reference`],
//! `GroupBlender::blend_reference`). Two measurements:
//!
//! * **kernel microbench** (the gated number) — both twins run over the
//!   *same captured inputs* of a real frame: every pixel ray marched
//!   through the scene grid (DDA), and every group's depth-sorted
//!   [`FineSplat`] list replayed through a [`GroupBlender`] (blend).
//!   Before timing, the replay asserts the production kernels produce
//!   identical voxel lists / step counts and an identical full blender
//!   state (`GroupBlender: PartialEq`). The gate is the **combined**
//!   DDA+blend time ratio on Truck: ≥ 1.3×.
//! * **whole-frame exactness** — the production `render` vs
//!   `render_payload_twin` (same store fetch path, reference kernels) must
//!   agree byte-for-byte on image, workload, violations, ledger and cache
//!   stats: raw and VQ, resident and demand-paged, single- and
//!   multi-threaded, on all six scene kinds.
//!
//! Ends with one machine-readable `PAYLOAD_JSON {...}` line; CI persists
//! it as `BENCH_payload.json` and gates on `speedup_ok` and `exact_ok`.

use gs_bench::fmt::{banner, Table};
use gs_bench::setup::{bench_scale, build_scene, BenchScale};
use gs_core::geom::Ray;
use gs_scene::SceneKind;
use gs_voxel::dda;
use gs_voxel::filter::{coarse_test, fine_test, FineSplat, TileRect};
use gs_voxel::grid::VoxelGrid;
use gs_voxel::streaming::GroupBlender;
use gs_voxel::{PageConfig, StreamingConfig, StreamingOutput, StreamingScene};
use gs_vq::VqConfig;
use std::hint::black_box;
use std::time::Instant;

/// Combined (DDA + blend) Truck kernel speedup gate vs the twins.
const SPEEDUP_BAR: f64 = 1.3;
/// The paper's pixel-group edge (matches the streaming bench).
const GROUP: u32 = 64;

/// Milliseconds per call of `f`, measured over at least `min_calls` calls
/// and 0.2 s.
fn ms_of(min_calls: u32, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    let mut calls = 0u32;
    while calls < min_calls || start.elapsed().as_secs_f64() < 0.2 {
        f();
        calls += 1;
    }
    start.elapsed().as_secs_f64() * 1e3 / calls as f64
}

fn identical(a: &StreamingOutput, b: &StreamingOutput) -> bool {
    a.image == b.image
        && a.workload == b.workload
        && a.violations == b.violations
        && a.ledger == b.ledger
        && a.cache == b.cache
}

/// Every pixel ray of one frame (the DDA microbench input).
fn frame_rays(cam: &gs_core::camera::Camera) -> Vec<Ray> {
    let mut rays = Vec::with_capacity((cam.width() * cam.height()) as usize);
    for py in 0..cam.height() {
        for px in 0..cam.width() {
            rays.push(cam.pixel_ray(px as f32 + 0.5, py as f32 + 0.5));
        }
    }
    rays
}

/// Sum of steps over all rays through one DDA entry point (`f` is either
/// the production or the reference `traverse_append`).
fn dda_pass(
    f: fn(&VoxelGrid, &Ray, u32, &mut Vec<u32>) -> u32,
    grid: &VoxelGrid,
    rays: &[Ray],
    max_steps: u32,
    buf: &mut Vec<u32>,
) -> u64 {
    let mut steps = 0u64;
    for ray in rays {
        buf.clear();
        steps += f(grid, ray, max_steps, buf) as u64;
    }
    steps
}

/// One group's captured blend inputs: the group rect and its depth-sorted
/// fine splats (the per-splat stream `GroupBlender` consumes).
struct BlendStream {
    rect: TileRect,
    splats: Vec<FineSplat>,
}

/// Captures every group's depth-sorted splat stream for one frame. The
/// production loop builds these per voxel with an in-voxel sort; for a
/// kernel microbench a flat per-group depth sort feeds the identical
/// arithmetic and both twins the identical stream.
fn capture_blend(
    cloud: &gs_scene::GaussianCloud,
    cam: &gs_core::camera::Camera,
    sh_degree: u8,
) -> Vec<BlendStream> {
    let (width, height) = (cam.width(), cam.height());
    let mut streams = Vec::new();
    for gy in 0..height.div_ceil(GROUP) {
        for gx in 0..width.div_ceil(GROUP) {
            let rect = TileRect::of_tile(gx, gy, GROUP, width, height);
            let mut splats: Vec<FineSplat> = cloud
                .as_slice()
                .iter()
                .filter(|g| coarse_test(cam, g.pos, g.max_scale(), &rect).is_some())
                .filter_map(|g| fine_test(cam, g, &rect, sh_degree))
                .collect();
            splats.sort_unstable_by(|a, b| a.depth.total_cmp(&b.depth));
            streams.push(BlendStream { rect, splats });
        }
    }
    streams
}

/// Replays all captured streams through one blend kernel, mirroring the
/// production loop's `live == 0` early exit. Returns total fragments.
fn blend_pass(
    blender: &mut GroupBlender,
    streams: &[BlendStream],
    mask: &[u64],
    voxel_size: f32,
    production: bool,
) -> u64 {
    let mut blended = 0u64;
    for st in streams {
        blender.reset(st.rect, GROUP, voxel_size);
        for s in &st.splats {
            let frag = if production {
                blender.blend(s, mask)
            } else {
                blender.blend_reference(s, mask)
            };
            blended += frag.blended;
            if blender.live() == 0 {
                break;
            }
        }
    }
    blended
}

fn main() {
    let scale = bench_scale();
    banner("Payload — incremental DDA + lane-wise blend vs reference twins");
    println!(
        "dda = all pixel rays marched through the scene grid; blend = per-group depth-sorted splat replay ({GROUP}px groups);\nexact = whole-frame render vs payload twin (raw/VQ, resident/paged, 1 and all threads); bar: Truck combined >= {SPEEDUP_BAR:.1}x\n"
    );

    let mut table = Table::new(&[
        "scene",
        "dda ref(ms)",
        "dda new(ms)",
        "blend ref(ms)",
        "blend new(ms)",
        "combined",
        "exact",
    ]);
    let mut rows = Vec::new();
    let mut truck_speedup = 0.0f64;
    let mut all_exact = true;
    for kind in SceneKind::ALL {
        let scene = build_scene(kind);
        let cam = scene.eval_cameras[0];
        let cfg = StreamingConfig {
            voxel_size: scene.voxel_size,
            group_size: GROUP,
            threads: 1,
            ..Default::default()
        };
        let st = StreamingScene::new(scene.trained.clone(), cfg);

        // --- DDA microbench on the frame's rays -------------------------
        let grid = st.grid();
        let (dx, dy, dz) = grid.dims();
        let max_steps = 3 * (dx + dy + dz) + 6;
        let rays = frame_rays(&cam);
        // Production marcher must reproduce the twin exactly: same voxel
        // list, same step count, on every ray of the frame.
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        for ray in &rays {
            va.clear();
            vb.clear();
            let sa = dda::traverse_append(grid, ray, max_steps, &mut va);
            let sb = dda::reference::traverse_append(grid, ray, max_steps, &mut vb);
            assert_eq!(sa, sb, "step counts diverge");
            assert_eq!(va, vb, "voxel lists diverge");
        }
        let mut buf = Vec::new();
        let dda_ref_ms = ms_of(10, || {
            black_box(dda_pass(
                dda::reference::traverse_append,
                grid,
                &rays,
                max_steps,
                &mut buf,
            ));
        });
        let dda_new_ms = ms_of(10, || {
            black_box(dda_pass(
                dda::traverse_append,
                grid,
                &rays,
                max_steps,
                &mut buf,
            ));
        });

        // --- Blend microbench on the frame's splat streams --------------
        let streams = capture_blend(&scene.trained, &cam, cfg.sh_degree);
        let mask = vec![!0u64; ((GROUP * GROUP) as usize).div_ceil(64)];
        // Replayed state equality: after every group both kernels must
        // hold the identical full pixel state (PartialEq on the blender).
        {
            let (mut pa, mut pb) = (GroupBlender::default(), GroupBlender::default());
            for stream in &streams {
                let a = blend_pass(
                    &mut pa,
                    std::slice::from_ref(stream),
                    &mask,
                    scene.voxel_size,
                    true,
                );
                let b = blend_pass(
                    &mut pb,
                    std::slice::from_ref(stream),
                    &mask,
                    scene.voxel_size,
                    false,
                );
                assert_eq!(a, b, "fragment counts diverge");
                assert_eq!(pa, pb, "blender states diverge");
            }
        }
        let mut blender = GroupBlender::default();
        let blend_ref_ms = ms_of(10, || {
            black_box(blend_pass(
                &mut blender,
                &streams,
                &mask,
                scene.voxel_size,
                false,
            ));
        });
        let blend_new_ms = ms_of(10, || {
            black_box(blend_pass(
                &mut blender,
                &streams,
                &mask,
                scene.voxel_size,
                true,
            ));
        });
        let dda_speedup = dda_ref_ms / dda_new_ms;
        let blend_speedup = blend_ref_ms / blend_new_ms;
        let combined = (dda_ref_ms + blend_ref_ms) / (dda_new_ms + blend_new_ms);
        if kind == SceneKind::Truck {
            truck_speedup = combined;
        }

        // --- Whole-frame exactness vs the payload twin ------------------
        let mut exact = identical(&st.render(&cam), &st.render_payload_twin(&cam));
        let mt = StreamingScene::new(scene.trained.clone(), StreamingConfig { threads: 0, ..cfg });
        exact &= identical(&mt.render(&cam), &mt.render_payload_twin(&cam));
        let vq = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                use_vq: true,
                vq: if scale == BenchScale::Tiny {
                    VqConfig::tiny()
                } else {
                    scale.vq_config()
                },
                ..cfg
            },
        );
        exact &= identical(&vq.render(&cam), &vq.render_payload_twin(&cam));
        let mut paged = StreamingScene::new(scene.trained.clone(), cfg);
        paged.page_out(PageConfig::default());
        exact &= identical(&paged.render(&cam), &paged.render_payload_twin(&cam));
        all_exact &= exact;

        table.row(&[
            kind.name().to_string(),
            format!("{dda_ref_ms:.4}"),
            format!("{dda_new_ms:.4}"),
            format!("{blend_ref_ms:.4}"),
            format!("{blend_new_ms:.4}"),
            format!("{combined:.2}x"),
            exact.to_string(),
        ]);
        rows.push(format!(
            "{{\"scene\":\"{}\",\"dda_ref_ms\":{:.5},\"dda_new_ms\":{:.5},\"blend_ref_ms\":{:.5},\"blend_new_ms\":{:.5},\"dda_speedup\":{:.3},\"blend_speedup\":{:.3},\"combined_speedup\":{:.3},\"exact\":{}}}",
            kind.name(),
            dda_ref_ms,
            dda_new_ms,
            blend_ref_ms,
            blend_new_ms,
            dda_speedup,
            blend_speedup,
            combined,
            exact,
        ));
    }
    println!("{table}");
    println!("ref = pre-overhaul kernels kept as bit-exact twins (dda::reference, blend_reference); new = incremental-index DDA + lane-wise exp-culled blend (production).");

    let speedup_ok = truck_speedup >= SPEEDUP_BAR;
    println!(
        "PAYLOAD_JSON {{\"bench\":\"payload\",\"cores\":{},\"group\":{GROUP},\"scenes\":[{}],\"truck_speedup\":{:.3},\"speedup_bar\":{SPEEDUP_BAR},\"speedup_ok\":{},\"exact_ok\":{}}}",
        gs_bench::setup::cores(),
        rows.join(","),
        truck_speedup,
        speedup_ok,
        all_exact
    );
}
