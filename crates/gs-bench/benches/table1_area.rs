//! Paper Table I: accelerator configuration and area (TSMC 32 nm).
//!
//! Paper reference: VSU 0.06, 4×HFU 0.79, 2×sorters 0.04, 64×render 2.53,
//! 355 KB SRAM 1.95 — total 5.37 mm² (GSCore: 5.53 mm²).

use gs_accel::area::{area_table, GSCORE_TOTAL_MM2};
use gs_accel::config::AccelConfig;
use gs_bench::fmt::{banner, Table};

fn main() {
    banner("Table I — configuration and area");

    let cfg = AccelConfig::paper();
    let table = area_table(&cfg);
    let mut out = Table::new(&["unit", "configuration", "area [mm^2]"]);
    for row in &table.rows {
        out.row(&[
            row.unit.clone(),
            row.configuration.clone(),
            format!("{:.2}", row.mm2),
        ]);
    }
    out.row(&[
        "Total".into(),
        String::new(),
        format!("{:.2}", table.total_mm2()),
    ]);
    println!("{out}");

    println!("paper total: 5.37 mm^2 | GSCore (32 nm scaled): {GSCORE_TOTAL_MM2} mm^2");
    println!(
        "SRAM budget: input {} KB (double-buffered) + codebook {} KB + intermediate {} KB = {} KB",
        cfg.input_buffer_bytes / 1024,
        cfg.codebook_bytes / 1024,
        cfg.intermediate_bytes / 1024,
        cfg.sram_bytes() / 1024
    );
}
