//! Streaming group-loop benchmark: the CSR/bitset bookkeeping vs the PR 4
//! hash-map/byte-mask bookkeeping, plus whole-frame context timings.
//!
//! PR 5 reworked `StreamingScene`'s per-group inner loop: the voxel→pixel
//! map became an epoch-remapped counting-sort CSR (no hash map), and the
//! per-voxel ray masks / blend saturation became packed `u64` bitsets (no
//! byte-per-pixel scans, stride dilation by precomputed word spans). The
//! frame's *payload* — DDA marching, filters, the EWA blend arithmetic —
//! is unchanged by design (byte-identical output), so this bench measures
//! two things separately:
//!
//! * **group-loop mechanism** (the gated number) — both bookkeeping
//!   implementations run over the *same captured per-group ray lists* of a
//!   real frame: build the voxel→pixel map, then per ordered voxel build
//!   the dilated ray mask and evaluate the any-live test. The new side is
//!   the production `VoxelPixelCsr`/`MaskScratch`; the old side is the
//!   PR 4 mechanism reconstructed inline as the *recorded baseline*
//!   (`HashMap<u32, Vec<u32>>` with spare-list recycling, `Vec<bool>`
//!   mask with a stride² dilation loop and a byte-per-pixel live scan).
//!   The in-tree legacy whole-frame loop (`render_reference_loop`) soaked
//!   for a release and has been deleted; this inline reconstruction is
//!   what the gate compares against now.
//! * **whole frames** (context, not gated) — the store-path `render` vs
//!   the `render_cloud_twin` exactness reference single-threaded
//!   ms/frame, plus the all-core production loop. At bench scale the
//!   shared payload dominates these, which is exactly why the mechanism
//!   is timed in isolation.
//!
//! The store path's byte-exactness against the cloud twin (image,
//! workload, ledger, cache stats — raw and VQ, cached and uncached) is
//! asserted along the way. Ends with one machine-readable
//! `STREAM_JSON {...}` line; CI persists it as `BENCH_streaming.json` and
//! gates on `speedup_ok` (Truck group-loop mechanism ≥ 1.5×
//! single-threaded) and `exact_ok`.

use gs_bench::fmt::{banner, Table};
use gs_bench::setup::{bench_scale, build_scene, BenchScale};
use gs_mem::cache::CacheConfig;
use gs_scene::SceneKind;
use gs_voxel::dda::traverse_into;
use gs_voxel::filter::TileRect;
use gs_voxel::order::{topological_order_into, OrderScratch};
use gs_voxel::streaming::{MaskScratch, RayChunk, VoxelPixelCsr};
use gs_voxel::{StreamingConfig, StreamingOutput, StreamingScene};
use gs_vq::VqConfig;
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

/// Single-threaded Truck group-loop mechanism speedup gate.
const TRUCK_SPEEDUP_BAR: f64 = 1.5;
/// The paper's pixel-group edge (64×64, the 89 KB intermediate buffer).
const GROUP: u32 = 64;

/// Milliseconds per call of `f`, measured over at least `min_calls` calls
/// and 0.2 s.
fn ms_of(min_calls: u32, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (fills scratch/arenas once)
    let start = Instant::now();
    let mut calls = 0u32;
    while calls < min_calls || start.elapsed().as_secs_f64() < 0.2 {
        f();
        calls += 1;
    }
    start.elapsed().as_secs_f64() * 1e3 / calls as f64
}

fn identical(a: &StreamingOutput, b: &StreamingOutput) -> bool {
    a.image == b.image
        && a.workload == b.workload
        && a.violations == b.violations
        && a.ledger == b.ledger
        && a.cache == b.cache
}

/// One pixel group's captured VSU inputs: the per-ray voxel lists (both
/// representations), the voxel rendering order, and the grid geometry the
/// pixel-index recovery needs.
struct GroupCapture {
    /// Ray lists as the PR 4 loop consumed them.
    lists: Vec<Vec<u32>>,
    /// Group-local pixel index per ray (PR 4 pushed these into the map).
    ray_pixels: Vec<u32>,
    /// The same rays packed as one flat chunk (the CSR loop's input).
    chunk: RayChunk,
    /// The group's voxel streaming order.
    order: Vec<u32>,
    /// Sampled rays per row (recovers pixel indices from ray indices).
    nx: u32,
}

/// Captures every group's ray lists and voxel order for one frame.
fn capture_groups(scene: &StreamingScene, cam: &gs_core::camera::Camera) -> Vec<GroupCapture> {
    let grid = scene.grid();
    let (dx, dy, dz) = grid.dims();
    let max_steps = 3 * (dx + dy + dz) + 6;
    let (width, height) = (cam.width(), cam.height());
    let mut groups = Vec::new();
    let mut order_scratch = OrderScratch::new();
    for gy in 0..height.div_ceil(GROUP) {
        for gx in 0..width.div_ceil(GROUP) {
            let rect = TileRect::of_tile(gx, gy, GROUP, width, height);
            let (px0, py0, px1, py1) = rect.pixel_bounds(width, height);
            let mut cap = GroupCapture {
                lists: Vec::new(),
                ray_pixels: Vec::new(),
                chunk: RayChunk::new(),
                order: Vec::new(),
                nx: px1 - px0,
            };
            let mut voxels = Vec::new();
            for py in py0..py1 {
                for px in px0..px1 {
                    let ray = cam.pixel_ray(px as f32 + 0.5, py as f32 + 0.5);
                    traverse_into(grid, &ray, max_steps, &mut voxels);
                    cap.chunk.push_ray(&voxels);
                    cap.ray_pixels.push((py - py0) * GROUP + (px - px0));
                    cap.lists.push(voxels.clone());
                }
            }
            topological_order_into(
                &cap.lists,
                |v| cam.world_to_camera(grid.voxel_center(v)).z,
                &mut order_scratch,
                &mut cap.order,
            );
            groups.push(cap);
        }
    }
    groups
}

/// The PR 4 group-loop mechanism, reconstructed inline: hash-map
/// voxel→pixel build with spare-list recycling, then per ordered voxel a
/// `Vec<bool>` mask filled by the stride² dilation loop and scanned
/// byte-per-pixel for the any-live test.
struct LegacyMechanism {
    voxel_pixels: HashMap<u32, Vec<u32>>,
    spare_lists: Vec<Vec<u32>>,
    mask: Vec<bool>,
    done: Vec<bool>,
}

impl LegacyMechanism {
    fn new() -> LegacyMechanism {
        LegacyMechanism {
            voxel_pixels: HashMap::new(),
            spare_lists: Vec::new(),
            mask: vec![false; (GROUP * GROUP) as usize],
            done: vec![false; (GROUP * GROUP) as usize],
        }
    }

    fn run(&mut self, cap: &GroupCapture, stride: u32) -> u64 {
        for (_, mut list) in self.voxel_pixels.drain() {
            list.clear();
            self.spare_lists.push(list);
        }
        for (list, &pix) in cap.lists.iter().zip(&cap.ray_pixels) {
            for &v in list {
                self.voxel_pixels
                    .entry(v)
                    .or_insert_with(|| self.spare_lists.pop().unwrap_or_default())
                    .push(pix);
            }
        }
        let mut live_voxels = 0u64;
        for &vid in &cap.order {
            self.mask.fill(false);
            let mut any_live = false;
            if let Some(pixels) = self.voxel_pixels.get(&vid) {
                for &pi in pixels {
                    let (bx, by) = (pi % GROUP, pi / GROUP);
                    for dy in 0..stride {
                        for dx in 0..stride {
                            let (mx, my) = (bx + dx, by + dy);
                            if mx < GROUP && my < GROUP {
                                let mi = (my * GROUP + mx) as usize;
                                self.mask[mi] = true;
                                any_live |= !self.done[mi];
                            }
                        }
                    }
                }
            }
            live_voxels += any_live as u64;
        }
        live_voxels
    }
}

/// The PR 5 mechanism: the production CSR + bitset scratch types.
struct CsrMechanism {
    csr: VoxelPixelCsr,
    mask: MaskScratch,
    done_words: Vec<u64>,
}

impl CsrMechanism {
    fn new(stride: u32) -> CsrMechanism {
        let mut mask = MaskScratch::new();
        mask.prepare(GROUP, stride);
        CsrMechanism {
            csr: VoxelPixelCsr::new(),
            mask,
            done_words: vec![0; ((GROUP * GROUP) as usize).div_ceil(64)],
        }
    }

    fn run(&mut self, cap: &GroupCapture, stride: u32) -> u64 {
        self.csr
            .build(std::slice::from_ref(&cap.chunk), cap.nx, stride, GROUP);
        let mut live_voxels = 0u64;
        for &vid in &cap.order {
            self.mask.begin_voxel();
            for &pi in self.csr.pixels_of(vid) {
                self.mask.cover(pi);
            }
            live_voxels += self.mask.any_live(&self.done_words) as u64;
        }
        live_voxels
    }
}

fn main() {
    let scale = bench_scale();
    let stride = 1u32;
    banner("Streaming — CSR/bitset group loop vs the recorded PR 4 mechanism");
    println!(
        "loop = voxel→pixel map + per-voxel mask/any-live mechanism on captured rays ({GROUP}px groups);\nframe = whole render, single-threaded (payload-dominated, context only); bar: Truck loop >= {TRUCK_SPEEDUP_BAR:.1}x\n"
    );

    let mut table = Table::new(&[
        "scene",
        "loop old(ms)",
        "loop csr(ms)",
        "loop speedup",
        "frame twin(ms)",
        "frame csr(ms)",
        "frame mt(ms)",
        "exact",
    ]);
    let mut rows = Vec::new();
    let mut truck_speedup = 0.0f64;
    let mut all_exact = true;
    for kind in SceneKind::ALL {
        let scene = build_scene(kind);
        let cam = scene.eval_cameras[0];
        let cfg = StreamingConfig {
            voxel_size: scene.voxel_size,
            group_size: GROUP,
            ray_stride: stride,
            threads: 1,
            ..Default::default()
        };
        let st = StreamingScene::new(scene.trained.clone(), cfg);

        // Byte-exactness of the store path against the cloud-twin
        // reference: raw, VQ, and cached (each path advances its own
        // frame-persistent cache over a revisit).
        let mut exact = identical(&st.render(&cam), &st.render_cloud_twin(&cam));
        let vq = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                use_vq: true,
                vq: if scale == BenchScale::Tiny {
                    VqConfig::tiny()
                } else {
                    scale.vq_config()
                },
                ..cfg
            },
        );
        exact &= identical(&vq.render(&cam), &vq.render_cloud_twin(&cam));
        let cached_cfg = StreamingConfig {
            cache: Some(CacheConfig::default()),
            ..cfg
        };
        let ca = StreamingScene::new(scene.trained.clone(), cached_cfg);
        let cb = StreamingScene::new(scene.trained.clone(), cached_cfg);
        for _ in 0..2 {
            exact &= identical(&ca.render(&cam), &cb.render_cloud_twin(&cam));
        }
        all_exact &= exact;

        // Group-loop mechanism on the captured frame (the gated number).
        let caps = capture_groups(&st, &cam);
        let mut old_mech = LegacyMechanism::new();
        let mut new_mech = CsrMechanism::new(stride);
        let old_live: u64 = caps.iter().map(|c| old_mech.run(c, stride)).sum();
        let new_live: u64 = caps.iter().map(|c| new_mech.run(c, stride)).sum();
        assert_eq!(old_live, new_live, "mechanisms disagree on live voxels");
        let loop_old_ms = ms_of(30, || {
            for cap in &caps {
                black_box(old_mech.run(cap, stride));
            }
        });
        let loop_csr_ms = ms_of(30, || {
            for cap in &caps {
                black_box(new_mech.run(cap, stride));
            }
        });
        let speedup = loop_old_ms / loop_csr_ms;
        if kind == SceneKind::Truck {
            truck_speedup = speedup;
        }

        // Whole-frame context: cloud-twin reference, store path, all-core
        // store path.
        let frame_twin_ms = ms_of(10, || {
            black_box(st.render_cloud_twin(&cam));
        });
        let mut out = StreamingOutput::default();
        let frame_csr_ms = ms_of(10, || {
            st.render_into(&cam, &mut out);
            black_box(&out);
        });
        let mt = StreamingScene::new(scene.trained.clone(), StreamingConfig { threads: 0, ..cfg });
        let mut mt_out = StreamingOutput::default();
        let frame_mt_ms = ms_of(10, || {
            mt.render_into(&cam, &mut mt_out);
            black_box(&mt_out);
        });

        table.row(&[
            kind.name().to_string(),
            format!("{loop_old_ms:.4}"),
            format!("{loop_csr_ms:.4}"),
            format!("{speedup:.2}x"),
            format!("{frame_twin_ms:.3}"),
            format!("{frame_csr_ms:.3}"),
            format!("{frame_mt_ms:.3}"),
            exact.to_string(),
        ]);
        rows.push(format!(
            "{{\"scene\":\"{}\",\"loop_legacy_ms\":{:.5},\"loop_csr_ms\":{:.5},\"loop_speedup\":{:.3},\"frame_twin_ms\":{:.4},\"frame_csr_ms\":{:.4},\"frame_mt_ms\":{:.4},\"exact\":{}}}",
            kind.name(),
            loop_old_ms,
            loop_csr_ms,
            speedup,
            frame_twin_ms,
            frame_csr_ms,
            frame_mt_ms,
            exact,
        ));
    }
    println!("{table}");
    println!("loop old = HashMap voxel→pixels + Vec<bool> mask/stride² dilation (PR 4, inline); loop csr = VoxelPixelCsr + MaskScratch bitsets (production).");

    let speedup_ok = truck_speedup >= TRUCK_SPEEDUP_BAR;
    println!(
        "STREAM_JSON {{\"bench\":\"streaming\",\"cores\":{},\"group\":{GROUP},\"scenes\":[{}],\"truck_speedup\":{:.3},\"speedup_bar\":{TRUCK_SPEEDUP_BAR},\"speedup_ok\":{},\"exact_ok\":{}}}",
        gs_bench::setup::cores(),
        rows.join(","),
        truck_speedup,
        speedup_ok,
        all_exact
    );
}
