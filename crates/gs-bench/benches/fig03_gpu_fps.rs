//! Paper Fig. 3: 3DGS FPS on the Jetson Orin NX across the six scenes.
//!
//! Paper reference: 2–9 FPS overall; synthetic scenes average ≈8.5 FPS,
//! real-world scenes ≈4.9 FPS — real-time (90 FPS) is far out of reach.

use gs_accel::scaling::{scale_render_stats, ScaleFactors};
use gs_accel::GpuModel;
use gs_bench::fmt::{banner, Table};
use gs_bench::setup::build_scene;
use gs_render::{RenderConfig, TileRenderer};
use gs_scene::SceneKind;

fn main() {
    banner("Fig. 3 — 3DGS FPS on a mobile SoC (Orin NX model, native workload scale)");
    println!("paper: 2–9 FPS; synthetic ≈8.5 avg, real-world ≈4.9 avg\n");

    let renderer = TileRenderer::new(RenderConfig::default());
    let gpu = GpuModel::default();
    let mut table = Table::new(&["scene", "type", "native_gaussians", "fps"]);
    let mut synth = Vec::new();
    let mut real = Vec::new();

    for kind in SceneKind::ALL {
        let scene = build_scene(kind);
        let cam = &scene.eval_cameras[0];
        let out = renderer.render(&scene.trained, cam);
        let f = ScaleFactors::for_scene(kind, scene.trained.len(), cam.width(), cam.height());
        let stats = scale_render_stats(&out.stats, &f);
        let fps = gpu.evaluate(&stats).fps();
        if kind.is_synthetic() {
            synth.push(fps);
        } else {
            real.push(fps);
        }
        table.row(&[
            kind.name().to_string(),
            if kind.is_synthetic() {
                "synthetic"
            } else {
                "real-world"
            }
            .to_string(),
            kind.native_gaussians().to_string(),
            format!("{fps:.1}"),
        ]);
    }
    println!("{table}");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "measured -> synthetic avg {:.1} FPS | real-world avg {:.1} FPS",
        avg(&synth),
        avg(&real)
    );
    println!("paper    -> synthetic avg 8.5 FPS | real-world avg 4.9 FPS");
}
