//! Paper Fig. 3: 3DGS FPS on the Jetson Orin NX across the six scenes.
//!
//! Paper reference: 2–9 FPS overall; synthetic scenes average ≈8.5 FPS,
//! real-world scenes ≈4.9 FPS — real-time (90 FPS) is far out of reach.

use gs_accel::scaling::{scale_render_stats, ScaleFactors};
use gs_accel::GpuModel;
use gs_bench::fmt::{banner, Table};
use gs_bench::hotpath::load_report;
use gs_bench::setup::build_scene;
use gs_render::{RenderConfig, TileRenderer};
use gs_scene::SceneKind;

fn main() {
    banner("Fig. 3 — 3DGS FPS on a mobile SoC (Orin NX model, native workload scale)");
    println!("paper: 2–9 FPS; synthetic ≈8.5 avg, real-world ≈4.9 avg\n");

    // CPU-measured hot-path numbers (persisted by CI as BENCH_hotpath.json)
    // print next to the modeled ones so algorithmic wins on the host and
    // modeled-hardware wins stay separable.
    let report = load_report();
    let measured_fps = |name: &str| -> String {
        report
            .as_ref()
            .and_then(|r| r.scenes.iter().find(|s| s.scene == name))
            .map(|s| format!("{:.1}", s.optimized_fps))
            .unwrap_or_else(|| "-".to_string())
    };

    let renderer = TileRenderer::new(RenderConfig::default());
    let gpu = GpuModel::default();
    // NB: the measured column is from the hotpath bench's *tiny* stand-in
    // scenes — the model column is at native workload scale. They share a
    // row for convenience, not comparability; the header says so.
    let mut table = Table::new(&[
        "scene",
        "type",
        "native_gaussians",
        "fps(model,native)",
        "cpu_fps(measured,tiny)",
    ]);
    let mut synth = Vec::new();
    let mut real = Vec::new();

    for kind in SceneKind::ALL {
        let scene = build_scene(kind);
        let cam = &scene.eval_cameras[0];
        let out = renderer.render(&scene.trained, cam);
        let f = ScaleFactors::for_scene(kind, scene.trained.len(), cam.width(), cam.height());
        let stats = scale_render_stats(&out.stats, &f);
        let fps = gpu.evaluate(&stats).fps();
        if kind.is_synthetic() {
            synth.push(fps);
        } else {
            real.push(fps);
        }
        table.row(&[
            kind.name().to_string(),
            if kind.is_synthetic() {
                "synthetic"
            } else {
                "real-world"
            }
            .to_string(),
            kind.native_gaussians().to_string(),
            format!("{fps:.1}"),
            measured_fps(kind.name()),
        ]);
    }
    println!("{table}");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "measured -> synthetic avg {:.1} FPS | real-world avg {:.1} FPS",
        avg(&synth),
        avg(&real)
    );
    println!("paper    -> synthetic avg 8.5 FPS | real-world avg 4.9 FPS");

    if let Some(r) = &report {
        println!();
        println!("CPU hot-path (measured, tiny scenes; from BENCH_hotpath.json):");
        let mut t = Table::new(&["scene", "naive_fps", "optimized_fps", "speedup", "mt_fps"]);
        for s in &r.scenes {
            t.row(&[
                s.scene.clone(),
                format!("{:.1}", s.naive_fps),
                format!("{:.1}", s.optimized_fps),
                format!("{:.2}x", s.speedup),
                s.mt_fps.map(|f| format!("{f:.1}")).unwrap_or("-".into()),
            ]);
        }
        println!("{t}");
        if let Some(st) = &r.stages {
            println!(
                "front-end stages ({}): project {:.3} ms -> {:.3} ms | bin {:.3} ms -> {:.3} ms | raster {:.3} ms | front-end speedup {:.2}x @ {} workers",
                st.scene,
                st.project_ms,
                st.project_mt_ms,
                st.bin_ms,
                st.bin_mt_ms,
                st.raster_ms,
                st.front_end_speedup,
                r.mt_threads,
            );
        }
    } else {
        println!("(no BENCH_hotpath.json found — run `cargo bench -p gs-bench --bench hotpath` and save the HOTPATH_JSON line to print measured CPU numbers here)");
    }
}
