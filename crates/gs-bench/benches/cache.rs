//! Working-set cache + paged store: the trajectory-locality experiment.
//!
//! Flies a short camera walkthrough over each scene (raw and VQ second
//! halves) three ways:
//!
//! * **cached, resident store** — the production model: coarse/fine
//!   fetches front a per-stage [`gs_mem::WorkingSetCache`], so
//!   frame-to-frame voxel reuse is served on-chip and DRAM sees only
//!   burst-rounded miss fills;
//! * **cached, demand-paged store** — the same frames over a store
//!   round-tripped through its serialized scene image with a bounded page
//!   budget; must be **byte-identical** (paging is host-memory
//!   management, not modeled traffic);
//! * **uncached** — every fetch priced as its own burst-rounded DRAM
//!   transaction (the "DRAM bytes without cache" baseline).
//!
//! The run ends with one machine-readable `CACHE_JSON {...}` line: per
//! scene/mode the demand bytes, DRAM bytes with/without cache, warm-frame
//! (frame ≥ 2) hit rates per stage and the paged-exactness verdict, plus
//! three gates CI asserts: `hit_ok` (warm coarse hit rate ≥ 50 % on every
//! trajectory), `exact_ok` (paged ≡ resident everywhere) and `priced_ok`
//! (the accelerator model's DRAM bytes equal the ledger's burst-rounded
//! miss traffic exactly). CI persists the line as `BENCH_cache.json` next
//! to `BENCH_hotpath.json` / `BENCH_traffic.json`.

// Benches may unwrap: a panic is exactly the right failure mode here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gs_accel::StreamingGsModel;
use gs_bench::fmt::{banner, mb, pct, Table};
use gs_bench::setup::{bench_scale, build_scene, BenchScale};
use gs_mem::cache::CacheConfig;
use gs_scene::trajectory::{walkthrough, RigSpec};
use gs_scene::SceneKind;
use gs_voxel::{PageConfig, StreamingConfig, StreamingOutput, StreamingScene};
use gs_vq::VqConfig;

/// Warm-frame (≥ 2) coarse hit-rate gate of the trajectory experiment.
const WARM_COARSE_HIT_BAR: f64 = 0.5;

fn cache_config(scale: BenchScale) -> CacheConfig {
    // Size the working set to the scale's scene columns; the point is
    // trajectory reuse, not capacity pressure (gs-voxel's tests cover
    // bounded budgets).
    let capacity_bytes = match scale {
        BenchScale::Tiny => 1 << 20,
        BenchScale::Small => 4 << 20,
        BenchScale::Full => 16 << 20,
    };
    CacheConfig {
        capacity_bytes,
        ..CacheConfig::default()
    }
}

fn outputs_identical(a: &StreamingOutput, b: &StreamingOutput) -> bool {
    a.image == b.image && a.workload == b.workload && a.ledger == b.ledger && a.cache == b.cache
}

struct TrajectoryRun {
    demand: u64,
    dram_cached: u64,
    dram_uncached: u64,
    warm_coarse_hit: f64,
    warm_fine_hit: f64,
    paged_exact: bool,
    priced_exact: bool,
}

fn fly(
    scene_cloud: &gs_scene::GaussianCloud,
    cfg: StreamingConfig,
    cams: &[gs_core::camera::Camera],
) -> TrajectoryRun {
    let model = StreamingGsModel::default();
    let cached = StreamingScene::new(scene_cloud.clone(), cfg);
    let mut paged = cached.clone();
    paged.page_out(PageConfig {
        slots_per_page: 128,
        max_resident_pages: 0,
        ..PageConfig::default()
    });
    let uncached = StreamingScene::new(scene_cloud.clone(), StreamingConfig { cache: None, ..cfg });

    let mut run = TrajectoryRun {
        demand: 0,
        dram_cached: 0,
        dram_uncached: 0,
        warm_coarse_hit: 1.0,
        warm_fine_hit: 1.0,
        paged_exact: true,
        priced_exact: true,
    };
    for (i, cam) in cams.iter().enumerate() {
        let out = cached.render(cam);
        run.paged_exact &= outputs_identical(&out, &paged.render(cam));
        run.demand += out.ledger.total();
        run.dram_cached += out.ledger.dram_total();
        run.dram_uncached += uncached.render(cam).ledger.dram_total();
        // The accelerator must price exactly the burst-rounded miss bytes.
        let priced = model.evaluate_measured(&out.workload, &out.ledger);
        run.priced_exact &= priced.dram_bytes == out.ledger.dram_total();
        if i >= 1 {
            let rep = out.cache.expect("cache configured");
            run.warm_coarse_hit = run.warm_coarse_hit.min(rep.coarse.hit_rate());
            run.warm_fine_hit = run.warm_fine_hit.min(rep.fine.hit_rate());
        }
    }
    run
}

fn main() {
    let scale = bench_scale();
    let cache_cfg = cache_config(scale);
    banner("Cache — trajectory working-set reuse over the paged voxel store");
    println!(
        "walkthrough of {} frames; warm-frame coarse hit-rate bar >= {:.0}%\n",
        6,
        WARM_COARSE_HIT_BAR * 100.0
    );

    let rig = RigSpec {
        width: 160,
        height: 120,
        fov_x: 0.9,
    };
    let mut table = Table::new(&[
        "scene",
        "mode",
        "demand(MB)",
        "dram_no$ (MB)",
        "dram_$ (MB)",
        "warm coarse hit",
        "warm fine hit",
        "paged==resident",
    ]);
    let mut rows = Vec::new();
    let mut min_warm_coarse = 1.0f64;
    let mut all_exact = true;
    let mut all_priced = true;
    for kind in [SceneKind::Truck, SceneKind::Playroom] {
        let scene = build_scene(kind);
        let cams = walkthrough(
            gs_core::vec::Vec3::new(-1.5, 0.8, -7.0),
            gs_core::vec::Vec3::new(1.5, 1.1, -5.5),
            gs_core::vec::Vec3::ZERO,
            6,
            &rig,
        );
        for vq in [false, true] {
            let cfg = StreamingConfig {
                voxel_size: scene.voxel_size,
                use_vq: vq,
                vq: if vq {
                    scale.vq_config()
                } else {
                    VqConfig::tiny()
                },
                cache: Some(cache_cfg),
                ..Default::default()
            };
            let run = fly(&scene.trained, cfg, &cams);
            min_warm_coarse = min_warm_coarse.min(run.warm_coarse_hit);
            all_exact &= run.paged_exact;
            all_priced &= run.priced_exact;
            let mode = if vq { "vq" } else { "raw" };
            table.row(&[
                kind.name().to_string(),
                mode.to_string(),
                mb(run.demand),
                mb(run.dram_uncached),
                mb(run.dram_cached),
                pct(run.warm_coarse_hit),
                pct(run.warm_fine_hit),
                run.paged_exact.to_string(),
            ]);
            rows.push(format!(
                "{{\"scene\":\"{}\",\"mode\":\"{}\",\"frames\":{},\"demand_bytes\":{},\"dram_uncached\":{},\"dram_cached\":{},\"warm_coarse_hit\":{:.4},\"warm_fine_hit\":{:.4},\"paged_exact\":{},\"priced_exact\":{}}}",
                kind.name(),
                mode,
                cams.len(),
                run.demand,
                run.dram_uncached,
                run.dram_cached,
                run.warm_coarse_hit,
                run.warm_fine_hit,
                run.paged_exact,
                run.priced_exact,
            ));
        }
    }
    println!("{table}");
    println!("DRAM columns are burst-rounded transaction bytes; with the cache, miss fills only.");

    // --- capacity-pressure sweep -----------------------------------------
    // Shrinks/grows the working-set budget around the scale's nominal
    // capacity on the Truck VQ trajectory and records where the warm
    // coarse hit rate stops improving (the knee: the smallest capacity
    // within 2 % of the sweep's best). Most meaningful at `full` scale,
    // where the scene columns dwarf the smallest budgets; smaller scales
    // run the same sweep as a smoke test.
    let scene = build_scene(SceneKind::Truck);
    let cams = walkthrough(
        gs_core::vec::Vec3::new(-1.5, 0.8, -7.0),
        gs_core::vec::Vec3::new(1.5, 1.1, -5.5),
        gs_core::vec::Vec3::ZERO,
        6,
        &rig,
    );
    let base_cap = cache_cfg.capacity_bytes;
    let sweep_caps = [
        base_cap / 1024,
        base_cap / 256,
        base_cap / 64,
        base_cap / 16,
        base_cap / 4,
        base_cap,
        base_cap * 4,
    ];
    let mut sweep_table = Table::new(&["capacity", "warm coarse hit", "dram_$ (MB)"]);
    let mut sweep_rows = Vec::new();
    let mut sweep_hits = Vec::new();
    for cap in sweep_caps {
        let cfg = StreamingConfig {
            voxel_size: scene.voxel_size,
            use_vq: true,
            vq: scale.vq_config(),
            cache: Some(CacheConfig {
                capacity_bytes: cap,
                ..cache_cfg
            }),
            ..Default::default()
        };
        let st = StreamingScene::new(scene.trained.clone(), cfg);
        let mut warm_hit = 1.0f64;
        let mut dram = 0u64;
        for (i, cam) in cams.iter().enumerate() {
            let out = st.render(cam);
            dram += out.ledger.dram_total();
            if i >= 1 {
                warm_hit = warm_hit.min(out.cache.expect("cache configured").coarse.hit_rate());
            }
        }
        sweep_table.row(&[mb(cap), pct(warm_hit), mb(dram)]);
        sweep_rows.push(format!(
            "{{\"capacity_bytes\":{cap},\"warm_coarse_hit\":{warm_hit:.4},\"dram_cached\":{dram}}}"
        ));
        sweep_hits.push((cap, warm_hit));
    }
    let best_hit = sweep_hits.iter().map(|(_, h)| *h).fold(0.0f64, f64::max);
    let knee = sweep_hits
        .iter()
        .find(|(_, h)| *h >= best_hit - 0.02)
        .map_or(0, |(c, _)| *c);
    println!("{sweep_table}");
    println!(
        "knee = smallest capacity within 2% of the sweep's best warm coarse hit rate: {}\n",
        mb(knee)
    );

    let hit_ok = min_warm_coarse >= WARM_COARSE_HIT_BAR;
    println!(
        "CACHE_JSON {{\"bench\":\"cache\",\"cores\":{},\"scenes\":[{}],\"capacity_sweep\":[{}],\"knee_capacity_bytes\":{},\"min_warm_coarse_hit\":{:.4},\"hit_ok\":{},\"exact_ok\":{},\"priced_ok\":{}}}",
        gs_bench::setup::cores(),
        rows.join(","),
        sweep_rows.join(","),
        knee,
        min_warm_coarse,
        hit_ok,
        all_exact,
        all_priced
    );
}
