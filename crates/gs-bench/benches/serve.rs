//! Multi-client serving load bench: what the `gs-serve` scheduler
//! delivers over serial one-client-at-a-time rendering (ISSUE 10).
//!
//! Closed-loop load generator: `CLIENTS` sessions share one paged+VQ
//! scene shard, each replaying its own camera trajectory. Every round
//! submits one frame per client and drains the batch; the drain wall
//! time is the round's frame latency sample. Three gated numbers, one
//! `SERVE_JSON {...}` line for CI (`BENCH_serve.json`):
//!
//! * **exact_ok** — every client's scheduled frames are byte-identical
//!   (image, workload, ledger) to replaying the same trajectory on a
//!   fully private scene. The serving determinism contract, end to end.
//! * **throughput_ok** — aggregate scheduled frames/sec ≥ 1.2× the
//!   serial baseline (same shard, same sessions, rendered one client at
//!   a time). Needs real hardware parallelism: CI enforces it only where
//!   ≥ 2 cores exist; the JSON records it everywhere (`cores` tells a
//!   starved host from a regression).
//! * **p99_ok** — tail latency stays bounded: p99 round latency ≤ 3× p50
//!   over the timed rounds.
//!
//! Shared-page amortization is reported alongside: the shard's store
//! faults each page once for all clients, so the sum of private solo
//! page faults divided by the shard's is ~`CLIENTS`× on overlapping
//! trajectories.

// Benches may unwrap: a panic is exactly the right failure mode here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gs_bench::fmt::{banner, Table};
use gs_bench::setup::{bench_scale, build_scene, BenchScale};
use gs_core::camera::Camera;
use gs_mem::cache::CacheConfig;
use gs_scene::SceneKind;
use gs_serve::{FrameScheduler, SceneShard};
use gs_voxel::{PageConfig, StreamingConfig, StreamingOutput, StreamingScene};
use std::time::Instant;

/// Concurrent camera streams (the CI gate's reference point).
const CLIENTS: usize = 4;

/// Aggregate-throughput bar vs the serial baseline (multi-core hosts).
const SPEEDUP_BAR: f64 = 1.2;

/// Tail-latency bar: p99 ≤ 3× p50.
const TAIL_BAR: f64 = 3.0;

/// Per-client trajectory: an offset, strided walk over the eval cameras,
/// so clients stream different sequences over overlapping pages.
fn trajectory(cams: &[Camera], client: usize, frames: usize) -> Vec<Camera> {
    (0..frames)
        .map(|f| cams[(client + 2 * f) % cams.len()])
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 * p).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

fn main() {
    banner("Serving — multi-client scheduler throughput, tail latency, exactness");
    let scale = bench_scale();
    let (frames_per_client, timed_replays) = match scale {
        BenchScale::Tiny => (6, 3),
        BenchScale::Small => (10, 5),
        BenchScale::Full => (16, 8),
    };
    let scene = build_scene(SceneKind::Truck);
    let cfg = StreamingConfig {
        voxel_size: scene.voxel_size,
        use_vq: true,
        vq: scale.vq_config(),
        cache: Some(CacheConfig::default()),
        ..Default::default()
    };
    let mut prepared = StreamingScene::new(scene.trained.clone(), cfg);
    prepared.page_out(PageConfig::default());
    let trajs: Vec<Vec<Camera>> = (0..CLIENTS)
        .map(|c| trajectory(&scene.eval_cameras, c, frames_per_client))
        .collect();

    // --- Scheduled: closed-loop rounds on one shared shard. ------------
    let mut shard = SceneShard::new("truck", prepared.clone());
    let mut sessions: Vec<_> = (0..CLIENTS).map(|_| shard.open_session()).collect();
    let mut scheduler = FrameScheduler::new(0);
    // Warmup replay: materializes shard pages, spins up the pool, warms
    // per-session caches and scratch. Excluded from the timings.
    for f in 0..frames_per_client {
        for (c, traj) in trajs.iter().enumerate() {
            scheduler.submit(c, &traj[f]);
        }
        scheduler.drain(&mut sessions).expect("warmup drain");
    }
    let mut round_ms = Vec::with_capacity(timed_replays * frames_per_client);
    let sched_t = Instant::now();
    for _ in 0..timed_replays {
        for f in 0..frames_per_client {
            for (c, traj) in trajs.iter().enumerate() {
                scheduler.submit(c, &traj[f]);
            }
            let t = Instant::now();
            scheduler.drain(&mut sessions).expect("timed drain");
            round_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    let sched_s = sched_t.elapsed().as_secs_f64();
    let timed_frames = (timed_replays * frames_per_client * CLIENTS) as f64;
    let fps = timed_frames / sched_s;
    round_ms.sort_by(f64::total_cmp);
    let p50 = percentile(&round_ms, 0.50);
    let p99 = percentile(&round_ms, 0.99);
    let p99_ok = p99 <= TAIL_BAR * p50;

    // --- Serial baseline: same sessions, one client at a time. ---------
    let mut serial_shard = SceneShard::new("truck-serial", prepared.clone());
    let mut serial_sessions: Vec<_> = (0..CLIENTS).map(|_| serial_shard.open_session()).collect();
    let mut serial_scheduler = FrameScheduler::new(1);
    for f in 0..frames_per_client {
        for (c, traj) in trajs.iter().enumerate() {
            serial_scheduler.submit(c, &traj[f]);
        }
        serial_scheduler
            .drain(&mut serial_sessions)
            .expect("warmup");
    }
    let serial_t = Instant::now();
    for _ in 0..timed_replays {
        for f in 0..frames_per_client {
            // One client at a time: each drain carries a single request.
            for (c, traj) in trajs.iter().enumerate() {
                serial_scheduler.submit(c, &traj[f]);
                serial_scheduler
                    .drain(&mut serial_sessions)
                    .expect("serial");
            }
        }
    }
    let serial_s = serial_t.elapsed().as_secs_f64();
    let serial_fps = timed_frames / serial_s;
    let speedup = fps / serial_fps;
    let throughput_ok = speedup >= SPEEDUP_BAR;

    // --- Exactness + amortization (untimed). ---------------------------
    // A fresh shard replay vs fully private solo replays of the same
    // trajectories: every frame must match byte-for-byte, and the solo
    // clones pay the cold page cost CLIENTS times over.
    let mut exact_shard = SceneShard::new("truck-exact", prepared.clone());
    let mut exact_sessions: Vec<_> = (0..CLIENTS).map(|_| exact_shard.open_session()).collect();
    let mut exact_scheduler = FrameScheduler::new(0);
    let mut scheduled: Vec<Vec<StreamingOutput>> = vec![Vec::new(); CLIENTS];
    for f in 0..frames_per_client {
        for (c, traj) in trajs.iter().enumerate() {
            exact_scheduler.submit(c, &traj[f]);
        }
        exact_scheduler.drain(&mut exact_sessions).expect("exact");
        for (c, s) in exact_sessions.iter().enumerate() {
            scheduled[c].extend(s.frames().iter().cloned());
        }
    }
    let shard_faults = exact_shard.page_faults();
    let mut solo_faults = 0u64;
    let mut exact_ok = true;
    for (c, traj) in trajs.iter().enumerate() {
        let mut private = prepared.clone();
        private.set_threads(1);
        for (f, cam) in traj.iter().enumerate() {
            let solo = private.render(cam);
            let batched = &scheduled[c][f];
            exact_ok &= solo.image == batched.image
                && solo.workload == batched.workload
                && solo.ledger == batched.ledger;
        }
        solo_faults += private.store().page_faults();
    }
    let amortization = solo_faults as f64 / shard_faults.max(1) as f64;

    let mut table = Table::new(&["measurement", "value"]);
    table.row(&[
        "clients x frames".into(),
        format!("{CLIENTS} x {frames_per_client} ({timed_replays} timed replays)"),
    ]);
    table.row(&["scheduled fps (aggregate)".into(), format!("{fps:.1}")]);
    table.row(&["serial fps (aggregate)".into(), format!("{serial_fps:.1}")]);
    table.row(&[
        "speedup".into(),
        format!("{speedup:.2}x (bar {SPEEDUP_BAR:.1}x on multi-core)"),
    ]);
    table.row(&[
        "round latency p50 / p99 (ms)".into(),
        format!("{p50:.2} / {p99:.2}"),
    ]);
    table.row(&[
        "shard / solo page faults".into(),
        format!("{shard_faults} / {solo_faults} ({amortization:.1}x amortized)"),
    ]);
    table.row(&["scheduled == solo".into(), exact_ok.to_string()]);
    println!("{table}");

    println!(
        "SERVE_JSON {{\"bench\":\"serve\",\"cores\":{},\"scene\":\"{}\",\"clients\":{CLIENTS},\"frames_per_client\":{frames_per_client},\"timed_rounds\":{},\"fps\":{:.2},\"serial_fps\":{:.2},\"speedup\":{:.4},\"speedup_bar\":{SPEEDUP_BAR},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"tail_bar\":{TAIL_BAR},\"shard_page_faults\":{},\"solo_page_faults\":{},\"amortization\":{:.3},\"exact_ok\":{},\"throughput_ok\":{},\"p99_ok\":{}}}",
        gs_bench::setup::cores(),
        SceneKind::Truck.name(),
        round_ms.len(),
        fps,
        serial_fps,
        speedup,
        p50,
        p99,
        shard_faults,
        solo_faults,
        amortization,
        exact_ok,
        throughput_ok,
        p99_ok
    );
}
