//! Paper Fig. 13: sensitivity of speedup to the number of CFUs and FFUs.
//!
//! Paper reference (train scene, speedup over the GPU):
//!
//! ```text
//!        CFU=1  CFU=2  CFU=3  CFU=4
//! FFU=1  20.6   31.9   39.7   45.6
//! FFU=2  20.6   32.2   40.2   46.4
//! FFU=3  20.6   32.2   40.3   46.7
//! FFU=4  20.6   32.2   40.3   46.8
//! ```
//!
//! FFUs beyond one barely help; CFUs scale speedup until DRAM binds.

use gs_accel::config::AccelConfig;
use gs_accel::StreamingGsModel;
use gs_bench::fmt::{banner, Table};
use gs_bench::setup::{bench_scale, build_scene};
use gs_bench::variants::evaluate_scene;
use gs_scene::SceneKind;

fn main() {
    banner("Fig. 13 — speedup sensitivity to CFU/FFU counts (train scene)");

    let scene = build_scene(SceneKind::Train);
    let vq = bench_scale().vq_config();
    let eval = evaluate_scene(&scene, &scene.trained, &vq, false);
    let gpu_seconds = eval.gpu.seconds;
    let workload = &eval.sample_workload;

    let mut table = Table::new(&["", "CFU=1", "CFU=2", "CFU=3", "CFU=4"]);
    for ffu in 1..=4u32 {
        let mut cells = vec![format!("FFU={ffu}")];
        for cfu in 1..=4u32 {
            let mut cfg = AccelConfig::paper();
            cfg.cfus_per_hfu = cfu;
            cfg.ffus_per_hfu = ffu;
            let report = StreamingGsModel::new(cfg).evaluate(workload);
            cells.push(format!("{:.1}", gpu_seconds / report.seconds));
        }
        table.row(&cells);
    }
    println!("{table}");
    println!("paper row FFU=1: 20.6  31.9  39.7  45.6   (flat in FFU, saturating in CFU)");

    // Area cost of the sweep (the paper's argument against excessive CFUs).
    let mut area = Table::new(&["", "CFU=1", "CFU=2", "CFU=3", "CFU=4"]);
    let mut cells = vec!["mm^2".to_string()];
    for cfu in 1..=4u32 {
        let mut cfg = AccelConfig::paper();
        cfg.cfus_per_hfu = cfu;
        cells.push(format!(
            "{:.2}",
            gs_accel::area::area_table(&cfg).total_mm2()
        ));
    }
    area.row(&cells);
    println!("\nArea vs CFU count (FFU=1):\n{area}");
}
