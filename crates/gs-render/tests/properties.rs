//! Property-based tests for the tile-centric pipeline.

use gs_core::sym::Sym2;
use gs_core::vec::{Vec2, Vec3};
use gs_render::binning::{bin_and_sort, depth_bits};
use gs_render::projection::{tile_rect_of, Splat};
use proptest::prelude::*;

fn splat_strategy() -> impl Strategy<Value = Splat> {
    (0.1f32..100.0, 0u32..8, 0u32..6, 1u32..3, 1u32..3).prop_map(|(depth, x0, y0, dx, dy)| Splat {
        mean_px: Vec2::new(x0 as f32 * 16.0, y0 as f32 * 16.0),
        conic: Sym2::IDENTITY,
        color: Vec3::ONE,
        opacity: 0.5,
        depth,
        tile_rect: (x0, y0, (x0 + dx - 1).min(7), (y0 + dy - 1).min(5)),
        bbox_px: gs_render::projection::FULL_BBOX,
    })
}

proptest! {
    #[test]
    fn depth_bits_are_strictly_monotone(a in 0.0f32..1e6, b in 0.0f32..1e6) {
        prop_assume!(a != b);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(depth_bits(lo) < depth_bits(hi), "{lo} vs {hi}");
    }

    #[test]
    fn binning_emits_one_key_per_covered_tile(splats in proptest::collection::vec(splat_strategy(), 0..40)) {
        let (keys, ranges) = bin_and_sort(&splats, 8, 6);
        let expect: u64 = splats.iter().map(|s| s.tile_count()).sum();
        prop_assert_eq!(keys.len() as u64, expect);
        // Ranges partition the key array.
        let mut covered = 0u32;
        for (a, b) in &ranges {
            prop_assert!(a <= b);
            covered += b - a;
        }
        prop_assert_eq!(covered as usize, keys.len());
        // Within every tile range, depths are non-decreasing.
        for (a, b) in &ranges {
            for w in keys[*a as usize..*b as usize].windows(2) {
                let d0 = splats[w[0].splat as usize].depth;
                let d1 = splats[w[1].splat as usize].depth;
                prop_assert!(d0 <= d1, "tile list not depth sorted");
            }
        }
    }

    #[test]
    fn tile_rect_always_contains_center_tile(
        cx in 0.0f32..128.0,
        cy in 0.0f32..96.0,
        r in 0.5f32..60.0,
    ) {
        if let Some((x0, y0, x1, y1)) = tile_rect_of(Vec2::new(cx, cy), r, 8, 6) {
            let tx = ((cx / 16.0) as u32).min(7);
            let ty = ((cy / 16.0) as u32).min(5);
            prop_assert!(x0 <= tx && tx <= x1, "centre tile x outside rect");
            prop_assert!(y0 <= ty && ty <= y1, "centre tile y outside rect");
        } else {
            prop_assert!(false, "on-screen disc must map to a rect");
        }
    }
}
