//! Bit-exactness of the optimized hot path against the naive reference.
//!
//! The optimized pipeline (bbox-clipped rasterization + counting-sort
//! binning + frame arena + worker pool) must produce the **identical**
//! image and the **identical** `RenderStats` — every counter, including
//! `skipped_fragments` under the shared counting rule (see
//! `gs_render::reference`) — as the seed pipeline preserved in
//! `gs_render::reference`, on every stand-in scene.

use gs_render::reference::render_reference;
use gs_render::{RenderConfig, TileRenderer};
use gs_scene::{SceneConfig, SceneKind};

#[test]
fn optimized_matches_reference_on_all_scenes() {
    let cfg = RenderConfig {
        threads: 1,
        ..RenderConfig::default()
    };
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        for (label, cloud) in [
            ("trained", &scene.trained),
            ("ground_truth", &scene.ground_truth),
        ] {
            let opt = TileRenderer::new(cfg).render(cloud, cam);
            let naive = render_reference(&cfg, cloud, cam);
            assert_eq!(
                opt.image,
                naive.image,
                "optimized image diverged from reference on {} ({label})",
                kind.name()
            );
            assert_eq!(
                opt.stats,
                naive.stats,
                "optimized counters diverged from reference on {} ({label})",
                kind.name()
            );
        }
    }
}

#[test]
fn optimized_matches_reference_on_every_eval_camera() {
    // Multiple viewpoints of one scene, catching view-dependent edge cases
    // (partial tiles, off-centre splats, frustum-edge Jacobian clamps).
    let cfg = RenderConfig {
        threads: 1,
        ..RenderConfig::default()
    };
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    for cam in &scene.eval_cameras {
        let opt = TileRenderer::new(cfg).render(&scene.trained, cam);
        let naive = render_reference(&cfg, &scene.trained, cam);
        assert_eq!(opt.image, naive.image);
        assert_eq!(opt.stats, naive.stats);
    }
}

#[test]
fn thread_count_never_changes_output() {
    // threads=1 vs several worker-pool widths (including one that does not
    // divide the tile count evenly) on every scene kind.
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let seq = TileRenderer::new(RenderConfig {
            threads: 1,
            ..RenderConfig::default()
        })
        .render(&scene.trained, cam);
        for threads in [2, 3, 8] {
            let par = TileRenderer::new(RenderConfig {
                threads,
                ..RenderConfig::default()
            })
            .render(&scene.trained, cam);
            assert_eq!(
                seq.image,
                par.image,
                "threads={threads} changed the image on {}",
                kind.name()
            );
            assert_eq!(
                seq.stats,
                par.stats,
                "threads={threads} changed the stats on {}",
                kind.name()
            );
        }
    }
}

#[test]
fn repeated_frames_on_one_renderer_are_stable() {
    // The arena/pool must not leak state between frames, including when the
    // camera (and thus tile count) changes between frames.
    let scene = SceneKind::Palace.build(&SceneConfig::tiny());
    let renderer = TileRenderer::new(RenderConfig {
        threads: 4,
        ..RenderConfig::default()
    });
    let mut firsts = Vec::new();
    for cam in &scene.eval_cameras {
        firsts.push(renderer.render(&scene.trained, cam));
    }
    for (cam, first) in scene.eval_cameras.iter().zip(&firsts) {
        let again = renderer.render(&scene.trained, cam);
        assert_eq!(again.image, first.image);
        assert_eq!(again.stats, first.stats);
    }
}
