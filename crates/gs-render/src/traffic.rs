//! DRAM traffic model of the tile-centric pipeline (paper Figs. 2 & 4).
//!
//! The functional renderer counts *what* was done ([`RenderStats`]); this
//! module converts those counts into the bytes a GPU-style execution moves
//! through DRAM per stage. Byte-size constants mirror the reference 3DGS
//! CUDA implementation:
//!
//! * **Projection** reads all 59 f32 parameters per Gaussian and writes back
//!   the processed features (10 f32), one 64-bit key + 32-bit payload per
//!   (Gaussian, tile) pair, and per-Gaussian tile counts.
//! * **Sorting** radix-sorts the pair array; each pass reads and writes
//!   key + payload. 64-bit keys with 8-bit digits ⇒ 8 passes (CUB's
//!   `DeviceRadixSort` on the used bits).
//! * **Rendering** reads each tile's sorted entries (index + feature) until
//!   the tile saturates, then writes the final pixels.

use crate::stats::RenderStats;
use serde::{Deserialize, Serialize};

/// Byte-size and pass-count constants of the traffic model.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// Bytes of raw Gaussian parameters (59 × f32).
    pub param_bytes: u64,
    /// Bytes of the processed per-splat features (mean, conic, RGB, α, depth).
    pub feature_bytes: u64,
    /// Sort key bytes (tile id ≪ 32 | depth bits).
    pub key_bytes: u64,
    /// Sort payload bytes (splat index).
    pub payload_bytes: u64,
    /// Radix sort passes over the pair array.
    pub radix_passes: u64,
    /// Bytes written per output pixel (RGBA f32).
    pub pixel_bytes: u64,
}

impl Default for TrafficModel {
    fn default() -> Self {
        TrafficModel {
            param_bytes: (gs_core::GAUSSIAN_PARAMS as u64) * 4,
            feature_bytes: 40,
            key_bytes: 8,
            payload_bytes: 4,
            radix_passes: 8,
            pixel_bytes: 16,
        }
    }
}

/// Per-stage DRAM read/write bytes for one frame.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTraffic {
    pub projection_read: u64,
    pub projection_write: u64,
    pub sorting_read: u64,
    pub sorting_write: u64,
    pub rendering_read: u64,
    pub rendering_write: u64,
}

impl StageTraffic {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.projection_read
            + self.projection_write
            + self.sorting_read
            + self.sorting_write
            + self.rendering_read
            + self.rendering_write
    }

    /// Projection-stage bytes (read + write).
    pub fn projection(&self) -> u64 {
        self.projection_read + self.projection_write
    }

    /// Sorting-stage bytes.
    pub fn sorting(&self) -> u64 {
        self.sorting_read + self.sorting_write
    }

    /// Rendering-stage bytes.
    pub fn rendering(&self) -> u64 {
        self.rendering_read + self.rendering_write
    }

    /// `(projection, sorting, rendering)` fractions of the total.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.projection() as f64 / t,
            self.sorting() as f64 / t,
            self.rendering() as f64 / t,
        )
    }

    /// Bytes that are *intermediate* (written by one stage, read by another,
    /// never part of input parameters or the final image): everything except
    /// the projection parameter read and the final pixel write. The paper
    /// reports this share as 85 %.
    pub fn intermediate(&self) -> u64 {
        self.total() - self.projection_read - self.rendering_write
    }

    /// Scales every component by `k` (used to extrapolate the scaled-down
    /// stand-in workload to the native scene size).
    pub fn scaled(&self, k: f64) -> StageTraffic {
        let s = |v: u64| (v as f64 * k).round() as u64;
        StageTraffic {
            projection_read: s(self.projection_read),
            projection_write: s(self.projection_write),
            sorting_read: s(self.sorting_read),
            sorting_write: s(self.sorting_write),
            rendering_read: s(self.rendering_read),
            rendering_write: s(self.rendering_write),
        }
    }
}

/// Converts functional counts into tile-centric per-stage traffic.
pub fn tile_centric_traffic(stats: &RenderStats, model: &TrafficModel) -> StageTraffic {
    let pair = model.key_bytes + model.payload_bytes;
    let projection_read = stats.total_gaussians * model.param_bytes;
    let projection_write = stats.visible_gaussians * model.feature_bytes
        + stats.tile_pairs * pair
        + stats.visible_gaussians * 4; // per-gaussian tile-count/offset word

    // Radix sort: every pass streams the full pair array in and out; the
    // final range scan reads the keys once more.
    let sorting_read =
        stats.tile_pairs * pair * model.radix_passes + stats.tile_pairs * model.key_bytes;
    let sorting_write = stats.tile_pairs * pair * model.radix_passes + stats.total_tiles * 8;

    // Rendering fetches (index + feature) per consumed entry and writes the
    // frame once.
    let rendering_read = stats.consumed_entries * (model.payload_bytes + model.feature_bytes);
    let rendering_write = stats.pixels * model.pixel_bytes;

    StageTraffic {
        projection_read,
        projection_write,
        sorting_read,
        sorting_write,
        rendering_read,
        rendering_write,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RenderStats {
        RenderStats {
            total_gaussians: 1_000,
            visible_gaussians: 700,
            tile_pairs: 2_100,
            occupied_tiles: 50,
            total_tiles: 80,
            pixels: 20_480,
            blended_fragments: 100_000,
            skipped_fragments: 5_000,
            early_terminated_pixels: 1_000,
            consumed_entries: 1_500,
            max_tile_list: 120,
        }
    }

    #[test]
    fn projection_read_is_param_traffic() {
        let t = tile_centric_traffic(&stats(), &TrafficModel::default());
        assert_eq!(t.projection_read, 1_000 * 236);
    }

    #[test]
    fn sorting_scales_with_pairs_and_passes() {
        let mut model = TrafficModel::default();
        let t8 = tile_centric_traffic(&stats(), &model);
        model.radix_passes = 4;
        let t4 = tile_centric_traffic(&stats(), &model);
        assert!(t8.sorting() > t4.sorting());
        assert_eq!(t8.projection(), t4.projection());
    }

    #[test]
    fn fractions_sum_to_one() {
        let t = tile_centric_traffic(&stats(), &TrafficModel::default());
        let (p, s, r) = t.fractions();
        assert!((p + s + r - 1.0).abs() < 1e-12);
        assert!(p > 0.0 && s > 0.0 && r > 0.0);
    }

    #[test]
    fn intermediate_excludes_inputs_and_final_image() {
        let t = tile_centric_traffic(&stats(), &TrafficModel::default());
        assert_eq!(
            t.intermediate(),
            t.total() - t.projection_read - t.rendering_write
        );
        // Sorting is entirely intermediate traffic.
        assert!(t.intermediate() >= t.sorting());
    }

    #[test]
    fn scaled_multiplies_all_components() {
        let t = tile_centric_traffic(&stats(), &TrafficModel::default());
        let t2 = t.scaled(2.0);
        assert_eq!(t2.projection_read, 2 * t.projection_read);
        assert_eq!(t2.total(), 2 * t.total());
    }

    #[test]
    fn consumed_entries_drive_rendering_reads() {
        let mut s = stats();
        let t1 = tile_centric_traffic(&s, &TrafficModel::default());
        s.consumed_entries *= 3;
        let t3 = tile_centric_traffic(&s, &TrafficModel::default());
        assert_eq!(t3.rendering_read, 3 * t1.rendering_read);
        assert_eq!(t3.rendering_write, t1.rendering_write);
    }
}
