//! Sorting stage: build (tile, depth) keys and derive per-tile ranges.
//!
//! The GPU pipeline materializes one 64-bit key per (Gaussian, tile) pair —
//! tile id in the high bits, depth bits below — radix-sorts the whole array,
//! then finds each tile's contiguous range. We reproduce the same key
//! construction (so ordering semantics match bit-for-bit) and record the
//! pair count that determines the sorting stage's DRAM traffic.

use crate::projection::Splat;

/// One sort record: key = `tile_id << 32 | depth_bits`, payload = splat index.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TileKey {
    /// Combined sort key.
    pub key: u64,
    /// Index into the splat array.
    pub splat: u32,
}

/// Converts an f32 depth (> 0) into monotonically ordered u32 bits.
///
/// For positive floats the IEEE-754 bit pattern is already monotone, which is
/// exactly the trick the CUDA implementation relies on.
pub fn depth_bits(depth: f32) -> u32 {
    debug_assert!(depth >= 0.0, "depth keys assume positive depths");
    depth.to_bits()
}

/// Emits the sorted key list plus, per tile, the `(start, end)` range into it.
///
/// `tiles_x`/`tiles_y` define the tile grid; splats outside it were already
/// clipped by projection.
pub fn bin_and_sort(
    splats: &[Splat],
    tiles_x: u32,
    tiles_y: u32,
) -> (Vec<TileKey>, Vec<(u32, u32)>) {
    let mut keys = Vec::new();
    for (si, s) in splats.iter().enumerate() {
        let (x0, y0, x1, y1) = s.tile_rect;
        let d = depth_bits(s.depth) as u64;
        for ty in y0..=y1 {
            for tx in x0..=x1 {
                let tile_id = (ty * tiles_x + tx) as u64;
                keys.push(TileKey { key: (tile_id << 32) | d, splat: si as u32 });
            }
        }
    }
    keys.sort_unstable_by_key(|k| k.key);

    let n_tiles = (tiles_x * tiles_y) as usize;
    let mut ranges = vec![(0u32, 0u32); n_tiles];
    let mut i = 0usize;
    while i < keys.len() {
        let tile = (keys[i].key >> 32) as usize;
        let start = i;
        while i < keys.len() && (keys[i].key >> 32) as usize == tile {
            i += 1;
        }
        ranges[tile] = (start as u32, i as u32);
    }
    (keys, ranges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::sym::Sym2;
    use gs_core::vec::{Vec2, Vec3};

    fn splat(depth: f32, rect: (u32, u32, u32, u32)) -> Splat {
        Splat {
            mean_px: Vec2::ZERO,
            conic: Sym2::IDENTITY,
            color: Vec3::ONE,
            opacity: 0.5,
            depth,
            tile_rect: rect,
        }
    }

    #[test]
    fn depth_bits_are_monotone() {
        let depths = [0.01f32, 0.5, 1.0, 1.5, 2.0, 10.0, 1e6];
        for w in depths.windows(2) {
            assert!(depth_bits(w[0]) < depth_bits(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn keys_grouped_by_tile_then_depth() {
        let splats = vec![
            splat(2.0, (0, 0, 0, 0)),
            splat(1.0, (0, 0, 0, 0)),
            splat(3.0, (1, 0, 1, 0)),
        ];
        let (keys, ranges) = bin_and_sort(&splats, 2, 1);
        assert_eq!(keys.len(), 3);
        // Tile 0 holds splats 1 (depth 1) then 0 (depth 2).
        assert_eq!(ranges[0], (0, 2));
        assert_eq!(keys[0].splat, 1);
        assert_eq!(keys[1].splat, 0);
        // Tile 1 holds splat 2.
        assert_eq!(ranges[1], (2, 3));
        assert_eq!(keys[2].splat, 2);
    }

    #[test]
    fn multi_tile_splat_is_duplicated() {
        let splats = vec![splat(1.0, (0, 0, 1, 1))];
        let (keys, ranges) = bin_and_sort(&splats, 2, 2);
        assert_eq!(keys.len(), 4);
        for r in ranges {
            assert_eq!(r.1 - r.0, 1);
        }
    }

    #[test]
    fn empty_tiles_have_empty_ranges() {
        let splats = vec![splat(1.0, (1, 1, 1, 1))];
        let (_, ranges) = bin_and_sort(&splats, 2, 2);
        assert_eq!(ranges[0], (0, 0));
        assert_eq!(ranges[3], (0, 1)); // tile (1,1) = index 3
    }

    #[test]
    fn no_splats_no_keys() {
        let (keys, ranges) = bin_and_sort(&[], 4, 4);
        assert!(keys.is_empty());
        assert_eq!(ranges.len(), 16);
    }
}
