//! Sorting stage: build (tile, depth) keys and derive per-tile ranges.
//!
//! The GPU pipeline materializes one 64-bit key per (Gaussian, tile) pair —
//! tile id in the high bits, depth bits below — radix-sorts the whole array,
//! then finds each tile's contiguous range. We reproduce the same key
//! construction (so ordering semantics match bit-for-bit) and record the
//! pair count that determines the sorting stage's DRAM traffic.
//!
//! # Determinism contract of the parallel merge
//!
//! [`bin_and_sort_parallel`] runs the counting sort's histogram and scatter
//! phases splat-parallel. Its output is **bit-identical** to
//! [`bin_and_sort_into`] for every chunk count because each phase is either
//! deterministic by construction or normalized afterwards:
//!
//! 1. per-chunk histograms count disjoint splat ranges — a pure reduction;
//! 2. the prefix sum merges them serially in **chunk-major order**, so the
//!    cursor every `(chunk, tile)` pair receives depends only on
//!    `(splats, chunks, tiles)`, never on worker scheduling;
//! 3. the parallel scatter writes each pair to the slot its chunk's cursor
//!    assigns — disjoint slots, deterministic content, though the raw slot
//!    layout inside a tile differs from the serial scatter's;
//! 4. the per-tile depth sort orders every run by the **total** key
//!    `(packed key, splat index)` — a splat contributes at most one pair
//!    per tile, so the key is unique within a run and the sort erases the
//!    layout difference from step 3 entirely.
//!
//! After step 4 the key array equals the serial result byte for byte, which
//! is what lets `tests/exactness.rs` hold with the parallel front-end on.

use crate::pool::WorkerPool;
use crate::projection::Splat;

/// One sort record: key = `tile_id << 32 | depth_bits`, payload = splat index.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TileKey {
    /// Combined sort key.
    pub key: u64,
    /// Index into the splat array.
    pub splat: u32,
}

/// Converts an f32 depth (> 0) into monotonically ordered u32 bits.
///
/// For positive floats the IEEE-754 bit pattern is already monotone, which is
/// exactly the trick the CUDA implementation relies on.
pub fn depth_bits(depth: f32) -> u32 {
    debug_assert!(depth >= 0.0, "depth keys assume positive depths");
    depth.to_bits()
}

/// Emits the sorted key list plus, per tile, the `(start, end)` range into it.
///
/// `tiles_x`/`tiles_y` define the tile grid; splats outside it were already
/// clipped by projection.
///
/// The output buffers are allocated with exact capacity (summed
/// `tile_rect` areas); use [`bin_and_sort_into`] to reuse buffers across
/// frames.
pub fn bin_and_sort(
    splats: &[Splat],
    tiles_x: u32,
    tiles_y: u32,
) -> (Vec<TileKey>, Vec<(u32, u32)>) {
    let total: u64 = splats.iter().map(|s| s.tile_count()).sum();
    let mut keys = Vec::with_capacity(total as usize);
    let mut ranges = Vec::with_capacity((tiles_x * tiles_y) as usize);
    bin_and_sort_into(splats, tiles_x, tiles_y, &mut keys, &mut ranges);
    (keys, ranges)
}

/// [`bin_and_sort`] into caller-owned buffers (cleared first) — the frame
/// arena's zero-alloc entry point.
///
/// Replaces the seed's global `sort_unstable_by_key` over all
/// (tile, depth) pairs with a two-pass **counting sort**:
///
/// 1. histogram pairs per tile (tile ids come straight from each splat's
///    `tile_rect`, no key decoding),
/// 2. exclusive prefix-sum into per-tile `(start, cursor)` ranges,
/// 3. scatter each pair to `keys[cursor++]` of its tile — the tile id is
///    tracked directly in this pass rather than re-derived from the packed
///    key,
/// 4. depth-sort each tile's (short) run, tie-breaking on splat index so
///    the order is fully deterministic.
///
/// This is O(pairs + tiles + Σ runᵢ·log runᵢ) instead of
/// O(pairs·log pairs), and the per-tile runs are small and cache-resident.
/// The packed `tile << 32 | depth_bits` key layout is preserved so the
/// ordering semantics (and the GPU sort-stage traffic model reading
/// `keys.len()`) are unchanged.
pub fn bin_and_sort_into(
    splats: &[Splat],
    tiles_x: u32,
    tiles_y: u32,
    keys: &mut Vec<TileKey>,
    ranges: &mut Vec<(u32, u32)>,
) {
    let n_tiles = (tiles_x * tiles_y) as usize;
    ranges.clear();
    ranges.resize(n_tiles, (0u32, 0u32));

    // Pass 1: per-tile pair counts (kept in the range's second slot).
    let mut total: u64 = 0;
    for s in splats {
        let (x0, y0, x1, y1) = s.tile_rect;
        debug_assert!(x1 < tiles_x && y1 < tiles_y, "tile_rect outside grid");
        total += s.tile_count();
        for ty in y0..=y1 {
            let row = ty * tiles_x;
            for tx in x0..=x1 {
                ranges[(row + tx) as usize].1 += 1;
            }
        }
    }
    // The key list is indexed by u32 ranges; a frame overflowing that is a
    // logic error upstream (≈4.3 G pairs), not something to truncate.
    debug_assert!(
        total <= u32::MAX as u64,
        "{total} tile pairs overflow u32 key ranges"
    );

    // Pass 2: exclusive prefix sum. Each range becomes (start, cursor) with
    // cursor advancing to `end` during the scatter.
    let mut acc = 0u32;
    for r in ranges.iter_mut() {
        let count = r.1;
        *r = (acc, acc);
        acc += count;
    }

    // Pass 3: scatter. The tile id is carried by the loop (not re-derived
    // from the packed key), and the cursor in `ranges` assigns slots.
    keys.clear();
    keys.resize(total as usize, TileKey { key: 0, splat: 0 });
    for (si, s) in splats.iter().enumerate() {
        let (x0, y0, x1, y1) = s.tile_rect;
        let d = depth_bits(s.depth) as u64;
        for ty in y0..=y1 {
            let row = ty * tiles_x;
            for tx in x0..=x1 {
                let tile = (row + tx) as usize;
                let slot = ranges[tile].1;
                ranges[tile].1 += 1;
                keys[slot as usize] = TileKey {
                    key: ((tile as u64) << 32) | d,
                    splat: si as u32,
                };
            }
        }
    }

    // Pass 4: depth-sort each tile's run. Within a run the high key bits are
    // constant, so sorting by (key, splat) is (depth, submission order).
    for &(start, end) in ranges.iter() {
        let run = &mut keys[start as usize..end as usize];
        if run.len() > 1 {
            run.sort_unstable_by_key(|k| (k.key, k.splat));
        }
    }
}

/// Reusable scratch for [`bin_and_sort_parallel`]: the per-chunk tile
/// histograms / scatter cursors (`chunks × n_tiles`, chunk-major).
#[derive(Clone, Debug, Default)]
pub struct BinScratch {
    cursors: Vec<u32>,
}

/// Splat-parallel [`bin_and_sort_into`] on a shared worker pool.
///
/// Histogram, scatter and the per-tile sorts run across `chunks` jobs; only
/// the prefix-sum merge is serial. See the module docs for the determinism
/// contract — the output is bit-identical to the serial counting sort for
/// every chunk count. Falls back to the serial path when the work does not
/// warrant more than one chunk.
#[allow(clippy::too_many_arguments)]
pub fn bin_and_sort_parallel(
    splats: &[Splat],
    tiles_x: u32,
    tiles_y: u32,
    keys: &mut Vec<TileKey>,
    ranges: &mut Vec<(u32, u32)>,
    scratch: &mut BinScratch,
    pool: &mut WorkerPool,
    chunks: usize,
) {
    let n_tiles = (tiles_x * tiles_y) as usize;
    let chunks = chunks.clamp(1, splats.len().max(1));
    if chunks <= 1 {
        bin_and_sort_into(splats, tiles_x, tiles_y, keys, ranges);
        return;
    }
    let chunk = splats.len().div_ceil(chunks);
    scratch.cursors.clear();
    scratch.cursors.resize(chunks * n_tiles, 0);

    // Phase 1 (parallel): per-chunk tile histograms.
    let cur_base = scratch.cursors.as_mut_ptr() as usize;
    pool.run(chunks, |c| {
        // SAFETY: histogram stripe `c` is unique per job index; the scratch
        // outlives `pool.run`, which blocks until every job finished.
        let hist = unsafe {
            std::slice::from_raw_parts_mut((cur_base as *mut u32).add(c * n_tiles), n_tiles)
        };
        let lo = (c * chunk).min(splats.len());
        let hi = ((c + 1) * chunk).min(splats.len());
        for s in &splats[lo..hi] {
            let (x0, y0, x1, y1) = s.tile_rect;
            debug_assert!(x1 < tiles_x && y1 < tiles_y, "tile_rect outside grid");
            for ty in y0..=y1 {
                let row = ty * tiles_x;
                for tx in x0..=x1 {
                    hist[(row + tx) as usize] += 1;
                }
            }
        }
    });

    // Phase 2 (serial, deterministic): chunk-major exclusive prefix sum.
    // Tile t's range is [start, end); within it, chunk c's pairs occupy the
    // cursor window the merge assigns here — a function of the inputs only.
    let total: u64 = scratch.cursors.iter().map(|&c| c as u64).sum();
    debug_assert!(
        total <= u32::MAX as u64,
        "{total} tile pairs overflow u32 key ranges"
    );
    ranges.clear();
    ranges.resize(n_tiles, (0u32, 0u32));
    let mut acc = 0u32;
    for (t, range) in ranges.iter_mut().enumerate() {
        let start = acc;
        for c in 0..chunks {
            let slot = c * n_tiles + t;
            let count = scratch.cursors[slot];
            scratch.cursors[slot] = acc;
            acc += count;
        }
        *range = (start, acc);
    }

    // Phase 3 (parallel): scatter into the disjoint cursor windows.
    keys.clear();
    keys.resize(total as usize, TileKey { key: 0, splat: 0 });
    let keys_base = keys.as_mut_ptr() as usize;
    pool.run(chunks, |c| {
        // SAFETY: cursor stripe `c` is unique per job; key writes go
        // through the raw pointer (never overlapping `&mut` slices of the
        // whole buffer) and every (chunk, tile) cursor window the prefix
        // sum carved out is pairwise disjoint, so no slot is written twice.
        // Both buffers outlive `pool.run`, which blocks until all jobs end.
        let cursors = unsafe {
            std::slice::from_raw_parts_mut((cur_base as *mut u32).add(c * n_tiles), n_tiles)
        };
        let keys = keys_base as *mut TileKey;
        let lo = (c * chunk).min(splats.len());
        let hi = ((c + 1) * chunk).min(splats.len());
        for (si, s) in splats[lo..hi].iter().enumerate() {
            let (x0, y0, x1, y1) = s.tile_rect;
            let d = depth_bits(s.depth) as u64;
            for ty in y0..=y1 {
                let row = ty * tiles_x;
                for tx in x0..=x1 {
                    let tile = (row + tx) as usize;
                    let slot = cursors[tile] as usize;
                    cursors[tile] += 1;
                    debug_assert!(slot < total as usize);
                    // SAFETY: `slot` lies in this job's disjoint window.
                    unsafe {
                        *keys.add(slot) = TileKey {
                            key: ((tile as u64) << 32) | d,
                            splat: (lo + si) as u32,
                        };
                    }
                }
            }
        }
    });

    // Phase 4 (parallel): per-tile depth sorts over contiguous tile chunks.
    // Sorting by the total (key, splat) order normalizes the scatter layout,
    // finishing the bit-identity with the serial path.
    let tchunk = n_tiles.div_ceil(chunks);
    let ranges_ro = &ranges[..];
    pool.run(chunks, |c| {
        let tlo = (c * tchunk).min(n_tiles);
        let thi = ((c + 1) * tchunk).min(n_tiles);
        for &(start, end) in &ranges_ro[tlo..thi] {
            // SAFETY: tile runs are disjoint, and the tiles of job `c` are
            // disjoint from every other job's tiles.
            let run = unsafe {
                std::slice::from_raw_parts_mut(
                    (keys_base as *mut TileKey).add(start as usize),
                    (end - start) as usize,
                )
            };
            if run.len() > 1 {
                run.sort_unstable_by_key(|k| (k.key, k.splat));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::sym::Sym2;
    use gs_core::vec::{Vec2, Vec3};

    fn splat(depth: f32, rect: (u32, u32, u32, u32)) -> Splat {
        Splat {
            mean_px: Vec2::ZERO,
            conic: Sym2::IDENTITY,
            color: Vec3::ONE,
            opacity: 0.5,
            depth,
            tile_rect: rect,
            bbox_px: crate::projection::FULL_BBOX,
        }
    }

    #[test]
    fn ties_break_on_submission_order() {
        let splats = vec![
            splat(1.0, (0, 0, 0, 0)),
            splat(1.0, (0, 0, 0, 0)),
            splat(1.0, (0, 0, 0, 0)),
        ];
        let (keys, ranges) = bin_and_sort(&splats, 1, 1);
        assert_eq!(ranges[0], (0, 3));
        let order: Vec<u32> = keys.iter().map(|k| k.splat).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn into_variant_reuses_buffers() {
        let splats = vec![splat(1.0, (0, 0, 1, 1)), splat(2.0, (1, 0, 1, 1))];
        let mut keys = Vec::new();
        let mut ranges = Vec::new();
        bin_and_sort_into(&splats, 2, 2, &mut keys, &mut ranges);
        let (k2, r2) = bin_and_sort(&splats, 2, 2);
        assert_eq!(keys, k2);
        assert_eq!(ranges, r2);
        // Second frame with fewer pairs shrinks lengths, not capacity.
        let cap = keys.capacity();
        bin_and_sort_into(&splats[..1], 2, 2, &mut keys, &mut ranges);
        assert_eq!(keys.len(), 4);
        assert_eq!(keys.capacity(), cap);
    }

    #[test]
    fn depth_bits_are_monotone() {
        let depths = [0.01f32, 0.5, 1.0, 1.5, 2.0, 10.0, 1e6];
        for w in depths.windows(2) {
            assert!(depth_bits(w[0]) < depth_bits(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn keys_grouped_by_tile_then_depth() {
        let splats = vec![
            splat(2.0, (0, 0, 0, 0)),
            splat(1.0, (0, 0, 0, 0)),
            splat(3.0, (1, 0, 1, 0)),
        ];
        let (keys, ranges) = bin_and_sort(&splats, 2, 1);
        assert_eq!(keys.len(), 3);
        // Tile 0 holds splats 1 (depth 1) then 0 (depth 2).
        assert_eq!(ranges[0], (0, 2));
        assert_eq!(keys[0].splat, 1);
        assert_eq!(keys[1].splat, 0);
        // Tile 1 holds splat 2.
        assert_eq!(ranges[1], (2, 3));
        assert_eq!(keys[2].splat, 2);
    }

    #[test]
    fn multi_tile_splat_is_duplicated() {
        let splats = vec![splat(1.0, (0, 0, 1, 1))];
        let (keys, ranges) = bin_and_sort(&splats, 2, 2);
        assert_eq!(keys.len(), 4);
        for r in ranges {
            assert_eq!(r.1 - r.0, 1);
        }
    }

    #[test]
    fn empty_tiles_have_empty_ranges() {
        let splats = vec![splat(1.0, (1, 1, 1, 1))];
        let (_, ranges) = bin_and_sort(&splats, 2, 2);
        assert_eq!(ranges[0], (0, 0));
        assert_eq!(ranges[3], (0, 1)); // tile (1,1) = index 3
    }

    #[test]
    fn no_splats_no_keys() {
        let (keys, ranges) = bin_and_sort(&[], 4, 4);
        assert!(keys.is_empty());
        assert_eq!(ranges.len(), 16);
    }

    /// A pseudo-random splat population covering many tiles with depth ties.
    fn crowd(n: u32, tiles_x: u32, tiles_y: u32) -> Vec<Splat> {
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                let x0 = h % tiles_x;
                let y0 = (h >> 8) % tiles_y;
                let x1 = (x0 + (h >> 16) % 3).min(tiles_x - 1);
                let y1 = (y0 + (h >> 20) % 3).min(tiles_y - 1);
                // Quantized depths produce plenty of exact ties, exercising
                // the (key, splat) tie-break in every path.
                splat(((h >> 4) % 7) as f32 * 0.5 + 0.25, (x0, y0, x1, y1))
            })
            .collect()
    }

    #[test]
    fn parallel_binning_is_bit_identical_to_serial() {
        let splats = crowd(500, 8, 6);
        let (serial_keys, serial_ranges) = bin_and_sort(&splats, 8, 6);
        let mut scratch = BinScratch::default();
        let mut keys = Vec::new();
        let mut ranges = Vec::new();
        for chunks in [1usize, 2, 3, 5, 16, 499, 500, 2000] {
            let mut pool = WorkerPool::new(chunks.min(4));
            bin_and_sort_parallel(
                &splats,
                8,
                6,
                &mut keys,
                &mut ranges,
                &mut scratch,
                &mut pool,
                chunks,
            );
            assert_eq!(keys, serial_keys, "chunks={chunks} changed the keys");
            assert_eq!(ranges, serial_ranges, "chunks={chunks} changed the ranges");
        }
    }

    #[test]
    fn parallel_binning_reuses_buffers() {
        let splats = crowd(300, 4, 4);
        let mut scratch = BinScratch::default();
        let mut keys = Vec::new();
        let mut ranges = Vec::new();
        let mut pool = WorkerPool::new(3);
        bin_and_sort_parallel(
            &splats,
            4,
            4,
            &mut keys,
            &mut ranges,
            &mut scratch,
            &mut pool,
            3,
        );
        let caps = (
            keys.capacity(),
            ranges.capacity(),
            scratch.cursors.capacity(),
        );
        for _ in 0..4 {
            bin_and_sort_parallel(
                &splats,
                4,
                4,
                &mut keys,
                &mut ranges,
                &mut scratch,
                &mut pool,
                3,
            );
        }
        assert_eq!(
            caps,
            (
                keys.capacity(),
                ranges.capacity(),
                scratch.cursors.capacity()
            ),
            "steady-state parallel binning must not grow buffers"
        );
    }
}
