//! Projection stage: EWA-project Gaussians and enumerate intersected tiles.

use crate::TILE_SIZE;
use gs_core::camera::Camera;
use gs_core::ewa::project_gaussian;
use gs_core::sym::Sym2;
use gs_core::vec::{Vec2, Vec3};
use gs_scene::Gaussian;
use serde::{Deserialize, Serialize};

/// A projected Gaussian ready for rasterization — the "processed features"
/// the tile-centric pipeline writes back to DRAM between stages
/// (2-D mean, conic, RGB, opacity, depth = 10 floats).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Splat {
    /// Screen-space mean in pixels.
    pub mean_px: Vec2,
    /// Inverse 2-D covariance.
    pub conic: Sym2,
    /// View-dependent RGB (SH already evaluated).
    pub color: Vec3,
    /// Base opacity.
    pub opacity: f32,
    /// Camera-space depth (sort key).
    pub depth: f32,
    /// Inclusive tile rectangle this splat touches: `(x0, y0, x1, y1)`.
    pub tile_rect: (u32, u32, u32, u32),
}

impl Splat {
    /// Number of tiles the splat touches.
    pub fn tile_count(&self) -> u64 {
        let (x0, y0, x1, y1) = self.tile_rect;
        (x1 - x0 + 1) as u64 * (y1 - y0 + 1) as u64
    }
}

/// Grid dimensions (in tiles) of a `width`×`height` frame.
pub fn tile_grid(width: u32, height: u32) -> (u32, u32) {
    (width.div_ceil(TILE_SIZE), height.div_ceil(TILE_SIZE))
}

/// Computes the inclusive tile rectangle covered by a disc at `center` with
/// radius `r` (pixels), clipped to the grid; `None` when fully off-screen.
pub fn tile_rect_of(
    center: Vec2,
    radius: f32,
    tiles_x: u32,
    tiles_y: u32,
) -> Option<(u32, u32, u32, u32)> {
    let min_x = center.x - radius;
    let max_x = center.x + radius;
    let min_y = center.y - radius;
    let max_y = center.y + radius;
    let limit_x = (tiles_x * TILE_SIZE) as f32;
    let limit_y = (tiles_y * TILE_SIZE) as f32;
    if max_x < 0.0 || max_y < 0.0 || min_x >= limit_x || min_y >= limit_y {
        return None;
    }
    let ts = TILE_SIZE as f32;
    let x0 = (min_x.max(0.0) / ts) as u32;
    let y0 = (min_y.max(0.0) / ts) as u32;
    let x1 = ((max_x / ts) as u32).min(tiles_x - 1);
    let y1 = ((max_y / ts) as u32).min(tiles_y - 1);
    Some((x0, y0, x1, y1))
}

/// Projects every Gaussian of `cloud` through `cam`; returns the surviving
/// splats (with per-splat tile rectangles) in input order, paired with the
/// index of the source Gaussian.
pub fn project_cloud(cloud: &[Gaussian], cam: &Camera, sh_degree: u8) -> Vec<(u32, Splat)> {
    let (tiles_x, tiles_y) = tile_grid(cam.width(), cam.height());
    let cam_center = cam.pose.center();
    let mut out = Vec::with_capacity(cloud.len());
    for (i, g) in cloud.iter().enumerate() {
        let Some(proj) = project_gaussian(cam, g.pos, g.cov3d()) else {
            continue;
        };
        if proj.radius_px <= 0.0 {
            continue;
        }
        let Some(tile_rect) = tile_rect_of(proj.mean_px, proj.radius_px, tiles_x, tiles_y) else {
            continue;
        };
        let dir = (g.pos - cam_center).normalized();
        let color = gs_core::sh::eval_color(&g.sh, dir, sh_degree);
        out.push((
            i as u32,
            Splat {
                mean_px: proj.mean_px,
                conic: proj.conic,
                color,
                opacity: g.opacity,
                depth: proj.depth,
                tile_rect,
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::vec::Vec3;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y, 128, 96, 1.0)
    }

    #[test]
    fn grid_dimensions_round_up() {
        assert_eq!(tile_grid(128, 96), (8, 6));
        assert_eq!(tile_grid(130, 97), (9, 7));
        assert_eq!(tile_grid(16, 16), (1, 1));
    }

    #[test]
    fn tile_rect_clips_to_screen() {
        let r = tile_rect_of(Vec2::new(8.0, 8.0), 500.0, 8, 6).unwrap();
        assert_eq!(r, (0, 0, 7, 5));
    }

    #[test]
    fn tile_rect_offscreen_is_none() {
        assert!(tile_rect_of(Vec2::new(-50.0, 10.0), 10.0, 8, 6).is_none());
        assert!(tile_rect_of(Vec2::new(2000.0, 10.0), 10.0, 8, 6).is_none());
    }

    #[test]
    fn tile_rect_single_tile() {
        let r = tile_rect_of(Vec2::new(24.0, 24.0), 2.0, 8, 6).unwrap();
        assert_eq!(r, (1, 1, 1, 1));
    }

    #[test]
    fn center_gaussian_projects_to_center_tiles() {
        let g = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::ONE, 0.9);
        let splats = project_cloud(std::slice::from_ref(&g), &cam(), 3);
        assert_eq!(splats.len(), 1);
        let (idx, s) = &splats[0];
        assert_eq!(*idx, 0);
        assert!((s.mean_px.x - 64.0).abs() < 1.0);
        assert!((s.mean_px.y - 48.0).abs() < 1.0);
        assert!(s.tile_count() >= 1);
    }

    #[test]
    fn behind_camera_culled() {
        let g = Gaussian::isotropic(Vec3::new(0.0, 0.0, -10.0), 0.1, Vec3::ONE, 0.9);
        assert!(project_cloud(std::slice::from_ref(&g), &cam(), 3).is_empty());
    }

    #[test]
    fn splat_indices_are_source_indices() {
        let gs: Vec<Gaussian> = vec![
            Gaussian::isotropic(Vec3::new(0.0, 0.0, -10.0), 0.1, Vec3::ONE, 0.9), // culled
            Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::ONE, 0.9),
            Gaussian::isotropic(Vec3::new(0.3, 0.0, 0.0), 0.1, Vec3::ONE, 0.9),
        ];
        let splats = project_cloud(&gs, &cam(), 3);
        let idx: Vec<u32> = splats.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, vec![1, 2]);
    }

    #[test]
    fn bigger_gaussian_covers_more_tiles() {
        let small = Gaussian::isotropic(Vec3::ZERO, 0.02, Vec3::ONE, 0.9);
        let large = Gaussian::isotropic(Vec3::ZERO, 0.8, Vec3::ONE, 0.9);
        let s = project_cloud(std::slice::from_ref(&small), &cam(), 3)[0].1.tile_count();
        let l = project_cloud(std::slice::from_ref(&large), &cam(), 3)[0].1.tile_count();
        assert!(l > s);
    }
}
