//! Projection stage: EWA-project Gaussians and enumerate intersected tiles.
//!
//! # Determinism contract of the parallel front-end
//!
//! [`project_splats_parallel`] splits the cloud into contiguous chunks,
//! projects each chunk on a worker of the shared pool into a per-chunk
//! buffer, and concatenates the buffers **serially in chunk order**. Chunk
//! boundaries depend only on `(cloud.len(), chunks)` and per-splat
//! projection is pure, so the concatenation reproduces input order exactly:
//! the output is bit-identical to [`project_splats_into`] for every worker
//! count — which is what keeps `tests/exactness.rs` valid with the
//! parallel front-end enabled.

use crate::pool::WorkerPool;
use crate::{ALPHA_EPS, TILE_SIZE};
use gs_core::camera::Camera;
use gs_core::ewa::project_gaussian;
use gs_core::sym::Sym2;
use gs_core::vec::{Vec2, Vec3};
use gs_scene::Gaussian;
use serde::{Deserialize, Serialize};

/// Safety margin (pixels) added around the analytic support ellipse bbox so
/// f32 rounding in the per-pixel falloff can never resurrect a pixel the
/// bbox excluded. The boundary gradient of the quadratic form is O(1) per
/// pixel while its rounding error is O(1e-6·q), so one pixel is orders of
/// magnitude more than required.
pub const BBOX_PAD_PX: f32 = 1.0;

/// A projected Gaussian ready for rasterization — the "processed features"
/// the tile-centric pipeline writes back to DRAM between stages
/// (2-D mean, conic, RGB, opacity, depth = 10 floats, plus the derived
/// screen-space support rectangle the rasterizer clips its pixel loop to).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Splat {
    /// Screen-space mean in pixels.
    pub mean_px: Vec2,
    /// Inverse 2-D covariance.
    pub conic: Sym2,
    /// View-dependent RGB (SH already evaluated).
    pub color: Vec3,
    /// Base opacity.
    pub opacity: f32,
    /// Camera-space depth (sort key).
    pub depth: f32,
    /// Inclusive tile rectangle this splat touches: `(x0, y0, x1, y1)`.
    pub tile_rect: (u32, u32, u32, u32),
    /// Conservative pixel-space support rectangle
    /// `(x_min, y_min, x_max, y_max)`: every pixel whose centre lies outside
    /// it is guaranteed to evaluate below [`ALPHA_EPS`] for this splat. See
    /// [`support_bbox`]. May be [`EMPTY_BBOX`] when the splat can nowhere
    /// reach the alpha threshold.
    pub bbox_px: (f32, f32, f32, f32),
}

/// The empty support rectangle (`x_min > x_max`): the rasterizer's clipped
/// loop visits no pixels for such a splat.
pub const EMPTY_BBOX: (f32, f32, f32, f32) = (0.0, 0.0, -1.0, -1.0);

/// The unbounded support rectangle: the clipped loop degenerates to the full
/// tile scan. Used by tests that want naive-scan semantics from a
/// hand-built splat.
pub const FULL_BBOX: (f32, f32, f32, f32) = (
    f32::NEG_INFINITY,
    f32::NEG_INFINITY,
    f32::INFINITY,
    f32::INFINITY,
);

impl Splat {
    /// Number of tiles the splat touches.
    pub fn tile_count(&self) -> u64 {
        let (x0, y0, x1, y1) = self.tile_rect;
        (x1 - x0 + 1) as u64 * (y1 - y0 + 1) as u64
    }
}

/// Computes the splat's conservative screen-space support rectangle from the
/// conic's extent (paper-style footprint clipping; cf. "No Redundancy, No
/// Stall"'s bounding-box rasterization).
///
/// A pixel centre `p` contributes only when
/// `opacity · exp(-½ dᵀ C d) ≥ ALPHA_EPS` with `d = p − mean`, i.e. when `d`
/// lies inside the ellipse `dᵀ C d ≤ q_max`, `q_max = 2·ln(opacity/ALPHA_EPS)`.
/// The tight axis-aligned bounding box of that ellipse has half-extents
/// `eₓ = √(q_max·Σₓₓ)`, `e_y = √(q_max·Σ_yy)` where `Σ = C⁻¹` is the 2-D
/// covariance — exactly the quantities EWA projection already produced. A
/// [`BBOX_PAD_PX`] margin absorbs f32 rounding.
///
/// Returns [`EMPTY_BBOX`] when `opacity < ALPHA_EPS` (the splat can nowhere
/// reach the threshold, so its support is empty).
pub fn support_bbox(mean_px: Vec2, cov2d: Sym2, opacity: f32) -> (f32, f32, f32, f32) {
    if opacity < ALPHA_EPS {
        return EMPTY_BBOX;
    }
    let q_max = 2.0 * (opacity / ALPHA_EPS).ln().max(0.0);
    let ex = (q_max * cov2d.a.max(0.0)).sqrt() + BBOX_PAD_PX;
    let ey = (q_max * cov2d.c.max(0.0)).sqrt() + BBOX_PAD_PX;
    (
        mean_px.x - ex,
        mean_px.y - ey,
        mean_px.x + ex,
        mean_px.y + ey,
    )
}

/// Grid dimensions (in tiles) of a `width`×`height` frame.
pub fn tile_grid(width: u32, height: u32) -> (u32, u32) {
    (width.div_ceil(TILE_SIZE), height.div_ceil(TILE_SIZE))
}

/// Computes the inclusive tile rectangle covered by a disc at `center` with
/// radius `r` (pixels), clipped to the grid; `None` when fully off-screen.
pub fn tile_rect_of(
    center: Vec2,
    radius: f32,
    tiles_x: u32,
    tiles_y: u32,
) -> Option<(u32, u32, u32, u32)> {
    let min_x = center.x - radius;
    let max_x = center.x + radius;
    let min_y = center.y - radius;
    let max_y = center.y + radius;
    let limit_x = (tiles_x * TILE_SIZE) as f32;
    let limit_y = (tiles_y * TILE_SIZE) as f32;
    if max_x < 0.0 || max_y < 0.0 || min_x >= limit_x || min_y >= limit_y {
        return None;
    }
    let ts = TILE_SIZE as f32;
    let x0 = (min_x.max(0.0) / ts) as u32;
    let y0 = (min_y.max(0.0) / ts) as u32;
    let x1 = ((max_x / ts) as u32).min(tiles_x - 1);
    let y1 = ((max_y / ts) as u32).min(tiles_y - 1);
    Some((x0, y0, x1, y1))
}

/// Projects every Gaussian of `cloud` through `cam`; returns the surviving
/// splats (with per-splat tile rectangles) in input order, paired with the
/// index of the source Gaussian.
pub fn project_cloud(cloud: &[Gaussian], cam: &Camera, sh_degree: u8) -> Vec<(u32, Splat)> {
    let mut out = Vec::with_capacity(cloud.len());
    project_cloud_into(cloud, cam, sh_degree, &mut out);
    out
}

/// [`project_cloud`] into a caller-owned buffer (cleared first), so the
/// renderer's frame arena can reuse one allocation across frames.
pub fn project_cloud_into(
    cloud: &[Gaussian],
    cam: &Camera,
    sh_degree: u8,
    out: &mut Vec<(u32, Splat)>,
) {
    out.clear();
    project_each(cloud, cam, sh_degree, |i, s| out.push((i, s)));
}

/// Projection for the renderer hot path: keeps only the splats (the source
/// indices are not needed for rasterization), written into a caller-owned
/// buffer that the frame arena reuses across frames.
pub fn project_splats_into(cloud: &[Gaussian], cam: &Camera, sh_degree: u8, out: &mut Vec<Splat>) {
    out.clear();
    project_each(cloud, cam, sh_degree, |_, s| out.push(s));
}

/// Reusable per-chunk output buffers for [`project_splats_parallel`].
///
/// Buffer capacities persist across frames, so a steady-state render loop's
/// parallel projection allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct ProjectScratch {
    /// One splat buffer per worker chunk.
    chunks: Vec<Vec<Splat>>,
}

/// Splat-parallel [`project_splats_into`]: chunk `c` projects
/// `cloud[c·chunk .. (c+1)·chunk]` into its own scratch buffer on the pool,
/// then the buffers are concatenated in chunk order (see the module docs
/// for why this is bit-identical to the serial path). Falls back to the
/// serial path when the work does not warrant more than one chunk.
pub fn project_splats_parallel(
    cloud: &[Gaussian],
    cam: &Camera,
    sh_degree: u8,
    out: &mut Vec<Splat>,
    scratch: &mut ProjectScratch,
    pool: &mut WorkerPool,
    chunks: usize,
) {
    let chunks = chunks.clamp(1, cloud.len().max(1));
    if chunks <= 1 {
        project_splats_into(cloud, cam, sh_degree, out);
        return;
    }
    if scratch.chunks.len() < chunks {
        scratch.chunks.resize_with(chunks, Vec::new);
    }
    let chunk = cloud.len().div_ceil(chunks);
    let bufs_base = scratch.chunks.as_mut_ptr() as usize;
    pool.run(chunks, |c| {
        // SAFETY: buffer slot `c` is unique per job index and the scratch
        // outlives `pool.run`, which blocks until every job finished.
        let buf = unsafe { &mut *(bufs_base as *mut Vec<Splat>).add(c) };
        buf.clear();
        let lo = c * chunk;
        let hi = ((c + 1) * chunk).min(cloud.len());
        if lo < hi {
            project_each(&cloud[lo..hi], cam, sh_degree, |_, s| buf.push(s));
        }
    });
    out.clear();
    for buf in &scratch.chunks[..chunks] {
        out.extend_from_slice(buf);
    }
}

fn project_each(cloud: &[Gaussian], cam: &Camera, sh_degree: u8, mut emit: impl FnMut(u32, Splat)) {
    let (tiles_x, tiles_y) = tile_grid(cam.width(), cam.height());
    let cam_center = cam.pose.center();
    for (i, g) in cloud.iter().enumerate() {
        let Some(proj) = project_gaussian(cam, g.pos, g.cov3d()) else {
            continue;
        };
        if proj.radius_px <= 0.0 {
            continue;
        }
        let Some(tile_rect) = tile_rect_of(proj.mean_px, proj.radius_px, tiles_x, tiles_y) else {
            continue;
        };
        let dir = (g.pos - cam_center).normalized();
        let color = gs_core::sh::eval_color(&g.sh, dir, sh_degree);
        emit(
            i as u32,
            Splat {
                mean_px: proj.mean_px,
                conic: proj.conic,
                color,
                opacity: g.opacity,
                depth: proj.depth,
                tile_rect,
                bbox_px: support_bbox(proj.mean_px, proj.cov2d, g.opacity),
            },
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use gs_core::vec::Vec3;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y, 128, 96, 1.0)
    }

    #[test]
    fn grid_dimensions_round_up() {
        assert_eq!(tile_grid(128, 96), (8, 6));
        assert_eq!(tile_grid(130, 97), (9, 7));
        assert_eq!(tile_grid(16, 16), (1, 1));
    }

    #[test]
    fn tile_rect_clips_to_screen() {
        let r = tile_rect_of(Vec2::new(8.0, 8.0), 500.0, 8, 6).unwrap();
        assert_eq!(r, (0, 0, 7, 5));
    }

    #[test]
    fn tile_rect_offscreen_is_none() {
        assert!(tile_rect_of(Vec2::new(-50.0, 10.0), 10.0, 8, 6).is_none());
        assert!(tile_rect_of(Vec2::new(2000.0, 10.0), 10.0, 8, 6).is_none());
    }

    #[test]
    fn tile_rect_single_tile() {
        let r = tile_rect_of(Vec2::new(24.0, 24.0), 2.0, 8, 6).unwrap();
        assert_eq!(r, (1, 1, 1, 1));
    }

    #[test]
    fn center_gaussian_projects_to_center_tiles() {
        let g = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::ONE, 0.9);
        let splats = project_cloud(std::slice::from_ref(&g), &cam(), 3);
        assert_eq!(splats.len(), 1);
        let (idx, s) = &splats[0];
        assert_eq!(*idx, 0);
        assert!((s.mean_px.x - 64.0).abs() < 1.0);
        assert!((s.mean_px.y - 48.0).abs() < 1.0);
        assert!(s.tile_count() >= 1);
    }

    #[test]
    fn behind_camera_culled() {
        let g = Gaussian::isotropic(Vec3::new(0.0, 0.0, -10.0), 0.1, Vec3::ONE, 0.9);
        assert!(project_cloud(std::slice::from_ref(&g), &cam(), 3).is_empty());
    }

    #[test]
    fn splat_indices_are_source_indices() {
        let gs: Vec<Gaussian> = vec![
            Gaussian::isotropic(Vec3::new(0.0, 0.0, -10.0), 0.1, Vec3::ONE, 0.9), // culled
            Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::ONE, 0.9),
            Gaussian::isotropic(Vec3::new(0.3, 0.0, 0.0), 0.1, Vec3::ONE, 0.9),
        ];
        let splats = project_cloud(&gs, &cam(), 3);
        let idx: Vec<u32> = splats.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, vec![1, 2]);
    }

    #[test]
    fn parallel_projection_is_bit_identical_to_serial() {
        // A few hundred Gaussians (some culled, some visible) projected
        // serially and with every chunking the renderer might pick.
        let gs: Vec<Gaussian> = (0..317)
            .map(|i| {
                let f = i as f32 * 0.37;
                let mut g = Gaussian::isotropic(
                    Vec3::new(f.sin() * 2.0, f.cos() * 1.5, (f * 0.7).sin() * 6.0),
                    0.02 + 0.1 * (f.cos() * f.cos()),
                    Vec3::new(0.5, 0.4, 0.8),
                    0.05 + 0.9 * (f.sin() * f.sin()),
                );
                g.scale = Vec3::new(0.02 + 0.05 * f.sin().abs(), 0.04, 0.03);
                g
            })
            .collect();
        let c = cam();
        let mut serial = Vec::new();
        project_splats_into(&gs, &c, 3, &mut serial);
        let mut scratch = ProjectScratch::default();
        let mut out = Vec::new();
        for chunks in [1usize, 2, 3, 7, 64, 1024] {
            let mut pool = WorkerPool::new(chunks.min(4));
            project_splats_parallel(&gs, &c, 3, &mut out, &mut scratch, &mut pool, chunks);
            assert_eq!(out, serial, "chunks={chunks} changed projection output");
        }
    }

    #[test]
    fn parallel_projection_reuses_chunk_capacity() {
        let gs: Vec<Gaussian> = (0..200)
            .map(|i| {
                Gaussian::isotropic(
                    Vec3::new((i as f32 * 0.31).sin(), 0.0, 0.0),
                    0.05,
                    Vec3::ONE,
                    0.9,
                )
            })
            .collect();
        let c = cam();
        let mut scratch = ProjectScratch::default();
        let mut pool = WorkerPool::new(3);
        let mut out = Vec::new();
        project_splats_parallel(&gs, &c, 3, &mut out, &mut scratch, &mut pool, 3);
        let caps: Vec<usize> = scratch.chunks.iter().map(|b| b.capacity()).collect();
        let out_cap = out.capacity();
        for _ in 0..4 {
            project_splats_parallel(&gs, &c, 3, &mut out, &mut scratch, &mut pool, 3);
        }
        assert_eq!(
            caps,
            scratch
                .chunks
                .iter()
                .map(|b| b.capacity())
                .collect::<Vec<_>>(),
            "steady-state parallel projection must not grow chunk buffers"
        );
        assert_eq!(out.capacity(), out_cap);
    }

    #[test]
    fn bigger_gaussian_covers_more_tiles() {
        let small = Gaussian::isotropic(Vec3::ZERO, 0.02, Vec3::ONE, 0.9);
        let large = Gaussian::isotropic(Vec3::ZERO, 0.8, Vec3::ONE, 0.9);
        let s = project_cloud(std::slice::from_ref(&small), &cam(), 3)[0]
            .1
            .tile_count();
        let l = project_cloud(std::slice::from_ref(&large), &cam(), 3)[0]
            .1
            .tile_count();
        assert!(l > s);
    }
}
