//! Functional workload counters collected during a render.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Counts of everything the pipeline actually did for one frame.
///
/// These are *functional* quantities — independent of the host machine — and
/// are the inputs to every performance/energy model in `gs-accel`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenderStats {
    /// Gaussians submitted to projection.
    pub total_gaussians: u64,
    /// Gaussians surviving frustum/degeneracy culling.
    pub visible_gaussians: u64,
    /// (Gaussian, tile) pairs emitted by projection — the sort keys.
    pub tile_pairs: u64,
    /// Tiles with at least one Gaussian.
    pub occupied_tiles: u64,
    /// Total tiles in the frame.
    pub total_tiles: u64,
    /// Pixels in the frame.
    pub pixels: u64,
    /// (pixel, Gaussian) blend operations actually executed.
    pub blended_fragments: u64,
    /// Fragments whose alpha fell below threshold (computed then skipped).
    pub skipped_fragments: u64,
    /// Pixels that terminated early (transmittance exhausted).
    pub early_terminated_pixels: u64,
    /// Sorted-list entries the rendering stage actually fetched (tiles stop
    /// reading once every pixel saturates).
    pub consumed_entries: u64,
    /// Longest per-tile Gaussian list.
    pub max_tile_list: u64,
}

impl RenderStats {
    /// Mean Gaussians per occupied tile.
    pub fn mean_tile_list(&self) -> f64 {
        if self.occupied_tiles == 0 {
            0.0
        } else {
            self.tile_pairs as f64 / self.occupied_tiles as f64
        }
    }

    /// Fraction of submitted Gaussians that survived culling.
    pub fn visibility_rate(&self) -> f64 {
        if self.total_gaussians == 0 {
            0.0
        } else {
            self.visible_gaussians as f64 / self.total_gaussians as f64
        }
    }

    /// Mean tiles covered per visible Gaussian.
    pub fn mean_tiles_per_gaussian(&self) -> f64 {
        if self.visible_gaussians == 0 {
            0.0
        } else {
            self.tile_pairs as f64 / self.visible_gaussians as f64
        }
    }
}

impl AddAssign for RenderStats {
    fn add_assign(&mut self, o: RenderStats) {
        self.total_gaussians += o.total_gaussians;
        self.visible_gaussians += o.visible_gaussians;
        self.tile_pairs += o.tile_pairs;
        self.occupied_tiles += o.occupied_tiles;
        self.total_tiles += o.total_tiles;
        self.pixels += o.pixels;
        self.blended_fragments += o.blended_fragments;
        self.skipped_fragments += o.skipped_fragments;
        self.early_terminated_pixels += o.early_terminated_pixels;
        self.consumed_entries += o.consumed_entries;
        self.max_tile_list = self.max_tile_list.max(o.max_tile_list);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let s = RenderStats {
            total_gaussians: 100,
            visible_gaussians: 50,
            tile_pairs: 200,
            occupied_tiles: 40,
            ..RenderStats::default()
        };
        assert!((s.visibility_rate() - 0.5).abs() < 1e-12);
        assert!((s.mean_tile_list() - 5.0).abs() < 1e-12);
        assert!((s.mean_tiles_per_gaussian() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let s = RenderStats::default();
        assert_eq!(s.mean_tile_list(), 0.0);
        assert_eq!(s.visibility_rate(), 0.0);
        assert_eq!(s.mean_tiles_per_gaussian(), 0.0);
    }

    #[test]
    fn add_assign_accumulates_and_maxes() {
        let mut a = RenderStats {
            tile_pairs: 10,
            max_tile_list: 3,
            ..Default::default()
        };
        let b = RenderStats {
            tile_pairs: 5,
            max_tile_list: 7,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.tile_pairs, 15);
        assert_eq!(a.max_tile_list, 7);
    }
}
