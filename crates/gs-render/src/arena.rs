//! Reusable per-frame buffers for the tile renderer.
//!
//! The seed pipeline allocated every intermediate buffer per frame: the
//! projected-splat list, the (tile, depth) key list, the per-tile ranges and
//! one 16×16 pixel buffer **per tile per frame**. [`FrameArena`] owns all of
//! them; every `TileRenderer::render` call reuses the previous frame's
//! capacity, so a steady-state render loop performs no intermediate-buffer
//! allocation (the returned `ImageRgb` is the only per-frame allocation —
//! it is the caller-owned output).

use crate::binning::{BinScratch, TileKey};
use crate::projection::{ProjectScratch, Splat};
use crate::rasterize::{TileOutcome, TileScratch};
use crate::TILE_SIZE;
use gs_core::vec::Vec3;

/// Pixels per tile buffer.
pub const TILE_PIXELS: usize = (TILE_SIZE * TILE_SIZE) as usize;

/// All intermediate buffers of one rendered frame (see module docs).
#[derive(Clone, Debug, Default)]
pub struct FrameArena {
    /// Projected splats (projection stage output).
    pub splats: Vec<Splat>,
    /// Sorted (tile, depth) keys (sorting stage output / scatter buffer).
    pub keys: Vec<TileKey>,
    /// Per-tile `(start, end)` ranges into `keys`.
    pub ranges: Vec<(u32, u32)>,
    /// All tiles' pixel buffers, `TILE_PIXELS` each, tile-major.
    pub tile_pixels: Vec<Vec3>,
    /// Per-tile rasterization counters.
    pub outcomes: Vec<TileOutcome>,
    /// Per-worker-chunk blend scratch (transmittance / done flags).
    pub scratch: Vec<TileScratch>,
    /// Per-chunk buffers for the splat-parallel projection stage.
    pub project: ProjectScratch,
    /// Per-chunk histograms/cursors for the parallel binning stage.
    pub bin: BinScratch,
}

impl FrameArena {
    /// An empty arena (buffers grow on first use).
    pub fn new() -> FrameArena {
        FrameArena::default()
    }

    /// Sizes the rasterization-stage buffers for `n_tiles` tiles rendered by
    /// `chunks` parallel chunks. Only grows capacity; never shrinks.
    pub fn ensure_tiles(&mut self, n_tiles: usize, chunks: usize) {
        self.tile_pixels.resize(n_tiles * TILE_PIXELS, Vec3::ZERO);
        self.outcomes.resize(n_tiles, TileOutcome::default());
        if self.scratch.len() < chunks {
            self.scratch.resize_with(chunks, TileScratch::new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_tiles_grows_and_keeps_capacity() {
        let mut a = FrameArena::new();
        a.ensure_tiles(12, 4);
        assert_eq!(a.tile_pixels.len(), 12 * TILE_PIXELS);
        assert_eq!(a.outcomes.len(), 12);
        assert!(a.scratch.len() >= 4);
        let cap = a.tile_pixels.capacity();
        a.ensure_tiles(6, 2);
        assert_eq!(a.tile_pixels.len(), 6 * TILE_PIXELS);
        assert_eq!(
            a.tile_pixels.capacity(),
            cap,
            "shrinking must not reallocate"
        );
        assert!(a.scratch.len() >= 4, "scratch persists");
    }
}
