//! The complete tile-centric renderer: projection → sorting → rendering.

use crate::binning::bin_and_sort;
use crate::projection::{project_cloud, tile_grid};
use crate::rasterize::{rasterize_tile, TileOutcome};
use crate::stats::RenderStats;
use crate::TILE_SIZE;
use gs_core::camera::Camera;
use gs_core::image::ImageRgb;
use gs_core::vec::Vec3;
use gs_scene::GaussianCloud;
use serde::{Deserialize, Serialize};

/// Renderer configuration.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RenderConfig {
    /// Background colour composited behind the splats.
    pub background: Vec3,
    /// SH degree used for colour evaluation (0–3).
    pub sh_degree: u8,
    /// Worker threads for tile rasterization; 0 = use all available cores.
    pub threads: usize,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig { background: Vec3::ZERO, sh_degree: 3, threads: 0 }
    }
}

/// A rendered frame plus its functional workload statistics.
#[derive(Clone, Debug)]
pub struct RenderOutput {
    /// The image.
    pub image: ImageRgb,
    /// Workload counters feeding the performance models.
    pub stats: RenderStats,
}

/// The tile-centric reference renderer (paper Fig. 2 pipeline).
///
/// ```
/// use gs_render::{RenderConfig, TileRenderer};
/// use gs_scene::{Gaussian, GaussianCloud};
/// use gs_core::camera::Camera;
/// use gs_core::vec::Vec3;
///
/// let cloud: GaussianCloud =
///     std::iter::once(Gaussian::isotropic(Vec3::ZERO, 0.2, Vec3::new(1.0, 0.0, 0.0), 0.95)).collect();
/// let cam = Camera::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::ZERO, Vec3::Y, 64, 64, 1.0);
/// let out = TileRenderer::new(RenderConfig::default()).render(&cloud, &cam);
/// // The red Gaussian lands in the centre of the frame.
/// assert!(out.image.get(32, 32).x > 0.5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TileRenderer {
    config: RenderConfig,
}

impl TileRenderer {
    /// Creates a renderer with the given configuration.
    pub fn new(config: RenderConfig) -> TileRenderer {
        TileRenderer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RenderConfig {
        &self.config
    }

    /// Renders `cloud` from `cam`.
    pub fn render(&self, cloud: &GaussianCloud, cam: &Camera) -> RenderOutput {
        let width = cam.width();
        let height = cam.height();
        let (tiles_x, tiles_y) = tile_grid(width, height);
        let n_tiles = (tiles_x * tiles_y) as usize;

        // Stage 1: projection.
        let projected = project_cloud(cloud.as_slice(), cam, self.config.sh_degree);
        let splats: Vec<_> = projected.iter().map(|(_, s)| *s).collect();

        // Stage 2: sorting.
        let (keys, ranges) = bin_and_sort(&splats, tiles_x, tiles_y);

        // Stage 3: per-tile rasterization (parallel over tiles).
        let mut image = ImageRgb::new(width, height);
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.config.threads
        };
        let background = self.config.background;

        let tile_results: Vec<(usize, Vec<Vec3>, TileOutcome)> = if threads <= 1 || n_tiles <= 1 {
            (0..n_tiles)
                .map(|t| {
                    let mut buf = vec![Vec3::ZERO; (TILE_SIZE * TILE_SIZE) as usize];
                    let origin = tile_origin(t, tiles_x);
                    let o = rasterize_tile(
                        &splats, &keys, ranges[t], origin, width, height, background, &mut buf,
                    );
                    (t, buf, o)
                })
                .collect()
        } else {
            let chunk = n_tiles.div_ceil(threads);
            let mut results: Vec<(usize, Vec<Vec3>, TileOutcome)> = Vec::with_capacity(n_tiles);
            let pieces: Vec<Vec<(usize, Vec<Vec3>, TileOutcome)>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for w in 0..threads {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n_tiles);
                    if lo >= hi {
                        continue;
                    }
                    let splats = &splats;
                    let keys = &keys;
                    let ranges = &ranges;
                    handles.push(scope.spawn(move || {
                        (lo..hi)
                            .map(|t| {
                                let mut buf =
                                    vec![Vec3::ZERO; (TILE_SIZE * TILE_SIZE) as usize];
                                let origin = tile_origin(t, tiles_x);
                                let o = rasterize_tile(
                                    splats, keys, ranges[t], origin, width, height, background,
                                    &mut buf,
                                );
                                (t, buf, o)
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("tile worker panicked")).collect()
            });
            for piece in pieces {
                results.extend(piece);
            }
            results
        };

        // Composite tiles and fold stats.
        let mut fragments = 0u64;
        let mut skipped = 0u64;
        let mut early = 0u64;
        let mut consumed = 0u64;
        for (t, buf, outcome) in &tile_results {
            let (ox, oy) = tile_origin(*t, tiles_x);
            for ly in 0..TILE_SIZE {
                for lx in 0..TILE_SIZE {
                    let px = ox + lx;
                    let py = oy + ly;
                    if px < width && py < height {
                        image.set(px, py, buf[(ly * TILE_SIZE + lx) as usize]);
                    }
                }
            }
            fragments += outcome.fragments;
            skipped += outcome.skipped;
            early += outcome.early_terminated;
            consumed += outcome.consumed_entries;
        }

        let occupied = ranges.iter().filter(|(a, b)| b > a).count() as u64;
        let max_list = ranges.iter().map(|(a, b)| (b - a) as u64).max().unwrap_or(0);
        let stats = RenderStats {
            total_gaussians: cloud.len() as u64,
            visible_gaussians: splats.len() as u64,
            tile_pairs: keys.len() as u64,
            occupied_tiles: occupied,
            total_tiles: n_tiles as u64,
            pixels: width as u64 * height as u64,
            blended_fragments: fragments,
            skipped_fragments: skipped,
            early_terminated_pixels: early,
            consumed_entries: consumed,
            max_tile_list: max_list,
        };
        RenderOutput { image, stats }
    }

    /// Renders several views, returning per-view outputs.
    pub fn render_views(&self, cloud: &GaussianCloud, cams: &[Camera]) -> Vec<RenderOutput> {
        cams.iter().map(|c| self.render(cloud, c)).collect()
    }
}

fn tile_origin(tile_index: usize, tiles_x: u32) -> (u32, u32) {
    let tx = tile_index as u32 % tiles_x;
    let ty = tile_index as u32 / tiles_x;
    (tx * TILE_SIZE, ty * TILE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scene::{Gaussian, SceneConfig, SceneKind};

    #[test]
    fn single_gaussian_renders_deterministically() {
        let cloud: GaussianCloud = std::iter::once(Gaussian::isotropic(
            Vec3::ZERO,
            0.15,
            Vec3::new(0.0, 1.0, 0.0),
            0.9,
        ))
        .collect();
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::ZERO, Vec3::Y, 96, 64, 1.0);
        let r = TileRenderer::new(RenderConfig::default());
        let a = r.render(&cloud, &cam);
        let b = r.render(&cloud, &cam);
        assert_eq!(a.image, b.image);
        assert!(a.image.get(48, 32).y > 0.3);
        assert_eq!(a.stats.visible_gaussians, 1);
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let seq = TileRenderer::new(RenderConfig { threads: 1, ..RenderConfig::default() })
            .render(&scene.ground_truth, cam);
        let par = TileRenderer::new(RenderConfig { threads: 4, ..RenderConfig::default() })
            .render(&scene.ground_truth, cam);
        assert_eq!(seq.image, par.image);
        assert_eq!(seq.stats, par.stats);
    }

    #[test]
    fn background_shows_through_empty_regions() {
        let cloud = GaussianCloud::new();
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::ZERO, Vec3::Y, 32, 32, 1.0);
        let bg = Vec3::new(0.2, 0.4, 0.6);
        let out = TileRenderer::new(RenderConfig { background: bg, ..RenderConfig::default() })
            .render(&cloud, &cam);
        assert!((out.image.get(16, 16) - bg).length() < 1e-6);
        assert_eq!(out.stats.blended_fragments, 0);
    }

    #[test]
    fn scene_renders_with_sane_stats() {
        let scene = SceneKind::Truck.build(&SceneConfig::tiny());
        let out = TileRenderer::new(RenderConfig::default())
            .render(&scene.ground_truth, &scene.eval_cameras[0]);
        let s = out.stats;
        assert!(s.visible_gaussians > 100, "visible {}", s.visible_gaussians);
        assert!(s.tile_pairs >= s.visible_gaussians);
        assert!(s.blended_fragments > 0);
        assert!(s.occupied_tiles > 0 && s.occupied_tiles <= s.total_tiles);
        // A camera inside the scene must produce non-trivial imagery.
        let mean: f32 = out
            .image
            .as_slice()
            .iter()
            .map(|p| p.x + p.y + p.z)
            .sum::<f32>()
            / (out.image.pixels() as f32 * 3.0);
        assert!(mean > 0.01, "image nearly black: mean {mean}");
    }

    #[test]
    fn trained_cloud_close_to_ground_truth_in_psnr() {
        let scene = SceneKind::Palace.build(&SceneConfig::tiny());
        let r = TileRenderer::new(RenderConfig::default());
        let cam = &scene.eval_cameras[0];
        let gt = r.render(&scene.ground_truth, cam);
        let trained = r.render(&scene.trained, cam);
        let psnr = trained.image.psnr(&gt.image);
        assert!(psnr > 18.0, "trained cloud PSNR too low: {psnr}");
        assert!(psnr < 80.0, "perturbation had no effect: {psnr}");
    }

    #[test]
    fn sh_degree_zero_removes_view_dependence_cost() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let full = TileRenderer::new(RenderConfig::default()).render(&scene.ground_truth, cam);
        let dc =
            TileRenderer::new(RenderConfig { sh_degree: 0, ..RenderConfig::default() })
                .render(&scene.ground_truth, cam);
        // Images differ (view-dependent terms dropped) but only slightly.
        let psnr = dc.image.psnr(&full.image);
        assert!(psnr > 20.0, "degree truncation changed too much: {psnr}");
        assert!(psnr.is_finite(), "images should differ");
    }
}
