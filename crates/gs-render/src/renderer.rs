//! The complete tile-centric renderer: projection → sorting → rendering.
//!
//! The hot path is allocation-free in steady state: all intermediate
//! buffers live in a [`FrameArena`] and tile rasterization runs on a
//! persistent [`WorkerPool`], both reused across frames (the seed pipeline
//! re-allocated every buffer and re-spawned every worker per frame; that
//! version survives as [`crate::reference`] for exactness testing and
//! benchmarking).

use crate::arena::{FrameArena, TILE_PIXELS};
use crate::binning::{bin_and_sort_into, bin_and_sort_parallel};
use crate::pool::WorkerPool;
use crate::projection::{project_splats_into, project_splats_parallel, tile_grid};
use crate::rasterize::rasterize_tile;
use crate::stats::RenderStats;
use crate::TILE_SIZE;
use gs_core::camera::Camera;
use gs_core::image::ImageRgb;
use gs_core::vec::Vec3;
use gs_scene::GaussianCloud;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Renderer configuration.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RenderConfig {
    /// Background colour composited behind the splats.
    pub background: Vec3,
    /// SH degree used for colour evaluation (0–3).
    pub sh_degree: u8,
    /// Worker threads for tile rasterization; 0 = use all available cores.
    pub threads: usize,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            background: Vec3::ZERO,
            sh_degree: 3,
            threads: 0,
        }
    }
}

/// Splat count below which the parallel front-end is skipped: under ~1k
/// splats the three extra pool dispatches (projection, histogram+scatter,
/// tile sorts) cost more than the parallelism recovers, and the serial path
/// is bit-identical anyway.
const PARALLEL_FRONT_END_MIN_SPLATS: usize = 1024;

/// Resolves a `threads` config value (0 = all cores) to a concrete count.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// A rendered frame plus its functional workload statistics.
#[derive(Clone, Debug)]
pub struct RenderOutput {
    /// The image.
    pub image: ImageRgb,
    /// Workload counters feeding the performance models.
    pub stats: RenderStats,
}

/// Reusable frame state: arena + worker pool, behind a mutex so `render`
/// can stay `&self`. Concurrent `render` calls on one renderer serialize;
/// clone the renderer for independent parallel use.
#[derive(Debug, Default)]
struct RenderScratch {
    arena: FrameArena,
    pool: Option<WorkerPool>,
}

/// The tile-centric reference renderer (paper Fig. 2 pipeline).
///
/// ```
/// use gs_render::{RenderConfig, TileRenderer};
/// use gs_scene::{Gaussian, GaussianCloud};
/// use gs_core::camera::Camera;
/// use gs_core::vec::Vec3;
///
/// let cloud: GaussianCloud =
///     std::iter::once(Gaussian::isotropic(Vec3::ZERO, 0.2, Vec3::new(1.0, 0.0, 0.0), 0.95)).collect();
/// let cam = Camera::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::ZERO, Vec3::Y, 64, 64, 1.0);
/// let out = TileRenderer::new(RenderConfig::default()).render(&cloud, &cam);
/// // The red Gaussian lands in the centre of the frame.
/// assert!(out.image.get(32, 32).x > 0.5);
/// ```
#[derive(Debug)]
pub struct TileRenderer {
    config: RenderConfig,
    scratch: Mutex<RenderScratch>,
}

impl Default for TileRenderer {
    fn default() -> Self {
        TileRenderer::new(RenderConfig::default())
    }
}

impl Clone for TileRenderer {
    /// Clones the configuration; the clone starts with a fresh arena and
    /// worker pool (frame state is not shared between renderers).
    fn clone(&self) -> Self {
        TileRenderer::new(self.config)
    }
}

impl TileRenderer {
    /// Creates a renderer with the given configuration.
    pub fn new(config: RenderConfig) -> TileRenderer {
        TileRenderer {
            config,
            scratch: Mutex::new(RenderScratch::default()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RenderConfig {
        &self.config
    }

    /// Renders `cloud` from `cam`.
    pub fn render(&self, cloud: &GaussianCloud, cam: &Camera) -> RenderOutput {
        let width = cam.width();
        let height = cam.height();
        let (tiles_x, tiles_y) = tile_grid(width, height);
        let n_tiles = (tiles_x * tiles_y) as usize;
        let background = self.config.background;

        let mut guard = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        let RenderScratch { arena, pool } = &mut *guard;
        let workers = resolve_threads(self.config.threads);

        // Stages 1+2: the front-end, splat-parallel when more than one
        // worker is available and the cloud is large enough to amortize
        // the dispatches (bit-identical to the serial path either way —
        // see the determinism contracts in `projection` and `binning`).
        // One chunk per worker: projection and binning are compute-dense
        // enough that finer-grained chunking only adds dispatch overhead.
        if workers > 1 && cloud.len() >= PARALLEL_FRONT_END_MIN_SPLATS {
            let pool = WorkerPool::ensure(pool, workers);
            project_splats_parallel(
                cloud.as_slice(),
                cam,
                self.config.sh_degree,
                &mut arena.splats,
                &mut arena.project,
                pool,
                workers,
            );
            bin_and_sort_parallel(
                &arena.splats,
                tiles_x,
                tiles_y,
                &mut arena.keys,
                &mut arena.ranges,
                &mut arena.bin,
                pool,
                workers,
            );
        } else {
            // Stage 1: projection.
            project_splats_into(
                cloud.as_slice(),
                cam,
                self.config.sh_degree,
                &mut arena.splats,
            );
            // Stage 2: sorting (two-pass counting sort, see `binning`).
            bin_and_sort_into(
                &arena.splats,
                tiles_x,
                tiles_y,
                &mut arena.keys,
                &mut arena.ranges,
            );
        }

        // Stage 3: per-tile rasterization (parallel over tile chunks).
        let threads = workers.min(n_tiles.max(1));
        arena.ensure_tiles(n_tiles, threads);
        let chunk = n_tiles.div_ceil(threads.max(1));
        let splats = &arena.splats[..];
        let keys = &arena.keys[..];
        let ranges = &arena.ranges[..];

        if threads <= 1 || n_tiles <= 1 {
            let scratch = &mut arena.scratch[0];
            #[allow(clippy::needless_range_loop)]
            for t in 0..n_tiles {
                let buf = &mut arena.tile_pixels[t * TILE_PIXELS..(t + 1) * TILE_PIXELS];
                arena.outcomes[t] = rasterize_tile(
                    splats,
                    keys,
                    ranges[t],
                    tile_origin(t, tiles_x),
                    width,
                    height,
                    background,
                    scratch,
                    buf,
                );
            }
        } else {
            // Chunk c rasterizes tiles [c·chunk, (c+1)·chunk): every chunk
            // touches disjoint ranges of the pixel/outcome/scratch buffers,
            // reconstructed from raw base pointers inside the job closure
            // (a `Fn(usize)` cannot hand out pre-split `&mut` slices).
            let px_base = arena.tile_pixels.as_mut_ptr() as usize;
            let oc_base = arena.outcomes.as_mut_ptr() as usize;
            let sc_base = arena.scratch.as_mut_ptr() as usize;
            let pool = WorkerPool::ensure(pool, threads);
            pool.run(threads, |c| {
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(n_tiles);
                if lo >= hi {
                    return;
                }
                // SAFETY: tile ranges [lo, hi) are disjoint across chunk
                // indices, and scratch slot `c` is unique per job; the
                // arena outlives `pool.run`, which blocks until all jobs
                // finish.
                let pixels = unsafe {
                    std::slice::from_raw_parts_mut(
                        (px_base as *mut Vec3).add(lo * TILE_PIXELS),
                        (hi - lo) * TILE_PIXELS,
                    )
                };
                let outcomes = unsafe {
                    std::slice::from_raw_parts_mut(
                        (oc_base as *mut crate::rasterize::TileOutcome).add(lo),
                        hi - lo,
                    )
                };
                let scratch =
                    unsafe { &mut *(sc_base as *mut crate::rasterize::TileScratch).add(c) };
                for t in lo..hi {
                    let buf = &mut pixels[(t - lo) * TILE_PIXELS..(t - lo + 1) * TILE_PIXELS];
                    outcomes[t - lo] = rasterize_tile(
                        splats,
                        keys,
                        ranges[t],
                        tile_origin(t, tiles_x),
                        width,
                        height,
                        background,
                        scratch,
                        buf,
                    );
                }
            });
        }

        // Composite tiles and fold stats (serial, deterministic order).
        let mut image = ImageRgb::new(width, height);
        let mut fragments = 0u64;
        let mut skipped = 0u64;
        let mut early = 0u64;
        let mut consumed = 0u64;
        for t in 0..n_tiles {
            let (ox, oy) = tile_origin(t, tiles_x);
            let buf = &arena.tile_pixels[t * TILE_PIXELS..(t + 1) * TILE_PIXELS];
            for ly in 0..TILE_SIZE {
                for lx in 0..TILE_SIZE {
                    let px = ox + lx;
                    let py = oy + ly;
                    if px < width && py < height {
                        image.set(px, py, buf[(ly * TILE_SIZE + lx) as usize]);
                    }
                }
            }
            let outcome = &arena.outcomes[t];
            fragments += outcome.fragments;
            skipped += outcome.skipped;
            early += outcome.early_terminated;
            consumed += outcome.consumed_entries;
        }

        let occupied = ranges.iter().filter(|(a, b)| b > a).count() as u64;
        let max_list = ranges
            .iter()
            .map(|(a, b)| (b - a) as u64)
            .max()
            .unwrap_or(0);
        let stats = RenderStats {
            total_gaussians: cloud.len() as u64,
            visible_gaussians: arena.splats.len() as u64,
            tile_pairs: arena.keys.len() as u64,
            occupied_tiles: occupied,
            total_tiles: n_tiles as u64,
            pixels: width as u64 * height as u64,
            blended_fragments: fragments,
            skipped_fragments: skipped,
            early_terminated_pixels: early,
            consumed_entries: consumed,
            max_tile_list: max_list,
        };
        RenderOutput { image, stats }
    }

    /// Renders several views, returning per-view outputs.
    pub fn render_views(&self, cloud: &GaussianCloud, cams: &[Camera]) -> Vec<RenderOutput> {
        cams.iter().map(|c| self.render(cloud, c)).collect()
    }
}

/// Top-left pixel of a tile index in a `tiles_x`-wide grid.
pub(crate) fn tile_origin(tile_index: usize, tiles_x: u32) -> (u32, u32) {
    let tx = tile_index as u32 % tiles_x;
    let ty = tile_index as u32 / tiles_x;
    (tx * TILE_SIZE, ty * TILE_SIZE)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use gs_scene::{Gaussian, SceneConfig, SceneKind};

    #[test]
    fn single_gaussian_renders_deterministically() {
        let cloud: GaussianCloud = std::iter::once(Gaussian::isotropic(
            Vec3::ZERO,
            0.15,
            Vec3::new(0.0, 1.0, 0.0),
            0.9,
        ))
        .collect();
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::ZERO, Vec3::Y, 96, 64, 1.0);
        let r = TileRenderer::new(RenderConfig::default());
        let a = r.render(&cloud, &cam);
        let b = r.render(&cloud, &cam);
        assert_eq!(a.image, b.image);
        assert!(a.image.get(48, 32).y > 0.3);
        assert_eq!(a.stats.visible_gaussians, 1);
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let seq = TileRenderer::new(RenderConfig {
            threads: 1,
            ..RenderConfig::default()
        })
        .render(&scene.ground_truth, cam);
        let par = TileRenderer::new(RenderConfig {
            threads: 4,
            ..RenderConfig::default()
        })
        .render(&scene.ground_truth, cam);
        assert_eq!(seq.image, par.image);
        assert_eq!(seq.stats, par.stats);
    }

    #[test]
    fn pool_grows_for_larger_frames() {
        // Regression: a small first frame (few tiles) must not permanently
        // cap the worker pool for later, larger frames.
        let cloud: GaussianCloud =
            std::iter::once(Gaussian::isotropic(Vec3::ZERO, 0.2, Vec3::ONE, 0.9)).collect();
        let r = TileRenderer::new(RenderConfig {
            threads: 4,
            ..RenderConfig::default()
        });
        // 32x16 -> 2 tiles -> pool sized 2.
        let small_cam =
            Camera::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::ZERO, Vec3::Y, 32, 16, 1.0);
        r.render(&cloud, &small_cam);
        assert_eq!(r.scratch.lock().unwrap().pool.as_ref().unwrap().size(), 2);
        // 128x128 -> 64 tiles -> pool must grow to the full 4 workers.
        let big_cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -3.0),
            Vec3::ZERO,
            Vec3::Y,
            128,
            128,
            1.0,
        );
        let big = r.render(&cloud, &big_cam);
        assert_eq!(r.scratch.lock().unwrap().pool.as_ref().unwrap().size(), 4);
        let fresh = TileRenderer::new(RenderConfig {
            threads: 4,
            ..RenderConfig::default()
        })
        .render(&cloud, &big_cam);
        assert_eq!(big.image, fresh.image);
        assert_eq!(big.stats, fresh.stats);
    }

    #[test]
    fn repeated_frames_reuse_arena_capacity() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let r = TileRenderer::new(RenderConfig {
            threads: 2,
            ..RenderConfig::default()
        });
        let first = r.render(&scene.ground_truth, cam);
        let caps = {
            let guard = r.scratch.lock().unwrap();
            let a = &guard.arena;
            (
                a.splats.capacity(),
                a.keys.capacity(),
                a.tile_pixels.capacity(),
            )
        };
        for _ in 0..3 {
            let again = r.render(&scene.ground_truth, cam);
            assert_eq!(again.image, first.image);
            assert_eq!(again.stats, first.stats);
        }
        let guard = r.scratch.lock().unwrap();
        let a = &guard.arena;
        assert_eq!(
            caps,
            (
                a.splats.capacity(),
                a.keys.capacity(),
                a.tile_pixels.capacity()
            ),
            "steady-state frames must not grow the arena"
        );
    }

    #[test]
    fn background_shows_through_empty_regions() {
        let cloud = GaussianCloud::new();
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::ZERO, Vec3::Y, 32, 32, 1.0);
        let bg = Vec3::new(0.2, 0.4, 0.6);
        let out = TileRenderer::new(RenderConfig {
            background: bg,
            ..RenderConfig::default()
        })
        .render(&cloud, &cam);
        assert!((out.image.get(16, 16) - bg).length() < 1e-6);
        assert_eq!(out.stats.blended_fragments, 0);
    }

    #[test]
    fn scene_renders_with_sane_stats() {
        let scene = SceneKind::Truck.build(&SceneConfig::tiny());
        let out = TileRenderer::new(RenderConfig::default())
            .render(&scene.ground_truth, &scene.eval_cameras[0]);
        let s = out.stats;
        assert!(s.visible_gaussians > 100, "visible {}", s.visible_gaussians);
        assert!(s.tile_pairs >= s.visible_gaussians);
        assert!(s.blended_fragments > 0);
        assert!(s.occupied_tiles > 0 && s.occupied_tiles <= s.total_tiles);
        // A camera inside the scene must produce non-trivial imagery.
        let mean: f32 = out
            .image
            .as_slice()
            .iter()
            .map(|p| p.x + p.y + p.z)
            .sum::<f32>()
            / (out.image.pixels() as f32 * 3.0);
        assert!(mean > 0.01, "image nearly black: mean {mean}");
    }

    #[test]
    fn trained_cloud_close_to_ground_truth_in_psnr() {
        let scene = SceneKind::Palace.build(&SceneConfig::tiny());
        let r = TileRenderer::new(RenderConfig::default());
        let cam = &scene.eval_cameras[0];
        let gt = r.render(&scene.ground_truth, cam);
        let trained = r.render(&scene.trained, cam);
        let psnr = trained.image.psnr(&gt.image);
        assert!(psnr > 18.0, "trained cloud PSNR too low: {psnr}");
        assert!(psnr < 80.0, "perturbation had no effect: {psnr}");
    }

    #[test]
    fn sh_degree_zero_removes_view_dependence_cost() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let full = TileRenderer::new(RenderConfig::default()).render(&scene.ground_truth, cam);
        let dc = TileRenderer::new(RenderConfig {
            sh_degree: 0,
            ..RenderConfig::default()
        })
        .render(&scene.ground_truth, cam);
        // Images differ (view-dependent terms dropped) but only slightly.
        let psnr = dc.image.psnr(&full.image);
        assert!(psnr > 20.0, "degree truncation changed too much: {psnr}");
        assert!(psnr.is_finite(), "images should differ");
    }
}
