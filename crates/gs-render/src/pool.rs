//! A persistent worker pool for frame-parallel work.
//!
//! The seed renderer re-spawned every worker thread on every frame with
//! `std::thread::scope`, in both `gs-render` and `gs-voxel`. For a streaming
//! renderer targeting real-time rates that is measurable per-frame overhead
//! and — worse — it forces the per-tile output buffers to be reallocated per
//! frame because nothing outlives the scope. [`WorkerPool`] keeps the
//! threads alive across frames: a frame dispatches `jobs` indexed closures
//! (`f(0) … f(jobs-1)`), the workers claim indices from a shared counter,
//! and [`WorkerPool::run`] blocks until every index has finished.
//!
//! Determinism: a job index always maps to the same slice of work (e.g. a
//! contiguous chunk of tiles writing disjoint output ranges), so the render
//! result is independent of which worker executes which index.
//!
//! No allocation happens per `run` call: job dispatch is a shared
//! `(closure pointer, index counter)` guarded by a mutex/condvar pair.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Locks `state`, recovering the payload if a previous holder panicked.
/// Every critical section in this module is panic-free (job closures run
/// *outside* the lock behind `catch_unwind`), so a poisoned `PoolState` is
/// never mid-update and is safe to keep using — recovery is what lets the
/// pool survive a panicking job (see `job_panic_propagates_and_pool_survives`).
fn lock_unpoisoned<T>(state: &Mutex<T>) -> MutexGuard<'_, T> {
    match state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `Condvar::wait` with the same poison-recovery rationale as
/// [`lock_unpoisoned`].
fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Type-erased pointer to the frame's job closure plus its call shim.
#[derive(Copy, Clone)]
struct Task {
    /// Calls `*data` (a `&F` where `F: Fn(usize)`) with the job index.
    call: unsafe fn(*const (), usize),
    /// Borrow of the closure living in [`WorkerPool::run`]'s frame.
    data: *const (),
}

// SAFETY: `data` points at an `F: Fn(usize) + Sync` that outlives the frame
// (run() does not return until all jobs finished), and `Sync` makes the
// shared borrow sound across threads.
unsafe impl Send for Task {}

struct PoolState {
    /// The active frame's task, if any.
    task: Option<Task>,
    /// Next job index to hand out.
    next: usize,
    /// Total jobs in the active frame.
    jobs: usize,
    /// Jobs not yet finished (claimed or unclaimed).
    unfinished: usize,
    /// A job panicked during this frame.
    panicked: bool,
    /// The pool is being dropped.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers that work (or shutdown) is available.
    work: Condvar,
    /// Signals [`WorkerPool::run`] that the frame completed.
    done: Condvar,
}

/// A fixed-size pool of persistent worker threads (see module docs).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

unsafe fn call_shim<F: Fn(usize)>(data: *const (), index: usize) {
    // SAFETY: `data` was created from `&F` in `run` and is still borrowed
    // there while any worker can reach this shim.
    unsafe { (*(data as *const F))(index) }
}

impl WorkerPool {
    /// Spawns `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                task: None,
                next: 0,
                jobs: 0,
                unfinished: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    /// Returns the pool in `slot`, (re)creating it when absent or smaller
    /// than `threads`. Frame sizes vary per camera, so a renderer's first
    /// (possibly small) frame must not cap parallelism for later, larger
    /// frames.
    pub fn ensure(slot: &mut Option<WorkerPool>, threads: usize) -> &mut WorkerPool {
        if slot.as_ref().is_none_or(|p| p.size() < threads) {
            return slot.insert(WorkerPool::new(threads));
        }
        match slot.as_mut() {
            Some(pool) => pool,
            None => unreachable!("non-empty checked above"),
        }
    }

    /// Runs `f(0) … f(jobs-1)` across the workers and blocks until all
    /// indices completed. Takes `&mut self`, so frames never overlap on
    /// one pool.
    ///
    /// # Panics
    ///
    /// After the frame fully drains, if any job panicked (the panic is
    /// re-raised on the dispatching thread; the pool itself survives).
    ///
    /// The calling thread **participates**: instead of sleeping on the
    /// completion condvar while the workers drain the index counter, it
    /// claims indices like any worker and only waits once the counter is
    /// exhausted. Job results are a function of the index alone, so which
    /// thread runs an index never affects the output — this is purely one
    /// more executor (the dispatch thread used to idle through every
    /// frame, which matters for nested uses like the streaming renderer's
    /// intra-group ray fan-out).
    pub fn run<F: Fn(usize) + Sync>(&mut self, jobs: usize, f: F) {
        if jobs == 0 {
            return;
        }
        let task = Task {
            call: call_shim::<F>,
            data: &f as *const F as *const (),
        };
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            debug_assert!(st.task.is_none(), "WorkerPool::run re-entered");
            st.task = Some(task);
            st.next = 0;
            st.jobs = jobs;
            st.unfinished = jobs;
            st.panicked = false;
            self.shared.work.notify_all();
        }
        // Claim and execute indices alongside the workers. Panics are
        // caught exactly like in `worker_loop`: the frame must fully drain
        // before `f` can be dropped (workers may still hold `task.data`).
        loop {
            let index = {
                let mut st = lock_unpoisoned(&self.shared.state);
                if st.next >= st.jobs {
                    break;
                }
                let i = st.next;
                st.next += 1;
                i
            };
            let result = catch_unwind(AssertUnwindSafe(|| {
                // SAFETY: see `Task` — the closure outlives the frame.
                unsafe { (task.call)(task.data, index) }
            }));
            let mut st = lock_unpoisoned(&self.shared.state);
            if result.is_err() {
                st.panicked = true;
            }
            st.unfinished -= 1;
        }
        let mut st = lock_unpoisoned(&self.shared.state);
        while st.unfinished > 0 {
            st = wait_unpoisoned(&self.shared.done, st);
        }
        st.task = None;
        let panicked = st.panicked;
        drop(st);
        // `f` is only dropped after every worker finished using it.
        if panicked {
            panic!("a WorkerPool job panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.handles.len())
            .finish()
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let (task, index) = {
            let mut st = lock_unpoisoned(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(task) = st.task {
                    if st.next < st.jobs {
                        let index = st.next;
                        st.next += 1;
                        break (task, index);
                    }
                }
                st = wait_unpoisoned(&shared.work, st);
            }
        };

        // Execute outside the lock; never lose the `unfinished` decrement.
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: see `Task` — the closure outlives the frame.
            unsafe { (task.call)(task.data, index) }
        }));

        let mut st = lock_unpoisoned(&shared.state);
        if result.is_err() {
            st.panicked = true;
        }
        st.unfinished -= 1;
        if st.unfinished == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_index_exactly_once() {
        let mut pool = WorkerPool::new(4);
        let mut hits = [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ];
        for _ in 0..50 {
            pool.run(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in hits.iter_mut() {
            assert_eq!(*h.get_mut(), 50);
        }
    }

    #[test]
    fn more_jobs_than_workers() {
        let mut pool = WorkerPool::new(2);
        let hits: Vec<AtomicUsize> = (0..17).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn borrows_stack_data_mutably_through_disjoint_chunks() {
        let mut pool = WorkerPool::new(3);
        let mut data = vec![0u64; 300];
        let base = data.as_mut_ptr() as usize;
        pool.run(3, |w| {
            // SAFETY: chunks [100w, 100w+100) are disjoint per index.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut((base as *mut u64).add(100 * w), 100) };
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (100 * w + k) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, v)| *v == i as u64));
        drop(pool);
    }

    #[test]
    fn job_panic_propagates_and_pool_survives() {
        let mut pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, |i| {
                if i == 2 {
                    panic!("boom");
                }
            })
        }));
        assert!(caught.is_err());
        // The pool still works afterwards.
        let count = AtomicUsize::new(0);
        pool.run(8, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        let mut pool = WorkerPool::new(2);
        pool.run(0, |_| panic!("must not run"));
    }
}
