//! # gs-render — the tile-centric reference 3DGS renderer
//!
//! This crate implements the *conventional* pipeline the paper characterizes
//! and accelerates (Fig. 2): **projection** (EWA-project every Gaussian and
//! enumerate intersected tiles), **sorting** (global depth order per tile)
//! and **rendering** (front-to-back alpha blending with early termination).
//!
//! Two outputs matter:
//!
//! 1. the rendered image — ground truth for PSNR comparisons with the
//!    streaming pipeline (`gs-voxel`), and
//! 2. [`stats::RenderStats`] — functional workload counts (visible Gaussians,
//!    tile pairs, blended fragments, …) from which [`traffic`] computes the
//!    per-stage DRAM traffic a GPU-style execution would incur. These numbers
//!    feed the Orin NX and GSCore models in `gs-accel` and reproduce the
//!    paper's Figs. 2–4.
//!
//! ## Hot-path architecture
//!
//! The CPU hot path is organized around three optimizations (PR 1), each of
//! which preserves bit-identical output with the seed pipeline (kept alive
//! in [`reference`] and asserted by `tests/exactness.rs`):
//!
//! * **Footprint-clipped rasterization** — projection derives each splat's
//!   conservative screen-space support rectangle from the conic's extent
//!   ([`projection::support_bbox`], carried as
//!   [`projection::Splat::bbox_px`]); [`rasterize::rasterize_tile`] visits
//!   only `bbox ∩ tile` instead of all 256 pixels of every covered tile.
//! * **Counting-sort binning** — [`binning::bin_and_sort_into`] histograms
//!   (tile, depth) pairs per tile, prefix-sums into per-tile ranges,
//!   scatters, then depth-sorts each short run: O(pairs) instead of a
//!   global O(pairs·log pairs) comparison sort.
//! * **Zero-alloc frame loop** — all intermediate buffers live in a
//!   reusable [`arena::FrameArena`] and tile work runs on a persistent
//!   [`pool::WorkerPool`]; a steady-state render loop performs no
//!   intermediate allocations and spawns no threads per frame.
//! * **Splat-parallel front-end** (PR 2) — with `threads > 1`,
//!   [`projection::project_splats_parallel`] and
//!   [`binning::bin_and_sort_parallel`] run projection and binning across
//!   the same worker pool. Every parallel reduction merges in a
//!   deterministic order (chunk-order concatenation; chunk-major prefix
//!   sums; total-order per-tile sorts), so the output stays bit-identical
//!   to the serial path for every worker count — see the determinism
//!   contracts in the [`projection`] and [`binning`] module docs.
//!
//! Run `cargo bench -p gs-bench --bench hotpath` for the measured
//! naive-vs-optimized frame rates and front-end stage timings
//! (machine-readable JSON on stdout).
//!
//! ## Example
//!
//! ```
//! use gs_render::{RenderConfig, TileRenderer};
//! use gs_scene::{SceneConfig, SceneKind};
//!
//! let scene = SceneKind::Lego.build(&SceneConfig::tiny());
//! let renderer = TileRenderer::new(RenderConfig::default());
//! let out = renderer.render(&scene.ground_truth, &scene.eval_cameras[0]);
//! assert_eq!(out.image.width(), scene.eval_cameras[0].width());
//! assert!(out.stats.visible_gaussians > 0);
//! ```

pub mod arena;
pub mod binning;
pub mod pool;
pub mod projection;
pub mod rasterize;
pub mod reference;
pub mod renderer;
pub mod stats;
pub mod traffic;

pub use arena::FrameArena;
pub use pool::WorkerPool;
pub use renderer::{RenderConfig, RenderOutput, TileRenderer};
pub use stats::RenderStats;
pub use traffic::{tile_centric_traffic, StageTraffic, TrafficModel};

/// Side length of a rasterization tile in pixels (3DGS uses 16×16).
pub const TILE_SIZE: u32 = 16;

/// Alpha below which a fragment is skipped (1/255, as in 3DGS).
pub const ALPHA_EPS: f32 = 1.0 / 255.0;

/// Transmittance below which a pixel terminates early (as in 3DGS).
pub const TRANSMITTANCE_EPS: f32 = 1.0 / 255.0 * 0.5;

/// Maximum alpha a single Gaussian may contribute (3DGS clamps at 0.99).
pub const ALPHA_MAX: f32 = 0.99;
