//! Rendering stage: per-tile front-to-back alpha blending.
//!
//! The optimized rasterizer clips each splat's pixel loop to the
//! intersection of its screen-space support rectangle
//! ([`crate::projection::Splat::bbox_px`]) with the tile, instead of
//! scanning all `TILE_SIZE × TILE_SIZE` pixels per splat as the seed
//! pipeline (kept in [`crate::reference`]) does. The bbox is conservative —
//! every excluded pixel is guaranteed below [`ALPHA_EPS`] — so the blend
//! state, image and all counters except redundant below-threshold
//! evaluations are bit-identical to the naive scan.

use crate::binning::TileKey;
use crate::projection::Splat;
use crate::{ALPHA_EPS, ALPHA_MAX, TILE_SIZE, TRANSMITTANCE_EPS};
use gs_core::vec::Vec3;

/// Per-tile rasterization counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TileOutcome {
    /// Blend operations executed.
    pub fragments: u64,
    /// Fragments evaluated inside a splat's support rectangle but below the
    /// alpha threshold. (Pixels outside the support are *proven* below
    /// threshold and are neither evaluated nor counted — the naive
    /// reference scan applies the same counting rule so the two pipelines
    /// agree counter-for-counter.)
    pub skipped: u64,
    /// Pixels that exhausted transmittance before the list ended.
    pub early_terminated: u64,
    /// Sorted-list entries actually fetched before the tile finished (early
    /// termination lets a tile stop reading its list — this is the quantity
    /// the rendering stage's DRAM reads scale with).
    pub consumed_entries: u64,
}

/// Reusable per-tile blend state (transmittance + early-termination flags),
/// owned by the frame arena so steady-state rendering allocates nothing.
#[derive(Clone, Debug)]
pub struct TileScratch {
    /// Per-pixel remaining transmittance.
    pub transmittance: Vec<f32>,
    /// Per-pixel "saturated or off-screen" flag.
    pub done: Vec<bool>,
}

impl Default for TileScratch {
    fn default() -> Self {
        let n = (TILE_SIZE * TILE_SIZE) as usize;
        TileScratch {
            transmittance: vec![1.0; n],
            done: vec![false; n],
        }
    }
}

impl TileScratch {
    /// Fresh scratch for one tile.
    pub fn new() -> TileScratch {
        TileScratch::default()
    }
}

/// Converts one axis of a support rectangle `[lo, hi]` to the inclusive
/// range of pixel *indices* whose centres (`p + 0.5`) fall inside it.
/// Saturating casts make infinite bboxes degrade to full scans.
#[inline]
pub(crate) fn pixel_span(lo: f32, hi: f32) -> (i64, i64) {
    ((lo - 0.5).ceil() as i64, (hi - 0.5).floor() as i64)
}

/// Blends one tile's sorted splat list into `out` (a row-major
/// `TILE_SIZE × TILE_SIZE` RGB buffer), returning the counters.
///
/// `origin` is the tile's top-left pixel; `width`/`height` clip partial
/// edge tiles. The blend is the exact 3DGS forward model:
/// `C = Σ cᵢ αᵢ Tᵢ`, `Tᵢ₊₁ = Tᵢ (1 − αᵢ)`, early-out at
/// [`TRANSMITTANCE_EPS`]. Per splat, only the pixels inside
/// `bbox_px ∩ tile` are visited.
#[allow(clippy::too_many_arguments)]
pub fn rasterize_tile(
    splats: &[Splat],
    keys: &[TileKey],
    range: (u32, u32),
    origin: (u32, u32),
    width: u32,
    height: u32,
    background: Vec3,
    scratch: &mut TileScratch,
    out: &mut [Vec3],
) -> TileOutcome {
    debug_assert_eq!(out.len(), (TILE_SIZE * TILE_SIZE) as usize);
    let mut outcome = TileOutcome::default();
    let n = TILE_SIZE as usize;

    // Per-pixel transmittance; colour accumulates in `out`.
    let transmittance = &mut scratch.transmittance[..];
    let done = &mut scratch.done[..];
    transmittance.fill(1.0);
    done.fill(false);
    let mut live = (width.saturating_sub(origin.0)).min(TILE_SIZE) as u64
        * (height.saturating_sub(origin.1)).min(TILE_SIZE) as u64;

    out.fill(Vec3::ZERO);
    // Off-screen pixels of partial tiles never participate.
    for ly in 0..n {
        for lx in 0..n {
            let px = origin.0 + lx as u32;
            let py = origin.1 + ly as u32;
            if px >= width || py >= height {
                done[ly * n + lx] = true;
            }
        }
    }

    'splat_loop: for ki in range.0..range.1 {
        outcome.consumed_entries += 1;
        let s = &splats[keys[ki as usize].splat as usize];

        // Clip the pixel loop to the splat's support ∩ this tile. Pixels
        // outside the support are provably below ALPHA_EPS (see
        // `projection::support_bbox`), so skipping them changes no state.
        let (gx0, gx1) = pixel_span(s.bbox_px.0, s.bbox_px.2);
        let (gy0, gy1) = pixel_span(s.bbox_px.1, s.bbox_px.3);
        let lx0 = gx0.max(origin.0 as i64) - origin.0 as i64;
        let lx1 = gx1.min(origin.0 as i64 + n as i64 - 1) - origin.0 as i64;
        let ly0 = gy0.max(origin.1 as i64) - origin.1 as i64;
        let ly1 = gy1.min(origin.1 as i64 + n as i64 - 1) - origin.1 as i64;
        if lx0 > lx1 || ly0 > ly1 {
            continue;
        }

        // Margin-backed power threshold: any pixel whose Gaussian power
        // falls below it is *proven* to blend at alpha < ALPHA_EPS, so the
        // `exp` can be skipped while the `skipped` counter still advances
        // exactly as the evaluate-then-compare path would.
        let cull = gs_core::ewa::cull_power_threshold(s.opacity, ALPHA_EPS);
        for ly in ly0 as usize..=ly1 as usize {
            let row = ly * n;
            let py = (origin.1 + ly as u32) as f32 + 0.5;
            let rowf = gs_core::ewa::RowFalloff::new(s.conic, py - s.mean_px.y);
            for lx in lx0 as usize..=lx1 as usize {
                let pi = row + lx;
                if done[pi] {
                    continue;
                }
                let px = (origin.0 + lx as u32) as f32 + 0.5;
                let power = rowf.power_at(px - s.mean_px.x);
                if power < cull {
                    outcome.skipped += 1;
                    continue;
                }
                let alpha = (s.opacity * gs_core::ewa::falloff_from_power(power)).min(ALPHA_MAX);
                if alpha < ALPHA_EPS {
                    outcome.skipped += 1;
                    continue;
                }
                let t = transmittance[pi];
                out[pi] += s.color * (alpha * t);
                transmittance[pi] = t * (1.0 - alpha);
                outcome.fragments += 1;
                if transmittance[pi] < TRANSMITTANCE_EPS {
                    done[pi] = true;
                    outcome.early_terminated += 1;
                    live -= 1;
                    if live == 0 {
                        break 'splat_loop;
                    }
                }
            }
        }
    }

    // Composite the background through the remaining transmittance.
    for ly in 0..n {
        for lx in 0..n {
            let pi = ly * n + lx;
            let px = origin.0 + lx as u32;
            let py = origin.1 + ly as u32;
            if px < width && py < height {
                out[pi] += background * transmittance[pi];
            }
        }
    }
    outcome
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::projection::{support_bbox, FULL_BBOX};
    use gs_core::sym::Sym2;

    fn tight_splat(x: f32, y: f32, color: Vec3, opacity: f32, depth: f32) -> Splat {
        // Very tight conic → only the centre pixel sees meaningful alpha.
        let conic = Sym2::new(8.0, 0.0, 8.0);
        let cov2d = conic.inverse().unwrap();
        let mean_px = gs_core::vec::Vec2::new(x, y);
        Splat {
            mean_px,
            conic,
            color,
            opacity,
            depth,
            tile_rect: (0, 0, 0, 0),
            bbox_px: support_bbox(mean_px, cov2d, opacity),
        }
    }

    fn run(splats: &[Splat], background: Vec3) -> (Vec<Vec3>, TileOutcome) {
        let keys: Vec<TileKey> = {
            let mut ks: Vec<TileKey> = splats
                .iter()
                .enumerate()
                .map(|(i, s)| TileKey {
                    key: crate::binning::depth_bits(s.depth) as u64,
                    splat: i as u32,
                })
                .collect();
            ks.sort_unstable_by_key(|k| k.key);
            ks
        };
        let mut out = vec![Vec3::ZERO; (TILE_SIZE * TILE_SIZE) as usize];
        let mut scratch = TileScratch::new();
        let o = rasterize_tile(
            splats,
            &keys,
            (0, keys.len() as u32),
            (0, 0),
            TILE_SIZE,
            TILE_SIZE,
            background,
            &mut scratch,
            &mut out,
        );
        (out, o)
    }

    #[test]
    fn empty_tile_is_background() {
        let bg = Vec3::new(0.1, 0.2, 0.3);
        let (out, o) = run(&[], bg);
        assert!(out.iter().all(|p| (*p - bg).length() < 1e-6));
        assert_eq!(o.fragments, 0);
    }

    #[test]
    fn opaque_splat_dominates_its_pixel() {
        let s = tight_splat(8.5, 8.5, Vec3::new(1.0, 0.0, 0.0), 0.99, 1.0);
        let (out, o) = run(std::slice::from_ref(&s), Vec3::ZERO);
        let center = out[8 * TILE_SIZE as usize + 8];
        assert!(center.x > 0.9, "center {center}");
        assert!(o.fragments > 0);
    }

    #[test]
    fn front_to_back_order_matters() {
        // A near-opaque red in front of a green: pixel should be mostly red
        // regardless of submission order (sorting fixes it).
        let red = tight_splat(8.5, 8.5, Vec3::new(1.0, 0.0, 0.0), 0.95, 1.0);
        let green = tight_splat(8.5, 8.5, Vec3::new(0.0, 1.0, 0.0), 0.95, 2.0);
        let (a, _) = run(&[red, green], Vec3::ZERO);
        let (b, _) = run(&[green, red], Vec3::ZERO);
        let pa = a[8 * TILE_SIZE as usize + 8];
        let pb = b[8 * TILE_SIZE as usize + 8];
        assert!(
            (pa - pb).length() < 1e-6,
            "sorting should make order irrelevant"
        );
        assert!(pa.x > pa.y, "red should dominate");
    }

    #[test]
    fn transmittance_monotonically_reduces_background() {
        let s = tight_splat(8.5, 8.5, Vec3::ZERO, 0.9, 1.0);
        let bg = Vec3::ONE;
        let (out, _) = run(std::slice::from_ref(&s), bg);
        let center = out[8 * TILE_SIZE as usize + 8];
        // Black splat at alpha≈0.9 over a white background → ≈0.1 white left.
        assert!(center.x < 0.2);
        let corner = out[0];
        assert!((corner - bg).length() < 0.05, "far corner nearly untouched");
    }

    #[test]
    fn early_termination_counts() {
        // Many opaque splats on the same pixel: it must terminate early.
        let splats: Vec<Splat> = (0..20)
            .map(|i| tight_splat(8.5, 8.5, Vec3::ONE, 0.99, 1.0 + i as f32))
            .collect();
        let (_, o) = run(&splats, Vec3::ZERO);
        assert!(o.early_terminated >= 1);
    }

    #[test]
    fn partial_tile_clips_offscreen_pixels() {
        let s = tight_splat(2.5, 2.5, Vec3::ONE, 0.9, 1.0);
        let keys = [TileKey { key: 0, splat: 0 }];
        let mut out = vec![Vec3::ZERO; (TILE_SIZE * TILE_SIZE) as usize];
        let mut scratch = TileScratch::new();
        // Frame is only 4×4 pixels.
        let o = rasterize_tile(
            std::slice::from_ref(&s),
            &keys,
            (0, 1),
            (0, 0),
            4,
            4,
            Vec3::ONE,
            &mut scratch,
            &mut out,
        );
        // Offscreen pixel stays black (no background composite).
        assert_eq!(out[10 * TILE_SIZE as usize + 10], Vec3::ZERO);
        assert!(o.fragments > 0);
    }

    #[test]
    fn alpha_below_eps_is_skipped() {
        // Force naive-scan semantics with a full bbox: every pixel is
        // evaluated and counted as skipped.
        let mut s = tight_splat(8.5, 8.5, Vec3::ONE, 0.0005, 1.0);
        s.bbox_px = FULL_BBOX;
        let (_, o) = run(std::slice::from_ref(&s), Vec3::ZERO);
        assert_eq!(o.fragments, 0);
        assert!(o.skipped > 0);
    }

    #[test]
    fn sub_threshold_opacity_has_empty_support() {
        // The same splat with its derived (empty) bbox: nothing is even
        // evaluated, which is the whole point of footprint clipping.
        let s = tight_splat(8.5, 8.5, Vec3::ONE, 0.0005, 1.0);
        assert_eq!(s.bbox_px, crate::projection::EMPTY_BBOX);
        let (_, o) = run(std::slice::from_ref(&s), Vec3::ZERO);
        assert_eq!(o.fragments, 0);
        assert_eq!(o.skipped, 0);
        assert_eq!(o.consumed_entries, 1);
    }

    #[test]
    fn bbox_clip_matches_full_scan_state() {
        // A mid-size splat: clipped and full-bbox scans must produce the
        // same image and the same fragment counter.
        let conic = Sym2::new(0.08, 0.01, 0.06);
        let cov2d = conic.inverse().unwrap();
        let mean = gs_core::vec::Vec2::new(7.0, 9.0);
        let clipped = Splat {
            mean_px: mean,
            conic,
            color: Vec3::new(0.9, 0.5, 0.2),
            opacity: 0.8,
            depth: 1.0,
            tile_rect: (0, 0, 0, 0),
            bbox_px: support_bbox(mean, cov2d, 0.8),
        };
        let mut full = clipped;
        full.bbox_px = FULL_BBOX;
        let (img_a, o_a) = run(std::slice::from_ref(&clipped), Vec3::ZERO);
        let (img_b, o_b) = run(std::slice::from_ref(&full), Vec3::ZERO);
        assert_eq!(img_a, img_b);
        assert_eq!(o_a.fragments, o_b.fragments);
        assert_eq!(o_a.early_terminated, o_b.early_terminated);
    }
}
