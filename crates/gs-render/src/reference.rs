//! The seed (naive) tile-centric pipeline, preserved as ground truth.
//!
//! This module keeps the pre-optimization hot path alive so that tests can
//! prove the optimized pipeline is **image-identical and
//! counter-identical**, and so `gs-bench`'s `hotpath` benchmark can measure
//! the speedup. Three deliberate inefficiencies are retained:
//!
//! 1. [`rasterize_tile_reference`] evaluates every splat against **all**
//!    `TILE_SIZE × TILE_SIZE` pixels of every tile it touches (no footprint
//!    clipping) — the redundancy the StreamingGS paper calls out in the
//!    conventional pipeline.
//! 2. [`bin_and_sort_reference`] runs a global comparison sort over all
//!    (tile, depth) pairs instead of the two-pass counting sort.
//! 3. [`render_reference`] allocates every intermediate buffer per frame
//!    (no arena, no worker pool; single-threaded).
//!
//! Counting rule: like the optimized path, a below-threshold evaluation is
//! only *counted* as skipped when the pixel lies inside the splat's support
//! rectangle — the reference still performs the full-tile evaluation work,
//! but the counters stay comparable bit-for-bit.

use crate::binning::{depth_bits, TileKey};
use crate::projection::{project_cloud, tile_grid, Splat};
use crate::rasterize::{pixel_span, TileOutcome};
use crate::renderer::{tile_origin, RenderConfig, RenderOutput};
use crate::stats::RenderStats;
use crate::{ALPHA_EPS, ALPHA_MAX, TILE_SIZE, TRANSMITTANCE_EPS};
use gs_core::camera::Camera;
use gs_core::image::ImageRgb;
use gs_core::vec::{Vec2, Vec3};
use gs_scene::GaussianCloud;

/// Naive full-tile-scan rasterizer (see module docs). Same contract as
/// [`crate::rasterize::rasterize_tile`] minus the reusable scratch.
#[allow(clippy::too_many_arguments)]
pub fn rasterize_tile_reference(
    splats: &[Splat],
    keys: &[TileKey],
    range: (u32, u32),
    origin: (u32, u32),
    width: u32,
    height: u32,
    background: Vec3,
    out: &mut [Vec3],
) -> TileOutcome {
    debug_assert_eq!(out.len(), (TILE_SIZE * TILE_SIZE) as usize);
    let mut outcome = TileOutcome::default();
    let n = TILE_SIZE as usize;

    let mut transmittance = [1.0f32; (TILE_SIZE * TILE_SIZE) as usize];
    let mut done = [false; (TILE_SIZE * TILE_SIZE) as usize];
    let mut live = (width.saturating_sub(origin.0)).min(TILE_SIZE) as u64
        * (height.saturating_sub(origin.1)).min(TILE_SIZE) as u64;

    out.fill(Vec3::ZERO);
    for ly in 0..n {
        for lx in 0..n {
            let px = origin.0 + lx as u32;
            let py = origin.1 + ly as u32;
            if px >= width || py >= height {
                done[ly * n + lx] = true;
            }
        }
    }

    'splat_loop: for ki in range.0..range.1 {
        outcome.consumed_entries += 1;
        let s = &splats[keys[ki as usize].splat as usize];
        // Support bounds used for the *counting rule* only — the loop below
        // still scans the full tile.
        let (gx0, gx1) = pixel_span(s.bbox_px.0, s.bbox_px.2);
        let (gy0, gy1) = pixel_span(s.bbox_px.1, s.bbox_px.3);
        for ly in 0..n {
            for lx in 0..n {
                let pi = ly * n + lx;
                if done[pi] {
                    continue;
                }
                let px = (origin.0 + lx as u32) as f32 + 0.5;
                let py = (origin.1 + ly as u32) as f32 + 0.5;
                let d = Vec2::new(px - s.mean_px.x, py - s.mean_px.y);
                let w = gs_core::ewa::falloff(s.conic, d);
                let alpha = (s.opacity * w).min(ALPHA_MAX);
                if alpha < ALPHA_EPS {
                    let gx = (origin.0 + lx as u32) as i64;
                    let gy = (origin.1 + ly as u32) as i64;
                    if gx >= gx0 && gx <= gx1 && gy >= gy0 && gy <= gy1 {
                        outcome.skipped += 1;
                    }
                    continue;
                }
                let t = transmittance[pi];
                out[pi] += s.color * (alpha * t);
                transmittance[pi] = t * (1.0 - alpha);
                outcome.fragments += 1;
                if transmittance[pi] < TRANSMITTANCE_EPS {
                    done[pi] = true;
                    outcome.early_terminated += 1;
                    live -= 1;
                    if live == 0 {
                        break 'splat_loop;
                    }
                }
            }
        }
    }

    for ly in 0..n {
        for lx in 0..n {
            let pi = ly * n + lx;
            let px = origin.0 + lx as u32;
            let py = origin.1 + ly as u32;
            if px < width && py < height {
                out[pi] += background * transmittance[pi];
            }
        }
    }
    outcome
}

/// Naive binning: materialize every (tile, depth) pair and globally
/// comparison-sort, exactly as the seed pipeline did (plus the splat-index
/// tie-break so equal-depth ordering matches the counting sort).
pub fn bin_and_sort_reference(
    splats: &[Splat],
    tiles_x: u32,
    tiles_y: u32,
) -> (Vec<TileKey>, Vec<(u32, u32)>) {
    let mut keys = Vec::new();
    for (si, s) in splats.iter().enumerate() {
        let (x0, y0, x1, y1) = s.tile_rect;
        let d = depth_bits(s.depth) as u64;
        for ty in y0..=y1 {
            for tx in x0..=x1 {
                let tile_id = (ty * tiles_x + tx) as u64;
                keys.push(TileKey {
                    key: (tile_id << 32) | d,
                    splat: si as u32,
                });
            }
        }
    }
    keys.sort_unstable_by_key(|k| (k.key, k.splat));

    let n_tiles = (tiles_x * tiles_y) as usize;
    let mut ranges = vec![(0u32, 0u32); n_tiles];
    let mut i = 0usize;
    while i < keys.len() {
        let tile = (keys[i].key >> 32) as usize;
        let start = i;
        while i < keys.len() && (keys[i].key >> 32) as usize == tile {
            i += 1;
        }
        ranges[tile] = (start as u32, i as u32);
    }
    (keys, ranges)
}

/// Renders a frame through the naive pipeline: per-frame allocations,
/// comparison-sort binning, full-tile-scan rasterization, single-threaded.
///
/// Produces the same `RenderOutput` (image **and** stats, with one caveat)
/// as `TileRenderer::render` with `threads: 1`; the caveat is none — the
/// shared counting rule (see module docs) makes even `skipped_fragments`
/// agree. The exactness tests in `tests/exactness.rs` assert both.
///
/// Note one representational difference from [`bin_and_sort_reference`]'s
/// seed version: empty tiles here keep range `(0, 0)` while the counting
/// sort emits `(k, k)` at the running prefix; both are empty slices and all
/// derived statistics agree.
pub fn render_reference(
    config: &RenderConfig,
    cloud: &GaussianCloud,
    cam: &Camera,
) -> RenderOutput {
    let width = cam.width();
    let height = cam.height();
    let (tiles_x, tiles_y) = tile_grid(width, height);
    let n_tiles = (tiles_x * tiles_y) as usize;

    // Stage 1: projection (fresh allocation, indices immediately dropped).
    let projected = project_cloud(cloud.as_slice(), cam, config.sh_degree);
    let splats: Vec<Splat> = projected.iter().map(|(_, s)| *s).collect();

    // Stage 2: global comparison sort.
    let (keys, ranges) = bin_and_sort_reference(&splats, tiles_x, tiles_y);

    // Stage 3: sequential full-scan rasterization, one fresh buffer per tile.
    let mut image = ImageRgb::new(width, height);
    let mut fragments = 0u64;
    let mut skipped = 0u64;
    let mut early = 0u64;
    let mut consumed = 0u64;
    #[allow(clippy::needless_range_loop)]
    for t in 0..n_tiles {
        let mut buf = vec![Vec3::ZERO; (TILE_SIZE * TILE_SIZE) as usize];
        let origin = tile_origin(t, tiles_x);
        let outcome = rasterize_tile_reference(
            &splats,
            &keys,
            ranges[t],
            origin,
            width,
            height,
            config.background,
            &mut buf,
        );
        for ly in 0..TILE_SIZE {
            for lx in 0..TILE_SIZE {
                let px = origin.0 + lx;
                let py = origin.1 + ly;
                if px < width && py < height {
                    image.set(px, py, buf[(ly * TILE_SIZE + lx) as usize]);
                }
            }
        }
        fragments += outcome.fragments;
        skipped += outcome.skipped;
        early += outcome.early_terminated;
        consumed += outcome.consumed_entries;
    }

    let occupied = ranges.iter().filter(|(a, b)| b > a).count() as u64;
    let max_list = ranges
        .iter()
        .map(|(a, b)| (b - a) as u64)
        .max()
        .unwrap_or(0);
    let stats = RenderStats {
        total_gaussians: cloud.len() as u64,
        visible_gaussians: splats.len() as u64,
        tile_pairs: keys.len() as u64,
        occupied_tiles: occupied,
        total_tiles: n_tiles as u64,
        pixels: width as u64 * height as u64,
        blended_fragments: fragments,
        skipped_fragments: skipped,
        early_terminated_pixels: early,
        consumed_entries: consumed,
        max_tile_list: max_list,
    };
    RenderOutput { image, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::bin_and_sort;
    use gs_scene::{SceneConfig, SceneKind};

    #[test]
    fn reference_binning_matches_counting_sort() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let splats: Vec<Splat> = project_cloud(scene.trained.as_slice(), cam, 3)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let (tiles_x, tiles_y) = tile_grid(cam.width(), cam.height());
        let (k_ref, r_ref) = bin_and_sort_reference(&splats, tiles_x, tiles_y);
        let (k_opt, r_opt) = bin_and_sort(&splats, tiles_x, tiles_y);
        assert_eq!(k_ref, k_opt, "key order must match bit-for-bit");
        // Ranges may differ representationally on empty tiles only.
        for (a, b) in r_ref.iter().zip(r_opt.iter()) {
            if a.1 > a.0 || b.1 > b.0 {
                assert_eq!(a, b);
            }
        }
    }
}
