//! Hierarchical filtering: coarse (4-parameter) and fine (full) tests.
//!
//! Phase 1 reads only position + max scale (16 B) and conservatively tests
//! the projected disc against the tile (55 MACs). Phase 2 fetches the
//! compressed remainder, projects precisely (427 MACs), and keeps only
//! Gaussians whose exact footprint overlaps the tile (paper Sec. III-B).

use gs_core::camera::Camera;
use gs_core::ewa::{project_coarse, project_gaussian};
use gs_core::sym::Sym2;
use gs_core::vec::{Vec2, Vec3};
use gs_scene::Gaussian;

/// A tile's pixel-space rectangle `[x0, x1) × [y0, y1)`.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct TileRect {
    pub x0: f32,
    pub y0: f32,
    pub x1: f32,
    pub y1: f32,
}

impl TileRect {
    /// Builds the rect of tile `(tx, ty)` with `tile` pixel granularity,
    /// clipped to the `width`×`height` frame.
    pub fn of_tile(tx: u32, ty: u32, tile: u32, width: u32, height: u32) -> TileRect {
        TileRect {
            x0: (tx * tile) as f32,
            y0: (ty * tile) as f32,
            x1: ((tx + 1) * tile).min(width) as f32,
            y1: ((ty + 1) * tile).min(height) as f32,
        }
    }

    /// The rect's pixel bounds as half-open integer ranges
    /// `[x0, x1) × [y0, y1)`, clamped to a `width`×`height` frame.
    ///
    /// `x1`/`y1` are rounded **up** so a fractional rect never loses its
    /// last pixel column/row. Rects built by [`TileRect::of_tile`] are
    /// integer-valued, where this is exact; the streaming renderer walks
    /// these integer bounds instead of comparing a counter against the
    /// `f32` edges in its hot loop (which would drift once coordinates
    /// exceed `f32`'s exact-integer range).
    pub fn pixel_bounds(&self, width: u32, height: u32) -> (u32, u32, u32, u32) {
        let lo = |v: f32| v.max(0.0) as u32;
        let hi = |v: f32, max: u32| (v.ceil().max(0.0) as u32).min(max);
        (
            lo(self.x0).min(width),
            lo(self.y0).min(height),
            hi(self.x1, width),
            hi(self.y1, height),
        )
    }

    /// `true` when a disc (`center`, `radius`) overlaps the rect.
    ///
    /// The rect is half-open (`[x0, x1) × [y0, y1)`): a disc touching only
    /// the excluded right/bottom edge does **not** overlap. (The seed
    /// clamped to the closed rect, so such discs leaked through the coarse
    /// filter while the rect's pixels — centred at `x0 + 0.5 … x1 - 0.5` —
    /// belong to the neighbouring tile.)
    pub fn overlaps_disc(&self, center: Vec2, radius: f32) -> bool {
        let cx = center.x.clamp(self.x0, self.x1);
        let cy = center.y.clamp(self.y0, self.y1);
        let dx = center.x - cx;
        let dy = center.y - cy;
        let d2 = dx * dx + dy * dy;
        let r2 = radius * radius;
        if d2 > r2 {
            return false;
        }
        if d2 == r2 && d2 > 0.0 {
            // Tangency: the disc meets the closed rect only at the clamped
            // contact point — which counts only when it lies in the
            // half-open domain (covers the diagonal corner graze the
            // edge-extent checks below cannot see).
            return cx < self.x1 && cy < self.y1;
        }
        // Half-open exclusion: the disc must extend strictly left of `x1`
        // and strictly above `y1` to reach any point of the rect.
        center.x - radius < self.x1 && center.y - radius < self.y1
    }
}

/// Phase-1 result: the Gaussian may intersect the tile.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CoarsePass {
    /// Projected centre (pixels).
    pub mean_px: Vec2,
    /// Conservative radius (pixels).
    pub radius_px: f32,
    /// Camera-space depth.
    pub depth: f32,
}

/// Coarse filter: 4 parameters only. `None` = culled.
pub fn coarse_test(cam: &Camera, pos: Vec3, s_max: f32, rect: &TileRect) -> Option<CoarsePass> {
    let p = project_coarse(cam, pos, s_max)?;
    // Corrupted inputs (a blind-read page with flipped bits decodes to
    // arbitrary floats) must not leak a NaN/∞ disc downstream; finite
    // projections — every uncorrupted Gaussian — are unaffected.
    if !(p.mean_px.x.is_finite() && p.mean_px.y.is_finite() && p.radius_px.is_finite()) {
        return None;
    }
    if rect.overlaps_disc(p.mean_px, p.radius_px) {
        Some(CoarsePass {
            mean_px: p.mean_px,
            radius_px: p.radius_px,
            depth: p.depth,
        })
    } else {
        None
    }
}

/// Phase-2 result: everything the sorter/renderer needs for one Gaussian.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FineSplat {
    /// Projected mean (pixels).
    pub mean_px: Vec2,
    /// Inverse 2-D covariance.
    pub conic: Sym2,
    /// View-dependent RGB.
    pub color: Vec3,
    /// Opacity.
    pub opacity: f32,
    /// Camera-space depth.
    pub depth: f32,
    /// Exact screen radius (pixels).
    pub radius_px: f32,
}

/// Fine filter: full parameters, precise projection + exact tile test.
/// `None` = culled (the coarse disc overlapped but the true ellipse does
/// not, e.g. Gaussian 3 in paper Fig. 5).
///
/// The intersection test uses the projected ellipse's per-axis 3σ extents
/// (`3·√Σxx`, `3·√Σyy`) — strictly tighter than the coarse disc of radius
/// `3·√λmax`, which is what makes the second filtering phase worthwhile.
pub fn fine_test(cam: &Camera, g: &Gaussian, rect: &TileRect, sh_degree: u8) -> Option<FineSplat> {
    let p = project_gaussian(cam, g.pos, g.cov3d())?;
    let rx = 3.0 * p.cov2d.a.max(0.0).sqrt();
    let ry = 3.0 * p.cov2d.c.max(0.0).sqrt();
    // Half-open rect: the left/top edges are inclusive (`+ext < x0` culls),
    // the right/bottom edges exclusive (`-ext >= x1` culls). The seed used
    // `> rect.x1`, so a splat touching only the excluded right/bottom edge
    // passed the fine filter while `overlaps_disc` (closed at the time)
    // agreed — both now share the half-open contract.
    if p.mean_px.x + rx < rect.x0
        || p.mean_px.x - rx >= rect.x1
        || p.mean_px.y + ry < rect.y0
        || p.mean_px.y - ry >= rect.y1
    {
        return None;
    }
    // Non-finite geometry, opacity or colour (possible only from corrupted
    // or degraded records) would poison every pixel it blends into — NaN
    // compares false against the alpha/saturation thresholds. Cull here;
    // finite splats are untouched.
    if !(p.mean_px.x.is_finite()
        && p.mean_px.y.is_finite()
        && rx.is_finite()
        && ry.is_finite()
        && p.depth.is_finite()
        && g.opacity.is_finite())
    {
        return None;
    }
    let dir = (g.pos - cam.pose.center()).normalized();
    let color = gs_core::sh::eval_color(&g.sh, dir, sh_degree);
    if !(color.x.is_finite() && color.y.is_finite() && color.z.is_finite()) {
        return None;
    }
    Some(FineSplat {
        mean_px: p.mean_px,
        conic: p.conic,
        color,
        opacity: g.opacity,
        depth: p.depth,
        radius_px: p.radius_px,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use gs_core::Quat;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y, 128, 96, 1.0)
    }

    fn center_rect() -> TileRect {
        // The 16×16 tile containing the principal point (64, 48).
        TileRect {
            x0: 48.0,
            y0: 32.0,
            x1: 80.0,
            y1: 64.0,
        }
    }

    #[test]
    fn rect_disc_overlap_cases() {
        let r = TileRect {
            x0: 0.0,
            y0: 0.0,
            x1: 16.0,
            y1: 16.0,
        };
        assert!(r.overlaps_disc(Vec2::new(8.0, 8.0), 1.0), "inside");
        assert!(r.overlaps_disc(Vec2::new(-2.0, 8.0), 3.0), "left edge");
        assert!(!r.overlaps_disc(Vec2::new(-5.0, 8.0), 3.0), "too far left");
        assert!(r.overlaps_disc(Vec2::new(18.0, 18.0), 3.0), "corner");
        assert!(!r.overlaps_disc(Vec2::new(20.0, 20.0), 3.0), "past corner");
    }

    #[test]
    fn disc_touching_only_excluded_edges_misses() {
        // Half-open rect [0,16)×[0,16): discs whose closest approach is
        // exactly the right or bottom edge must not overlap, while the
        // inclusive left/top edges still count.
        let r = TileRect {
            x0: 0.0,
            y0: 0.0,
            x1: 16.0,
            y1: 16.0,
        };
        // Touching exactly x = x1 from the right: excluded.
        assert!(!r.overlaps_disc(Vec2::new(19.0, 8.0), 3.0), "right edge");
        // Touching exactly y = y1 from below: excluded.
        assert!(!r.overlaps_disc(Vec2::new(8.0, 19.0), 3.0), "bottom edge");
        // Touching exactly the excluded corner point (16,16): excluded.
        assert!(
            !r.overlaps_disc(Vec2::new(16.0, 19.0), 3.0),
            "corner via bottom"
        );
        // Diagonal tangency at the excluded corner: contact point is
        // exactly (16,16) via a 3-4-5 triangle — excluded.
        assert!(
            !r.overlaps_disc(Vec2::new(19.0, 20.0), 5.0),
            "diagonal corner graze"
        );
        // The same diagonal tangency at the *included* top-left corner.
        assert!(
            r.overlaps_disc(Vec2::new(-3.0, -4.0), 5.0),
            "included corner tangency"
        );
        // A hair inside still overlaps.
        assert!(r.overlaps_disc(Vec2::new(18.99, 8.0), 3.0), "just inside");
        // The inclusive left/top edges keep closed semantics.
        assert!(r.overlaps_disc(Vec2::new(-3.0, 8.0), 3.0), "left edge");
        assert!(r.overlaps_disc(Vec2::new(8.0, -3.0), 3.0), "top edge");
    }

    #[test]
    fn of_tile_clips_to_frame() {
        let r = TileRect::of_tile(7, 5, 16, 120, 90);
        assert_eq!(r.x1, 120.0);
        assert_eq!(r.y1, 90.0);
    }

    #[test]
    fn coarse_passes_center_gaussian() {
        let c = cam();
        let p = coarse_test(&c, Vec3::ZERO, 0.1, &center_rect());
        assert!(p.is_some());
        let p = p.unwrap();
        assert!(p.depth > 0.0);
        assert!(p.radius_px > 0.0);
    }

    #[test]
    fn coarse_culls_far_offscreen_gaussian() {
        let c = cam();
        // Project onto a tile far from the centre: tiny Gaussian at the
        // frame centre cannot touch a corner tile.
        let corner = TileRect {
            x0: 0.0,
            y0: 0.0,
            x1: 16.0,
            y1: 16.0,
        };
        assert!(coarse_test(&c, Vec3::ZERO, 0.01, &corner).is_none());
        // Behind the camera is culled outright.
        assert!(coarse_test(&c, Vec3::new(0.0, 0.0, -10.0), 0.1, &corner).is_none());
    }

    #[test]
    fn coarse_is_conservative_wrt_fine() {
        // Whenever the fine test passes, the coarse test must also pass
        // (with s_max ≥ every true scale). Sweep positions and shapes.
        let c = cam();
        let rect = center_rect();
        for i in 0..100 {
            let t = i as f32 / 100.0;
            let mut g = Gaussian::isotropic(
                Vec3::new(t - 0.5, 0.4 * t - 0.2, t * 0.6),
                0.05,
                Vec3::ONE,
                0.9,
            );
            g.scale = Vec3::new(0.02 + 0.1 * t, 0.07, 0.12 * (1.0 - t) + 0.01);
            g.rot = Quat::from_axis_angle(Vec3::new(1.0, t, 0.3), 2.0 * t);
            let fine = fine_test(&c, &g, &rect, 3);
            if fine.is_some() {
                assert!(
                    coarse_test(&c, g.pos, g.max_scale(), &rect).is_some(),
                    "coarse filter wrongly culled a visible Gaussian (i={i})"
                );
            }
        }
    }

    #[test]
    fn fine_culls_what_coarse_keeps() {
        // An elongated Gaussian whose conservative disc hits the tile but
        // whose true narrow ellipse does not: coarse passes, fine culls.
        // World y = −0.6 projects *below* the image centre (v ≈ 62), so the
        // bottom-centre tile is the one the disc grazes.
        let c = cam();
        let rect = TileRect {
            x0: 48.0,
            y0: 80.0,
            x1: 80.0,
            y1: 96.0,
        };
        let mut g = Gaussian::isotropic(Vec3::new(0.0, -0.6, 0.0), 0.02, Vec3::ONE, 0.9);
        // Long axis along x (horizontal), far below the tile vertically.
        g.scale = Vec3::new(0.55, 0.01, 0.01);
        let coarse = coarse_test(&c, g.pos, g.max_scale(), &rect);
        let fine = fine_test(&c, &g, &rect, 3);
        assert!(coarse.is_some(), "conservative disc should reach the tile");
        assert!(fine.is_none(), "precise ellipse must not");
    }

    #[test]
    fn fine_test_half_open_tile_edges() {
        // Build a rect whose excluded right edge sits exactly at the
        // splat's leftmost 3σ extent: the splat touches only x = x1, so the
        // half-open fine test must cull it (the seed's `> x1` kept it).
        use gs_core::ewa::project_gaussian;
        let c = cam();
        let g = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::ONE, 0.9);
        let p = project_gaussian(&c, g.pos, g.cov3d()).unwrap();
        let rx = 3.0 * p.cov2d.a.max(0.0).sqrt();
        let ry = 3.0 * p.cov2d.c.max(0.0).sqrt();

        let touching_right = TileRect {
            x0: p.mean_px.x - rx - 32.0,
            y0: p.mean_px.y - 8.0,
            x1: p.mean_px.x - rx,
            y1: p.mean_px.y + 8.0,
        };
        assert!(
            fine_test(&c, &g, &touching_right, 3).is_none(),
            "splat grazing only the excluded right edge must be culled"
        );
        let just_past = TileRect {
            x1: p.mean_px.x - rx + 0.25,
            ..touching_right
        };
        assert!(
            fine_test(&c, &g, &just_past, 3).is_some(),
            "splat reaching past the right edge must survive"
        );

        // The left edge is inclusive: a splat whose rightmost extent ends
        // exactly at x0 still belongs to this tile.
        let touching_left = TileRect {
            x0: p.mean_px.x + rx,
            y0: p.mean_px.y - 8.0,
            x1: p.mean_px.x + rx + 32.0,
            y1: p.mean_px.y + 8.0,
        };
        assert!(
            fine_test(&c, &g, &touching_left, 3).is_some(),
            "splat touching the inclusive left edge must survive"
        );

        // Same contract vertically.
        let touching_bottom = TileRect {
            x0: p.mean_px.x - 8.0,
            y0: p.mean_px.y - ry - 32.0,
            x1: p.mean_px.x + 8.0,
            y1: p.mean_px.y - ry,
        };
        assert!(
            fine_test(&c, &g, &touching_bottom, 3).is_none(),
            "splat grazing only the excluded bottom edge must be culled"
        );
    }

    #[test]
    fn fine_splat_carries_color_and_depth() {
        let c = cam();
        let g = Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::new(0.9, 0.1, 0.2), 0.7);
        let s = fine_test(&c, &g, &center_rect(), 3).unwrap();
        assert!((s.color - Vec3::new(0.9, 0.1, 0.2)).length() < 1e-4);
        assert!((s.depth - 5.0).abs() < 0.01);
        assert_eq!(s.opacity, 0.7);
    }
}
