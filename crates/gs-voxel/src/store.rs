//! The voxel-resident columnar store: the DRAM image of a prepared scene.
//!
//! This is the byte-level realization of the paper's customized data layout
//! (Fig. 8). Gaussians live voxel-contiguously in two parallel columns:
//!
//! * **first half** — [`gs_scene::gaussian::COARSE_BYTES`] (16 B) per
//!   Gaussian: `[x, y, z, s_max]` as raw f32 bytes. This is the *only*
//!   data the coarse-grained filter touches.
//! * **second half** — either the raw 55-parameter remainder
//!   ([`gs_scene::gaussian::FINE_BYTES_RAW`], 220 B) or a VQ index record
//!   ([`gs_vq::FeatureCodebooks::record_bytes`], 13 B at paper-size
//!   codebooks) decoded through the on-chip codebooks on fetch. Only
//!   coarse-filter survivors ever read this column.
//!
//! Alongside the columns ride the per-voxel slot ranges and the global
//! Gaussian id per slot (the renaming/index metadata the VSU keeps; the raw
//! layout also carries a 2-bit max-axis tag here, since the 220 B record
//! stores only the two non-maximum scales — see
//! [`gs_scene::Gaussian::fine_record`]).
//!
//! Every fetch is metered through a [`gs_mem::TrafficLedger`]
//! (`VoxelCoarse` / `VoxelFine` read stages), which makes the store the
//! single source of byte truth for the streaming renderer and everything
//! priced from it. Decodes are **bit-exact**: a raw store returns the
//! original [`Gaussian`] bit-for-bit, a VQ store returns exactly
//! [`gs_vq::QuantizedCloud::decode_one`].

use crate::grid::VoxelGrid;
use gs_core::vec::Vec3;
use gs_mem::{Direction, Stage, TrafficLedger};
use gs_scene::gaussian::{COARSE_BYTES, FINE_BYTES_RAW};
use gs_scene::{Gaussian, GaussianCloud};
use gs_vq::{FeatureCodebooks, QuantizedCloud};

/// The second-half column: raw parameters or VQ index records.
#[derive(Clone, Debug)]
enum SecondHalf {
    /// Uncompressed 220 B records plus the per-slot max-axis layout tag
    /// (metadata, not counted as record traffic).
    Raw { bytes: Vec<u8>, max_axis: Vec<u8> },
    /// Serialized index records decoded through the (on-chip) codebooks.
    Vq {
        bytes: Vec<u8>,
        codebooks: FeatureCodebooks,
        record_bytes: usize,
    },
}

/// Per-voxel contiguous columnar storage with metered, bit-exact fetches.
///
/// Built once at scene preparation ([`VoxelStore::from_cloud`] /
/// [`VoxelStore::from_quantized`]); the streaming renderer's coarse and
/// fine phases read **only** from here.
#[derive(Clone, Debug)]
pub struct VoxelStore {
    /// Slot range per renamed voxel (mirrors the grid's layout).
    ranges: Vec<(u32, u32)>,
    /// Global Gaussian id per slot (the DRAM index stream).
    ids: Vec<u32>,
    /// First-half column, [`COARSE_BYTES`] per slot, voxel-contiguous.
    coarse: Vec<u8>,
    /// Second-half column.
    second: SecondHalf,
}

impl VoxelStore {
    /// Builds a raw (uncompressed second half) store over `cloud`,
    /// voxel-contiguous in `grid`'s renamed-voxel order.
    pub fn from_cloud(cloud: &GaussianCloud, grid: &VoxelGrid) -> VoxelStore {
        let (ranges, ids) = layout_of(grid);
        let gs = cloud.as_slice();
        let mut coarse = Vec::with_capacity(ids.len() * COARSE_BYTES);
        let mut bytes = Vec::with_capacity(ids.len() * FINE_BYTES_RAW);
        let mut max_axis = Vec::with_capacity(ids.len());
        for &gi in &ids {
            let g = &gs[gi as usize];
            coarse.extend_from_slice(&g.coarse_record());
            let (fine, axis) = g.fine_record();
            bytes.extend_from_slice(&fine);
            max_axis.push(axis);
        }
        VoxelStore {
            ranges,
            ids,
            coarse,
            second: SecondHalf::Raw { bytes, max_axis },
        }
    }

    /// Builds a VQ store: raw first half (from the quantizer's uncompressed
    /// coarse data, bit-identical to the cloud's) and serialized index
    /// records as the second half, decoded through a copy of the trained
    /// codebooks on fetch.
    ///
    /// # Panics
    ///
    /// Panics when `quant` does not cover every Gaussian of the grid.
    pub fn from_quantized(quant: &QuantizedCloud, grid: &VoxelGrid) -> VoxelStore {
        let (ranges, ids) = layout_of(grid);
        let record_bytes = quant.codebooks.record_bytes() as usize;
        let mut coarse = Vec::with_capacity(ids.len() * COARSE_BYTES);
        let mut bytes = Vec::with_capacity(ids.len() * record_bytes);
        for &gi in &ids {
            let (pos, s_max) = quant.coarse[gi as usize];
            for v in [pos.x, pos.y, pos.z, s_max] {
                coarse.extend_from_slice(&v.to_le_bytes());
            }
            quant
                .codebooks
                .write_record(&quant.records[gi as usize], &mut bytes);
        }
        VoxelStore {
            ranges,
            ids,
            coarse,
            second: SecondHalf::Vq {
                bytes,
                codebooks: quant.codebooks.clone(),
                record_bytes,
            },
        }
    }

    /// Gaussian slots in the store.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the store holds no Gaussians.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of voxels (equals the grid's renamed voxel count).
    pub fn voxel_count(&self) -> usize {
        self.ranges.len()
    }

    /// `true` when the second half holds VQ index records.
    pub fn is_vq(&self) -> bool {
        matches!(self.second, SecondHalf::Vq { .. })
    }

    /// DRAM bytes of one first-half record (16).
    pub fn coarse_bytes_per_gaussian(&self) -> u64 {
        COARSE_BYTES as u64
    }

    /// DRAM bytes of one second-half record (220 raw; the codebooks'
    /// record width for VQ).
    pub fn fine_bytes_per_gaussian(&self) -> u64 {
        match &self.second {
            SecondHalf::Raw { .. } => FINE_BYTES_RAW as u64,
            SecondHalf::Vq { record_bytes, .. } => *record_bytes as u64,
        }
    }

    /// Total resident bytes of the first-half column.
    pub fn coarse_column_bytes(&self) -> u64 {
        self.coarse.len() as u64
    }

    /// Total resident bytes of the second-half column.
    pub fn fine_column_bytes(&self) -> u64 {
        match &self.second {
            SecondHalf::Raw { bytes, .. } => bytes.len() as u64,
            SecondHalf::Vq { bytes, .. } => bytes.len() as u64,
        }
    }

    /// The slot range of renamed voxel `vid`.
    pub fn slots_of(&self, vid: u32) -> std::ops::Range<u32> {
        let (a, b) = self.ranges[vid as usize];
        a..b
    }

    /// Global Gaussian id stored at `slot`.
    pub fn id_of(&self, slot: u32) -> u32 {
        self.ids[slot as usize]
    }

    /// Global Gaussian ids of voxel `vid`, in slot order.
    pub fn ids_of(&self, vid: u32) -> &[u32] {
        let (a, b) = self.ranges[vid as usize];
        &self.ids[a as usize..b as usize]
    }

    /// Streams voxel `vid`'s first-half column: meters the whole voxel's
    /// coarse bytes into `ledger` (`VoxelCoarse`/read — the burst the
    /// accelerator issues regardless of filter outcomes) and returns an
    /// iterator of `(slot, position, max scale)` decoded from the bytes.
    pub fn fetch_coarse<'a>(
        &'a self,
        vid: u32,
        ledger: &mut TrafficLedger,
    ) -> impl Iterator<Item = (u32, Vec3, f32)> + 'a {
        let (a, b) = self.ranges[vid as usize];
        ledger.add(
            Stage::VoxelCoarse,
            Direction::Read,
            (b - a) as u64 * COARSE_BYTES as u64,
        );
        (a..b).map(move |slot| {
            let at = slot as usize * COARSE_BYTES;
            let (pos, s_max) = Gaussian::decode_coarse(&self.coarse[at..at + COARSE_BYTES]);
            (slot, pos, s_max)
        })
    }

    /// Fetches and decodes `slot`'s second-half record, metering its bytes
    /// into `ledger` (`VoxelFine`/read). Bit-exact: raw stores return the
    /// original Gaussian, VQ stores return exactly
    /// [`QuantizedCloud::decode_one`]'s result.
    pub fn fetch_fine(&self, slot: u32, ledger: &mut TrafficLedger) -> Gaussian {
        ledger.add(
            Stage::VoxelFine,
            Direction::Read,
            self.fine_bytes_per_gaussian(),
        );
        let s = slot as usize;
        let coarse = &self.coarse[s * COARSE_BYTES..(s + 1) * COARSE_BYTES];
        match &self.second {
            SecondHalf::Raw { bytes, max_axis } => Gaussian::from_split_record(
                coarse,
                &bytes[s * FINE_BYTES_RAW..(s + 1) * FINE_BYTES_RAW],
                max_axis[s],
            ),
            SecondHalf::Vq {
                bytes,
                codebooks,
                record_bytes,
            } => {
                let (pos, _) = Gaussian::decode_coarse(coarse);
                let r = codebooks.read_record(&bytes[s * record_bytes..(s + 1) * record_bytes]);
                codebooks.decode_record(pos, &r)
            }
        }
    }
}

/// The store's slot layout: per-voxel ranges plus the flattened id stream,
/// in the grid's renamed-voxel order (so slot ranges mirror the grid's
/// contiguous DRAM layout exactly).
fn layout_of(grid: &VoxelGrid) -> (Vec<(u32, u32)>, Vec<u32>) {
    let mut ranges = Vec::with_capacity(grid.voxel_count());
    let mut ids = Vec::new();
    let mut at = 0u32;
    for v in 0..grid.voxel_count() as u32 {
        let g = grid.gaussians_of(v);
        ranges.push((at, at + g.len() as u32));
        ids.extend_from_slice(g);
        at += g.len() as u32;
    }
    (ranges, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scene::{SceneConfig, SceneKind};
    use gs_vq::{GaussianQuantizer, VqConfig};

    fn scene_cloud() -> (GaussianCloud, VoxelGrid) {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let grid = VoxelGrid::build(&scene.trained, scene.voxel_size);
        (scene.trained, grid)
    }

    #[test]
    fn layout_mirrors_grid() {
        let (cloud, grid) = scene_cloud();
        let store = VoxelStore::from_cloud(&cloud, &grid);
        assert_eq!(store.len(), cloud.len());
        assert_eq!(store.voxel_count(), grid.voxel_count());
        for v in 0..grid.voxel_count() as u32 {
            assert_eq!(store.ids_of(v), grid.gaussians_of(v));
            let slots = store.slots_of(v);
            assert_eq!(
                (slots.end - slots.start) as usize,
                grid.gaussians_of(v).len()
            );
        }
        assert_eq!(store.coarse_column_bytes(), cloud.len() as u64 * 16);
        assert_eq!(store.fine_column_bytes(), cloud.len() as u64 * 220);
    }

    #[test]
    fn raw_fetch_is_bit_exact() {
        let (cloud, grid) = scene_cloud();
        let store = VoxelStore::from_cloud(&cloud, &grid);
        let mut ledger = TrafficLedger::new();
        for v in 0..store.voxel_count() as u32 {
            let coarse: Vec<_> = store.fetch_coarse(v, &mut ledger).collect();
            for (slot, pos, s_max) in coarse {
                let g = &cloud.as_slice()[store.id_of(slot) as usize];
                assert_eq!(pos, g.pos);
                assert_eq!(s_max, g.max_scale());
                assert_eq!(&store.fetch_fine(slot, &mut ledger), g);
            }
        }
        let n = cloud.len() as u64;
        assert_eq!(ledger.get(Stage::VoxelCoarse, Direction::Read), n * 16);
        assert_eq!(ledger.get(Stage::VoxelFine, Direction::Read), n * 220);
    }

    #[test]
    fn vq_fetch_matches_quantizer_decode_bit_exactly() {
        let (cloud, grid) = scene_cloud();
        let quant = GaussianQuantizer::train(&cloud, &VqConfig::tiny());
        let store = VoxelStore::from_quantized(&quant, &grid);
        assert!(store.is_vq());
        assert_eq!(
            store.fine_bytes_per_gaussian(),
            quant.fine_bytes_per_gaussian()
        );
        let mut ledger = TrafficLedger::new();
        for slot in 0..store.len() as u32 {
            let gi = store.id_of(slot) as usize;
            assert_eq!(store.fetch_fine(slot, &mut ledger), quant.decode_one(gi));
        }
        assert_eq!(
            ledger.get(Stage::VoxelFine, Direction::Read),
            store.len() as u64 * store.fine_bytes_per_gaussian()
        );
    }

    #[test]
    fn coarse_metering_is_whole_voxel_bursts() {
        let (cloud, grid) = scene_cloud();
        let store = VoxelStore::from_cloud(&cloud, &grid);
        let mut ledger = TrafficLedger::new();
        let v = 0u32;
        // Dropping the iterator without consuming it still meters the
        // burst: the accelerator streams the whole voxel regardless.
        let _ = store.fetch_coarse(v, &mut ledger);
        assert_eq!(
            ledger.get(Stage::VoxelCoarse, Direction::Read),
            grid.gaussians_of(v).len() as u64 * 16
        );
    }
}
