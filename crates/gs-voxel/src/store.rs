//! The voxel-resident columnar store: the DRAM image of a prepared scene.
//!
//! This is the byte-level realization of the paper's customized data layout
//! (Fig. 8). Gaussians live voxel-contiguously in two parallel columns:
//!
//! * **first half** — [`gs_scene::gaussian::COARSE_BYTES`] (16 B) per
//!   Gaussian: `[x, y, z, s_max]` as raw f32 bytes. This is the *only*
//!   data the coarse-grained filter touches.
//! * **second half** — either the raw 55-parameter remainder
//!   ([`gs_scene::gaussian::FINE_BYTES_RAW`], 220 B) or a VQ index record
//!   ([`gs_vq::FeatureCodebooks::record_bytes`], 13 B at paper-size
//!   codebooks) decoded through the on-chip codebooks on fetch. Only
//!   coarse-filter survivors ever read this column.
//!
//! Alongside the columns ride the per-voxel slot ranges and the global
//! Gaussian id per slot (the renaming/index metadata the VSU keeps; the raw
//! layout also carries a 2-bit max-axis tag here, since the 220 B record
//! stores only the two non-maximum scales — see
//! [`gs_scene::Gaussian::fine_record`]).
//!
//! ## Backing: resident columns vs. demand-paged columns
//!
//! Each column lives behind a backing abstraction:
//!
//! * **Resident** — the whole column as one `Vec<u8>` (built by
//!   [`VoxelStore::from_cloud`] / [`VoxelStore::from_quantized`]); the
//!   production configuration when the scene fits host memory.
//! * **Paged** — pages of [`PageConfig::slots_per_page`] whole slots
//!   materialized on demand from a compact serialized scene image
//!   ([`VoxelStore::to_scene_bytes`] / [`VoxelStore::write_scene_file`],
//!   opened with [`VoxelStore::open_paged_bytes`] /
//!   [`VoxelStore::open_paged_file`]), with an optional LRU-evicted
//!   residency budget ([`PageConfig::max_resident_pages`]) for scenes
//!   larger than memory. Page boundaries fall on slot boundaries, so a
//!   record never spans pages and the store's slot ranges remain the
//!   natural fetch granularity. The index metadata (ranges, ids, max-axis
//!   tags, codebooks) stays resident — it is the VSU's on-chip state.
//!
//! The two backings are **bit-exact twins**: every fetch decodes the same
//! bytes, meters the same ledger demand, and returns the same Gaussian, so
//! a paged store renders byte-identical frames
//! (`tests/paged_cache.rs` proves it on every scene kind, raw and VQ).
//! Paging is host-memory management, *not* modeled DRAM traffic — the
//! priced memory system is the [`gs_mem::TrafficLedger`]'s demand/DRAM
//! counters plus the renderer's [`gs_mem::cache::WorkingSetCache`] model,
//! which behave identically over both backings.
//!
//! Every fetch is metered through a [`gs_mem::TrafficLedger`]
//! (`VoxelCoarse` / `VoxelFine` read stages, demand bytes), which makes
//! the store the single source of byte truth for the streaming renderer
//! and everything priced from it. Decodes are **bit-exact**: a raw store
//! returns the original [`Gaussian`] bit-for-bit, a VQ store returns
//! exactly [`gs_vq::QuantizedCloud::decode_one`].

use crate::grid::VoxelGrid;
use gs_core::vec::Vec3;
use gs_mem::{Direction, Stage, TrafficLedger};
use gs_scene::gaussian::{COARSE_BYTES, FINE_BYTES_RAW};
use gs_scene::{Gaussian, GaussianCloud};
use gs_vq::{Codebook, FeatureCodebooks, QuantizedCloud};
use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Magic tag of the serialized scene image (`"GSVS"`).
const SCENE_MAGIC: u32 = 0x4753_5653;
/// Serialized scene format version.
const SCENE_VERSION: u32 = 1;
/// Header flag: the second half holds VQ index records.
const FLAG_VQ: u32 = 1;

/// Geometry of a demand-paged column backing.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageConfig {
    /// Whole slots per page (page boundaries never split a record).
    pub slots_per_page: u32,
    /// Residency budget in pages per column; least-recently-used pages are
    /// evicted beyond it. `0` = unbounded (pages accumulate).
    pub max_resident_pages: u32,
}

impl Default for PageConfig {
    fn default() -> Self {
        PageConfig {
            slots_per_page: 256,
            max_resident_pages: 0,
        }
    }
}

impl PageConfig {
    fn validated(mut self) -> PageConfig {
        self.slots_per_page = self.slots_per_page.max(1);
        self
    }
}

/// Where a paged column's bytes come from.
#[derive(Debug)]
enum PageSource {
    /// A serialized scene image held in memory.
    Memory(Vec<u8>),
    /// A serialized scene file read positionally on demand. The mutex
    /// serializes faults from the two columns sharing one handle (and the
    /// seek+read fallback on platforms without positional reads).
    File(Mutex<std::fs::File>),
}

impl PageSource {
    fn len(&self) -> io::Result<u64> {
        match self {
            PageSource::Memory(bytes) => Ok(bytes.len() as u64),
            PageSource::File(f) => Ok(f
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .metadata()?
                .len()),
        }
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        match self {
            PageSource::Memory(bytes) => {
                let at = offset as usize;
                let end = at + buf.len();
                if end > bytes.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "scene image truncated",
                    ));
                }
                buf.copy_from_slice(&bytes[at..end]);
                Ok(())
            }
            PageSource::File(f) => {
                let file = f.lock().unwrap_or_else(|e| e.into_inner());
                #[cfg(unix)]
                {
                    use std::os::unix::fs::FileExt;
                    file.read_exact_at(buf, offset)
                }
                #[cfg(not(unix))]
                {
                    use std::io::{Read, Seek, SeekFrom};
                    let mut file = file;
                    file.seek(SeekFrom::Start(offset))?;
                    file.read_exact(buf)
                }
            }
        }
    }
}

/// Mutable state of one paged column.
#[derive(Debug, Default)]
struct PageState {
    /// Materialized pages (whole slots each; the tail page may be short).
    pages: Vec<Option<Box<[u8]>>>,
    /// LRU stamp per page.
    stamp: Vec<u64>,
    /// Indices of the resident pages (≤ budget entries when bounded), so
    /// eviction scans the residents, never the whole page table.
    resident_ids: Vec<usize>,
    clock: u64,
    /// Pages materialized over the column's lifetime (eviction makes this
    /// exceed the page count).
    faults: u64,
}

/// One demand-paged column.
#[derive(Debug)]
struct PagedColumn {
    source: Arc<PageSource>,
    /// Column start inside the serialized image.
    offset: u64,
    /// Column length in bytes.
    len: u64,
    record_bytes: usize,
    slots: usize,
    config: PageConfig,
    state: Mutex<PageState>,
}

impl PagedColumn {
    fn new(
        source: Arc<PageSource>,
        offset: u64,
        record_bytes: usize,
        slots: usize,
        config: PageConfig,
    ) -> PagedColumn {
        let config = config.validated();
        let n_pages = slots.div_ceil(config.slots_per_page as usize).max(1);
        PagedColumn {
            source,
            offset,
            len: (slots * record_bytes) as u64,
            record_bytes,
            slots,
            config,
            state: Mutex::new(PageState {
                pages: (0..n_pages).map(|_| None).collect(),
                stamp: vec![0; n_pages],
                ..Default::default()
            }),
        }
    }

    /// Copies slot `slot`'s record into `out`, materializing (and possibly
    /// evicting) pages as needed.
    fn read_slot(&self, slot: usize, out: &mut [u8]) {
        debug_assert_eq!(out.len(), self.record_bytes);
        self.read_range(slot, 1, out);
    }

    /// Copies the contiguous records of `[first_slot, first_slot + n)`
    /// into `out` under **one** lock acquisition, touching each spanned
    /// page's LRU state once — the whole-voxel fetch path.
    fn read_range(&self, first_slot: usize, n: usize, out: &mut [u8]) {
        debug_assert!(first_slot + n <= self.slots);
        debug_assert_eq!(out.len(), n * self.record_bytes);
        if n == 0 {
            return;
        }
        let spp = self.config.slots_per_page as usize;
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut slot = first_slot;
        let mut written = 0usize;
        while slot < first_slot + n {
            let page = slot / spp;
            self.ensure_page(&mut st, page);
            st.clock += 1;
            st.stamp[page] = st.clock;
            let in_page = slot - page * spp;
            let take = (spp - in_page).min(first_slot + n - slot);
            let bytes = take * self.record_bytes;
            let from = in_page * self.record_bytes;
            out[written..written + bytes].copy_from_slice(
                &st.pages[page].as_ref().expect("just materialized")[from..from + bytes],
            );
            written += bytes;
            slot += take;
        }
    }

    /// Materializes `page` if absent, evicting the least-recently-used
    /// resident page when a budget is set (an O(budget) scan of the
    /// resident list; stamps are unique, so the victim is deterministic).
    fn ensure_page(&self, st: &mut PageState, page: usize) {
        if st.pages[page].is_some() {
            return;
        }
        let budget = self.config.max_resident_pages as usize;
        if budget > 0 && st.resident_ids.len() >= budget {
            let at = st
                .resident_ids
                .iter()
                .enumerate()
                .min_by_key(|(_, &p)| st.stamp[p])
                .map(|(i, _)| i)
                .expect("bounded state implies a resident page");
            let victim = st.resident_ids.swap_remove(at);
            st.pages[victim] = None;
        }
        let spp = self.config.slots_per_page as usize;
        let first_slot = page * spp;
        let n_slots = spp.min(self.slots - first_slot);
        let mut bytes = vec![0u8; n_slots * self.record_bytes].into_boxed_slice();
        self.source
            .read_at(
                self.offset + (first_slot * self.record_bytes) as u64,
                &mut bytes,
            )
            .expect("paged column read failed (scene image vanished?)");
        st.pages[page] = Some(bytes);
        st.resident_ids.push(page);
        st.faults += 1;
    }

    fn faults(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).faults
    }

    fn resident_bytes(&self) -> u64 {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.pages
            .iter()
            .flatten()
            .map(|p| p.len() as u64)
            .sum::<u64>()
    }
}

/// One column's backing: fully resident bytes or demand-paged pages.
#[derive(Debug)]
enum Column {
    Resident(Vec<u8>),
    Paged(PagedColumn),
}

impl Column {
    fn len_bytes(&self) -> u64 {
        match self {
            Column::Resident(b) => b.len() as u64,
            Column::Paged(p) => p.len,
        }
    }

    /// Copies slot `slot`'s `record_bytes`-wide record into `out`.
    fn read_slot(&self, slot: usize, record_bytes: usize, out: &mut [u8]) {
        match self {
            Column::Resident(b) => {
                out.copy_from_slice(&b[slot * record_bytes..slot * record_bytes + out.len()]);
            }
            Column::Paged(p) => {
                debug_assert_eq!(p.record_bytes, record_bytes);
                p.read_slot(slot, out);
            }
        }
    }
}

impl Clone for Column {
    /// Cloning a paged column shares the source image but starts with a
    /// cold page set (page state is never shared between clones).
    fn clone(&self) -> Column {
        match self {
            Column::Resident(b) => Column::Resident(b.clone()),
            Column::Paged(p) => Column::Paged(PagedColumn::new(
                Arc::clone(&p.source),
                p.offset,
                p.record_bytes,
                p.slots,
                p.config,
            )),
        }
    }
}

/// A return-on-drop pool of staging buffers for paged whole-voxel fetches.
///
/// [`VoxelStore::fetch_coarse`] over a paged column stages the voxel's
/// contiguous records before decoding; allocating that staging `Vec` per
/// voxel made the paged steady state allocate where the resident path does
/// not (the ROADMAP open item). The pool hands out recycled buffers
/// ([`StagingPool::take`]) wrapped in a [`PooledBuf`] guard that pushes the
/// buffer back on drop, so once every buffer in flight has grown to the
/// largest voxel's size, paged coarse fetches allocate nothing
/// (`tests/alloc_free_streaming.rs` proves it under a counting allocator).
#[derive(Debug, Default)]
struct StagingPool(Mutex<Vec<Vec<u8>>>);

impl StagingPool {
    /// Pops a recycled buffer (or starts a fresh one), resized to `len`.
    fn take(&self, len: usize) -> PooledBuf<'_> {
        let mut buf = self
            .0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        PooledBuf {
            pool: self,
            buf: Some(buf),
        }
    }
}

impl Clone for StagingPool {
    /// Clones start with an empty pool — buffers are cheap warm-up state,
    /// never shared data.
    fn clone(&self) -> StagingPool {
        StagingPool::default()
    }
}

/// A staging buffer on loan from a [`StagingPool`]; returns itself to the
/// pool when dropped (keeping its capacity for the next fetch).
#[derive(Debug)]
struct PooledBuf<'a> {
    pool: &'a StagingPool,
    buf: Option<Vec<u8>>,
}

impl Drop for PooledBuf<'_> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool
                .0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(buf);
        }
    }
}

impl std::ops::Deref for PooledBuf<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.buf.as_deref().expect("buffer on loan")
    }
}

impl std::ops::DerefMut for PooledBuf<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.buf.as_deref_mut().expect("buffer on loan")
    }
}

/// What the second-half column holds.
#[derive(Clone, Debug)]
enum FineFormat {
    /// Uncompressed 220 B records plus the per-slot max-axis layout tag
    /// (metadata, not counted as record traffic).
    Raw { max_axis: Vec<u8> },
    /// Serialized index records decoded through the (on-chip) codebooks.
    Vq {
        codebooks: FeatureCodebooks,
        record_bytes: usize,
    },
}

/// Per-voxel contiguous columnar storage with metered, bit-exact fetches.
///
/// Built once at scene preparation ([`VoxelStore::from_cloud`] /
/// [`VoxelStore::from_quantized`]) with resident columns, or opened over a
/// serialized scene image with demand-paged columns
/// ([`VoxelStore::open_paged_bytes`] / [`VoxelStore::open_paged_file`]);
/// the streaming renderer's coarse and fine phases read **only** from
/// here, through either backing, with identical bytes and metering.
#[derive(Clone, Debug)]
pub struct VoxelStore {
    /// Slot range per renamed voxel (mirrors the grid's layout).
    ranges: Vec<(u32, u32)>,
    /// Global Gaussian id per slot (the DRAM index stream).
    ids: Vec<u32>,
    /// First-half column, [`COARSE_BYTES`] per slot, voxel-contiguous.
    coarse: Column,
    /// Second-half column.
    fine: Column,
    /// Second-half record format (shared by both backings).
    format: FineFormat,
    /// Recycled staging buffers for paged whole-voxel coarse fetches
    /// (unused by resident columns; clones start empty).
    staging: StagingPool,
}

impl VoxelStore {
    /// Builds a raw (uncompressed second half) store over `cloud`,
    /// voxel-contiguous in `grid`'s renamed-voxel order.
    pub fn from_cloud(cloud: &GaussianCloud, grid: &VoxelGrid) -> VoxelStore {
        let (ranges, ids) = layout_of(grid);
        let gs = cloud.as_slice();
        let mut coarse = Vec::with_capacity(ids.len() * COARSE_BYTES);
        let mut bytes = Vec::with_capacity(ids.len() * FINE_BYTES_RAW);
        let mut max_axis = Vec::with_capacity(ids.len());
        for &gi in &ids {
            let g = &gs[gi as usize];
            coarse.extend_from_slice(&g.coarse_record());
            let (fine, axis) = g.fine_record();
            bytes.extend_from_slice(&fine);
            max_axis.push(axis);
        }
        VoxelStore {
            ranges,
            ids,
            coarse: Column::Resident(coarse),
            fine: Column::Resident(bytes),
            format: FineFormat::Raw { max_axis },
            staging: StagingPool::default(),
        }
    }

    /// Builds a VQ store: raw first half (from the quantizer's uncompressed
    /// coarse data, bit-identical to the cloud's) and serialized index
    /// records as the second half, decoded through a copy of the trained
    /// codebooks on fetch.
    ///
    /// # Panics
    ///
    /// Panics when `quant` does not cover every Gaussian of the grid.
    pub fn from_quantized(quant: &QuantizedCloud, grid: &VoxelGrid) -> VoxelStore {
        let (ranges, ids) = layout_of(grid);
        let record_bytes = quant.codebooks.record_bytes() as usize;
        let mut coarse = Vec::with_capacity(ids.len() * COARSE_BYTES);
        let mut bytes = Vec::with_capacity(ids.len() * record_bytes);
        for &gi in &ids {
            let (pos, s_max) = quant.coarse[gi as usize];
            for v in [pos.x, pos.y, pos.z, s_max] {
                coarse.extend_from_slice(&v.to_le_bytes());
            }
            quant
                .codebooks
                .write_record(&quant.records[gi as usize], &mut bytes);
        }
        VoxelStore {
            ranges,
            ids,
            coarse: Column::Resident(coarse),
            fine: Column::Resident(bytes),
            format: FineFormat::Vq {
                codebooks: quant.codebooks.clone(),
                record_bytes,
            },
            staging: StagingPool::default(),
        }
    }

    /// Gaussian slots in the store.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the store holds no Gaussians.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of voxels (equals the grid's renamed voxel count).
    pub fn voxel_count(&self) -> usize {
        self.ranges.len()
    }

    /// `true` when the second half holds VQ index records.
    pub fn is_vq(&self) -> bool {
        matches!(self.format, FineFormat::Vq { .. })
    }

    /// `true` when the columns are demand-paged rather than resident.
    pub fn is_paged(&self) -> bool {
        matches!(self.coarse, Column::Paged(_))
    }

    /// Pages materialized so far across both columns (0 for resident
    /// backings; with a residency budget, re-faults count again).
    pub fn page_faults(&self) -> u64 {
        let of = |c: &Column| match c {
            Column::Resident(_) => 0,
            Column::Paged(p) => p.faults(),
        };
        of(&self.coarse) + of(&self.fine)
    }

    /// Bytes currently held by materialized pages across both columns
    /// (equals the column totals for resident backings).
    pub fn resident_column_bytes(&self) -> u64 {
        let of = |c: &Column| match c {
            Column::Resident(b) => b.len() as u64,
            Column::Paged(p) => p.resident_bytes(),
        };
        of(&self.coarse) + of(&self.fine)
    }

    /// DRAM bytes of one first-half record (16).
    pub fn coarse_bytes_per_gaussian(&self) -> u64 {
        COARSE_BYTES as u64
    }

    /// DRAM bytes of one second-half record (220 raw; the codebooks'
    /// record width for VQ).
    pub fn fine_bytes_per_gaussian(&self) -> u64 {
        match &self.format {
            FineFormat::Raw { .. } => FINE_BYTES_RAW as u64,
            FineFormat::Vq { record_bytes, .. } => *record_bytes as u64,
        }
    }

    /// Total bytes of the first-half column.
    pub fn coarse_column_bytes(&self) -> u64 {
        self.coarse.len_bytes()
    }

    /// Total bytes of the second-half column.
    pub fn fine_column_bytes(&self) -> u64 {
        self.fine.len_bytes()
    }

    /// The slot range of renamed voxel `vid`.
    pub fn slots_of(&self, vid: u32) -> std::ops::Range<u32> {
        let (a, b) = self.ranges[vid as usize];
        a..b
    }

    /// Global Gaussian id stored at `slot`.
    pub fn id_of(&self, slot: u32) -> u32 {
        self.ids[slot as usize]
    }

    /// Global Gaussian ids of voxel `vid`, in slot order.
    pub fn ids_of(&self, vid: u32) -> &[u32] {
        let (a, b) = self.ranges[vid as usize];
        &self.ids[a as usize..b as usize]
    }

    /// Streams voxel `vid`'s first-half column: meters the whole voxel's
    /// coarse bytes into `ledger` (`VoxelCoarse`/read demand — the burst
    /// the accelerator issues regardless of filter outcomes) and returns
    /// an iterator of `(slot, position, max scale)` decoded from the
    /// bytes (identically for resident and paged backings).
    pub fn fetch_coarse<'a>(
        &'a self,
        vid: u32,
        ledger: &mut TrafficLedger,
    ) -> impl Iterator<Item = (u32, Vec3, f32)> + 'a {
        let (a, b) = self.ranges[vid as usize];
        ledger.add(
            Stage::VoxelCoarse,
            Direction::Read,
            (b - a) as u64 * COARSE_BYTES as u64,
        );
        // The renderer's hottest loop: resident columns decode straight
        // from the contiguous slice (no per-slot copy or lock); a paged
        // column stages the whole voxel's contiguous range under one lock
        // acquisition and decodes from a staging buffer on loan from the
        // store's return-on-drop pool (dropping the iterator recycles it),
        // so paged steady-state fetches allocate nothing once the pool's
        // buffers cover the largest voxel.
        let (resident, staged): (Option<&[u8]>, Option<PooledBuf<'a>>) = match &self.coarse {
            Column::Resident(bytes) => (Some(bytes.as_slice()), None),
            Column::Paged(p) => {
                let mut buf = self.staging.take((b - a) as usize * COARSE_BYTES);
                p.read_range(a as usize, (b - a) as usize, &mut buf);
                (None, Some(buf))
            }
        };
        (a..b).map(move |slot| {
            let rec: &[u8] = match resident {
                Some(bytes) => &bytes[slot as usize * COARSE_BYTES..][..COARSE_BYTES],
                None => {
                    let buf = staged.as_ref().expect("paged staging buffer");
                    &buf[(slot - a) as usize * COARSE_BYTES..][..COARSE_BYTES]
                }
            };
            let (pos, s_max) = Gaussian::decode_coarse(rec);
            (slot, pos, s_max)
        })
    }

    /// Fetches and decodes `slot`'s second-half record, metering its bytes
    /// into `ledger` (`VoxelFine`/read demand). Bit-exact: raw stores
    /// return the original Gaussian, VQ stores return exactly
    /// [`QuantizedCloud::decode_one`]'s result — whichever backing the
    /// columns use.
    pub fn fetch_fine(&self, slot: u32, ledger: &mut TrafficLedger) -> Gaussian {
        ledger.add(
            Stage::VoxelFine,
            Direction::Read,
            self.fine_bytes_per_gaussian(),
        );
        let s = slot as usize;
        let width = self.fine_bytes_per_gaussian() as usize;
        // Resident columns decode straight from their slices (the
        // per-survivor hot loop); paged columns copy through the page
        // machinery.
        let mut cbuf = [0u8; COARSE_BYTES];
        let coarse: &[u8] = if let Column::Resident(bytes) = &self.coarse {
            &bytes[s * COARSE_BYTES..(s + 1) * COARSE_BYTES]
        } else {
            self.coarse.read_slot(s, COARSE_BYTES, &mut cbuf);
            &cbuf
        };
        let mut fbuf = [0u8; FINE_BYTES_RAW];
        let fine: &[u8] = if let Column::Resident(bytes) = &self.fine {
            &bytes[s * width..(s + 1) * width]
        } else {
            let buf = &mut fbuf[..width];
            self.fine.read_slot(s, width, buf);
            buf
        };
        match &self.format {
            FineFormat::Raw { max_axis } => Gaussian::from_split_record(coarse, fine, max_axis[s]),
            FineFormat::Vq { codebooks, .. } => {
                let (pos, _) = Gaussian::decode_coarse(coarse);
                let r = codebooks.read_record(fine);
                codebooks.decode_record(pos, &r)
            }
        }
    }

    // --- serialized scene image ------------------------------------------

    /// Serializes the store into its compact scene image: header, index
    /// metadata (ranges, ids, max-axis tags or codebooks) and both raw
    /// columns. [`VoxelStore::open_paged_bytes`] /
    /// [`VoxelStore::open_paged_file`] reopen the image with demand-paged
    /// columns, bit-exactly.
    pub fn to_scene_bytes(&self) -> Vec<u8> {
        let n_slots = self.len();
        let width = self.fine_bytes_per_gaussian() as usize;
        let mut out = Vec::new();
        for v in [
            SCENE_MAGIC,
            SCENE_VERSION,
            if self.is_vq() { FLAG_VQ } else { 0 },
            self.voxel_count() as u32,
            n_slots as u32,
            width as u32,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &(a, b) in &self.ranges {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
        for &id in &self.ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        match &self.format {
            FineFormat::Raw { max_axis } => out.extend_from_slice(max_axis),
            FineFormat::Vq { codebooks, .. } => write_codebooks(codebooks, &mut out),
        }
        let mut rec = [0u8; FINE_BYTES_RAW];
        for s in 0..n_slots {
            self.coarse
                .read_slot(s, COARSE_BYTES, &mut rec[..COARSE_BYTES]);
            out.extend_from_slice(&rec[..COARSE_BYTES]);
        }
        for s in 0..n_slots {
            self.fine.read_slot(s, width, &mut rec[..width]);
            out.extend_from_slice(&rec[..width]);
        }
        out
    }

    /// Writes [`VoxelStore::to_scene_bytes`] to `path`. The image is
    /// serialized **before** the destination is created, so re-writing a
    /// file-paged store over its own backing file is safe (creating first
    /// would truncate the very image the serialization pages from).
    pub fn write_scene_file(&self, path: &Path) -> io::Result<()> {
        let image = self.to_scene_bytes();
        let mut f = std::fs::File::create(path)?;
        f.write_all(&image)?;
        f.flush()
    }

    /// Opens a serialized scene image held in memory with demand-paged
    /// columns.
    pub fn open_paged_bytes(image: Vec<u8>, config: PageConfig) -> io::Result<VoxelStore> {
        Self::open_paged(PageSource::Memory(image), config)
    }

    /// Opens a serialized scene file with demand-paged columns (index
    /// metadata is loaded eagerly; column pages are read positionally on
    /// demand).
    pub fn open_paged_file(path: &Path, config: PageConfig) -> io::Result<VoxelStore> {
        Self::open_paged(
            PageSource::File(Mutex::new(std::fs::File::open(path)?)),
            config,
        )
    }

    fn open_paged(source: PageSource, config: PageConfig) -> io::Result<VoxelStore> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        // Every size below is validated against the image length *before*
        // it drives an allocation or a read, so a corrupt or truncated
        // image fails cleanly at open — never with a huge allocation here
        // or an out-of-bounds page fault mid-render.
        let src_len = source.len()?;
        let fits = |at: u64, bytes: u64| -> io::Result<()> {
            match at.checked_add(bytes) {
                Some(end) if end <= src_len => Ok(()),
                _ => Err(bad("scene image truncated (header sizes exceed the image)")),
            }
        };
        let mut at = 0u64;
        let u32_at = |src: &PageSource, at: &mut u64| -> io::Result<u32> {
            let mut b = [0u8; 4];
            src.read_at(*at, &mut b)?;
            *at += 4;
            Ok(u32::from_le_bytes(b))
        };
        fits(at, 24)?;
        if u32_at(&source, &mut at)? != SCENE_MAGIC {
            return Err(bad("not a serialized voxel-store scene image"));
        }
        if u32_at(&source, &mut at)? != SCENE_VERSION {
            return Err(bad("unsupported scene image version"));
        }
        let flags = u32_at(&source, &mut at)?;
        let n_voxels = u32_at(&source, &mut at)? as usize;
        let n_slots = u32_at(&source, &mut at)? as usize;
        let width = u32_at(&source, &mut at)? as usize;
        if width == 0 || width > FINE_BYTES_RAW {
            return Err(bad("implausible fine record width"));
        }

        fits(at, n_voxels as u64 * 8)?;
        let mut ranges = Vec::with_capacity(n_voxels);
        let mut buf = vec![0u8; n_voxels * 8];
        source.read_at(at, &mut buf)?;
        at += buf.len() as u64;
        for c in buf.chunks_exact(8) {
            let (a, b) = (
                u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
            );
            if a > b || b as usize > n_slots {
                return Err(bad("voxel slot range outside the slot column"));
            }
            ranges.push((a, b));
        }
        fits(at, n_slots as u64 * 4)?;
        let mut buf = vec![0u8; n_slots * 4];
        source.read_at(at, &mut buf)?;
        at += buf.len() as u64;
        let ids: Vec<u32> = buf
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();

        let format = if flags & FLAG_VQ != 0 {
            let codebooks = read_codebooks(&source, &mut at, src_len)?;
            if codebooks.record_bytes() as usize != width {
                return Err(bad("codebook record width disagrees with header"));
            }
            FineFormat::Vq {
                codebooks,
                record_bytes: width,
            }
        } else {
            if width != FINE_BYTES_RAW {
                return Err(bad("raw scene image with non-raw record width"));
            }
            fits(at, n_slots as u64)?;
            let mut max_axis = vec![0u8; n_slots];
            source.read_at(at, &mut max_axis)?;
            at += n_slots as u64;
            FineFormat::Raw { max_axis }
        };

        let source = Arc::new(source);
        let coarse_off = at;
        let fine_off = coarse_off + (n_slots * COARSE_BYTES) as u64;
        // Both columns must fit the image, so page faults can never run
        // off the end.
        fits(fine_off, n_slots as u64 * width as u64)?;
        Ok(VoxelStore {
            ranges,
            ids,
            coarse: Column::Paged(PagedColumn::new(
                Arc::clone(&source),
                coarse_off,
                COARSE_BYTES,
                n_slots,
                config,
            )),
            fine: Column::Paged(PagedColumn::new(source, fine_off, width, n_slots, config)),
            format,
            staging: StagingPool::default(),
        })
    }

    /// Round-trips this store through its serialized scene image into a
    /// demand-paged twin (shares nothing with `self`).
    pub fn paged_twin(&self, config: PageConfig) -> VoxelStore {
        VoxelStore::open_paged_bytes(self.to_scene_bytes(), config)
            .expect("serialize/open round-trip cannot fail")
    }
}

/// Serializes the six feature codebooks (dim, entries, centroid f32s each).
fn write_codebooks(cb: &FeatureCodebooks, out: &mut Vec<u8>) {
    for book in [&cb.scale, &cb.rot, &cb.dc, &cb.sh[0], &cb.sh[1], &cb.sh[2]] {
        out.extend_from_slice(&(book.dim() as u32).to_le_bytes());
        out.extend_from_slice(&(book.len() as u32).to_le_bytes());
        for v in book.centroids() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Reads back [`write_codebooks`]' image, advancing `at`; every table size
/// is validated against `src_len` before it drives an allocation.
fn read_codebooks(source: &PageSource, at: &mut u64, src_len: u64) -> io::Result<FeatureCodebooks> {
    let mut next = || -> io::Result<Codebook> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if at.checked_add(8).is_none_or(|end| end > src_len) {
            return Err(bad("scene image truncated in codebook header"));
        }
        let mut hdr = [0u8; 8];
        source.read_at(*at, &mut hdr)?;
        *at += 8;
        let dim = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
        let entries = u32::from_le_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]) as usize;
        if dim == 0 || entries == 0 {
            return Err(bad("empty codebook (zero dim or entries)"));
        }
        let table = (dim as u64)
            .checked_mul(entries as u64)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| bad("codebook table size overflows"))?;
        if at.checked_add(table).is_none_or(|end| end > src_len) {
            return Err(bad("scene image truncated in codebook table"));
        }
        let mut buf = vec![0u8; table as usize];
        source.read_at(*at, &mut buf)?;
        *at += buf.len() as u64;
        let centroids: Vec<f32> = buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Codebook::from_centroids(centroids, dim))
    };
    Ok(FeatureCodebooks {
        scale: next()?,
        rot: next()?,
        dc: next()?,
        sh: [next()?, next()?, next()?],
    })
}

/// The store's slot layout: per-voxel ranges plus the flattened id stream,
/// in the grid's renamed-voxel order (so slot ranges mirror the grid's
/// contiguous DRAM layout exactly).
fn layout_of(grid: &VoxelGrid) -> (Vec<(u32, u32)>, Vec<u32>) {
    let mut ranges = Vec::with_capacity(grid.voxel_count());
    let mut ids = Vec::new();
    let mut at = 0u32;
    for v in 0..grid.voxel_count() as u32 {
        let g = grid.gaussians_of(v);
        ranges.push((at, at + g.len() as u32));
        ids.extend_from_slice(g);
        at += g.len() as u32;
    }
    (ranges, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scene::{SceneConfig, SceneKind};
    use gs_vq::{GaussianQuantizer, VqConfig};

    fn scene_cloud() -> (GaussianCloud, VoxelGrid) {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let grid = VoxelGrid::build(&scene.trained, scene.voxel_size);
        (scene.trained, grid)
    }

    #[test]
    fn layout_mirrors_grid() {
        let (cloud, grid) = scene_cloud();
        let store = VoxelStore::from_cloud(&cloud, &grid);
        assert_eq!(store.len(), cloud.len());
        assert_eq!(store.voxel_count(), grid.voxel_count());
        for v in 0..grid.voxel_count() as u32 {
            assert_eq!(store.ids_of(v), grid.gaussians_of(v));
            let slots = store.slots_of(v);
            assert_eq!(
                (slots.end - slots.start) as usize,
                grid.gaussians_of(v).len()
            );
        }
        assert_eq!(store.coarse_column_bytes(), cloud.len() as u64 * 16);
        assert_eq!(store.fine_column_bytes(), cloud.len() as u64 * 220);
        assert!(!store.is_paged());
        assert_eq!(store.page_faults(), 0);
    }

    #[test]
    fn raw_fetch_is_bit_exact() {
        let (cloud, grid) = scene_cloud();
        let store = VoxelStore::from_cloud(&cloud, &grid);
        let mut ledger = TrafficLedger::new();
        for v in 0..store.voxel_count() as u32 {
            let coarse: Vec<_> = store.fetch_coarse(v, &mut ledger).collect();
            for (slot, pos, s_max) in coarse {
                let g = &cloud.as_slice()[store.id_of(slot) as usize];
                assert_eq!(pos, g.pos);
                assert_eq!(s_max, g.max_scale());
                assert_eq!(&store.fetch_fine(slot, &mut ledger), g);
            }
        }
        let n = cloud.len() as u64;
        assert_eq!(ledger.get(Stage::VoxelCoarse, Direction::Read), n * 16);
        assert_eq!(ledger.get(Stage::VoxelFine, Direction::Read), n * 220);
    }

    #[test]
    fn vq_fetch_matches_quantizer_decode_bit_exactly() {
        let (cloud, grid) = scene_cloud();
        let quant = GaussianQuantizer::train(&cloud, &VqConfig::tiny());
        let store = VoxelStore::from_quantized(&quant, &grid);
        assert!(store.is_vq());
        assert_eq!(
            store.fine_bytes_per_gaussian(),
            quant.fine_bytes_per_gaussian()
        );
        let mut ledger = TrafficLedger::new();
        for slot in 0..store.len() as u32 {
            let gi = store.id_of(slot) as usize;
            assert_eq!(store.fetch_fine(slot, &mut ledger), quant.decode_one(gi));
        }
        assert_eq!(
            ledger.get(Stage::VoxelFine, Direction::Read),
            store.len() as u64 * store.fine_bytes_per_gaussian()
        );
    }

    #[test]
    fn coarse_metering_is_whole_voxel_bursts() {
        let (cloud, grid) = scene_cloud();
        let store = VoxelStore::from_cloud(&cloud, &grid);
        let mut ledger = TrafficLedger::new();
        let v = 0u32;
        // Dropping the iterator without consuming it still meters the
        // burst: the accelerator streams the whole voxel regardless.
        let _ = store.fetch_coarse(v, &mut ledger);
        assert_eq!(
            ledger.get(Stage::VoxelCoarse, Direction::Read),
            grid.gaussians_of(v).len() as u64 * 16
        );
    }

    #[test]
    fn paged_twin_is_bit_exact_raw() {
        let (cloud, grid) = scene_cloud();
        let store = VoxelStore::from_cloud(&cloud, &grid);
        let paged = store.paged_twin(PageConfig {
            slots_per_page: 7,
            max_resident_pages: 0,
        });
        assert!(paged.is_paged());
        assert!(!paged.is_vq());
        assert_eq!(paged.len(), store.len());
        assert_eq!(paged.voxel_count(), store.voxel_count());
        let mut la = TrafficLedger::new();
        let mut lb = TrafficLedger::new();
        for v in 0..store.voxel_count() as u32 {
            assert_eq!(paged.ids_of(v), store.ids_of(v));
            let a: Vec<_> = store.fetch_coarse(v, &mut la).collect();
            let b: Vec<_> = paged.fetch_coarse(v, &mut lb).collect();
            assert_eq!(a, b);
        }
        for slot in 0..store.len() as u32 {
            assert_eq!(
                store.fetch_fine(slot, &mut la),
                paged.fetch_fine(slot, &mut lb)
            );
        }
        assert_eq!(la, lb, "paged metering must be identical");
        assert!(paged.page_faults() > 0);
    }

    #[test]
    fn paged_twin_is_bit_exact_vq_and_respects_budget() {
        let (cloud, grid) = scene_cloud();
        let quant = GaussianQuantizer::train(&cloud, &VqConfig::tiny());
        let store = VoxelStore::from_quantized(&quant, &grid);
        let budget = PageConfig {
            slots_per_page: 8,
            max_resident_pages: 2,
        };
        let paged = store.paged_twin(budget);
        assert!(paged.is_vq());
        let mut l = TrafficLedger::new();
        for slot in 0..store.len() as u32 {
            assert_eq!(
                paged.fetch_fine(slot, &mut l),
                quant.decode_one(paged.id_of(slot) as usize)
            );
        }
        // Two columns × two pages × 8 slots each is the residency ceiling.
        let per_page = 8 * (COARSE_BYTES as u64).max(paged.fine_bytes_per_gaussian());
        assert!(paged.resident_column_bytes() <= 4 * per_page);
        // The budget forces evictions: more faults than distinct pages.
        let distinct = 2 * (store.len() as u64).div_ceil(8);
        assert!(
            paged.page_faults() >= distinct,
            "faults {} < distinct pages {}",
            paged.page_faults(),
            distinct
        );
    }

    #[test]
    fn scene_file_round_trips_on_disk() {
        let (cloud, grid) = scene_cloud();
        let store = VoxelStore::from_cloud(&cloud, &grid);
        let path = std::env::temp_dir().join("gsvs_store_roundtrip.gsvs");
        store.write_scene_file(&path).expect("write scene file");
        let paged = VoxelStore::open_paged_file(&path, PageConfig::default()).expect("open");
        let mut la = TrafficLedger::new();
        let mut lb = TrafficLedger::new();
        for slot in 0..store.len() as u32 {
            assert_eq!(
                store.fetch_fine(slot, &mut la),
                paged.fetch_fine(slot, &mut lb)
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewriting_a_file_paged_store_over_its_own_backing_is_safe() {
        let (cloud, grid) = scene_cloud();
        let store = VoxelStore::from_cloud(&cloud, &grid);
        let path = std::env::temp_dir().join("gsvs_rewrite_self.gsvs");
        store.write_scene_file(&path).expect("initial write");
        let paged = VoxelStore::open_paged_file(
            &path,
            PageConfig {
                slots_per_page: 8,
                max_resident_pages: 2,
            },
        )
        .expect("open");
        let mut l = TrafficLedger::new();
        let g0 = paged.fetch_fine(0, &mut l);
        // Re-writing over the store's own backing file must serialize
        // (paging everything in) before truncating the destination.
        paged.write_scene_file(&path).expect("rewrite over self");
        assert_eq!(paged.fetch_fine(0, &mut l), g0);
        let reopened = VoxelStore::open_paged_file(&path, PageConfig::default()).expect("reopen");
        assert_eq!(reopened.fetch_fine(0, &mut l), g0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let err = VoxelStore::open_paged_bytes(vec![0u8; 16], PageConfig::default());
        assert!(err.is_err());
        let err = VoxelStore::open_paged_bytes(Vec::new(), PageConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn open_rejects_hostile_headers_without_allocating() {
        let (cloud, grid) = scene_cloud();
        let good = VoxelStore::from_cloud(&cloud, &grid).to_scene_bytes();
        // Huge n_voxels: must fail the length check, not allocate ~34 GB.
        let mut evil = good.clone();
        evil[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
        // A slot range pointing past the slot column must fail at open,
        // not out-of-bounds at render time.
        let mut evil = good.clone();
        evil[24 + 4..24 + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
        // Truncated columns fail at open too.
        let mut evil = good.clone();
        evil.truncate(good.len() - 100);
        assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
    }

    #[test]
    fn clone_of_paged_store_starts_cold_but_reads_identically() {
        let (cloud, grid) = scene_cloud();
        let store = VoxelStore::from_cloud(&cloud, &grid);
        let paged = store.paged_twin(PageConfig::default());
        let mut l = TrafficLedger::new();
        let g0 = paged.fetch_fine(0, &mut l);
        let cold = paged.clone();
        assert_eq!(cold.page_faults(), 0, "clones share no page state");
        assert_eq!(cold.fetch_fine(0, &mut l), g0);
    }
}
