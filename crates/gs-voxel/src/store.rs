//! The voxel-resident columnar store: the DRAM image of a prepared scene.
//!
//! This is the byte-level realization of the paper's customized data layout
//! (Fig. 8). Gaussians live voxel-contiguously in two parallel columns:
//!
//! * **first half** — [`gs_scene::gaussian::COARSE_BYTES`] (16 B) per
//!   Gaussian: `[x, y, z, s_max]` as raw f32 bytes. This is the *only*
//!   data the coarse-grained filter touches.
//! * **second half** — either the raw 55-parameter remainder
//!   ([`gs_scene::gaussian::FINE_BYTES_RAW`], 220 B) or a VQ index record
//!   ([`gs_vq::FeatureCodebooks::record_bytes`], 13 B at paper-size
//!   codebooks) decoded through the on-chip codebooks on fetch. Only
//!   coarse-filter survivors ever read this column.
//!
//! Alongside the columns ride the per-voxel slot ranges and the global
//! Gaussian id per slot (the renaming/index metadata the VSU keeps; the raw
//! layout also carries a 2-bit max-axis tag here, since the 220 B record
//! stores only the two non-maximum scales — see
//! [`gs_scene::Gaussian::fine_record`]).
//!
//! ## Backing: resident columns vs. demand-paged columns
//!
//! Each column lives behind a backing abstraction:
//!
//! * **Resident** — the whole column as one `Vec<u8>` (built by
//!   [`VoxelStore::from_cloud`] / [`VoxelStore::from_quantized`]); the
//!   production configuration when the scene fits host memory.
//! * **Paged** — pages of [`PageConfig::slots_per_page`] whole slots
//!   materialized on demand from a compact serialized scene image
//!   ([`VoxelStore::to_scene_bytes`] / [`VoxelStore::write_scene_file`],
//!   opened with [`VoxelStore::open_paged_bytes`] /
//!   [`VoxelStore::open_paged_file`]), with an optional LRU-evicted
//!   residency budget ([`PageConfig::max_resident_pages`]) for scenes
//!   larger than memory. Page boundaries fall on slot boundaries, so a
//!   record never spans pages and the store's slot ranges remain the
//!   natural fetch granularity. The index metadata (ranges, ids, max-axis
//!   tags, codebooks) stays resident — it is the VSU's on-chip state.
//!
//! The two backings are **bit-exact twins**: every fetch decodes the same
//! bytes, meters the same ledger demand, and returns the same Gaussian, so
//! a paged store renders byte-identical frames
//! (`tests/paged_cache.rs` proves it on every scene kind, raw and VQ).
//! Paging is host-memory management, *not* modeled DRAM traffic — the
//! priced memory system is the [`gs_mem::TrafficLedger`]'s demand/DRAM
//! counters plus the renderer's [`gs_mem::cache::WorkingSetCache`] model,
//! which behave identically over both backings.
//!
//! Every fetch is metered through a [`gs_mem::TrafficLedger`]
//! (`VoxelCoarse` / `VoxelFine` read stages, demand bytes), which makes
//! the store the single source of byte truth for the streaming renderer
//! and everything priced from it. Decodes are **bit-exact**: a raw store
//! returns the original [`Gaussian`] bit-for-bit, a VQ store returns
//! exactly [`gs_vq::QuantizedCloud::decode_one`].
//!
//! ## Scene-image format (version 2)
//!
//! All integers are little-endian `u32`. The header:
//!
//! | offset | field |
//! |-------:|-------|
//! | 0      | magic `"GSVS"` (`0x4753_5653`) |
//! | 4      | format version (2) |
//! | 8      | flags — bit 0: second half holds VQ records |
//! | 12     | `n_voxels` |
//! | 16     | `n_slots` |
//! | 20     | fine record width in bytes (220 raw, codebook width VQ) |
//! | 24     | `crc_chunk_slots` — slots covered per checksum chunk |
//!
//! followed by, in order:
//!
//! 1. `n_voxels` × `(u32, u32)` per-voxel slot ranges,
//! 2. `n_slots` × `u32` global Gaussian ids,
//! 3. raw: `n_slots` max-axis tag bytes · VQ: six codebooks, each
//!    `(dim: u32, entries: u32, dim×entries f32 centroids)`,
//! 4. coarse chunk-CRC table — `ceil(n_slots / crc_chunk_slots)` × `u32`
//!    CRC-32/IEEE ([`gs_mem::crc`]) over each chunk of the coarse column,
//! 5. fine chunk-CRC table — same count, over the fine column,
//! 6. `u32` metadata CRC over **every byte above** (header through both
//!    tables),
//! 7. the coarse column (`n_slots` × 16 B),
//! 8. the fine column (`n_slots` × width B) — and nothing after it: the
//!    image length must equal exactly what the header implies.
//!
//! Chunks never split a record (they are slot-aligned), so a page fetch
//! verifies by reading the chunk-aligned cover of its slots. **Version-1
//! images** (six-word header, no tables, no metadata CRC) remain readable:
//! verification is skipped and the effective [`PageConfig`] reports
//! `verify_checksums: false` (see [`VoxelStore::page_config`]).
//!
//! ## Scene-image format (version 3): LOD tiers
//!
//! A store that carries extra LOD tiers ([`VoxelStore::build_tiers`])
//! serializes as **version 3**: the v2 layout with an eighth header word
//! (`n_extra_tiers`), a per-tier directory between the fine CRC table and
//! the metadata CRC — six descriptor words (kind, SH degree, keep‰,
//! codebook shift, record width, tier slot count), the tier's per-voxel
//! ranges and slot table, its codebooks (VQ tiers) and its own CRC chunk
//! table — and the tier record columns appended after the fine column.
//! Every tier column pages, verifies and dead-marks independently
//! (`ColumnKind::Tier(n)`), per (tier, page). The full spec lives in
//! `docs/SCENE_IMAGE.md`. Tierless stores keep writing v2, bit-identically
//! to before; v2/v1 images open as single-tier stores.
//!
//! ## Error contract
//!
//! Render-time page machinery never panics: the fallible twins
//! ([`VoxelStore::try_fetch_coarse`], [`VoxelStore::try_fetch_fine`],
//! [`VoxelStore::try_coarse_of`], [`VoxelStore::open_paged_bytes`], …)
//! return [`StoreError`] for I/O failures, truncated or malformed images,
//! checksum mismatches ([`StoreError::CorruptPage`]), exhausted retry
//! budgets and dead pages. The un-prefixed wrappers ([`VoxelStore::fetch_coarse`],
//! [`VoxelStore::fetch_fine`], [`VoxelStore::to_scene_bytes`]) panic on
//! those same errors — infallible by construction over resident columns,
//! and kept for the exactness suites and resident callers. Transient
//! faults are retried with capped deterministic backoff
//! ([`PageConfig::max_read_attempts`]); permanent faults mark the page
//! dead so later fetches fail fast with [`StoreError::PageLost`]. All
//! retry/dead/injection counters are readable through
//! [`VoxelStore::fault_snapshot`].

// Render-time paths must propagate typed errors, never unwrap them away
// (tests are exempt via the mod-level allow).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::grid::VoxelGrid;
use gs_core::vec::Vec3;
use gs_mem::crc::crc32;
use gs_mem::{Direction, Stage, TrafficLedger, MAX_TIERS};
use gs_scene::gaussian::{COARSE_BYTES, FINE_BYTES_RAW};
use gs_scene::{Gaussian, GaussianCloud};
use gs_vq::tier::{
    decode_vq_tier_record, expand_raw_record, raw_tier_bytes, read_vq_tier_record,
    truncate_raw_record, vq_tier_bytes, write_vq_tier_record, TierSpec, MAX_SH_DEGREE,
};
use gs_vq::{Codebook, FeatureCodebooks, GaussianQuantizer, QuantizedCloud, VqConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// Magic tag of the serialized scene image (`"GSVS"`).
const SCENE_MAGIC: u32 = 0x4753_5653;
/// The single-tier checksummed format version (written for stores with no
/// extra tiers; still the most common image on disk).
const SCENE_VERSION: u32 = 2;
/// The pre-checksum format version (still readable, never written by
/// default).
const SCENE_VERSION_V1: u32 = 1;
/// The tiered format version: a v2-shaped body plus a tier directory and
/// per-tier second-half columns with their own CRC chunk tables (see the
/// `docs/SCENE_IMAGE.md` spec). Written whenever the store carries extra
/// tiers; a tierless v3 image is byte-compatible with v2 except for the
/// version word and a zero tier count.
const SCENE_VERSION_V3: u32 = 3;
/// Serialized tier-directory kind tag: raw (SH-truncated prefix) records.
const TIER_KIND_RAW: u32 = 0;
/// Serialized tier-directory kind tag: VQ records through tier codebooks.
const TIER_KIND_VQ: u32 = 1;
/// Header flag: the second half holds VQ index records.
const FLAG_VQ: u32 = 1;
/// Every header flag this build understands; unknown bits reject at open.
const KNOWN_FLAGS: u32 = FLAG_VQ;
/// Slots per checksum chunk written by [`VoxelStore::to_scene_bytes`].
const CRC_CHUNK_SLOTS: u32 = 32;

/// Locks `m`, recovering the inner state when the mutex is poisoned.
///
/// Every lock site in the paged machinery (and the streaming renderer's
/// scratch) goes through this one helper, so a panicking thread can never
/// wedge other render workers on a poisoned lock.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Which column an error refers to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ColumnKind {
    /// The 16 B first-half column.
    Coarse,
    /// The raw/VQ second-half column (tier 0: full quality).
    Fine,
    /// An extra LOD tier's second-half column; the payload is the extra
    /// tier index (0 = the first tier after full quality, i.e. overall
    /// tier 1).
    Tier(u8),
}

impl fmt::Display for ColumnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnKind::Coarse => f.write_str("coarse"),
            ColumnKind::Fine => f.write_str("fine"),
            ColumnKind::Tier(t) => write!(f, "tier{}", u32::from(*t) + 1),
        }
    }
}

/// Why a store operation failed. See the module-level error contract.
#[derive(Debug)]
pub enum StoreError {
    /// The backing source failed with a real I/O error.
    Io(io::Error),
    /// The image ended before a structure its header promised.
    Truncated {
        /// Which structure was cut short.
        what: &'static str,
    },
    /// The image violates the format (magic, version, ranges, metadata
    /// checksum, length…).
    Malformed {
        /// Which invariant was violated.
        what: &'static str,
    },
    /// A materialized page failed its per-chunk checksum (after retries).
    CorruptPage {
        /// Column the chunk belongs to.
        column: ColumnKind,
        /// Chunk index within that column's CRC table.
        chunk: u64,
    },
    /// Transient faults persisted past [`PageConfig::max_read_attempts`].
    RetriesExhausted {
        /// Column the page belongs to.
        column: ColumnKind,
        /// Page index within that column.
        page: u64,
        /// Attempts performed before giving up.
        attempts: u32,
    },
    /// The page was marked dead by a permanent fault; every later fetch
    /// of its slots fails fast with this error.
    PageLost {
        /// Column the page belongs to.
        column: ColumnKind,
        /// Page index within that column.
        page: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "scene image I/O error: {e}"),
            StoreError::Truncated { what } => write!(f, "scene image truncated ({what})"),
            StoreError::Malformed { what } => write!(f, "malformed scene image ({what})"),
            StoreError::CorruptPage { column, chunk } => {
                write!(f, "{column} column chunk {chunk} failed its checksum")
            }
            StoreError::RetriesExhausted {
                column,
                page,
                attempts,
            } => write!(
                f,
                "{column} column page {page} still faulting after {attempts} attempts"
            ),
            StoreError::PageLost { column, page } => {
                write!(f, "{column} column page {page} lost to a permanent fault")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> io::Error {
        let msg = e.to_string();
        match e {
            StoreError::Io(inner) => inner,
            StoreError::Truncated { .. } => io::Error::new(io::ErrorKind::UnexpectedEof, msg),
            StoreError::Malformed { .. } => io::Error::new(io::ErrorKind::InvalidData, msg),
            _ => io::Error::other(msg),
        }
    }
}

/// Geometry and fault policy of a demand-paged column backing.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageConfig {
    /// Whole slots per page (page boundaries never split a record).
    pub slots_per_page: u32,
    /// Residency budget in pages per column; least-recently-used pages are
    /// evicted beyond it. `0` = unbounded (pages accumulate).
    pub max_resident_pages: u32,
    /// Verify per-chunk CRCs on page materialization. Forced `false` when
    /// the image carries no checksum tables (a version-1 image); the
    /// effective value is readable via [`VoxelStore::page_config`].
    pub verify_checksums: bool,
    /// Read attempts per page materialization (≥ 1). Transient faults and
    /// checksum mismatches are retried with capped deterministic backoff
    /// up to this budget; the failure surfaces as
    /// [`StoreError::RetriesExhausted`] / [`StoreError::CorruptPage`].
    pub max_read_attempts: u32,
}

impl Default for PageConfig {
    fn default() -> Self {
        PageConfig {
            slots_per_page: 256,
            max_resident_pages: 0,
            verify_checksums: true,
            max_read_attempts: 4,
        }
    }
}

impl PageConfig {
    fn validated(mut self) -> PageConfig {
        self.slots_per_page = self.slots_per_page.max(1);
        self.max_read_attempts = self.max_read_attempts.max(1);
        self
    }
}

/// Deterministic fault-injection policy for a paged scene source.
///
/// Each page read draws pseudo-random faults keyed **only** on
/// `(seed, read offset, attempt)` — never on thread identity, wall clock
/// or call order — so the injected fault sequence is bit-reproducible for
/// any worker count. Rates are per-mille of page reads; the draws for
/// transient/torn/bit-flip are mutually exclusive partitions of one
/// per-attempt draw, while permanent faults are keyed on the offset alone
/// (a permanently bad page stays bad on every attempt).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// Stream seed; two policies with different seeds fault independently.
    pub seed: u64,
    /// Per-mille of page reads that fail transiently (succeed on retry).
    pub transient_per_mille: u32,
    /// Per-mille of page reads returning a torn buffer (tail half stale).
    pub torn_per_mille: u32,
    /// Per-mille of page reads with one flipped bit.
    pub bit_flip_per_mille: u32,
    /// Per-mille of page *offsets* that are permanently unreadable.
    pub permanent_per_mille: u32,
}

impl FaultPolicy {
    /// A policy injecting only transient faults at `per_mille`/1000.
    pub fn transient(seed: u64, per_mille: u32) -> FaultPolicy {
        FaultPolicy {
            seed,
            transient_per_mille: per_mille,
            ..FaultPolicy::default()
        }
    }

    /// `true` when the policy injects nothing (wrapping is skipped).
    pub fn is_noop(&self) -> bool {
        self.transient_per_mille == 0
            && self.torn_per_mille == 0
            && self.bit_flip_per_mille == 0
            && self.permanent_per_mille == 0
    }
}

/// Injected-fault counters, by kind (see [`FaultPolicy`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Transient read failures injected.
    pub transient: u64,
    /// Torn buffers returned.
    pub torn: u64,
    /// Single-bit flips applied.
    pub bit_flips: u64,
    /// Permanent failures returned.
    pub permanent: u64,
}

impl FaultStats {
    /// All injected faults.
    pub fn total(self) -> u64 {
        self.transient + self.torn + self.bit_flips + self.permanent
    }

    /// Counter deltas since `base` (saturating).
    pub fn since(self, base: FaultStats) -> FaultStats {
        FaultStats {
            transient: self.transient.saturating_sub(base.transient),
            torn: self.torn.saturating_sub(base.torn),
            bit_flips: self.bit_flips.saturating_sub(base.bit_flips),
            permanent: self.permanent.saturating_sub(base.permanent),
        }
    }
}

/// Retry/dead/injection counters of a store, cheap to snapshot per frame.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreFaultSnapshot {
    /// Page-read retries performed across both columns (each failed
    /// attempt that was retried or exhausted counts once).
    pub retries: u64,
    /// Pages currently marked dead by permanent faults, both columns.
    pub dead_pages: u64,
    /// Dead pages re-fetched and healed from an attached replica over the
    /// store's lifetime ([`VoxelStore::attach_replica_bytes`]).
    pub pages_healed: u64,
    /// Faults injected by the wrapped source (zero without a
    /// [`FaultPolicy`]).
    pub injected: FaultStats,
}

impl StoreFaultSnapshot {
    /// Counter deltas since `base` (saturating).
    pub fn since(self, base: StoreFaultSnapshot) -> StoreFaultSnapshot {
        StoreFaultSnapshot {
            retries: self.retries.saturating_sub(base.retries),
            dead_pages: self.dead_pages.saturating_sub(base.dead_pages),
            pages_healed: self.pages_healed.saturating_sub(base.pages_healed),
            injected: self.injected.since(base.injected),
        }
    }
}

/// splitmix64 finalizer: the deterministic draw behind fault injection.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Distinct draw stream for permanent faults (offset-keyed).
const PERM_STREAM: u64 = 0xA076_1D64_78BD_642F;
/// Distinct draw stream for bit-flip positions.
const FLIP_STREAM: u64 = 0xE703_7ED1_A0B4_28DB;

/// Capped deterministic backoff between page-read retries: a bounded spin
/// (no clock, no sleep), so the retry schedule is reproducible and cheap.
fn retry_backoff(attempt: u32) {
    for _ in 0..(32u32 << attempt.min(6)) {
        std::hint::spin_loop();
    }
}

/// How a single page read failed (internal; mapped to [`StoreError`] by
/// the retry loop).
enum ReadFault {
    /// A real I/O error from the backing source.
    Io(io::Error),
    /// An injected transient failure — retry.
    Transient,
    /// An injected permanent failure — mark the page dead.
    Permanent,
}

/// A fault-injecting wrapper around a page source (see [`FaultPolicy`]).
#[derive(Debug)]
struct FaultInjector {
    inner: Box<PageSource>,
    policy: FaultPolicy,
    stats: Mutex<FaultStats>,
}

impl FaultInjector {
    fn read_page(&self, offset: u64, buf: &mut [u8], attempt: u32) -> Result<(), ReadFault> {
        let p = &self.policy;
        if p.permanent_per_mille > 0
            && mix64(p.seed ^ PERM_STREAM ^ mix64(offset)) % 1000 < p.permanent_per_mille as u64
        {
            lock_unpoisoned(&self.stats).permanent += 1;
            return Err(ReadFault::Permanent);
        }
        let d = mix64(p.seed ^ mix64(offset ^ ((attempt as u64) << 48))) % 1000;
        let t = p.transient_per_mille as u64;
        let torn = t + p.torn_per_mille as u64;
        let flip = torn + p.bit_flip_per_mille as u64;
        if d < t {
            lock_unpoisoned(&self.stats).transient += 1;
            return Err(ReadFault::Transient);
        }
        self.inner.read_at(offset, buf).map_err(ReadFault::Io)?;
        if d < torn && buf.len() >= 2 {
            let half = buf.len() / 2;
            for b in &mut buf[half..] {
                *b ^= 0xA5;
            }
            lock_unpoisoned(&self.stats).torn += 1;
        } else if d < flip && !buf.is_empty() {
            let bit = mix64(p.seed ^ FLIP_STREAM ^ mix64(offset)) % (buf.len() as u64 * 8);
            buf[(bit / 8) as usize] ^= 1 << (bit % 8);
            lock_unpoisoned(&self.stats).bit_flips += 1;
        }
        Ok(())
    }
}

/// Where a paged column's bytes come from.
#[derive(Debug)]
enum PageSource {
    /// A serialized scene image held in memory.
    Memory(Vec<u8>),
    /// A serialized scene file read positionally on demand. The mutex
    /// serializes faults from the two columns sharing one handle (and the
    /// seek+read fallback on platforms without positional reads).
    File(Mutex<std::fs::File>),
    /// Any source wrapped with deterministic fault injection. Open-time
    /// metadata reads bypass injection (the fault surface under test is
    /// the *page* path); only [`PageSource::read_page`] draws faults.
    Faulty(FaultInjector),
}

impl PageSource {
    fn len(&self) -> io::Result<u64> {
        match self {
            PageSource::Memory(bytes) => Ok(bytes.len() as u64),
            PageSource::File(f) => Ok(lock_unpoisoned(f).metadata()?.len()),
            PageSource::Faulty(inj) => inj.inner.len(),
        }
    }

    /// A clean (never-faulting) positional read — the open-time path.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        match self {
            PageSource::Memory(bytes) => {
                let at = offset as usize;
                let end = at + buf.len();
                if end > bytes.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "scene image truncated",
                    ));
                }
                buf.copy_from_slice(&bytes[at..end]);
                Ok(())
            }
            PageSource::File(f) => {
                let file = lock_unpoisoned(f);
                #[cfg(unix)]
                {
                    use std::os::unix::fs::FileExt;
                    file.read_exact_at(buf, offset)
                }
                #[cfg(not(unix))]
                {
                    use std::io::{Read, Seek, SeekFrom};
                    let mut file = file;
                    file.seek(SeekFrom::Start(offset))?;
                    file.read_exact(buf)
                }
            }
            PageSource::Faulty(inj) => inj.inner.read_at(offset, buf),
        }
    }

    /// The render-time page read: draws injected faults when wrapped.
    fn read_page(&self, offset: u64, buf: &mut [u8], attempt: u32) -> Result<(), ReadFault> {
        match self {
            PageSource::Faulty(inj) => inj.read_page(offset, buf, attempt),
            other => other.read_at(offset, buf).map_err(ReadFault::Io),
        }
    }
}

/// Per-chunk CRC table of one column (shared with clones).
#[derive(Clone, Debug)]
struct ColumnCrc {
    chunk_slots: u32,
    chunks: Arc<[u32]>,
}

/// Mutable state of one paged column.
#[derive(Debug, Default)]
struct PageState {
    /// Materialized pages (whole slots each; the tail page may be short).
    pages: Vec<Option<Box<[u8]>>>,
    /// LRU stamp per page.
    stamp: Vec<u64>,
    /// Indices of the resident pages (≤ budget entries when bounded), so
    /// eviction scans the residents, never the whole page table.
    resident_ids: Vec<usize>,
    /// Pages lost to permanent faults; fetches of their slots fail fast.
    dead: Vec<bool>,
    clock: u64,
    /// Pages materialized over the column's lifetime (eviction makes this
    /// exceed the page count).
    faults: u64,
    /// Failed page-read attempts that were retried (or exhausted).
    retries: u64,
    /// Dead pages re-fetched and healed from the attached replica.
    healed: u64,
    /// Reusable chunk-cover staging for checksum verification, so warm
    /// verified fills allocate nothing once grown.
    verify: Vec<u8>,
}

/// Why one fill attempt of a page failed (internal to the retry loop).
enum FillError {
    Transient,
    Corrupt(u64),
    Io(io::Error),
    Permanent,
}

impl From<ReadFault> for FillError {
    fn from(f: ReadFault) -> FillError {
        match f {
            ReadFault::Io(e) => FillError::Io(e),
            ReadFault::Transient => FillError::Transient,
            ReadFault::Permanent => FillError::Permanent,
        }
    }
}

/// The store-wide fallback page source for replica-read healing: one slot
/// shared by every column (and every [`Column::clone`]) of a store, filled
/// by [`VoxelStore::attach_replica_bytes`]. `None` until a replica is
/// attached; a dead page then re-fetches from it through the same
/// CRC-verified fill path as the primary.
type ReplicaSlot = Arc<Mutex<Option<Arc<PageSource>>>>;

/// One demand-paged column.
#[derive(Debug)]
struct PagedColumn {
    source: Arc<PageSource>,
    /// Column start inside the serialized image.
    offset: u64,
    /// Column length in bytes.
    len: u64,
    record_bytes: usize,
    slots: usize,
    config: PageConfig,
    kind: ColumnKind,
    /// Per-chunk CRC table (absent on version-1 images).
    crc: Option<ColumnCrc>,
    /// Store-wide replica source for healing dead pages (shared with the
    /// store's other columns; `None` inside until one is attached).
    replica: ReplicaSlot,
    state: Mutex<PageState>,
}

impl PagedColumn {
    #[allow(clippy::too_many_arguments)]
    fn new(
        source: Arc<PageSource>,
        offset: u64,
        record_bytes: usize,
        slots: usize,
        config: PageConfig,
        kind: ColumnKind,
        crc: Option<ColumnCrc>,
        replica: ReplicaSlot,
    ) -> PagedColumn {
        let config = config.validated();
        let n_pages = slots.div_ceil(config.slots_per_page as usize).max(1);
        PagedColumn {
            source,
            offset,
            len: (slots * record_bytes) as u64,
            record_bytes,
            slots,
            config,
            kind,
            crc,
            replica,
            state: Mutex::new(PageState {
                pages: (0..n_pages).map(|_| None).collect(),
                stamp: vec![0; n_pages],
                dead: vec![false; n_pages],
                ..Default::default()
            }),
        }
    }

    /// Copies slot `slot`'s record into `out`, materializing (and possibly
    /// evicting) pages as needed.
    fn read_slot(&self, slot: usize, out: &mut [u8]) -> Result<(), StoreError> {
        debug_assert_eq!(out.len(), self.record_bytes);
        self.read_range(slot, 1, out)
    }

    /// Copies the contiguous records of `[first_slot, first_slot + n)`
    /// into `out` under **one** lock acquisition, touching each spanned
    /// page's LRU state once — the whole-voxel fetch path.
    fn read_range(&self, first_slot: usize, n: usize, out: &mut [u8]) -> Result<(), StoreError> {
        debug_assert!(first_slot + n <= self.slots);
        debug_assert_eq!(out.len(), n * self.record_bytes);
        if n == 0 {
            return Ok(());
        }
        let spp = self.config.slots_per_page as usize;
        let mut st = lock_unpoisoned(&self.state);
        let mut slot = first_slot;
        let mut written = 0usize;
        while slot < first_slot + n {
            let page = slot / spp;
            self.ensure_page(&mut st, page)?;
            st.clock += 1;
            st.stamp[page] = st.clock;
            let in_page = slot - page * spp;
            let take = (spp - in_page).min(first_slot + n - slot);
            let bytes = take * self.record_bytes;
            let from = in_page * self.record_bytes;
            match &st.pages[page] {
                Some(p) => out[written..written + bytes].copy_from_slice(&p[from..from + bytes]),
                None => {
                    // ensure_page just succeeded; an absent page here means
                    // the state was corrupted by a panicking sibling.
                    return Err(StoreError::PageLost {
                        column: self.kind,
                        page: page as u64,
                    });
                }
            }
            written += bytes;
            slot += take;
        }
        Ok(())
    }

    /// Materializes `page` if absent: evicts the least-recently-used
    /// resident page when a budget is set (an O(budget) scan of the
    /// resident list; stamps are unique, so the victim is deterministic),
    /// then fills the page with up to [`PageConfig::max_read_attempts`]
    /// verified reads. Permanent faults mark the page dead; with a
    /// replica attached, a dead page is re-fetched (and CRC-re-verified)
    /// from it instead of failing fast — healing is counted, never
    /// rendered: replica bytes are validated identical to the primary's
    /// metadata, so a healed page holds the exact fault-free bytes.
    fn ensure_page(&self, st: &mut PageState, page: usize) -> Result<(), StoreError> {
        if st.pages[page].is_some() {
            return Ok(());
        }
        let lost = || StoreError::PageLost {
            column: self.kind,
            page: page as u64,
        };
        // A dead page only ever retries against an attached replica: one
        // clean verified fill heals it, anything else keeps it dead.
        let heal_from: Option<Arc<PageSource>> = if st.dead[page] {
            match lock_unpoisoned(&self.replica).clone() {
                Some(r) => Some(r),
                None => return Err(lost()),
            }
        } else {
            None
        };
        let budget = self.config.max_resident_pages as usize;
        if budget > 0 && st.resident_ids.len() >= budget {
            let mut at = 0usize;
            for (i, &p) in st.resident_ids.iter().enumerate() {
                if st.stamp[p] < st.stamp[st.resident_ids[at]] {
                    at = i;
                }
            }
            let victim = st.resident_ids.swap_remove(at);
            st.pages[victim] = None;
        }
        let spp = self.config.slots_per_page as usize;
        let first_slot = page * spp;
        let n_slots = spp.min(self.slots - first_slot);
        let mut bytes = vec![0u8; n_slots * self.record_bytes].into_boxed_slice();
        if let Some(replica) = heal_from {
            // Healing path: a single verified fill from the replica (no
            // retry loop — the replica is the last resort; its fill is
            // clean and CRC-checked, or the page stays dead).
            let healed = self
                .fill_page(&replica, &mut st.verify, &mut bytes, first_slot, n_slots, 0)
                .is_ok();
            if !healed {
                return Err(lost());
            }
            st.dead[page] = false;
            st.healed += 1;
            st.pages[page] = Some(bytes);
            st.resident_ids.push(page);
            st.faults += 1;
            return Ok(());
        }
        let max_attempts = self.config.max_read_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            match self.fill_page(
                &self.source,
                &mut st.verify,
                &mut bytes,
                first_slot,
                n_slots,
                attempt,
            ) {
                Ok(()) => break,
                Err(FillError::Permanent) => {
                    st.dead[page] = true;
                    // With a replica attached, heal the freshly-dead page
                    // inline: the frame sees a healed page, not a lost one.
                    let healed = lock_unpoisoned(&self.replica).clone().is_some_and(|r| {
                        self.fill_page(&r, &mut st.verify, &mut bytes, first_slot, n_slots, 0)
                            .is_ok()
                    });
                    if !healed {
                        return Err(lost());
                    }
                    st.dead[page] = false;
                    st.healed += 1;
                    break;
                }
                Err(cause) => {
                    st.retries += 1;
                    attempt += 1;
                    if attempt >= max_attempts {
                        return Err(match cause {
                            FillError::Transient => StoreError::RetriesExhausted {
                                column: self.kind,
                                page: page as u64,
                                attempts: attempt,
                            },
                            FillError::Corrupt(chunk) => StoreError::CorruptPage {
                                column: self.kind,
                                chunk,
                            },
                            FillError::Io(e) => StoreError::Io(e),
                            FillError::Permanent => StoreError::PageLost {
                                column: self.kind,
                                page: page as u64,
                            },
                        });
                    }
                    retry_backoff(attempt);
                }
            }
        }
        st.pages[page] = Some(bytes);
        st.resident_ids.push(page);
        st.faults += 1;
        Ok(())
    }

    /// One fill attempt from `source` (the primary, or the attached
    /// replica when healing). With checksums on, reads the chunk-aligned
    /// cover of the page's slots into `verify`, checks every covered
    /// chunk's CRC, and copies the page's window out; otherwise reads the
    /// page directly.
    fn fill_page(
        &self,
        source: &PageSource,
        verify: &mut Vec<u8>,
        out: &mut [u8],
        first_slot: usize,
        n_slots: usize,
        attempt: u32,
    ) -> Result<(), FillError> {
        let rb = self.record_bytes;
        let crc = match &self.crc {
            Some(crc) if self.config.verify_checksums => crc,
            _ => {
                return source
                    .read_page(self.offset + (first_slot * rb) as u64, out, attempt)
                    .map_err(FillError::from);
            }
        };
        let cs = (crc.chunk_slots as usize).max(1);
        let c0 = first_slot / cs;
        let c1 = (first_slot + n_slots).div_ceil(cs).min(crc.chunks.len());
        let cover_first = c0 * cs;
        let cover_last = (c1 * cs).min(self.slots);
        verify.clear();
        verify.resize((cover_last - cover_first) * rb, 0);
        source
            .read_page(self.offset + (cover_first * rb) as u64, verify, attempt)
            .map_err(FillError::from)?;
        for c in c0..c1 {
            let s0 = c * cs;
            let s1 = ((c + 1) * cs).min(self.slots);
            let window = &verify[(s0 - cover_first) * rb..(s1 - cover_first) * rb];
            if crc32(window) != crc.chunks[c] {
                return Err(FillError::Corrupt(c as u64));
            }
        }
        let from = (first_slot - cover_first) * rb;
        out.copy_from_slice(&verify[from..from + n_slots * rb]);
        Ok(())
    }

    fn faults(&self) -> u64 {
        lock_unpoisoned(&self.state).faults
    }

    fn resident_bytes(&self) -> u64 {
        let st = lock_unpoisoned(&self.state);
        st.pages
            .iter()
            .flatten()
            .map(|p| p.len() as u64)
            .sum::<u64>()
    }
}

/// One column's backing: fully resident bytes or demand-paged pages.
#[derive(Debug)]
enum Column {
    Resident(Vec<u8>),
    // Boxed: a PagedColumn (source handle, CRC tables, page state) is an
    // order of magnitude wider than the resident variant's Vec header.
    Paged(Box<PagedColumn>),
}

impl Column {
    fn len_bytes(&self) -> u64 {
        match self {
            Column::Resident(b) => b.len() as u64,
            Column::Paged(p) => p.len,
        }
    }

    /// Copies slot `slot`'s `record_bytes`-wide record into `out`.
    fn read_slot(
        &self,
        slot: usize,
        record_bytes: usize,
        out: &mut [u8],
    ) -> Result<(), StoreError> {
        match self {
            Column::Resident(b) => {
                out.copy_from_slice(&b[slot * record_bytes..slot * record_bytes + out.len()]);
                Ok(())
            }
            Column::Paged(p) => {
                debug_assert_eq!(p.record_bytes, record_bytes);
                p.read_slot(slot, out)
            }
        }
    }
}

impl Clone for Column {
    /// Cloning a paged column shares the source image, CRC tables and the
    /// replica slot (an attached replica keeps healing clones) but starts
    /// with a cold page set (page state is never shared between clones —
    /// including dead-page marks, which re-derive from the same
    /// deterministic fault stream).
    fn clone(&self) -> Column {
        match self {
            Column::Resident(b) => Column::Resident(b.clone()),
            Column::Paged(p) => Column::Paged(Box::new(PagedColumn::new(
                Arc::clone(&p.source),
                p.offset,
                p.record_bytes,
                p.slots,
                p.config,
                p.kind,
                p.crc.clone(),
                Arc::clone(&p.replica),
            ))),
        }
    }
}

/// A return-on-drop pool of staging buffers for paged whole-voxel fetches.
///
/// [`VoxelStore::fetch_coarse`] over a paged column stages the voxel's
/// contiguous records before decoding; allocating that staging `Vec` per
/// voxel made the paged steady state allocate where the resident path does
/// not (the ROADMAP open item). The pool hands out recycled buffers
/// ([`StagingPool::take`]) wrapped in a [`PooledBuf`] guard that pushes the
/// buffer back on drop, so once every buffer in flight has grown to the
/// largest voxel's size, paged coarse fetches allocate nothing
/// (`tests/alloc_free_streaming.rs` proves it under a counting allocator).
#[derive(Debug, Default)]
struct StagingPool(Mutex<Vec<Vec<u8>>>);

impl StagingPool {
    /// Pops a recycled buffer (or starts a fresh one), resized to `len`.
    fn take(&self, len: usize) -> PooledBuf<'_> {
        let mut buf = lock_unpoisoned(&self.0).pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        PooledBuf { pool: self, buf }
    }
}

impl Clone for StagingPool {
    /// Clones start with an empty pool — buffers are cheap warm-up state,
    /// never shared data.
    fn clone(&self) -> StagingPool {
        StagingPool::default()
    }
}

/// A staging buffer on loan from a [`StagingPool`]; returns itself to the
/// pool when dropped (keeping its capacity for the next fetch).
#[derive(Debug)]
struct PooledBuf<'a> {
    pool: &'a StagingPool,
    buf: Vec<u8>,
}

impl Drop for PooledBuf<'_> {
    fn drop(&mut self) {
        lock_unpoisoned(&self.pool.0).push(std::mem::take(&mut self.buf));
    }
}

impl std::ops::Deref for PooledBuf<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// What the second-half column holds.
#[derive(Clone, Debug)]
enum FineFormat {
    /// Uncompressed 220 B records plus the per-slot max-axis layout tag
    /// (metadata, not counted as record traffic).
    Raw { max_axis: Vec<u8> },
    /// Serialized index records decoded through the (on-chip) codebooks.
    Vq {
        codebooks: FeatureCodebooks,
        record_bytes: usize,
    },
}

/// How an extra tier's records decode (mirrors the store's [`FineFormat`]:
/// raw stores carry raw tiers, VQ stores carry VQ tiers).
#[derive(Clone, Debug)]
enum TierCodec {
    /// SH-truncated byte prefixes of the raw fine record; decoding
    /// zero-fills the truncated tail and reuses the per-slot max-axis tag
    /// of the full-quality column.
    Raw,
    /// Tier-trained codebooks (entries shrunk by
    /// [`TierSpec::codebook_shift`]) decoding SH-truncated index records.
    Vq(FeatureCodebooks),
}

/// One extra LOD tier: a pruned, SH-truncated second-half column plus the
/// slot directory mapping its compact slot space back to global slots.
#[derive(Clone, Debug)]
struct TierColumn {
    /// The layout this tier was built with.
    spec: TierSpec,
    codec: TierCodec,
    /// Serialized bytes per tier record.
    record_bytes: usize,
    /// Per-voxel ranges in *tier-slot* space (same indexing as the store's
    /// global ranges; empty for voxels the tier pruned entirely).
    ranges: Vec<(u32, u32)>,
    /// Tier slot → global slot, strictly ascending within each voxel.
    slots: Vec<u32>,
    /// The tier's record column (resident or demand-paged).
    column: Column,
}

/// The decoded coarse stream of one voxel, returned by
/// [`VoxelStore::fetch_coarse`] / [`VoxelStore::try_fetch_coarse`].
///
/// Resident columns decode straight from the contiguous column slice (no
/// per-slot copy or lock); a paged column decodes from a staging buffer on
/// loan from the store's return-on-drop pool (dropping the iterator
/// recycles it).
pub struct CoarseIter<'a> {
    bytes: CoarseBytes<'a>,
    first: u32,
    next: u32,
    end: u32,
}

enum CoarseBytes<'a> {
    Resident(&'a [u8]),
    Staged(PooledBuf<'a>),
}

impl Iterator for CoarseIter<'_> {
    type Item = (u32, Vec3, f32);

    fn next(&mut self) -> Option<(u32, Vec3, f32)> {
        if self.next >= self.end {
            return None;
        }
        let slot = self.next;
        self.next += 1;
        let rec: &[u8] = match &self.bytes {
            CoarseBytes::Resident(bytes) => &bytes[slot as usize * COARSE_BYTES..][..COARSE_BYTES],
            CoarseBytes::Staged(buf) => {
                &buf[(slot - self.first) as usize * COARSE_BYTES..][..COARSE_BYTES]
            }
        };
        let (pos, s_max) = Gaussian::decode_coarse(rec);
        Some((slot, pos, s_max))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for CoarseIter<'_> {}

/// Per-voxel contiguous columnar storage with metered, bit-exact fetches.
///
/// Built once at scene preparation ([`VoxelStore::from_cloud`] /
/// [`VoxelStore::from_quantized`]) with resident columns, or opened over a
/// serialized scene image with demand-paged columns
/// ([`VoxelStore::open_paged_bytes`] / [`VoxelStore::open_paged_file`]);
/// the streaming renderer's coarse and fine phases read **only** from
/// here, through either backing, with identical bytes and metering. See
/// the module docs for the error contract of the `try_*` twins.
#[derive(Clone, Debug)]
pub struct VoxelStore {
    /// Slot range per renamed voxel (mirrors the grid's layout).
    ranges: Vec<(u32, u32)>,
    /// Global Gaussian id per slot (the DRAM index stream).
    ids: Vec<u32>,
    /// First-half column, [`COARSE_BYTES`] per slot, voxel-contiguous.
    coarse: Column,
    /// Second-half column.
    fine: Column,
    /// Second-half record format (shared by both backings).
    format: FineFormat,
    /// Extra LOD tiers (tier 1..), coarsest last. Empty for single-tier
    /// stores — the legacy shape, serialized as a v2 image.
    tiers: Vec<TierColumn>,
    /// Recycled staging buffers for paged whole-voxel coarse fetches
    /// (unused by resident columns; clones start empty).
    staging: StagingPool,
}

impl VoxelStore {
    /// Builds a raw (uncompressed second half) store over `cloud`,
    /// voxel-contiguous in `grid`'s renamed-voxel order.
    pub fn from_cloud(cloud: &GaussianCloud, grid: &VoxelGrid) -> VoxelStore {
        let (ranges, ids) = layout_of(grid);
        let gs = cloud.as_slice();
        let mut coarse = Vec::with_capacity(ids.len() * COARSE_BYTES);
        let mut bytes = Vec::with_capacity(ids.len() * FINE_BYTES_RAW);
        let mut max_axis = Vec::with_capacity(ids.len());
        for &gi in &ids {
            let g = &gs[gi as usize];
            coarse.extend_from_slice(&g.coarse_record());
            let (fine, axis) = g.fine_record();
            bytes.extend_from_slice(&fine);
            max_axis.push(axis);
        }
        VoxelStore {
            ranges,
            ids,
            coarse: Column::Resident(coarse),
            fine: Column::Resident(bytes),
            format: FineFormat::Raw { max_axis },
            tiers: Vec::new(),
            staging: StagingPool::default(),
        }
    }

    /// Builds a VQ store: raw first half (from the quantizer's uncompressed
    /// coarse data, bit-identical to the cloud's) and serialized index
    /// records as the second half, decoded through a copy of the trained
    /// codebooks on fetch.
    ///
    /// # Panics
    ///
    /// Panics when `quant` does not cover every Gaussian of the grid.
    pub fn from_quantized(quant: &QuantizedCloud, grid: &VoxelGrid) -> VoxelStore {
        let (ranges, ids) = layout_of(grid);
        let record_bytes = quant.codebooks.record_bytes() as usize;
        let mut coarse = Vec::with_capacity(ids.len() * COARSE_BYTES);
        let mut bytes = Vec::with_capacity(ids.len() * record_bytes);
        for &gi in &ids {
            let (pos, s_max) = quant.coarse[gi as usize];
            for v in [pos.x, pos.y, pos.z, s_max] {
                coarse.extend_from_slice(&v.to_le_bytes());
            }
            quant
                .codebooks
                .write_record(&quant.records[gi as usize], &mut bytes);
        }
        VoxelStore {
            ranges,
            ids,
            coarse: Column::Resident(coarse),
            fine: Column::Resident(bytes),
            format: FineFormat::Vq {
                codebooks: quant.codebooks.clone(),
                record_bytes,
            },
            tiers: Vec::new(),
            staging: StagingPool::default(),
        }
    }

    /// Gaussian slots in the store.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the store holds no Gaussians.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of voxels (equals the grid's renamed voxel count).
    pub fn voxel_count(&self) -> usize {
        self.ranges.len()
    }

    /// `true` when the second half holds VQ index records.
    pub fn is_vq(&self) -> bool {
        matches!(self.format, FineFormat::Vq { .. })
    }

    /// `true` when the columns are demand-paged rather than resident.
    pub fn is_paged(&self) -> bool {
        matches!(self.coarse, Column::Paged(_))
    }

    /// The effective page configuration of a paged store (`None` for
    /// resident backings). `verify_checksums` here reflects reality: it is
    /// forced `false` when the image was a version-1 file without CRC
    /// tables, whatever the requested config said.
    pub fn page_config(&self) -> Option<PageConfig> {
        match &self.coarse {
            Column::Paged(p) => Some(p.config),
            Column::Resident(_) => None,
        }
    }

    /// Pages materialized so far across both columns (0 for resident
    /// backings; with a residency budget, re-faults count again).
    pub fn page_faults(&self) -> u64 {
        let of = |c: &Column| match c {
            Column::Resident(_) => 0,
            Column::Paged(p) => p.faults(),
        };
        of(&self.coarse) + of(&self.fine) + self.tiers.iter().map(|t| of(&t.column)).sum::<u64>()
    }

    /// Retry/dead/injection counters, cheap enough to snapshot per frame
    /// (all zeros for resident backings). Allocation-free.
    pub fn fault_snapshot(&self) -> StoreFaultSnapshot {
        let mut snap = StoreFaultSnapshot::default();
        for col in [&self.coarse, &self.fine]
            .into_iter()
            .chain(self.tiers.iter().map(|t| &t.column))
        {
            if let Column::Paged(p) = col {
                let st = lock_unpoisoned(&p.state);
                snap.retries += st.retries;
                snap.dead_pages += st.dead.iter().filter(|&&d| d).count() as u64;
                snap.pages_healed += st.healed;
            }
        }
        if let Column::Paged(p) = &self.coarse {
            if let PageSource::Faulty(inj) = &*p.source {
                snap.injected = *lock_unpoisoned(&inj.stats);
            }
        }
        snap
    }

    /// Per-page health map of `column`: `map[i]` is `true` when page `i`
    /// was marked dead by a permanent fault, so every fetch touching its
    /// slots fails fast with [`StoreError::PageLost`]. A dead mark is
    /// sticky unless a replica is attached (see
    /// [`VoxelStore::attach_replica_bytes`]): the next fetch touching a
    /// dead page then re-reads it from the replica, re-verifies its CRC
    /// chunks, and clears the mark on success. Clones re-derive their own
    /// marks from their own reads. Resident columns have no pages: the
    /// map is empty and [`StoreFaultSnapshot::dead_pages`] is the
    /// matching aggregate count.
    pub fn dead_page_map(&self, column: ColumnKind) -> Vec<bool> {
        let col = match column {
            ColumnKind::Coarse => &self.coarse,
            ColumnKind::Fine => &self.fine,
            ColumnKind::Tier(t) => &self.tiers[t as usize].column,
        };
        match col {
            Column::Resident(_) => Vec::new(),
            Column::Paged(p) => lock_unpoisoned(&p.state).dead.clone(),
        }
    }

    /// Attaches an in-memory replica scene image as the fallback page
    /// source for every paged column. Once attached, a fetch touching a
    /// page marked dead re-reads the page from the replica instead of
    /// failing with [`StoreError::PageLost`]; the healed bytes re-verify
    /// their CRC chunks (when the store verifies checksums) and the heal
    /// is counted in [`StoreFaultSnapshot::pages_healed`]. The replica
    /// must be byte-compatible with the primary image: same length and an
    /// identical metadata prefix (header, tables, checksums). The column
    /// payloads are *not* compared up front — a replica whose payload
    /// diverges is caught page-by-page by CRC verification at heal time.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when the store is not paged or the
    /// replica is not byte-compatible with the primary image.
    pub fn attach_replica_bytes(&self, image: Vec<u8>) -> Result<(), StoreError> {
        self.attach_replica(PageSource::Memory(image))
    }

    /// [`VoxelStore::attach_replica_bytes`] reading the replica image
    /// from a file on demand.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be opened, plus every
    /// [`VoxelStore::attach_replica_bytes`] error.
    pub fn attach_replica_file(&self, path: &Path) -> Result<(), StoreError> {
        self.attach_replica(PageSource::File(Mutex::new(std::fs::File::open(path)?)))
    }

    fn attach_replica(&self, replica: PageSource) -> Result<(), StoreError> {
        let Column::Paged(p) = &self.coarse else {
            return Err(StoreError::Malformed {
                what: "replica attached to a resident store",
            });
        };
        let primary_len = p.source.len()?;
        if replica.len()? != primary_len {
            return Err(StoreError::Malformed {
                what: "replica length disagrees with the primary image",
            });
        }
        // The metadata prefix (everything before the coarse column) must
        // match byte-for-byte: it pins the layout every paged column's
        // offsets were derived from, so a replica that passes is
        // structurally interchangeable with the primary.
        let meta = p.offset as usize;
        let mut a = vec![0u8; meta];
        let mut b = vec![0u8; meta];
        p.source.read_at(0, &mut a)?;
        replica.read_at(0, &mut b)?;
        if a != b {
            return Err(StoreError::Malformed {
                what: "replica metadata disagrees with the primary image",
            });
        }
        // One store-wide slot shared by every column (and every clone of
        // this store), so a single attach heals all columns.
        *lock_unpoisoned(&p.replica) = Some(Arc::new(replica));
        Ok(())
    }

    /// Bytes currently held by materialized pages across every column,
    /// tiers included (equals the column totals for resident backings).
    pub fn resident_column_bytes(&self) -> u64 {
        let of = |c: &Column| match c {
            Column::Resident(b) => b.len() as u64,
            Column::Paged(p) => p.resident_bytes(),
        };
        of(&self.coarse) + of(&self.fine) + self.tiers.iter().map(|t| of(&t.column)).sum::<u64>()
    }

    /// DRAM bytes of one first-half record (16).
    pub fn coarse_bytes_per_gaussian(&self) -> u64 {
        COARSE_BYTES as u64
    }

    /// DRAM bytes of one second-half record (220 raw; the codebooks'
    /// record width for VQ).
    pub fn fine_bytes_per_gaussian(&self) -> u64 {
        match &self.format {
            FineFormat::Raw { .. } => FINE_BYTES_RAW as u64,
            FineFormat::Vq { record_bytes, .. } => *record_bytes as u64,
        }
    }

    /// Total bytes of the first-half column.
    pub fn coarse_column_bytes(&self) -> u64 {
        self.coarse.len_bytes()
    }

    /// Total bytes of the second-half column.
    pub fn fine_column_bytes(&self) -> u64 {
        self.fine.len_bytes()
    }

    /// The slot range of renamed voxel `vid`.
    pub fn slots_of(&self, vid: u32) -> std::ops::Range<u32> {
        let (a, b) = self.ranges[vid as usize];
        a..b
    }

    /// Global Gaussian id stored at `slot`.
    pub fn id_of(&self, slot: u32) -> u32 {
        self.ids[slot as usize]
    }

    /// Global Gaussian ids of voxel `vid`, in slot order.
    pub fn ids_of(&self, vid: u32) -> &[u32] {
        let (a, b) = self.ranges[vid as usize];
        &self.ids[a as usize..b as usize]
    }

    /// Streams voxel `vid`'s first-half column: stages the whole voxel's
    /// contiguous range (paged backings; one lock acquisition), meters the
    /// voxel's coarse bytes into `ledger` (`VoxelCoarse`/read demand — the
    /// burst the accelerator issues regardless of filter outcomes) and
    /// returns an iterator of `(slot, position, max scale)` decoded from
    /// the bytes (identically for resident and paged backings). Nothing is
    /// metered when the stage fails.
    pub fn try_fetch_coarse(
        &self,
        vid: u32,
        ledger: &mut TrafficLedger,
    ) -> Result<CoarseIter<'_>, StoreError> {
        let (a, b) = self.ranges[vid as usize];
        let bytes = match &self.coarse {
            Column::Resident(bytes) => CoarseBytes::Resident(bytes.as_slice()),
            Column::Paged(p) => {
                let mut buf = self.staging.take((b - a) as usize * COARSE_BYTES);
                p.read_range(a as usize, (b - a) as usize, &mut buf)?;
                CoarseBytes::Staged(buf)
            }
        };
        ledger.add(
            Stage::VoxelCoarse,
            Direction::Read,
            (b - a) as u64 * COARSE_BYTES as u64,
        );
        Ok(CoarseIter {
            bytes,
            first: a,
            next: a,
            end: b,
        })
    }

    /// [`VoxelStore::try_fetch_coarse`], panicking on error — infallible
    /// over resident columns; the paged exactness suites keep using it on
    /// known-good images.
    ///
    /// # Panics
    ///
    /// Panics when a paged read fails (see [`StoreError`]).
    pub fn fetch_coarse(&self, vid: u32, ledger: &mut TrafficLedger) -> CoarseIter<'_> {
        match self.try_fetch_coarse(vid, ledger) {
            Ok(it) => it,
            Err(e) => panic!("fetch_coarse(voxel {vid}): {e}"),
        }
    }

    /// Fetches and decodes `slot`'s second-half record, metering its bytes
    /// into `ledger` (`VoxelFine`/read demand) only on success. Bit-exact:
    /// raw stores return the original Gaussian, VQ stores return exactly
    /// [`QuantizedCloud::decode_one`]'s result — whichever backing the
    /// columns use.
    pub fn try_fetch_fine(
        &self,
        slot: u32,
        ledger: &mut TrafficLedger,
    ) -> Result<Gaussian, StoreError> {
        let s = slot as usize;
        let width = self.fine_bytes_per_gaussian() as usize;
        // Resident columns decode straight from their slices (the
        // per-survivor hot loop); paged columns copy through the page
        // machinery.
        let mut cbuf = [0u8; COARSE_BYTES];
        let coarse: &[u8] = if let Column::Resident(bytes) = &self.coarse {
            &bytes[s * COARSE_BYTES..(s + 1) * COARSE_BYTES]
        } else {
            self.coarse.read_slot(s, COARSE_BYTES, &mut cbuf)?;
            &cbuf
        };
        let mut fbuf = [0u8; FINE_BYTES_RAW];
        let fine: &[u8] = if let Column::Resident(bytes) = &self.fine {
            &bytes[s * width..(s + 1) * width]
        } else {
            let buf = &mut fbuf[..width];
            self.fine.read_slot(s, width, buf)?;
            buf
        };
        ledger.add(Stage::VoxelFine, Direction::Read, width as u64);
        ledger.note_tier(0, width as u64);
        Ok(match &self.format {
            FineFormat::Raw { max_axis } => Gaussian::from_split_record(coarse, fine, max_axis[s]),
            FineFormat::Vq { codebooks, .. } => {
                let (pos, _) = Gaussian::decode_coarse(coarse);
                let r = codebooks.read_record(fine);
                codebooks.decode_record(pos, &r)
            }
        })
    }

    /// [`VoxelStore::try_fetch_fine`], panicking on error — infallible
    /// over resident columns.
    ///
    /// # Panics
    ///
    /// Panics when a paged read fails (see [`StoreError`]).
    pub fn fetch_fine(&self, slot: u32, ledger: &mut TrafficLedger) -> Gaussian {
        match self.try_fetch_fine(slot, ledger) {
            Ok(g) => g,
            Err(e) => panic!("fetch_fine(slot {slot}): {e}"),
        }
    }

    /// Re-reads slot `slot`'s coarse record *without metering* — the
    /// degraded-path re-read of bytes the coarse phase already streamed
    /// on-chip (the renderer blends a coarse stand-in when a fine page is
    /// unavailable).
    pub fn try_coarse_of(&self, slot: u32) -> Result<(Vec3, f32), StoreError> {
        let s = slot as usize;
        let mut cbuf = [0u8; COARSE_BYTES];
        let rec: &[u8] = if let Column::Resident(bytes) = &self.coarse {
            &bytes[s * COARSE_BYTES..(s + 1) * COARSE_BYTES]
        } else {
            self.coarse.read_slot(s, COARSE_BYTES, &mut cbuf)?;
            &cbuf
        };
        Ok(Gaussian::decode_coarse(rec))
    }

    // --- LOD tiers --------------------------------------------------------

    /// Builds the extra LOD tiers of this store in place (tier 1.. —
    /// tier 0, the full-quality column, already exists and is never
    /// touched). Each [`TierSpec`] coarsens along three axes: SH-degree
    /// truncation, importance pruning ([`TierSpec::keep_permille`] of the
    /// slots survive, highest importance first) and — for VQ stores —
    /// codebooks shrunk by [`TierSpec::codebook_shift`] and retrained
    /// deterministically (seed offset per tier, so tier contents are a
    /// pure function of `(source, vq, specs, importance)`).
    ///
    /// `importance` scores are indexed by **global Gaussian id** (the
    /// `gs-baselines` view-importance convention); when absent, a pure
    /// per-Gaussian fallback (opacity × s_max²) ranks the pruning instead.
    /// Ties rank by ascending slot, so pruning is total-ordered.
    ///
    /// # Panics
    ///
    /// Panics when `self` is paged (tiers are built at scene-preparation
    /// time, before serialization), when more than
    /// [`gs_mem::MAX_TIERS`] − 1 specs are given, when a VQ store is given
    /// no `vq` config to retrain from, or when `importance` does not cover
    /// the source cloud.
    pub fn build_tiers(
        &mut self,
        source: &GaussianCloud,
        vq: Option<&VqConfig>,
        specs: &[TierSpec],
        importance: Option<&[f64]>,
    ) {
        assert!(
            !self.is_paged(),
            "tiers are built on resident stores before serialization"
        );
        assert!(
            specs.len() < MAX_TIERS,
            "at most {} extra tiers (gs_mem::MAX_TIERS covers tier 0 + extras)",
            MAX_TIERS - 1
        );
        let max_id = self.ids.iter().copied().max().map_or(0, |m| m as usize + 1);
        assert!(
            max_id <= source.len(),
            "source cloud must cover every Gaussian id in the store"
        );
        if let Some(imp) = importance {
            assert_eq!(
                imp.len(),
                source.len(),
                "importance scores must cover the source cloud"
            );
        }
        let gs = source.as_slice();
        // Pruning rank of every slot: importance descending, slot ascending
        // on ties. The fallback score is a pure per-Gaussian map — no
        // accumulation — so ranking is order-free.
        let score = |slot: u32| -> f64 {
            let g = &gs[self.ids[slot as usize] as usize];
            match importance {
                Some(imp) => imp[self.ids[slot as usize] as usize],
                None => {
                    let s_max = g.scale.x.max(g.scale.y).max(g.scale.z);
                    f64::from(g.opacity) * f64::from(s_max) * f64::from(s_max)
                }
            }
        };
        // gs-lint: allow(D004) slot count fits u32 (the image header stores it as one)
        let mut rank: Vec<u32> = (0..self.ids.len() as u32).collect();
        rank.sort_by(|&a, &b| score(b).total_cmp(&score(a)).then_with(|| a.cmp(&b)));
        self.tiers = specs
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let spec = spec.validated();
                // Tier-trained codebooks for VQ stores: every feature
                // codebook keeps entries >> codebook_shift centroids, with
                // a per-tier seed offset so tiers train independently.
                let quant = match &self.format {
                    FineFormat::Raw { .. } => None,
                    FineFormat::Vq { .. } => {
                        let Some(base) = vq else {
                            panic!("a VQ store needs a VqConfig to retrain tier codebooks")
                        };
                        let shift = u32::from(spec.codebook_shift);
                        let cfg = VqConfig {
                            scale_entries: (base.scale_entries >> shift).max(1),
                            rot_entries: (base.rot_entries >> shift).max(1),
                            dc_entries: (base.dc_entries >> shift).max(1),
                            sh_entries: (base.sh_entries >> shift).max(1),
                            // gs-lint: allow(D004) tier index is < MAX_TIERS
                            seed: base.seed.wrapping_add(1000 * (t as u64 + 1)),
                            ..*base
                        };
                        Some(GaussianQuantizer::train(source, &cfg))
                    }
                };
                let keep = (self.ids.len() * spec.keep_permille as usize).div_ceil(1000);
                let mut kept = vec![false; self.ids.len()];
                for &slot in rank.iter().take(keep) {
                    kept[slot as usize] = true;
                }
                // Tier slots in ascending global order: voxel-contiguous by
                // construction (global slots already are), so the per-voxel
                // tier ranges are plain prefix sums over the kept counts.
                let mut ranges = Vec::with_capacity(self.ranges.len());
                let mut slots = Vec::with_capacity(keep);
                let mut col = Vec::new();
                for &(a, b) in &self.ranges {
                    // gs-lint: allow(D004) tier slot count ≤ global slot count, which fits u32
                    let start = slots.len() as u32;
                    for slot in a..b {
                        if !kept[slot as usize] {
                            continue;
                        }
                        slots.push(slot);
                        match (&self.format, &quant) {
                            (FineFormat::Raw { .. }, _) => {
                                // Resident by the method's entry assertion.
                                let Column::Resident(bytes) = &self.fine else {
                                    unreachable!("build_tiers asserted a resident store")
                                };
                                let rec =
                                    &bytes[slot as usize * FINE_BYTES_RAW..][..FINE_BYTES_RAW];
                                truncate_raw_record(rec, spec.sh_degree, &mut col);
                            }
                            (FineFormat::Vq { .. }, Some(q)) => {
                                let gi = self.ids[slot as usize] as usize;
                                write_vq_tier_record(
                                    &q.codebooks,
                                    spec.sh_degree,
                                    &q.records[gi],
                                    &mut col,
                                );
                            }
                            (FineFormat::Vq { .. }, None) => unreachable!(),
                        }
                    }
                    // gs-lint: allow(D004) tier slot count ≤ global slot count, which fits u32
                    ranges.push((start, slots.len() as u32));
                }
                let (codec, record_bytes) = match quant {
                    None => (TierCodec::Raw, raw_tier_bytes(spec.sh_degree) as usize),
                    Some(q) => {
                        let rb = vq_tier_bytes(&q.codebooks, spec.sh_degree) as usize;
                        (TierCodec::Vq(q.codebooks), rb)
                    }
                };
                debug_assert_eq!(col.len(), slots.len() * record_bytes);
                TierColumn {
                    spec,
                    codec,
                    record_bytes,
                    ranges,
                    slots,
                    column: Column::Resident(col),
                }
            })
            .collect();
    }

    /// Number of extra LOD tiers (0 for a legacy single-tier store; the
    /// full-quality column is tier 0 and not counted here).
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// Layout of extra tier `t` (0-based over the extras — overall tier
    /// `t + 1`).
    pub fn tier_spec(&self, t: usize) -> TierSpec {
        self.tiers[t].spec
    }

    /// Serialized bytes per record of extra tier `t`.
    pub fn tier_record_bytes(&self, t: usize) -> u64 {
        self.tiers[t].record_bytes as u64
    }

    /// Total bytes of extra tier `t`'s record column.
    pub fn tier_column_bytes(&self, t: usize) -> u64 {
        self.tiers[t].column.len_bytes()
    }

    /// Voxel `vid`'s slot range in extra tier `t`'s compact slot space
    /// (empty when the tier pruned the voxel entirely).
    pub fn tier_slots_of(&self, t: usize, vid: u32) -> std::ops::Range<u32> {
        let (a, b) = self.tiers[t].ranges[vid as usize];
        a..b
    }

    /// The global slot behind extra tier `t`'s slot `tslot`.
    pub fn tier_global_slot(&self, t: usize, tslot: u32) -> u32 {
        self.tiers[t].slots[tslot as usize]
    }

    /// Fetches and decodes extra tier `t`'s record at tier slot `tslot`,
    /// metering its bytes into `ledger` (`VoxelFine`/read demand plus the
    /// overall tier's per-tier counter, `t + 1`) only on success. Decodes
    /// are deterministic: the kept feature groups run the same float
    /// operations as the full-quality decode; truncated SH bands are exact
    /// zeros.
    pub fn try_fetch_tier_fine(
        &self,
        t: usize,
        tslot: u32,
        ledger: &mut TrafficLedger,
    ) -> Result<Gaussian, StoreError> {
        let tier = &self.tiers[t];
        let width = tier.record_bytes;
        let global = tier.slots[tslot as usize] as usize;
        let mut tbuf = [0u8; FINE_BYTES_RAW];
        let rec: &[u8] = if let Column::Resident(bytes) = &tier.column {
            &bytes[tslot as usize * width..(tslot as usize + 1) * width]
        } else {
            let buf = &mut tbuf[..width];
            tier.column.read_slot(tslot as usize, width, buf)?;
            buf
        };
        let mut cbuf = [0u8; COARSE_BYTES];
        let coarse: &[u8] = if let Column::Resident(bytes) = &self.coarse {
            &bytes[global * COARSE_BYTES..(global + 1) * COARSE_BYTES]
        } else {
            self.coarse.read_slot(global, COARSE_BYTES, &mut cbuf)?;
            &cbuf
        };
        let g = match (&tier.codec, &self.format) {
            (TierCodec::Raw, FineFormat::Raw { max_axis }) => {
                let mut full = [0u8; FINE_BYTES_RAW];
                expand_raw_record(rec, &mut full);
                Gaussian::from_split_record(coarse, &full, max_axis[global])
            }
            (TierCodec::Vq(cb), _) => {
                let (pos, _) = Gaussian::decode_coarse(coarse);
                let r = read_vq_tier_record(cb, tier.spec.sh_degree, rec);
                decode_vq_tier_record(cb, tier.spec.sh_degree, pos, &r)
            }
            (TierCodec::Raw, FineFormat::Vq { .. }) => {
                return Err(StoreError::Malformed {
                    what: "raw tier records inside a VQ scene image",
                })
            }
        };
        ledger.add(Stage::VoxelFine, Direction::Read, width as u64);
        ledger.note_tier(t + 1, width as u64);
        Ok(g)
    }

    // --- serialized scene image ------------------------------------------

    /// Serializes the store into its compact scene image (see the module
    /// docs for the layout): version 2 when the store is single-tier, the
    /// tiered version 3 when extra LOD tiers were built — so legacy stores
    /// keep producing bit-identical v2 images.
    /// [`VoxelStore::open_paged_bytes`] / [`VoxelStore::open_paged_file`]
    /// reopen the image with demand-paged columns, bit-exactly. Fails only
    /// when `self` is itself paged and a page read fails.
    pub fn try_to_scene_bytes(&self) -> Result<Vec<u8>, StoreError> {
        if self.tiers.is_empty() {
            self.serialize_scene(SCENE_VERSION)
        } else {
            self.serialize_scene(SCENE_VERSION_V3)
        }
    }

    /// Serializes a **version-3** image even for a single-tier store (zero
    /// extra tiers in the directory) — the compatibility-suite shape
    /// proving v3 ⊇ v2.
    ///
    /// # Panics
    ///
    /// Panics when `self` is paged and a page read fails.
    pub fn to_scene_bytes_v3(&self) -> Vec<u8> {
        match self.serialize_scene(SCENE_VERSION_V3) {
            Ok(image) => image,
            Err(e) => panic!("to_scene_bytes_v3: {e}"),
        }
    }

    /// [`VoxelStore::try_to_scene_bytes`], panicking on error —
    /// infallible over resident columns.
    ///
    /// # Panics
    ///
    /// Panics when `self` is paged and a page read fails.
    pub fn to_scene_bytes(&self) -> Vec<u8> {
        match self.try_to_scene_bytes() {
            Ok(image) => image,
            Err(e) => panic!("to_scene_bytes: {e}"),
        }
    }

    /// Serializes the pre-checksum version-1 image (no CRC tables) — kept
    /// for back-compat tests and benches only.
    ///
    /// # Panics
    ///
    /// Panics when `self` is paged and a page read fails.
    #[doc(hidden)]
    pub fn to_scene_bytes_v1(&self) -> Vec<u8> {
        match self.serialize_scene(SCENE_VERSION_V1) {
            Ok(image) => image,
            Err(e) => panic!("to_scene_bytes_v1: {e}"),
        }
    }

    fn serialize_scene(&self, version: u32) -> Result<Vec<u8>, StoreError> {
        let n_slots = self.len();
        let width = self.fine_bytes_per_gaussian() as usize;
        // Serializing a tiered store as v2/v1 silently drops the tiers —
        // those formats cannot express them and remain bit-compatible.
        let tiers: &[TierColumn] = if version >= SCENE_VERSION_V3 {
            &self.tiers
        } else {
            &[]
        };
        let mut out = Vec::new();
        let mut header = vec![
            SCENE_MAGIC,
            version,
            if self.is_vq() { FLAG_VQ } else { 0 },
            header_u32(self.voxel_count(), "voxel count exceeds u32 header field")?,
            header_u32(n_slots, "slot count exceeds u32 header field")?,
            header_u32(width, "record width exceeds u32 header field")?,
        ];
        if version >= SCENE_VERSION {
            header.push(CRC_CHUNK_SLOTS);
        }
        if version >= SCENE_VERSION_V3 {
            header.push(header_u32(
                tiers.len(),
                "tier count exceeds u32 header field",
            )?);
        }
        for v in header {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &(a, b) in &self.ranges {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
        for &id in &self.ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        match &self.format {
            FineFormat::Raw { max_axis } => out.extend_from_slice(max_axis),
            FineFormat::Vq { codebooks, .. } => write_codebooks(codebooks, &mut out),
        }
        // Stage both columns (pages everything in when `self` is paged —
        // which is also why serialization happens before any file I/O in
        // `write_scene_file`).
        let mut rec = [0u8; FINE_BYTES_RAW];
        let mut coarse_col = Vec::with_capacity(n_slots * COARSE_BYTES);
        for s in 0..n_slots {
            self.coarse
                .read_slot(s, COARSE_BYTES, &mut rec[..COARSE_BYTES])?;
            coarse_col.extend_from_slice(&rec[..COARSE_BYTES]);
        }
        let mut fine_col = Vec::with_capacity(n_slots * width);
        for s in 0..n_slots {
            self.fine.read_slot(s, width, &mut rec[..width])?;
            fine_col.extend_from_slice(&rec[..width]);
        }
        let mut tier_cols = Vec::with_capacity(tiers.len());
        for t in tiers {
            let rb = t.record_bytes;
            let mut col = vec![0u8; t.slots.len() * rb];
            for s in 0..t.slots.len() {
                t.column.read_slot(s, rb, &mut col[s * rb..(s + 1) * rb])?;
            }
            tier_cols.push(col);
        }
        if version >= SCENE_VERSION {
            // Chunks are slot-aligned, so `chunks()` over the raw column
            // yields exactly ceil(n_slots / CRC_CHUNK_SLOTS) windows.
            for (col, rb) in [(&coarse_col, COARSE_BYTES), (&fine_col, width)] {
                for chunk in col.chunks((CRC_CHUNK_SLOTS as usize * rb).max(1)) {
                    out.extend_from_slice(&crc32(chunk).to_le_bytes());
                }
            }
            // v3 tier directory: per tier, a six-word descriptor, the
            // tier-slot tables, the tier codebooks (VQ images), then the
            // tier column's own CRC chunk table — all covered by the one
            // metadata CRC below.
            for (t, col) in tiers.iter().zip(&tier_cols) {
                let kind = match &t.codec {
                    TierCodec::Raw => TIER_KIND_RAW,
                    TierCodec::Vq(_) => TIER_KIND_VQ,
                };
                for v in [
                    kind,
                    u32::from(t.spec.sh_degree),
                    u32::from(t.spec.keep_permille),
                    u32::from(t.spec.codebook_shift),
                    header_u32(t.record_bytes, "tier record width exceeds u32")?,
                    header_u32(t.slots.len(), "tier slot count exceeds u32")?,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                for &(a, b) in &t.ranges {
                    out.extend_from_slice(&a.to_le_bytes());
                    out.extend_from_slice(&b.to_le_bytes());
                }
                for &slot in &t.slots {
                    out.extend_from_slice(&slot.to_le_bytes());
                }
                if let TierCodec::Vq(cb) = &t.codec {
                    write_codebooks(cb, &mut out);
                }
                for chunk in col.chunks((CRC_CHUNK_SLOTS as usize * t.record_bytes).max(1)) {
                    out.extend_from_slice(&crc32(chunk).to_le_bytes());
                }
            }
            let meta = crc32(&out);
            out.extend_from_slice(&meta.to_le_bytes());
        }
        out.extend_from_slice(&coarse_col);
        out.extend_from_slice(&fine_col);
        for col in &tier_cols {
            out.extend_from_slice(col);
        }
        Ok(out)
    }

    /// Writes [`VoxelStore::to_scene_bytes`] to `path` **crash-safely**:
    /// the image is serialized first (so re-writing a file-paged store
    /// over its own backing pages everything in before the destination is
    /// touched), written to a temp file in the destination directory,
    /// fsynced, then atomically renamed into place — a crash can never
    /// leave a torn image under the final name.
    pub fn write_scene_file(&self, path: &Path) -> io::Result<()> {
        let image = self.try_to_scene_bytes().map_err(io::Error::from)?;
        let name = path.file_name().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "scene path has no file name")
        })?;
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".{}.{}.{seq}.tmp",
            name.to_string_lossy(),
            std::process::id()
        ));
        let result = (|| -> io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&image)?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
            return result;
        }
        #[cfg(unix)]
        if let Ok(d) = std::fs::File::open(&dir) {
            // Durability of the rename itself; best-effort by design.
            d.sync_all().ok();
        }
        Ok(())
    }

    /// Opens a serialized scene image held in memory with demand-paged
    /// columns.
    pub fn open_paged_bytes(image: Vec<u8>, config: PageConfig) -> Result<VoxelStore, StoreError> {
        Self::open_paged(PageSource::Memory(image), config)
    }

    /// [`VoxelStore::open_paged_bytes`] with deterministic fault injection
    /// wrapped around the page-read path (open-time metadata reads are
    /// never faulted). A no-op `policy` skips the wrapper entirely.
    pub fn open_paged_bytes_with_faults(
        image: Vec<u8>,
        config: PageConfig,
        policy: FaultPolicy,
    ) -> Result<VoxelStore, StoreError> {
        Self::open_paged(wrap_faulty(PageSource::Memory(image), policy), config)
    }

    /// Opens a serialized scene file with demand-paged columns (index
    /// metadata is loaded eagerly; column pages are read positionally on
    /// demand).
    pub fn open_paged_file(path: &Path, config: PageConfig) -> Result<VoxelStore, StoreError> {
        Self::open_paged(
            PageSource::File(Mutex::new(std::fs::File::open(path)?)),
            config,
        )
    }

    /// [`VoxelStore::open_paged_file`] with deterministic fault injection
    /// (see [`VoxelStore::open_paged_bytes_with_faults`]).
    pub fn open_paged_file_with_faults(
        path: &Path,
        config: PageConfig,
        policy: FaultPolicy,
    ) -> Result<VoxelStore, StoreError> {
        Self::open_paged(
            wrap_faulty(
                PageSource::File(Mutex::new(std::fs::File::open(path)?)),
                policy,
            ),
            config,
        )
    }

    fn open_paged(source: PageSource, config: PageConfig) -> Result<VoxelStore, StoreError> {
        let truncated = |what: &'static str| StoreError::Truncated { what };
        let malformed = |what: &'static str| StoreError::Malformed { what };
        // Every size below is validated against the image length *before*
        // it drives an allocation or a read, so a corrupt or truncated
        // image fails cleanly at open — never with a huge allocation here
        // or an out-of-bounds page fault mid-render.
        let src_len = source.len()?;
        let fits = |at: u64, bytes: u64, what: &'static str| -> Result<(), StoreError> {
            match at.checked_add(bytes) {
                Some(end) if end <= src_len => Ok(()),
                _ => Err(truncated(what)),
            }
        };
        let mut at = 0u64;
        let u32_at = |src: &PageSource, at: &mut u64| -> Result<u32, StoreError> {
            let mut b = [0u8; 4];
            src.read_at(*at, &mut b)?;
            *at += 4;
            Ok(u32::from_le_bytes(b))
        };
        fits(at, 24, "header")?;
        if u32_at(&source, &mut at)? != SCENE_MAGIC {
            return Err(malformed("not a serialized voxel-store scene image"));
        }
        let version = u32_at(&source, &mut at)?;
        if !matches!(version, SCENE_VERSION_V1 | SCENE_VERSION | SCENE_VERSION_V3) {
            return Err(malformed("unsupported scene image version"));
        }
        let flags = u32_at(&source, &mut at)?;
        if flags & !KNOWN_FLAGS != 0 {
            return Err(malformed("unknown header flags"));
        }
        let n_voxels = u32_at(&source, &mut at)? as usize;
        let n_slots = u32_at(&source, &mut at)? as usize;
        let width = u32_at(&source, &mut at)? as usize;
        if width == 0 || width > FINE_BYTES_RAW {
            return Err(malformed("implausible fine record width"));
        }
        let crc_chunk_slots = if version >= SCENE_VERSION {
            fits(at, 4, "crc_chunk_slots header word")?;
            let ccs = u32_at(&source, &mut at)?;
            if ccs == 0 {
                return Err(malformed("zero crc_chunk_slots"));
            }
            Some(ccs)
        } else {
            None
        };
        let n_extra_tiers = if version >= SCENE_VERSION_V3 {
            fits(at, 4, "tier count header word")?;
            let n = u32_at(&source, &mut at)? as usize;
            if n > MAX_TIERS - 1 {
                return Err(malformed("tier count exceeds the ledger's tier capacity"));
            }
            n
        } else {
            0
        };

        fits(at, n_voxels as u64 * 8, "voxel range table")?;
        let mut ranges = Vec::with_capacity(n_voxels);
        let mut buf = vec![0u8; n_voxels * 8];
        source.read_at(at, &mut buf)?;
        at += buf.len() as u64;
        for c in buf.chunks_exact(8) {
            let (a, b) = (
                u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
            );
            if a > b || b as usize > n_slots {
                return Err(malformed("voxel slot range outside the slot column"));
            }
            ranges.push((a, b));
        }
        fits(at, n_slots as u64 * 4, "slot id column")?;
        let mut buf = vec![0u8; n_slots * 4];
        source.read_at(at, &mut buf)?;
        at += buf.len() as u64;
        let ids: Vec<u32> = buf
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();

        let format = if flags & FLAG_VQ != 0 {
            let codebooks = read_codebooks(&source, &mut at, src_len)?;
            if codebooks.record_bytes() as usize != width {
                return Err(malformed("codebook record width disagrees with header"));
            }
            FineFormat::Vq {
                codebooks,
                record_bytes: width,
            }
        } else {
            if width != FINE_BYTES_RAW {
                return Err(malformed("raw scene image with non-raw record width"));
            }
            fits(at, n_slots as u64, "max-axis tag column")?;
            let mut max_axis = vec![0u8; n_slots];
            source.read_at(at, &mut max_axis)?;
            at += n_slots as u64;
            FineFormat::Raw { max_axis }
        };

        // Parsed-but-unplaced tier metadata: the directory is read (and
        // validated) with the checksum tables; the column offsets are only
        // known once the whole metadata prefix has been walked.
        struct PendingTier {
            spec: TierSpec,
            codec: TierCodec,
            record_bytes: usize,
            ranges: Vec<(u32, u32)>,
            slots: Vec<u32>,
            crc: ColumnCrc,
        }
        let mut pending: Vec<PendingTier> = Vec::new();

        // Version ≥ 2: per-chunk CRC tables for both columns — and, for
        // version ≥ 3, the tier directory with its per-tier CRC tables —
        // then a metadata CRC over everything read so far.
        let crc_tables = if let Some(ccs) = crc_chunk_slots {
            let read_table = |at: &mut u64, n_chunks: usize| -> Result<Arc<[u32]>, StoreError> {
                let mut buf = vec![0u8; n_chunks * 4];
                source.read_at(*at, &mut buf)?;
                *at += buf.len() as u64;
                Ok(buf
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect())
            };
            let n_chunks = n_slots.div_ceil(ccs as usize);
            fits(at, n_chunks as u64 * 8, "checksum tables")?;
            let coarse_crc = read_table(&mut at, n_chunks)?;
            let fine_crc = read_table(&mut at, n_chunks)?;
            for _ in 0..n_extra_tiers {
                fits(at, 24, "tier directory entry")?;
                let kind = u32_at(&source, &mut at)?;
                let sh_degree = u32_at(&source, &mut at)?;
                let keep_permille = u32_at(&source, &mut at)?;
                let codebook_shift = u32_at(&source, &mut at)?;
                let record_bytes = u32_at(&source, &mut at)? as usize;
                let n_tier_slots = u32_at(&source, &mut at)? as usize;
                let vq_tier = match kind {
                    TIER_KIND_RAW if flags & FLAG_VQ == 0 => false,
                    TIER_KIND_VQ if flags & FLAG_VQ != 0 => true,
                    TIER_KIND_RAW | TIER_KIND_VQ => {
                        return Err(malformed("tier kind disagrees with the store format"));
                    }
                    _ => return Err(malformed("unknown tier kind")),
                };
                let spec = TierSpec {
                    sh_degree: u8::try_from(sh_degree)
                        .map_err(|_| malformed("tier SH degree out of range"))?,
                    keep_permille: u16::try_from(keep_permille)
                        .map_err(|_| malformed("tier keep_permille out of range"))?,
                    codebook_shift: u8::try_from(codebook_shift)
                        .map_err(|_| malformed("tier codebook shift out of range"))?,
                };
                if spec.sh_degree > MAX_SH_DEGREE || spec.validated() != spec {
                    return Err(malformed("tier spec outside its valid domain"));
                }
                if n_tier_slots > n_slots {
                    return Err(malformed("tier has more slots than the store"));
                }
                fits(at, n_voxels as u64 * 8, "tier range table")?;
                let mut buf = vec![0u8; n_voxels * 8];
                source.read_at(at, &mut buf)?;
                at += buf.len() as u64;
                let mut tranges = Vec::with_capacity(n_voxels);
                let mut expect = 0u32;
                for c in buf.chunks_exact(8) {
                    let (a, b) = (
                        u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                        u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                    );
                    if a != expect || a > b || b as usize > n_tier_slots {
                        return Err(malformed("tier slot ranges do not tile the tier column"));
                    }
                    expect = b;
                    tranges.push((a, b));
                }
                if expect as usize != n_tier_slots {
                    return Err(malformed("tier slot ranges do not tile the tier column"));
                }
                fits(at, n_tier_slots as u64 * 4, "tier slot table")?;
                let mut buf = vec![0u8; n_tier_slots * 4];
                source.read_at(at, &mut buf)?;
                at += buf.len() as u64;
                let tslots: Vec<u32> = buf
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect();
                // Each voxel's tier slots must be a strictly ascending
                // subsequence of its global slot range — the two-pointer
                // merge in the renderer depends on it.
                for (v, &(ta, tb)) in tranges.iter().enumerate() {
                    let (ga, gb) = ranges[v];
                    let mut prev: Option<u32> = None;
                    for &s in &tslots[ta as usize..tb as usize] {
                        if s < ga || s >= gb || prev.is_some_and(|p| s <= p) {
                            return Err(malformed(
                                "tier slots not ascending within their voxel's range",
                            ));
                        }
                        prev = Some(s);
                    }
                }
                let codec = if vq_tier {
                    TierCodec::Vq(read_codebooks(&source, &mut at, src_len)?)
                } else {
                    TierCodec::Raw
                };
                let expect_rb = match &codec {
                    TierCodec::Raw => raw_tier_bytes(spec.sh_degree),
                    TierCodec::Vq(cb) => vq_tier_bytes(cb, spec.sh_degree),
                };
                if record_bytes as u64 != expect_rb {
                    return Err(malformed("tier record width disagrees with its codec"));
                }
                let n_tchunks = n_tier_slots.div_ceil(ccs as usize);
                fits(at, n_tchunks as u64 * 4, "tier checksum table")?;
                let tier_crc = read_table(&mut at, n_tchunks)?;
                pending.push(PendingTier {
                    spec,
                    codec,
                    record_bytes,
                    ranges: tranges,
                    slots: tslots,
                    crc: ColumnCrc {
                        chunk_slots: ccs,
                        chunks: tier_crc,
                    },
                });
            }
            let meta_end = at;
            fits(at, 4, "metadata checksum")?;
            let meta_crc = u32_at(&source, &mut at)?;
            let mut prefix = vec![0u8; meta_end as usize];
            source.read_at(0, &mut prefix)?;
            if crc32(&prefix) != meta_crc {
                return Err(malformed("metadata checksum mismatch"));
            }
            Some((
                ColumnCrc {
                    chunk_slots: ccs,
                    chunks: coarse_crc,
                },
                ColumnCrc {
                    chunk_slots: ccs,
                    chunks: fine_crc,
                },
            ))
        } else {
            None
        };

        let coarse_off = at;
        let fine_off = coarse_off + (n_slots * COARSE_BYTES) as u64;
        fits(fine_off, n_slots as u64 * width as u64, "fine column")?;
        let config = PageConfig {
            verify_checksums: config.verify_checksums && crc_tables.is_some(),
            ..config
        }
        .validated();
        let (coarse_crc, fine_crc) = match crc_tables {
            Some((c, f)) => (Some(c), Some(f)),
            None => (None, None),
        };
        let source = Arc::new(source);
        let replica: ReplicaSlot = Arc::new(Mutex::new(None));
        let mut tier_off = fine_off + n_slots as u64 * width as u64;
        let mut tiers = Vec::with_capacity(pending.len());
        for (i, pt) in pending.into_iter().enumerate() {
            let n_tier_slots = pt.slots.len();
            let len = n_tier_slots as u64 * pt.record_bytes as u64;
            fits(tier_off, len, "tier column")?;
            tiers.push(TierColumn {
                spec: pt.spec,
                codec: pt.codec,
                record_bytes: pt.record_bytes,
                ranges: pt.ranges,
                slots: pt.slots,
                column: Column::Paged(Box::new(PagedColumn::new(
                    Arc::clone(&source),
                    tier_off,
                    pt.record_bytes,
                    n_tier_slots,
                    config,
                    // gs-lint: allow(D004) tier index < MAX_TIERS − 1 fits u8
                    ColumnKind::Tier(i as u8),
                    Some(pt.crc),
                    Arc::clone(&replica),
                ))),
            });
            tier_off += len;
        }
        // Strict framing: nothing may trail the last column (a torn or
        // padded image fails here, not later at render time).
        if tier_off != src_len {
            return Err(malformed("image length disagrees with the header"));
        }
        Ok(VoxelStore {
            ranges,
            ids,
            coarse: Column::Paged(Box::new(PagedColumn::new(
                Arc::clone(&source),
                coarse_off,
                COARSE_BYTES,
                n_slots,
                config,
                ColumnKind::Coarse,
                coarse_crc,
                Arc::clone(&replica),
            ))),
            fine: Column::Paged(Box::new(PagedColumn::new(
                source,
                fine_off,
                width,
                n_slots,
                config,
                ColumnKind::Fine,
                fine_crc,
                replica,
            ))),
            format,
            tiers,
            staging: StagingPool::default(),
        })
    }

    /// Round-trips this store through its serialized scene image into a
    /// demand-paged twin (shares nothing with `self`).
    pub fn try_paged_twin(&self, config: PageConfig) -> Result<VoxelStore, StoreError> {
        VoxelStore::open_paged_bytes(self.try_to_scene_bytes()?, config)
    }

    /// [`VoxelStore::try_paged_twin`], panicking on error — the
    /// serialize/open round-trip cannot fail for resident stores.
    ///
    /// # Panics
    ///
    /// Panics when `self` is paged and a page read fails.
    pub fn paged_twin(&self, config: PageConfig) -> VoxelStore {
        match self.try_paged_twin(config) {
            Ok(store) => store,
            Err(e) => panic!("paged_twin: {e}"),
        }
    }

    /// A paged twin whose page reads draw deterministic injected faults.
    pub fn paged_twin_with_faults(
        &self,
        config: PageConfig,
        policy: FaultPolicy,
    ) -> Result<VoxelStore, StoreError> {
        VoxelStore::open_paged_bytes_with_faults(self.try_to_scene_bytes()?, config, policy)
    }

    /// A paged twin over a forced **version-3** image (zero extra tiers
    /// when none were built) — the compatibility-suite shape proving a
    /// single-tier v3 image opens and renders identically to its v2
    /// sibling.
    ///
    /// # Panics
    ///
    /// Panics when `self` is paged and a page read fails, or when the
    /// serialized image fails to open.
    #[doc(hidden)]
    pub fn paged_twin_v3(&self, config: PageConfig) -> VoxelStore {
        match self
            .serialize_scene(SCENE_VERSION_V3)
            .and_then(|image| VoxelStore::open_paged_bytes(image, config))
        {
            Ok(store) => store,
            Err(e) => panic!("paged_twin_v3: {e}"),
        }
    }

    /// A paged twin over the pre-checksum version-1 image — back-compat
    /// tests and benches only.
    ///
    /// # Panics
    ///
    /// Panics when serialization or the open fails.
    #[doc(hidden)]
    pub fn paged_twin_v1(&self, config: PageConfig) -> VoxelStore {
        match self
            .serialize_scene(SCENE_VERSION_V1)
            .and_then(|image| VoxelStore::open_paged_bytes(image, config))
        {
            Ok(store) => store,
            Err(e) => panic!("paged_twin_v1: {e}"),
        }
    }
}

/// Wraps `source` with fault injection unless the policy injects nothing.
fn wrap_faulty(source: PageSource, policy: FaultPolicy) -> PageSource {
    if policy.is_noop() {
        return source;
    }
    PageSource::Faulty(FaultInjector {
        inner: Box::new(source),
        policy,
        stats: Mutex::new(FaultStats::default()),
    })
}

/// All on-disk header fields are `u32`; a scene whose counts exceed that
/// cannot be expressed in the image format and must fail serialization
/// instead of silently truncating.
fn header_u32(n: usize, what: &'static str) -> Result<u32, StoreError> {
    u32::try_from(n).map_err(|_| StoreError::Malformed { what })
}

/// Serializes the six feature codebooks (dim, entries, centroid f32s each).
fn write_codebooks(cb: &FeatureCodebooks, out: &mut Vec<u8>) {
    for book in [&cb.scale, &cb.rot, &cb.dc, &cb.sh[0], &cb.sh[1], &cb.sh[2]] {
        // gs-lint: allow(D004) codebook dim is ≤ 4 and entries ≤ 2^16 by VqConfig validation
        out.extend_from_slice(&(book.dim() as u32).to_le_bytes());
        // gs-lint: allow(D004) codebook dim is ≤ 4 and entries ≤ 2^16 by VqConfig validation
        out.extend_from_slice(&(book.len() as u32).to_le_bytes());
        for v in book.centroids() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Reads back [`write_codebooks`]' image, advancing `at`; every table size
/// is validated against `src_len` before it drives an allocation.
fn read_codebooks(
    source: &PageSource,
    at: &mut u64,
    src_len: u64,
) -> Result<FeatureCodebooks, StoreError> {
    let mut next = || -> Result<Codebook, StoreError> {
        if at.checked_add(8).is_none_or(|end| end > src_len) {
            return Err(StoreError::Truncated {
                what: "codebook header",
            });
        }
        let mut hdr = [0u8; 8];
        source.read_at(*at, &mut hdr)?;
        *at += 8;
        let dim = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
        let entries = u32::from_le_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]) as usize;
        if dim == 0 || entries == 0 {
            return Err(StoreError::Malformed {
                what: "empty codebook (zero dim or entries)",
            });
        }
        let table = (dim as u64)
            .checked_mul(entries as u64)
            .and_then(|n| n.checked_mul(4))
            .ok_or(StoreError::Malformed {
                what: "codebook table size overflows",
            })?;
        if at.checked_add(table).is_none_or(|end| end > src_len) {
            return Err(StoreError::Truncated {
                what: "codebook table",
            });
        }
        let mut buf = vec![0u8; table as usize];
        source.read_at(*at, &mut buf)?;
        *at += buf.len() as u64;
        let centroids: Vec<f32> = buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Codebook::from_centroids(centroids, dim))
    };
    Ok(FeatureCodebooks {
        scale: next()?,
        rot: next()?,
        dc: next()?,
        sh: [next()?, next()?, next()?],
    })
}

/// The store's slot layout: per-voxel ranges plus the flattened id stream,
/// in the grid's renamed-voxel order (so slot ranges mirror the grid's
/// contiguous DRAM layout exactly).
fn layout_of(grid: &VoxelGrid) -> (Vec<(u32, u32)>, Vec<u32>) {
    let mut ranges = Vec::with_capacity(grid.voxel_count());
    let mut ids = Vec::new();
    let mut at = 0u32;
    // gs-lint: allow(D004) the grid names voxels and gaussians with u32 ids, so both counts fit
    for v in 0..grid.voxel_count() as u32 {
        let g = grid.gaussians_of(v);
        // gs-lint: allow(D004) per-voxel gaussian lists are slices of u32 ids
        ranges.push((at, at + g.len() as u32));
        ids.extend_from_slice(g);
        // gs-lint: allow(D004) per-voxel gaussian lists are slices of u32 ids
        at += g.len() as u32;
    }
    (ranges, ids)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests;
