//! Voxel partitioning of a Gaussian cloud with contiguous per-voxel layout.
//!
//! The scene is split offline into axis-aligned voxels (paper Sec. III-A).
//! Gaussians are assigned to the voxel containing their *centre* and stored
//! contiguously per voxel — the property that lets the accelerator stream a
//! whole voxel with purely sequential DRAM bursts. Empty voxels are renamed
//! away (paper Sec. IV-B: the VSU renaming table); the dense ids produced
//! here are exactly those renamed `VIDr` values.

use gs_core::geom::Aabb;
use gs_core::vec::Vec3;
use gs_scene::{Gaussian, GaussianCloud};
use serde::{Deserialize, Serialize};

/// Sentinel in the cell table for "no Gaussians here".
pub const EMPTY_CELL: u32 = u32::MAX;

/// Integer cell coordinates.
pub type Cell = (i32, i32, i32);

/// A voxel grid over a cloud, with Gaussians grouped contiguously per voxel.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VoxelGrid {
    origin: Vec3,
    voxel_size: f32,
    dims: (u32, u32, u32),
    /// Dense cell table: linear cell index → renamed voxel id or [`EMPTY_CELL`].
    cell_table: Vec<u32>,
    /// Per renamed voxel: its cell coordinates.
    voxel_cells: Vec<Cell>,
    /// Per renamed voxel: range into `indices`.
    ranges: Vec<(u32, u32)>,
    /// Gaussian indices grouped by voxel (the contiguous DRAM layout).
    indices: Vec<u32>,
}

impl VoxelGrid {
    /// Builds a grid of edge length `voxel_size` over `cloud`.
    ///
    /// # Panics
    ///
    /// Panics when `voxel_size <= 0` or the cloud is empty.
    pub fn build(cloud: &GaussianCloud, voxel_size: f32) -> VoxelGrid {
        assert!(voxel_size > 0.0, "voxel size must be positive");
        assert!(!cloud.is_empty(), "cannot voxelize an empty cloud");
        let bounds = cloud.bounds();
        // Pad so centres on the boundary fall strictly inside.
        let origin = bounds.min - Vec3::splat(voxel_size * 1e-3);
        let extent = bounds.max - origin + Vec3::splat(voxel_size * 1e-3);
        let dims = (
            (extent.x / voxel_size).ceil().max(1.0) as u32,
            (extent.y / voxel_size).ceil().max(1.0) as u32,
            (extent.z / voxel_size).ceil().max(1.0) as u32,
        );
        let n_cells = dims.0 as usize * dims.1 as usize * dims.2 as usize;

        // Count per cell, then bucket (counting sort keeps layout contiguous).
        let mut counts = vec![0u32; n_cells];
        let cell_of = |p: Vec3| -> usize {
            let cx = (((p.x - origin.x) / voxel_size) as u32).min(dims.0 - 1);
            let cy = (((p.y - origin.y) / voxel_size) as u32).min(dims.1 - 1);
            let cz = (((p.z - origin.z) / voxel_size) as u32).min(dims.2 - 1);
            (cz as usize * dims.1 as usize + cy as usize) * dims.0 as usize + cx as usize
        };
        for g in cloud {
            counts[cell_of(g.pos)] += 1;
        }

        let mut cell_table = vec![EMPTY_CELL; n_cells];
        let mut voxel_cells = Vec::new();
        let mut ranges = Vec::new();
        let mut offset = 0u32;
        for (ci, &c) in counts.iter().enumerate() {
            if c > 0 {
                let id = voxel_cells.len() as u32;
                cell_table[ci] = id;
                let x = (ci % dims.0 as usize) as i32;
                let y = ((ci / dims.0 as usize) % dims.1 as usize) as i32;
                let z = (ci / (dims.0 as usize * dims.1 as usize)) as i32;
                voxel_cells.push((x, y, z));
                ranges.push((offset, offset + c));
                offset += c;
            }
        }

        let mut cursor: Vec<u32> = ranges.iter().map(|r| r.0).collect();
        let mut indices = vec![0u32; cloud.len()];
        for (gi, g) in cloud.iter().enumerate() {
            let vid = cell_table[cell_of(g.pos)] as usize;
            indices[cursor[vid] as usize] = gi as u32;
            cursor[vid] += 1;
        }

        VoxelGrid {
            origin,
            voxel_size,
            dims,
            cell_table,
            voxel_cells,
            ranges,
            indices,
        }
    }

    /// Grid origin (minimum corner).
    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    /// Voxel edge length.
    pub fn voxel_size(&self) -> f32 {
        self.voxel_size
    }

    /// Grid dimensions in cells.
    pub fn dims(&self) -> (u32, u32, u32) {
        self.dims
    }

    /// Number of non-empty (renamed) voxels.
    pub fn voxel_count(&self) -> usize {
        self.voxel_cells.len()
    }

    /// Total cells (including empty ones).
    pub fn cell_count(&self) -> usize {
        self.cell_table.len()
    }

    /// The dense linear cell table (index `(z*ny + y)*nx + x` → renamed
    /// voxel id or [`EMPTY_CELL`]). The DDA marcher indexes this directly
    /// with its incrementally-maintained linear index.
    pub(crate) fn cell_table(&self) -> &[u32] {
        &self.cell_table
    }

    /// World-space bounding box of the whole grid.
    pub fn bounds(&self) -> Aabb {
        let e = Vec3::new(
            self.dims.0 as f32 * self.voxel_size,
            self.dims.1 as f32 * self.voxel_size,
            self.dims.2 as f32 * self.voxel_size,
        );
        Aabb::new(self.origin, self.origin + e)
    }

    /// Renamed voxel id at integer cell coordinates, if non-empty and in
    /// range.
    pub fn voxel_at(&self, cell: Cell) -> Option<u32> {
        let (x, y, z) = cell;
        if x < 0
            || y < 0
            || z < 0
            || x >= self.dims.0 as i32
            || y >= self.dims.1 as i32
            || z >= self.dims.2 as i32
        {
            return None;
        }
        let ci =
            (z as usize * self.dims.1 as usize + y as usize) * self.dims.0 as usize + x as usize;
        let v = self.cell_table[ci];
        if v == EMPTY_CELL {
            None
        } else {
            Some(v)
        }
    }

    /// The cell containing world position `p` (unclamped; may be outside).
    pub fn cell_of(&self, p: Vec3) -> Cell {
        (
            ((p.x - self.origin.x) / self.voxel_size).floor() as i32,
            ((p.y - self.origin.y) / self.voxel_size).floor() as i32,
            ((p.z - self.origin.z) / self.voxel_size).floor() as i32,
        )
    }

    /// The cell coordinates of renamed voxel `vid`.
    pub fn cell_of_voxel(&self, vid: u32) -> Cell {
        self.voxel_cells[vid as usize]
    }

    /// World-space centre of renamed voxel `vid`.
    pub fn voxel_center(&self, vid: u32) -> Vec3 {
        let (x, y, z) = self.voxel_cells[vid as usize];
        self.origin
            + Vec3::new(
                (x as f32 + 0.5) * self.voxel_size,
                (y as f32 + 0.5) * self.voxel_size,
                (z as f32 + 0.5) * self.voxel_size,
            )
    }

    /// World-space AABB of renamed voxel `vid`.
    pub fn voxel_aabb(&self, vid: u32) -> Aabb {
        let (x, y, z) = self.voxel_cells[vid as usize];
        let min = self.origin
            + Vec3::new(
                x as f32 * self.voxel_size,
                y as f32 * self.voxel_size,
                z as f32 * self.voxel_size,
            );
        Aabb::new(min, min + Vec3::splat(self.voxel_size))
    }

    /// Gaussian indices stored in renamed voxel `vid` (contiguous layout).
    pub fn gaussians_of(&self, vid: u32) -> &[u32] {
        let (a, b) = self.ranges[vid as usize];
        &self.indices[a as usize..b as usize]
    }

    /// The renamed voxel id that Gaussian `gi` (by its position) belongs to.
    pub fn voxel_of_gaussian(&self, g: &Gaussian) -> Option<u32> {
        self.voxel_at(self.cell_of(g.pos))
    }

    /// Largest voxel population — bounds the on-chip input buffer need.
    pub fn max_voxel_population(&self) -> usize {
        self.ranges
            .iter()
            .map(|(a, b)| (b - a) as usize)
            .max()
            .unwrap_or(0)
    }

    /// How far Gaussian `g`'s `sigmas`·σ ellipsoid bound extends beyond its
    /// own voxel, in world units (0 when fully contained).
    ///
    /// This is the geometric quantity the boundary-aware fine-tuning drives
    /// toward zero.
    pub fn spill_distance(&self, g: &Gaussian, sigmas: f32) -> f32 {
        let cell = self.cell_of(g.pos);
        let min = self.origin
            + Vec3::new(
                cell.0 as f32 * self.voxel_size,
                cell.1 as f32 * self.voxel_size,
                cell.2 as f32 * self.voxel_size,
            );
        let max = min + Vec3::splat(self.voxel_size);
        let r = sigmas * g.max_scale();
        let mut spill = 0.0f32;
        for a in 0..3 {
            spill = spill.max((min[a] - (g.pos[a] - r)).max(0.0));
            spill = spill.max(((g.pos[a] + r) - max[a]).max(0.0));
        }
        spill
    }

    /// `true` when the Gaussian's `sigmas`·σ bound crosses its voxel
    /// boundary.
    pub fn crosses_boundary(&self, g: &Gaussian, sigmas: f32) -> bool {
        self.spill_distance(g, sigmas) > 0.0
    }

    /// Fraction of cloud Gaussians whose `sigmas`·σ bound crosses a voxel
    /// boundary (static cross-boundary ratio).
    pub fn crossing_ratio(&self, cloud: &GaussianCloud, sigmas: f32) -> f64 {
        if cloud.is_empty() {
            return 0.0;
        }
        let crossing = cloud
            .iter()
            .filter(|g| self.crosses_boundary(g, sigmas))
            .count();
        crossing as f64 / cloud.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scene::{SceneConfig, SceneKind};

    fn small_cloud() -> GaussianCloud {
        let mut c = GaussianCloud::new();
        for x in 0..4 {
            for y in 0..2 {
                c.push(Gaussian::isotropic(
                    Vec3::new(x as f32 + 0.5, y as f32 + 0.5, 0.5),
                    0.05,
                    Vec3::ONE,
                    0.9,
                ));
            }
        }
        c
    }

    #[test]
    fn every_gaussian_lands_in_exactly_one_voxel() {
        let cloud = small_cloud();
        let grid = VoxelGrid::build(&cloud, 1.0);
        assert_eq!(grid.voxel_count(), 8);
        let mut seen = vec![false; cloud.len()];
        for v in 0..grid.voxel_count() as u32 {
            for &gi in grid.gaussians_of(v) {
                assert!(!seen[gi as usize], "gaussian {gi} assigned twice");
                seen[gi as usize] = true;
                // The Gaussian's position must lie inside the voxel's box.
                let aabb = grid.voxel_aabb(v);
                assert!(aabb.contains(cloud.as_slice()[gi as usize].pos));
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn layout_is_contiguous() {
        let cloud = small_cloud();
        let grid = VoxelGrid::build(&cloud, 1.0);
        let mut total = 0usize;
        for v in 0..grid.voxel_count() as u32 {
            total += grid.gaussians_of(v).len();
        }
        assert_eq!(total, cloud.len());
    }

    #[test]
    fn empty_cells_are_renamed_away() {
        let mut cloud = GaussianCloud::new();
        cloud.push(Gaussian::isotropic(Vec3::ZERO, 0.05, Vec3::ONE, 0.9));
        cloud.push(Gaussian::isotropic(
            Vec3::new(10.0, 0.0, 0.0),
            0.05,
            Vec3::ONE,
            0.9,
        ));
        let grid = VoxelGrid::build(&cloud, 1.0);
        assert_eq!(
            grid.voxel_count(),
            2,
            "only the two occupied voxels are kept"
        );
        assert!(grid.cell_count() >= 10, "the raw cell space is much larger");
    }

    #[test]
    fn voxel_at_out_of_range_is_none() {
        let grid = VoxelGrid::build(&small_cloud(), 1.0);
        assert!(grid.voxel_at((-1, 0, 0)).is_none());
        assert!(grid.voxel_at((100, 0, 0)).is_none());
    }

    #[test]
    fn voxel_center_inside_its_aabb() {
        let grid = VoxelGrid::build(&small_cloud(), 1.0);
        for v in 0..grid.voxel_count() as u32 {
            assert!(grid.voxel_aabb(v).contains(grid.voxel_center(v)));
        }
    }

    /// Grid whose origin is anchored at ~0 so cell walls sit on integers.
    fn anchored(extra: Gaussian) -> (GaussianCloud, VoxelGrid) {
        let mut cloud = GaussianCloud::new();
        cloud.push(Gaussian::isotropic(
            Vec3::splat(0.001),
            0.0001,
            Vec3::ONE,
            0.9,
        ));
        cloud.push(extra);
        let grid = VoxelGrid::build(&cloud, 1.0);
        (cloud, grid)
    }

    #[test]
    fn spill_distance_zero_for_tiny_centered_gaussian() {
        let (cloud, grid) = anchored(Gaussian::isotropic(Vec3::splat(0.5), 0.05, Vec3::ONE, 0.9));
        let g = &cloud.as_slice()[1];
        assert_eq!(grid.spill_distance(g, 3.0), 0.0);
        assert!(!grid.crosses_boundary(g, 3.0));
    }

    #[test]
    fn spill_distance_positive_for_large_gaussian() {
        let (cloud, grid) = anchored(Gaussian::isotropic(Vec3::splat(0.5), 0.5, Vec3::ONE, 0.9));
        let g = &cloud.as_slice()[1];
        // 3σ = 1.5 ≫ distance to the wall (0.5 − ε).
        assert!(grid.spill_distance(g, 3.0) > 0.9);
        assert!(grid.crosses_boundary(g, 3.0));
    }

    #[test]
    fn crossing_ratio_monotone_in_voxel_size() {
        let scene = SceneKind::Train.build(&SceneConfig::tiny());
        let big = VoxelGrid::build(&scene.trained, 4.0);
        let small = VoxelGrid::build(&scene.trained, 0.5);
        let r_big = big.crossing_ratio(&scene.trained, 3.0);
        let r_small = small.crossing_ratio(&scene.trained, 3.0);
        assert!(
            r_small > r_big,
            "smaller voxels must create more cross-boundary Gaussians ({r_small} vs {r_big})"
        );
    }

    #[test]
    fn paper_voxel_sizes_give_reasonable_grids() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let grid = VoxelGrid::build(&scene.trained, scene.voxel_size);
        assert!(grid.voxel_count() > 8, "synthetic scene has several voxels");
        assert!(grid.voxel_count() < 4_000);
        let real = SceneKind::Drjohnson.build(&SceneConfig::tiny());
        let rg = VoxelGrid::build(&real.trained, real.voxel_size);
        assert!(rg.voxel_count() > 8 && rg.voxel_count() < 10_000);
    }

    #[test]
    #[should_panic(expected = "voxel size")]
    fn zero_voxel_size_panics() {
        let _ = VoxelGrid::build(&small_cloud(), 0.0);
    }
}
